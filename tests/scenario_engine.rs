//! Integration tests for the experiment engine and scenario-matrix surface
//! as seen from outside the workspace crates.

use rnuca_sim::{
    AsrPolicy, DesignComparison, ExperimentConfig, ExperimentEngine, LlcDesign, ScenarioMatrix,
};
use rnuca_workloads::WorkloadSpec;

fn small_cfg() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::smoke();
    cfg.warmup_refs = 2_000;
    cfg.measured_refs = 1_500;
    cfg
}

#[test]
fn scenario_sweep_json_is_byte_identical_across_worker_pools() {
    let mut matrix = ScenarioMatrix::new(small_cfg());
    matrix.workloads = vec![WorkloadSpec::oltp_db2(), WorkloadSpec::mix()];
    matrix.designs = vec![
        LlcDesign::Shared,
        LlcDesign::rnuca_default(),
        LlcDesign::Asr {
            policy: AsrPolicy::Static(0.5),
        },
    ];
    matrix.core_counts = vec![16, 32];
    matrix.cluster_sizes = vec![2, 4];
    let outputs: Vec<String> = [1, 2, 7]
        .iter()
        .map(|&w| {
            matrix
                .run_with(&ExperimentEngine::with_workers(w))
                .expect("matrix axes are valid")
                .to_json()
        })
        .collect();
    assert_eq!(outputs[0], outputs[1]);
    assert_eq!(outputs[0], outputs[2]);
    // 2 workloads x 2 core counts x (shared + 2 clusters + ASR).
    assert_eq!(outputs[0].matches("\"workload\"").count(), 2 * 2 * 4);
}

#[test]
fn experiment_seed_reaches_the_simulator() {
    // ASR's probabilistic replication must vary with the experiment seed:
    // before the fix, the simulator RNG was pinned to a hardcoded constant
    // and only the trace stream changed.
    let spec = WorkloadSpec::oltp_db2();
    let design = LlcDesign::Asr {
        policy: AsrPolicy::Static(0.5),
    };
    let mut a = small_cfg();
    let mut b = small_cfg();
    a.seed = 1;
    b.seed = 2;
    let ra = DesignComparison::run_single(&spec, design, &a);
    let rb = DesignComparison::run_single(&spec, design, &b);
    assert_ne!(ra.run, rb.run);
    // Same seed stays fully deterministic.
    let ra2 = DesignComparison::run_single(&spec, design, &a);
    assert_eq!(ra.run, ra2.run);
}

#[test]
fn scaled_core_counts_run_end_to_end() {
    // A 64-core scenario exercises the reshaped 8x8 torus, its 16 memory
    // controllers, and R-NUCA placement beyond the paper's table.
    let spec = WorkloadSpec::oltp_db2()
        .at_config_point(&rnuca_types::ConfigPoint {
            num_cores: Some(64),
            slice_capacity_kb: Some(512),
            instr_cluster_size: None,
        })
        .expect("64-core point is valid");
    assert_eq!(spec.num_cores(), 64);
    for design in [LlcDesign::Shared, LlcDesign::rnuca_default()] {
        let r = DesignComparison::run_single(&spec, design, &small_cfg());
        assert!(r.total_cpi() > 0.0, "{design} must produce CPI at 64 cores");
    }
}
