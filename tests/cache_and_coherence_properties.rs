//! Property-based tests of the cache array and directory substrates.

use proptest::prelude::*;
use rnuca_cache::{CacheArray, VictimCache};
use rnuca_coherence::{Directory, ReadSource};
use rnuca_types::addr::BlockAddr;
use rnuca_types::config::CacheGeometry;
use rnuca_types::ids::TileId;

proptest! {
    /// The cache never holds more blocks than its geometry allows, and a block
    /// just inserted is always resident immediately afterwards.
    #[test]
    fn cache_capacity_is_never_exceeded(blocks in proptest::collection::vec(0u64..10_000, 1..400)) {
        let geometry = CacheGeometry::new(16 * 1024, 4, 64).unwrap();
        let mut cache: CacheArray<u64> = CacheArray::new(geometry);
        for (i, b) in blocks.iter().enumerate() {
            let block = BlockAddr::from_block_number(*b);
            cache.insert(block, i as u64);
            prop_assert!(cache.contains(block));
            prop_assert!(cache.len() <= geometry.num_blocks());
        }
    }

    /// Probing after an insert hits until the block is invalidated, after which it misses.
    #[test]
    fn insert_probe_invalidate_roundtrip(block in 0u64..1_000_000, value in 0u64..1000) {
        let geometry = CacheGeometry::new(8 * 1024, 2, 64).unwrap();
        let mut cache: CacheArray<u64> = CacheArray::new(geometry);
        let b = BlockAddr::from_block_number(block);
        cache.insert(b, value);
        prop_assert_eq!(cache.probe(b), Some(&value));
        prop_assert_eq!(cache.invalidate(b), Some(value));
        prop_assert_eq!(cache.probe(b), None);
    }

    /// The victim cache never grows beyond its capacity and recalls exactly
    /// what was inserted (most recent first when over capacity).
    #[test]
    fn victim_cache_is_bounded(entries in proptest::collection::vec(0u64..100, 0..64), cap in 1usize..8) {
        let mut v: VictimCache<u64> = VictimCache::new(cap);
        for &e in &entries {
            v.insert(BlockAddr::from_block_number(e), e);
            prop_assert!(v.len() <= cap);
        }
    }

    /// Directory invariant: after any sequence of reads and writes, each block
    /// has at most one owner and every writer ends exclusive.
    #[test]
    fn directory_write_leaves_single_sharer(
        ops in proptest::collection::vec((0u64..32, 0usize..8, any::<bool>()), 1..200)
    ) {
        let mut dir = Directory::new(8);
        for (block, tile, is_write) in ops {
            let b = BlockAddr::from_block_number(block);
            let t = TileId::new(tile);
            if is_write {
                let w = dir.handle_write(b, t);
                prop_assert!(!w.invalidations.contains(t));
                prop_assert_eq!(dir.sharers(b).len(), 1);
                prop_assert_eq!(dir.owner(b), Some(t));
            } else {
                let r = dir.handle_read(b, t);
                prop_assert!(dir.sharers(b).contains(t));
                if let ReadSource::Cache(supplier) = r.source {
                    prop_assert_ne!(supplier, t, "a forward must come from another tile");
                }
            }
        }
    }

    /// Evicting every sharer of a block leaves the directory with no entry for it.
    #[test]
    fn directory_forgets_fully_evicted_blocks(readers in proptest::collection::vec(0usize..8, 1..8)) {
        let mut dir = Directory::new(8);
        let b = BlockAddr::from_block_number(7);
        for &r in &readers {
            dir.handle_read(b, TileId::new(r));
        }
        for &r in &readers {
            dir.handle_eviction(b, TileId::new(r));
        }
        prop_assert!(!dir.is_cached(b));
    }
}
