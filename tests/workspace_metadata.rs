//! Smoke tests keeping the workspace manifests honest: every crate directory
//! must be a workspace member with a manifest, every bench file must be
//! registered, and every crate root must carry crate-level docs. These guard
//! the bootstrap invariants that `cargo build` alone does not check (an
//! unregistered bench or an unlisted crate simply never compiles).

use std::fs;
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn read(path: &Path) -> String {
    fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

fn subdirs(path: &Path) -> Vec<PathBuf> {
    let mut dirs: Vec<PathBuf> = fs::read_dir(path)
        .unwrap_or_else(|e| panic!("cannot list {}: {e}", path.display()))
        .map(|entry| entry.unwrap().path())
        .filter(|p| p.is_dir())
        .collect();
    dirs.sort();
    dirs
}

/// Extracts `name = "..."` from a `[package]` section.
fn package_name(manifest: &str) -> String {
    manifest
        .lines()
        .skip_while(|l| l.trim() != "[package]")
        .find_map(|l| {
            l.trim()
                .strip_prefix("name = \"")?
                .strip_suffix('"')
                .map(String::from)
        })
        .expect("manifest has a [package] name")
}

#[test]
fn every_crate_dir_is_a_workspace_member_with_a_manifest() {
    let root = repo_root();
    let root_manifest = read(&root.join("Cargo.toml"));
    assert!(
        root_manifest.contains("members = [\"crates/*\", \"vendor/*\"]"),
        "root manifest must declare the crates/* and vendor/* member globs"
    );
    for dir in subdirs(&root.join("crates"))
        .iter()
        .chain(subdirs(&root.join("vendor")).iter())
    {
        let manifest = dir.join("Cargo.toml");
        assert!(
            manifest.is_file(),
            "{} is not a cargo package (no Cargo.toml)",
            dir.display()
        );
        assert!(
            dir.join("src/lib.rs").is_file(),
            "{} has no src/lib.rs library root",
            dir.display()
        );
    }
}

#[test]
fn every_workspace_crate_is_a_workspace_dependency() {
    let root = repo_root();
    let root_manifest = read(&root.join("Cargo.toml"));
    for dir in subdirs(&root.join("crates")) {
        let name = package_name(&read(&dir.join("Cargo.toml")));
        let entry = format!(
            "{name} = {{ path = \"crates/{}\" }}",
            dir.file_name().unwrap().to_str().unwrap()
        );
        assert!(
            root_manifest.contains(&entry),
            "[workspace.dependencies] is missing `{entry}` for {}",
            dir.display()
        );
    }
}

#[test]
fn every_bench_file_is_registered_and_vice_versa() {
    let root = repo_root();
    let bench_manifest = read(&root.join("crates/bench/Cargo.toml"));
    let registered: Vec<&str> = bench_manifest
        .lines()
        .filter_map(|l| l.trim().strip_prefix("name = \""))
        .filter_map(|l| l.strip_suffix('"'))
        .filter(|&n| n != "rnuca-bench" && n != "rnuca_bench")
        .collect();

    let mut on_disk: Vec<String> = fs::read_dir(root.join("crates/bench/benches"))
        .expect("benches dir exists")
        .map(|entry| entry.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .map(|p| p.file_stem().unwrap().to_str().unwrap().to_string())
        .collect();
    on_disk.sort();

    for name in &on_disk {
        assert!(
            registered.contains(&name.as_str()),
            "benches/{name}.rs exists but has no [[bench]] entry (it would never compile)"
        );
    }
    for name in &registered {
        assert!(
            on_disk.iter().any(|d| d == name),
            "[[bench]] entry `{name}` has no benches/{name}.rs file"
        );
    }
    // Criterion benches provide their own main; the libtest harness must be off.
    let harness_off = bench_manifest.matches("harness = false").count();
    assert_eq!(
        harness_off,
        registered.len(),
        "every [[bench]] must set harness = false"
    );
}

#[test]
fn every_example_and_integration_test_file_is_rust_source() {
    let root = repo_root();
    for dir in ["examples", "tests"] {
        let mut count = 0;
        for entry in fs::read_dir(root.join(dir)).expect("dir exists") {
            let path = entry.unwrap().path();
            assert!(
                path.extension().is_some_and(|e| e == "rs"),
                "{} contains a non-Rust file {} that cargo auto-discovery will ignore",
                dir,
                path.display()
            );
            count += 1;
        }
        assert!(count > 0, "{dir}/ must not be empty");
    }
}

#[test]
fn every_crate_root_has_crate_docs_and_the_missing_docs_lint() {
    let root = repo_root();
    let mut roots: Vec<PathBuf> = subdirs(&root.join("crates"))
        .iter()
        .map(|d| d.join("src/lib.rs"))
        .collect();
    roots.push(root.join("src/lib.rs"));
    for lib in roots {
        let text = read(&lib);
        assert!(
            text.lines().next().is_some_and(|l| l.starts_with("//!")),
            "{} must open with `//!` crate-level docs",
            lib.display()
        );
        assert!(
            text.contains("#![warn(missing_docs)]"),
            "{} must keep #![warn(missing_docs)]",
            lib.display()
        );
    }
}
