//! Integration tests of the OS classification layer driven by real workload traces.

use proptest::prelude::*;
use rnuca_os::{ClassificationEvent, OsClassifier, PageClass};
use rnuca_types::access::AccessClass;
use rnuca_types::addr::PageAddr;
use rnuca_types::ids::CoreId;
use rnuca_workloads::{TraceGenerator, WorkloadSpec};

/// Drives the OS classifier with a generated OLTP trace and checks that pages
/// converge to their ground-truth classes.
#[test]
fn classifier_converges_to_ground_truth_on_oltp() {
    let spec = WorkloadSpec::oltp_db2();
    let mut gen = TraceGenerator::new(&spec, 3);
    let mut os = OsClassifier::new(spec.num_cores(), 512);
    let layout = *gen.layout();
    let trace = gen.generate(200_000);
    for a in &trace {
        let page = a.addr.page(8192);
        os.access(page, a.core, a.kind.is_instr_fetch());
    }
    // After the trace, every touched page's classification matches its region.
    let mut checked = 0;
    for (page, info) in os.page_table().iter() {
        let truth = layout
            .class_of_page(page)
            .expect("page comes from a known region");
        let expected_any = match truth {
            AccessClass::Instruction => info.class == PageClass::Instruction,
            AccessClass::PrivateData => info.class == PageClass::Private,
            // Cold shared pages touched by a single core so far may legitimately
            // still be classified private; hot ones must have converged.
            AccessClass::SharedData => {
                info.class == PageClass::Shared || info.class == PageClass::Private
            }
        };
        assert!(
            expected_any,
            "page {page} classified {:?} but ground truth is {truth}",
            info.class
        );
        checked += 1;
    }
    assert!(
        checked > 100,
        "expected a substantial number of touched pages"
    );
    // The hot shared pages specifically must be shared by now.
    let shared_pages = os
        .page_table()
        .iter()
        .filter(|(p, _)| layout.class_of_page(*p) == Some(AccessClass::SharedData))
        .count();
    let converged = os
        .page_table()
        .iter()
        .filter(|(p, i)| {
            layout.class_of_page(*p) == Some(AccessClass::SharedData)
                && i.class == PageClass::Shared
        })
        .count();
    assert!(
        converged * 2 > shared_pages,
        "most touched shared pages should have been re-classified ({converged}/{shared_pages})"
    );
}

/// Private pages of a purely private workload must never be re-classified.
#[test]
fn private_workload_never_reclassifies_private_pages() {
    let spec = WorkloadSpec::mix();
    let mut gen = TraceGenerator::new(&spec, 11);
    let mut os = OsClassifier::new(spec.num_cores(), 512);
    let trace = gen.generate(100_000);
    let mut reclassified_private = 0;
    for a in &trace {
        let page = a.addr.page(8192);
        let out = os.access(page, a.core, a.kind.is_instr_fetch());
        if a.class == AccessClass::PrivateData {
            if let ClassificationEvent::Reclassified { .. } = out.event {
                reclassified_private += 1;
            }
        }
    }
    assert_eq!(
        reclassified_private, 0,
        "ground-truth private pages are only ever touched by their owner"
    );
    assert_eq!(os.stats().owner_migrations, 0);
}

proptest! {
    /// Random interleavings of accesses by two cores always end with the page
    /// either private to a single accessor or shared — never poisoned, and the
    /// classification is stable under repetition.
    #[test]
    fn classification_state_machine_is_stable(accessors in proptest::collection::vec(0usize..2, 1..40)) {
        let mut os = OsClassifier::new(2, 64);
        let page = PageAddr::from_page_number(99);
        for &a in &accessors {
            os.access(page, CoreId::new(a), false);
        }
        let info = *os.page_table().get(page).expect("page was touched");
        prop_assert!(!info.poisoned, "no access sequence may leave a page poisoned");
        let distinct: std::collections::HashSet<_> = accessors.iter().collect();
        if distinct.len() == 1 {
            prop_assert_eq!(info.class, PageClass::Private);
        } else {
            prop_assert_eq!(info.class, PageClass::Shared);
        }
        // Re-running the same final accessor does not change the class.
        let last = *accessors.last().unwrap();
        os.access(page, CoreId::new(last), false);
        prop_assert_eq!(os.page_table().get(page).unwrap().class, info.class);
    }
}
