//! Property-based tests of the R-NUCA placement invariants.
//!
//! These exercise the guarantees the paper leans on:
//! * every access has exactly one servicing slice (single-probe lookup),
//! * shared data has a core-independent home (no L2 coherence needed),
//! * instruction homes stay within the requesting core's fixed-center cluster,
//! * rotational interleaving never stores more than one address residue per
//!   slice (replication without added capacity pressure),
//! * private data is always local.

use proptest::prelude::*;
use rnuca::placement::{PlacementConfig, PlacementEngine};
use rnuca::rotational::RotationalMap;
use rnuca_os::PageClass;
use rnuca_types::addr::BlockAddr;
use rnuca_types::config::SystemConfig;
use rnuca_types::ids::{CoreId, TileId};

fn engine_with_cluster(n: usize) -> PlacementEngine {
    PlacementEngine::new(
        PlacementConfig::from_system(&SystemConfig::server_16()).with_instr_cluster_size(n),
    )
}

proptest! {
    #[test]
    fn private_data_is_always_local(block in 0u64..1_000_000, core in 0usize..16) {
        let engine = engine_with_cluster(4);
        let home = engine.place(PageClass::Private, BlockAddr::from_block_number(block), CoreId::new(core));
        prop_assert_eq!(home, TileId::new(core));
    }

    #[test]
    fn shared_home_is_independent_of_the_requester(
        block in 0u64..1_000_000,
        core_a in 0usize..16,
        core_b in 0usize..16,
    ) {
        let engine = engine_with_cluster(4);
        let b = BlockAddr::from_block_number(block);
        prop_assert_eq!(
            engine.place(PageClass::Shared, b, CoreId::new(core_a)),
            engine.place(PageClass::Shared, b, CoreId::new(core_b))
        );
    }

    #[test]
    fn instruction_home_is_inside_the_cluster_and_within_one_hop_for_size4(
        block in 0u64..1_000_000,
        core in 0usize..16,
    ) {
        let engine = engine_with_cluster(4);
        let core = CoreId::new(core);
        let b = BlockAddr::from_block_number(block);
        let home = engine.place(PageClass::Instruction, b, core);
        let cluster = engine.instruction_cluster(core);
        prop_assert!(cluster.contains(home));
        // Size-4 fixed-center clusters keep instructions within one torus hop.
        let (cx, cy) = core.tile().coords(4);
        let (hx, hy) = home.coords(4);
        let dx = cx.abs_diff(hx).min(4 - cx.abs_diff(hx));
        let dy = cy.abs_diff(hy).min(4 - cy.abs_diff(hy));
        prop_assert!(dx + dy <= 1);
    }

    #[test]
    fn rotational_capacity_invariant_holds_for_all_power_of_two_sizes(
        core in 0usize..16,
        residue in 0usize..16,
        size_idx in 0usize..5,
    ) {
        let n = [1usize, 2, 4, 8, 16][size_idx];
        let map = RotationalMap::new(n, 4, 4, 0);
        let residue = residue % n;
        let home = map.home_for_residue(TileId::new(core), residue);
        // The slice chosen for this residue must be a slice that stores exactly
        // this residue, no matter which tile asked.
        prop_assert_eq!(map.stored_residue(home), residue);
    }

    #[test]
    fn placement_is_deterministic(block in 0u64..1_000_000, core in 0usize..16) {
        let engine = engine_with_cluster(4);
        let b = BlockAddr::from_block_number(block);
        let c = CoreId::new(core);
        for class in [PageClass::Private, PageClass::Shared, PageClass::Instruction] {
            prop_assert_eq!(engine.place(class, b, c), engine.place(class, b, c));
        }
    }

    #[test]
    fn shared_homes_are_balanced_over_slices(seed in 0u64..1_000) {
        // Any window of 1024 consecutive interleave values spreads evenly.
        let engine = engine_with_cluster(4);
        let mut counts = [0usize; 16];
        for i in 0..1024u64 {
            let block = BlockAddr::from_block_number((seed * 1024 + i) << 10);
            counts[engine.shared_home(block).index()] += 1;
        }
        let min = *counts.iter().min().unwrap();
        let max = *counts.iter().max().unwrap();
        prop_assert_eq!(min, max, "perfect interleaving expected, got {:?}", counts);
    }
}
