//! End-to-end integration tests: full workload simulations across crates,
//! checking the paper's headline qualitative claims on small runs.

use rnuca_sim::{CmpSimulator, DesignComparison, ExperimentConfig, LlcDesign};
use rnuca_workloads::{TraceGenerator, WorkloadSpec};

fn cfg() -> ExperimentConfig {
    let mut c = ExperimentConfig::quick();
    c.warmup_refs = 120_000;
    c.measured_refs = 60_000;
    c
}

/// R-NUCA must track the better of private and shared for an OLTP workload
/// (the performance-stability claim of Section 5.4).
#[test]
fn rnuca_matches_or_beats_both_baselines_on_oltp() {
    let spec = WorkloadSpec::oltp_db2();
    let c = cfg();
    let private = DesignComparison::run_single(&spec, LlcDesign::Private, &c).total_cpi();
    let shared = DesignComparison::run_single(&spec, LlcDesign::Shared, &c).total_cpi();
    let rnuca = DesignComparison::run_single(&spec, LlcDesign::rnuca_default(), &c).total_cpi();
    let best = private.min(shared);
    assert!(
        rnuca <= best * 1.05,
        "R-NUCA ({rnuca:.3}) should be within 5% of the best baseline ({best:.3})"
    );
}

/// The multi-programmed MIX is the canonical shared-averse workload: the
/// private organisation (and R-NUCA) must beat the shared organisation.
#[test]
fn mix_is_shared_averse() {
    let spec = WorkloadSpec::mix();
    let c = cfg();
    let private = DesignComparison::run_single(&spec, LlcDesign::Private, &c).total_cpi();
    let shared = DesignComparison::run_single(&spec, LlcDesign::Shared, &c).total_cpi();
    let rnuca = DesignComparison::run_single(&spec, LlcDesign::rnuca_default(), &c).total_cpi();
    assert!(
        private < shared,
        "MIX: private ({private:.3}) should beat shared ({shared:.3})"
    );
    assert!(
        rnuca <= shared,
        "MIX: R-NUCA ({rnuca:.3}) should beat shared ({shared:.3})"
    );
}

/// Apache (large instruction footprint, universally shared data) is
/// private-averse: the shared organisation and R-NUCA must beat private.
#[test]
fn apache_is_private_averse() {
    let spec = WorkloadSpec::apache();
    let c = cfg();
    let private = DesignComparison::run_single(&spec, LlcDesign::Private, &c).total_cpi();
    let rnuca = DesignComparison::run_single(&spec, LlcDesign::rnuca_default(), &c).total_cpi();
    assert!(
        rnuca < private,
        "Apache: R-NUCA ({rnuca:.3}) should beat the private design ({private:.3})"
    );
}

/// The ideal design bounds every other design from below on every workload.
#[test]
fn ideal_design_is_a_lower_bound() {
    let c = cfg();
    for spec in [WorkloadSpec::oltp_oracle(), WorkloadSpec::em3d()] {
        let results = DesignComparison::run_workload(&spec, &c);
        let ideal = results.by_letter("I").unwrap().total_cpi();
        for r in &results.results {
            assert!(
                ideal <= r.total_cpi() + 1e-9,
                "{}: ideal ({ideal:.3}) must not exceed {} ({:.3})",
                spec.name,
                r.design,
                r.total_cpi()
            );
        }
    }
}

/// Size-4 instruction clusters must beat size-16 clusters (which spread
/// instructions chip-wide) on an instruction-heavy server workload, and the
/// size-1 configuration must show more off-chip CPI than size-4 (the Figure 11
/// trade-off).
#[test]
fn instruction_cluster_size_tradeoff() {
    let spec = WorkloadSpec::apache();
    let c = cfg();
    let run = |n: usize| {
        DesignComparison::run_single(
            &spec,
            LlcDesign::RNuca {
                instr_cluster_size: n,
            },
            &c,
        )
        .run
    };
    let size1 = run(1);
    let size4 = run(4);
    let size16 = run(16);
    assert!(
        size4.cpi.l2_instructions < size16.cpi.l2_instructions,
        "size-4 clusters must fetch instructions faster than chip-wide interleaving"
    );
    assert!(
        size1.cpi.breakdown.off_chip > size4.cpi.breakdown.off_chip,
        "size-1 clusters must increase off-chip pressure vs size-4"
    );
}

/// The OS-driven classification misclassifies well under 1% of accesses at
/// steady state (Section 5.2 reports <0.75%).
#[test]
fn classification_accuracy_is_high_at_steady_state() {
    let spec = WorkloadSpec::oltp_db2();
    let mut gen = TraceGenerator::new(&spec, 5);
    let mut sim = CmpSimulator::new(LlcDesign::rnuca_default(), &spec);
    sim.run_warmup(&mut gen, 200_000);
    let run = sim.run_measured(&mut gen, 100_000);
    assert!(
        run.misclassification_rate < 0.01,
        "steady-state misclassification should be below 1%, got {:.3}%",
        run.misclassification_rate * 100.0
    );
}

/// The same seed and configuration reproduce identical results — the whole
/// pipeline is deterministic.
#[test]
fn full_pipeline_is_deterministic() {
    let spec = WorkloadSpec::dss_qry13();
    let c = ExperimentConfig::quick();
    let a = DesignComparison::run_single(&spec, LlcDesign::rnuca_default(), &c);
    let b = DesignComparison::run_single(&spec, LlcDesign::rnuca_default(), &c);
    assert_eq!(a, b);
}
