//! Main-memory model: on-chip memory controllers and DRAM latency.
//!
//! Table 1 of the paper provisions one memory controller per four cores, each
//! co-located with a tile, with pages interleaved round-robin across the
//! controllers and a 45 ns (90-cycle at 2 GHz) access latency. The controller
//! a request uses determines the extra on-chip hops an off-chip access pays,
//! which is why off-chip CPI differs slightly between designs even at equal
//! miss rates.
//!
//! # Example
//!
//! ```
//! use rnuca_mem::MemorySystem;
//! use rnuca_types::config::SystemConfig;
//! use rnuca_types::addr::PhysAddr;
//!
//! let cfg = SystemConfig::server_16();
//! let mem = MemorySystem::new(&cfg);
//! assert_eq!(mem.num_controllers(), 4);
//! // Consecutive pages rotate round-robin over the controllers.
//! let p0 = mem.controller_for(PhysAddr::new(0));
//! let p1 = mem.controller_for(PhysAddr::new(8192));
//! assert_ne!(p0, p1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use rnuca_types::addr::PhysAddr;
use rnuca_types::config::SystemConfig;
use rnuca_types::ids::{MemCtrlId, TileId};
use rnuca_types::latency::Cycles;
use rnuca_types::{Snap, SnapReader};
use serde::{Deserialize, Serialize};

/// Counters accumulated by the memory system.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryStats {
    /// Off-chip read requests serviced.
    pub reads: u64,
    /// Off-chip writeback requests serviced.
    pub writebacks: u64,
    /// Total DRAM cycles charged.
    pub busy_cycles: u64,
}

impl MemoryStats {
    /// Total requests serviced.
    pub fn requests(&self) -> u64 {
        self.reads + self.writebacks
    }
}

/// The memory controllers and DRAM of the modelled system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemorySystem {
    /// `log2(page_bytes)`, so the per-request page extraction is a shift.
    page_shift: u32,
    /// `controllers - 1` when the controller count is a power of two (the
    /// standard configurations); lets [`MemorySystem::controller_for`] mask
    /// instead of dividing on the per-miss path.
    ctrl_mask: Option<u64>,
    access_latency: Cycles,
    /// The tile each controller is co-located with.
    controller_tiles: Vec<TileId>,
    /// Per-controller request counters (for balance checks).
    per_controller_requests: Vec<u64>,
    stats: MemoryStats,
}

impl MemorySystem {
    /// Builds the memory system described by a [`SystemConfig`].
    ///
    /// Controllers are co-located with evenly spaced tiles: controller `i`
    /// sits at tile `i * cores_per_controller`, mirroring the paper's
    /// flip-chip assumption of distributing controllers over the die.
    pub fn new(config: &SystemConfig) -> Self {
        let n = config.num_mem_controllers();
        let spacing = config.memory.cores_per_controller;
        let controller_tiles = (0..n).map(|i| TileId::new(i * spacing)).collect();
        // The shift-based page extraction below is only correct for
        // power-of-two pages; the config validator enforces this, but the
        // fields are public, so keep the guard local too.
        debug_assert!(
            config.memory.page_bytes.is_power_of_two(),
            "page size must be a power of two"
        );
        MemorySystem {
            page_shift: config.memory.page_bytes.trailing_zeros(),
            ctrl_mask: n.is_power_of_two().then_some(n as u64 - 1),
            access_latency: config.memory.access_latency,
            controller_tiles,
            per_controller_requests: vec![0; n],
            stats: MemoryStats::default(),
        }
    }

    /// Number of memory controllers.
    pub fn num_controllers(&self) -> usize {
        self.controller_tiles.len()
    }

    /// DRAM access latency.
    pub fn access_latency(&self) -> Cycles {
        self.access_latency
    }

    /// The controller responsible for an address (round-robin page interleaving).
    #[inline]
    pub fn controller_for(&self, addr: PhysAddr) -> MemCtrlId {
        let page = addr.value() >> self.page_shift;
        let idx = match self.ctrl_mask {
            Some(mask) => page & mask,
            None => page % self.controller_tiles.len() as u64,
        };
        MemCtrlId::new(idx as usize)
    }

    /// The tile a controller is co-located with (where off-chip requests exit the NoC).
    pub fn controller_tile(&self, ctrl: MemCtrlId) -> TileId {
        self.controller_tiles[ctrl.index()]
    }

    /// Convenience: the tile whose router an off-chip access to `addr` must reach.
    pub fn exit_tile_for(&self, addr: PhysAddr) -> TileId {
        self.controller_tile(self.controller_for(addr))
    }

    /// Services an off-chip read, returning the DRAM latency charged.
    pub fn read(&mut self, addr: PhysAddr) -> Cycles {
        self.read_via(addr);
        self.access_latency
    }

    /// Services an off-chip read and returns the tile its controller sits
    /// at — the fused form of [`MemorySystem::exit_tile_for`] +
    /// [`MemorySystem::read`] the simulator's miss paths use, performing the
    /// controller lookup once instead of twice.
    #[inline]
    pub fn read_via(&mut self, addr: PhysAddr) -> TileId {
        let ctrl = self.controller_for(addr);
        self.per_controller_requests[ctrl.index()] += 1;
        self.stats.reads += 1;
        self.stats.busy_cycles += self.access_latency.value();
        self.controller_tiles[ctrl.index()]
    }

    /// Services a dirty writeback, returning the DRAM latency charged.
    ///
    /// Writebacks are off the critical path of the requesting core, but they
    /// still occupy the controller, so they are tracked separately.
    pub fn writeback(&mut self, addr: PhysAddr) -> Cycles {
        let ctrl = self.controller_for(addr);
        self.per_controller_requests[ctrl.index()] += 1;
        self.stats.writebacks += 1;
        self.stats.busy_cycles += self.access_latency.value();
        self.access_latency
    }

    /// Accumulated counters.
    pub fn stats(&self) -> &MemoryStats {
        &self.stats
    }

    /// Requests serviced by each controller, in controller order.
    pub fn per_controller_requests(&self) -> &[u64] {
        &self.per_controller_requests
    }

    /// Resets all counters.
    pub fn reset_stats(&mut self) {
        self.stats = MemoryStats::default();
        self.per_controller_requests.iter_mut().for_each(|c| *c = 0);
    }
}

impl Snap for MemoryStats {
    fn encode(&self, out: &mut Vec<u8>) {
        self.reads.encode(out);
        self.writebacks.encode(out);
        self.busy_cycles.encode(out);
    }

    fn decode(r: &mut SnapReader<'_>) -> Self {
        MemoryStats {
            reads: r.get(),
            writebacks: r.get(),
            busy_cycles: r.get(),
        }
    }
}

impl Snap for MemorySystem {
    fn encode(&self, out: &mut Vec<u8>) {
        self.page_shift.encode(out);
        self.ctrl_mask.encode(out);
        self.access_latency.encode(out);
        self.controller_tiles.encode(out);
        self.per_controller_requests.encode(out);
        self.stats.encode(out);
    }

    fn decode(r: &mut SnapReader<'_>) -> Self {
        MemorySystem {
            page_shift: r.get(),
            ctrl_mask: r.get(),
            access_latency: r.get(),
            controller_tiles: r.get(),
            per_controller_requests: r.get(),
            stats: r.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnuca_types::config::SystemConfig;

    fn server_mem() -> MemorySystem {
        MemorySystem::new(&SystemConfig::server_16())
    }

    #[test]
    fn controller_count_matches_table1() {
        assert_eq!(server_mem().num_controllers(), 4);
        assert_eq!(
            MemorySystem::new(&SystemConfig::desktop_8()).num_controllers(),
            2
        );
    }

    #[test]
    fn pages_interleave_round_robin() {
        let mem = server_mem();
        let page = 8192u64;
        let ids: Vec<_> = (0..8)
            .map(|i| mem.controller_for(PhysAddr::new(i * page)).index())
            .collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 0, 1, 2, 3]);
        // Addresses within the same page use the same controller.
        assert_eq!(
            mem.controller_for(PhysAddr::new(100)),
            mem.controller_for(PhysAddr::new(8000))
        );
    }

    #[test]
    fn controller_tiles_are_spread_across_the_die() {
        let mem = server_mem();
        let tiles: Vec<_> = (0..4)
            .map(|i| mem.controller_tile(MemCtrlId::new(i)).index())
            .collect();
        assert_eq!(tiles, vec![0, 4, 8, 12]);
        assert_eq!(mem.exit_tile_for(PhysAddr::new(8192)).index(), 4);
    }

    #[test]
    fn read_and_writeback_charge_dram_latency() {
        let mut mem = server_mem();
        assert_eq!(mem.read(PhysAddr::new(0)), Cycles(90));
        assert_eq!(mem.writeback(PhysAddr::new(8192)), Cycles(90));
        assert_eq!(mem.stats().reads, 1);
        assert_eq!(mem.stats().writebacks, 1);
        assert_eq!(mem.stats().requests(), 2);
        assert_eq!(mem.stats().busy_cycles, 180);
        assert_eq!(mem.per_controller_requests(), &[1, 1, 0, 0]);
        mem.reset_stats();
        assert_eq!(mem.stats().requests(), 0);
        assert_eq!(mem.per_controller_requests(), &[0, 0, 0, 0]);
    }

    #[test]
    fn requests_balance_across_controllers_for_a_page_sweep() {
        let mut mem = server_mem();
        for p in 0..400u64 {
            mem.read(PhysAddr::new(p * 8192));
        }
        let counts = mem.per_controller_requests();
        assert_eq!(counts.iter().sum::<u64>(), 400);
        for &c in counts {
            assert_eq!(c, 100);
        }
    }
}
