//! End-to-end service test in one process: a real `serve()` on a temp
//! spool, a real socket, a real sweep — submit, watch to completion,
//! idempotent resubmit, error replies, drain, and the warehouse rows the
//! run landed.

use rnuca_service::{serve, Request, ServiceClient, ServiceConfig, SubmitSpec};
use rnuca_warehouse::Warehouse;
use std::path::PathBuf;
use std::thread;
use std::time::Duration;

fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rnuca-e2e-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn submit_watch_drain_lifecycle() {
    let root = temp_root("lifecycle");
    let config = ServiceConfig {
        spool: root.join("spool"),
        store: root.join("warehouse.bin"),
        workers: 2,
    };
    let server = {
        let config = config.clone();
        thread::spawn(move || serve(&config))
    };
    let socket = config.spool.join("service.sock");
    let mut client = ServiceClient::connect_with_retry(&socket, Duration::from_secs(10))
        .expect("service comes up");

    // A malformed spec is an `err`, and the connection stays usable.
    let reply = client
        .request(&Request::Submit("v1|config=galactic".to_string()))
        .unwrap();
    assert!(reply.starts_with("err "), "got: {reply}");

    // Submit a one-job sweep.
    let spec = SubmitSpec {
        workloads: vec!["oltp-db2".to_string()],
        designs: vec!["R".to_string()],
        core_counts: vec![16],
        ..SubmitSpec::default()
    };
    let id = spec.submission_id().unwrap();
    let reply = client.request(&Request::Submit(spec.encode())).unwrap();
    assert_eq!(reply, format!("ok {id} queued"));

    // Watch it to completion; events arrive in lifecycle order.
    let mut events = Vec::new();
    let done = client.watch(&id, |e| events.push(e.to_string())).unwrap();
    assert_eq!(done, format!("done {id} completed ok=1 failed=0"));
    assert!(
        events
            .iter()
            .all(|e| e.starts_with(&format!("event {id} "))),
        "events carry the id: {events:?}"
    );

    // Resubmitting the identical spec is idempotent, not a second run.
    let reply = client.request(&Request::Submit(spec.encode())).unwrap();
    assert_eq!(reply, format!("ok {id} completed ok=1 failed=0"));

    // Status reports it; unknown ids err on watch and cancel.
    let status = client.request(&Request::Status).unwrap();
    assert!(
        status.contains(&id),
        "status lists the submission: {status}"
    );
    let reply = client
        .request(&Request::Cancel("snope".to_string()))
        .unwrap();
    assert!(reply.starts_with("err "), "got: {reply}");
    let reply = client.watch("snope", |_| {}).unwrap();
    assert!(reply.starts_with("err "), "got: {reply}");

    // Drain: the service finishes and the socket goes away.
    let reply = client.request(&Request::Drain).unwrap();
    assert_eq!(reply, "ok draining");
    server
        .join()
        .expect("serve thread")
        .expect("serve exits cleanly");
    assert!(!socket.exists(), "drain removes the socket");

    // The sweep's row landed through the atomic save, and the completed
    // submission's spool entry was retired.
    let store = Warehouse::open(&config.store).expect("warehouse is readable");
    let out = store
        .query("kind=sweep show workload, design, cores")
        .unwrap();
    assert_eq!(out.rows.len(), 1);
    assert_eq!(out.rows[0][0].to_string(), "OLTP DB2");
    assert_eq!(out.rows[0][1].to_string(), "R");
    assert!(
        !config.spool.join(&id).exists(),
        "completed submissions leave no spool entry"
    );
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn a_draining_service_refuses_new_submissions() {
    let root = temp_root("refuse");
    let config = ServiceConfig {
        spool: root.join("spool"),
        store: root.join("warehouse.bin"),
        workers: 1,
    };
    let server = {
        let config = config.clone();
        thread::spawn(move || serve(&config))
    };
    let socket = config.spool.join("service.sock");
    let mut client = ServiceClient::connect_with_retry(&socket, Duration::from_secs(10))
        .expect("service comes up");
    assert_eq!(client.request(&Request::Drain).unwrap(), "ok draining");
    let reply = client.request(&Request::Submit(SubmitSpec::default().encode()));
    // The service may still answer (err) or may already have hung up; both
    // are acceptable shutdown behaviours, silently running the sweep is not.
    if let Ok(reply) = reply {
        assert!(reply.starts_with("err "), "got: {reply}");
    }
    server.join().expect("serve thread").expect("clean exit");
    assert!(!config.store.exists(), "nothing ran, nothing was saved");
    std::fs::remove_dir_all(&root).ok();
}
