//! In-memory submission registry: the queue, per-submission lifecycle
//! state, and the generation counter `watch` streams block on.
//!
//! The registry is the single synchronisation point between the acceptor's
//! connection handler threads and the runner thread: handlers enqueue and
//! flag, the runner claims and reports. Every mutation bumps a generation
//! counter and notifies the condvar, so watchers wake exactly when there is
//! something new to stream.

use crate::spec::SubmitSpec;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Where a submission is in its life.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmissionState {
    /// Accepted and spooled, waiting for the runner.
    Queued,
    /// The runner is executing it.
    Running {
        /// Fused groups finished (completed or moved to solo re-run).
        done_groups: usize,
        /// Total fused groups this pass must finish.
        total_groups: usize,
    },
    /// Every job has an outcome; rows are in the warehouse.
    Completed {
        /// Jobs that produced a result row.
        completed: usize,
        /// Jobs quarantined with a `kind=failed` row.
        failed: usize,
    },
    /// Cancelled by a client; nothing (more) reaches the warehouse.
    Cancelled,
    /// The run itself could not proceed (bad spec, journal error, ...).
    Failed(String),
}

impl SubmissionState {
    /// Whether the submission will never change state again.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            SubmissionState::Completed { .. }
                | SubmissionState::Cancelled
                | SubmissionState::Failed(_)
        )
    }
}

impl fmt::Display for SubmissionState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmissionState::Queued => f.write_str("queued"),
            SubmissionState::Running {
                done_groups,
                total_groups,
            } => write!(f, "running {done_groups}/{total_groups}"),
            SubmissionState::Completed { completed, failed } => {
                write!(f, "completed ok={completed} failed={failed}")
            }
            SubmissionState::Cancelled => f.write_str("cancelled"),
            SubmissionState::Failed(msg) => write!(f, "failed: {msg}"),
        }
    }
}

/// A claimed unit of work, handed from the registry to the runner.
#[derive(Debug)]
pub struct Claim {
    /// Submission id.
    pub id: String,
    /// The submission's spec.
    pub spec: SubmitSpec,
    /// Set when the runner must stop between chunks (drain or cancel).
    pub stop: Arc<AtomicBool>,
    /// Set only by `cancel` — distinguishes a cancelled stop from a drain.
    pub cancelled: Arc<AtomicBool>,
}

#[derive(Debug)]
struct Entry {
    spec: SubmitSpec,
    state: SubmissionState,
    stop: Arc<AtomicBool>,
    cancelled: Arc<AtomicBool>,
}

#[derive(Debug, Default)]
struct Inner {
    entries: BTreeMap<String, Entry>,
    queue: VecDeque<String>,
    draining: bool,
    generation: u64,
}

/// The shared registry (wrap in an `Arc`; every method takes `&self`).
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<Inner>,
    cond: Condvar,
}

/// What `submit` did with a spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// Newly enqueued.
    Enqueued,
    /// The same spec (same id) is already known; its current state.
    AlreadyKnown(SubmissionState),
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn bump(&self, inner: &mut Inner) {
        inner.generation += 1;
        self.cond.notify_all();
    }

    /// Enqueues a submission. Identical specs share an id, so resubmission
    /// is idempotent: the existing entry's state is reported instead of a
    /// duplicate run.
    ///
    /// # Errors
    ///
    /// The service is draining and accepts no new work.
    pub fn submit(&self, id: &str, spec: SubmitSpec) -> Result<SubmitOutcome, String> {
        let mut inner = self.inner.lock().expect("registry lock");
        if inner.draining {
            return Err("service is draining; resubmit after restart".to_string());
        }
        if let Some(entry) = inner.entries.get(id) {
            return Ok(SubmitOutcome::AlreadyKnown(entry.state.clone()));
        }
        inner.entries.insert(
            id.to_string(),
            Entry {
                spec,
                state: SubmissionState::Queued,
                stop: Arc::new(AtomicBool::new(false)),
                cancelled: Arc::new(AtomicBool::new(false)),
            },
        );
        inner.queue.push_back(id.to_string());
        self.bump(&mut inner);
        Ok(SubmitOutcome::Enqueued)
    }

    /// Blocks until there is work or the service is draining. `None` means
    /// drain: the runner should exit its loop. Draining wins even with work
    /// queued — unstarted submissions keep their spool entries and resume
    /// on the next start.
    pub fn claim(&self) -> Option<Claim> {
        let mut inner = self.inner.lock().expect("registry lock");
        loop {
            if inner.draining {
                return None;
            }
            if let Some(id) = inner.queue.pop_front() {
                let entry = inner.entries.get(&id).expect("queued id is registered");
                // A cancel that raced the claim: honour it here.
                if entry.cancelled.load(Ordering::SeqCst) {
                    continue;
                }
                let claim = Claim {
                    id: id.clone(),
                    spec: entry.spec.clone(),
                    stop: entry.stop.clone(),
                    cancelled: entry.cancelled.clone(),
                };
                return Some(claim);
            }
            inner = self.cond.wait(inner).expect("registry lock");
        }
    }

    /// Replaces a submission's state (and wakes watchers).
    pub fn set_state(&self, id: &str, state: SubmissionState) {
        let mut inner = self.inner.lock().expect("registry lock");
        if let Some(entry) = inner.entries.get_mut(id) {
            entry.state = state;
            self.bump(&mut inner);
        }
    }

    /// A submission's current state.
    pub fn state_of(&self, id: &str) -> Option<SubmissionState> {
        let inner = self.inner.lock().expect("registry lock");
        inner.entries.get(id).map(|e| e.state.clone())
    }

    /// Requests cancellation. A queued submission is cancelled on the spot;
    /// a running one has its stop flag raised and the runner finishes the
    /// in-flight chunk before marking it cancelled.
    ///
    /// # Errors
    ///
    /// Unknown id, or the submission already reached a terminal state.
    pub fn cancel(&self, id: &str) -> Result<SubmissionState, String> {
        let mut inner = self.inner.lock().expect("registry lock");
        let entry = inner
            .entries
            .get_mut(id)
            .ok_or_else(|| format!("unknown submission `{id}`"))?;
        if entry.state.is_terminal() {
            return Err(format!("submission is already {}", entry.state));
        }
        entry.cancelled.store(true, Ordering::SeqCst);
        entry.stop.store(true, Ordering::SeqCst);
        let state = if entry.state == SubmissionState::Queued {
            entry.state = SubmissionState::Cancelled;
            SubmissionState::Cancelled
        } else {
            entry.state.clone()
        };
        inner.queue.retain(|q| q != id);
        self.bump(&mut inner);
        Ok(state)
    }

    /// Starts draining: no new submissions, the runner stops after its
    /// in-flight chunk, everything unfinished stays journaled in the spool
    /// for the next start.
    pub fn drain(&self) {
        let mut inner = self.inner.lock().expect("registry lock");
        inner.draining = true;
        for entry in inner.entries.values() {
            entry.stop.store(true, Ordering::SeqCst);
        }
        self.bump(&mut inner);
    }

    /// Whether a drain has been requested.
    pub fn is_draining(&self) -> bool {
        self.inner.lock().expect("registry lock").draining
    }

    /// One line per submission (sorted by id): `<id> <state>`.
    pub fn status_report(&self) -> String {
        let inner = self.inner.lock().expect("registry lock");
        inner
            .entries
            .iter()
            .map(|(id, e)| format!("{id} {}", e.state))
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Blocks until the generation moves past `last` (some state changed)
    /// or `timeout` elapses; returns the current generation either way.
    pub fn wait_change(&self, last: u64, timeout: Duration) -> u64 {
        let inner = self.inner.lock().expect("registry lock");
        let (inner, _) = self
            .cond
            .wait_timeout_while(inner, timeout, |i| i.generation == last)
            .expect("registry lock");
        inner.generation
    }

    /// The current generation (pair with [`Registry::wait_change`]).
    pub fn generation(&self) -> u64 {
        self.inner.lock().expect("registry lock").generation
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn submit_claim_complete_lifecycle() {
        let reg = Registry::new();
        let spec = SubmitSpec::default();
        assert_eq!(reg.submit("s1", spec.clone()), Ok(SubmitOutcome::Enqueued));
        assert_eq!(
            reg.submit("s1", spec),
            Ok(SubmitOutcome::AlreadyKnown(SubmissionState::Queued)),
            "resubmission is idempotent"
        );
        let claim = reg.claim().expect("work is queued");
        assert_eq!(claim.id, "s1");
        reg.set_state(
            "s1",
            SubmissionState::Running {
                done_groups: 1,
                total_groups: 2,
            },
        );
        assert_eq!(reg.status_report(), "s1 running 1/2");
        reg.set_state(
            "s1",
            SubmissionState::Completed {
                completed: 4,
                failed: 0,
            },
        );
        assert!(reg.state_of("s1").unwrap().is_terminal());
    }

    #[test]
    fn cancel_dequeues_and_flags() {
        let reg = Registry::new();
        reg.submit("s1", SubmitSpec::default()).unwrap();
        assert_eq!(reg.cancel("s1"), Ok(SubmissionState::Cancelled));
        assert!(reg.cancel("s1").is_err(), "terminal states reject cancel");
        assert!(reg.cancel("nope").is_err());
        // The queue entry is gone; a drain is the only way claim returns.
        reg.drain();
        assert!(reg.claim().is_none());
    }

    #[test]
    fn a_cancel_racing_the_claim_is_honoured() {
        let reg = Registry::new();
        reg.submit("s1", SubmitSpec::default()).unwrap();
        // Cancel before the runner ever claims: claim must skip it.
        reg.cancel("s1").unwrap();
        reg.submit("s2", SubmitSpec::default()).unwrap();
        let claim = reg.claim().expect("s2 is still live");
        assert_eq!(claim.id, "s2");
    }

    #[test]
    fn drain_wakes_a_blocked_claim() {
        let reg = Arc::new(Registry::new());
        let waiter = {
            let reg = reg.clone();
            thread::spawn(move || reg.claim().is_none())
        };
        // Give the waiter a moment to block, then drain.
        thread::sleep(Duration::from_millis(30));
        reg.drain();
        assert!(waiter.join().unwrap(), "drain unblocks claim with None");
        assert!(
            reg.submit("s1", SubmitSpec::default()).is_err(),
            "a draining service refuses new work"
        );
    }

    #[test]
    fn wait_change_sees_generation_moves() {
        let reg = Registry::new();
        let g0 = reg.generation();
        assert_eq!(
            reg.wait_change(g0, Duration::from_millis(10)),
            g0,
            "timeout with no change returns the same generation"
        );
        reg.submit("s1", SubmitSpec::default()).unwrap();
        let g1 = reg.wait_change(g0, Duration::from_millis(100));
        assert!(g1 > g0);
    }
}
