//! The service's spool directory: the on-disk truth about submissions.
//!
//! Layout, one subdirectory per submission:
//!
//! ```text
//! <spool>/
//!   service.sock            the Unix-domain listener (ephemeral)
//!   <id>/spec.line          the canonical SubmitSpec (written on submit)
//!   <id>/journal.bin        the sweep journal (created when the run starts)
//! ```
//!
//! A submission directory exists from the moment `submit` is accepted until
//! its sweep's rows are safely in the warehouse (or it is cancelled) — the
//! directory is removed only *after* the warehouse's atomic save returns.
//! That ordering is the crash-resume invariant: any submission a crash can
//! interrupt still has its spec (and, if it started, its journal) in the
//! spool, so the next start's [`Spool::scan`] finds it and re-enqueues it.

use crate::spec::SubmitSpec;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A spool directory handle. Creating one creates the directory.
#[derive(Debug, Clone)]
pub struct Spool {
    root: PathBuf,
}

impl Spool {
    /// Opens (creating if needed) the spool at `root`.
    ///
    /// # Errors
    ///
    /// The directory cannot be created.
    pub fn new(root: &Path) -> io::Result<Spool> {
        fs::create_dir_all(root)?;
        Ok(Spool {
            root: root.to_path_buf(),
        })
    }

    /// The spool root.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The service's listening socket path (inside the spool, so one spool
    /// is one service instance).
    pub fn socket_path(&self) -> PathBuf {
        self.root.join("service.sock")
    }

    /// A submission's directory.
    pub fn dir(&self, id: &str) -> PathBuf {
        self.root.join(id)
    }

    /// A submission's spec file.
    pub fn spec_path(&self, id: &str) -> PathBuf {
        self.dir(id).join("spec.line")
    }

    /// A submission's journal file.
    pub fn journal_path(&self, id: &str) -> PathBuf {
        self.dir(id).join("journal.bin")
    }

    /// Records a submission durably *before* it is enqueued: writes the
    /// canonical spec line to a temp file and renames it into place, so a
    /// crash at any point leaves either no spec or a complete one — never a
    /// torn line that a later [`Spool::scan`] would misparse.
    ///
    /// # Errors
    ///
    /// Any underlying filesystem error.
    pub fn write_spec(&self, id: &str, spec: &SubmitSpec) -> io::Result<()> {
        let dir = self.dir(id);
        fs::create_dir_all(&dir)?;
        let tmp = dir.join("spec.line.tmp");
        fs::write(&tmp, spec.encode())?;
        fs::rename(&tmp, self.spec_path(id))
    }

    /// Removes a submission's directory (after completion or cancel).
    ///
    /// # Errors
    ///
    /// Any underlying filesystem error; an already-missing directory is not
    /// an error.
    pub fn remove(&self, id: &str) -> io::Result<()> {
        match fs::remove_dir_all(self.dir(id)) {
            Err(e) if e.kind() != io::ErrorKind::NotFound => Err(e),
            _ => Ok(()),
        }
    }

    /// Finds every submission left in the spool — the startup auto-resume
    /// scan. Returns `(id, spec)` pairs sorted by id (deterministic resume
    /// order). Entries whose spec is missing or unparseable are returned in
    /// the second list as `(id, reason)` so the server can report them
    /// without refusing to start.
    ///
    /// # Errors
    ///
    /// The spool directory itself cannot be read.
    #[allow(clippy::type_complexity)]
    pub fn scan(&self) -> io::Result<(Vec<(String, SubmitSpec)>, Vec<(String, String)>)> {
        let mut found = Vec::new();
        let mut rejected = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            if !entry.file_type()?.is_dir() {
                continue;
            }
            let id = entry.file_name().to_string_lossy().into_owned();
            match fs::read_to_string(self.spec_path(&id)) {
                Ok(line) => match SubmitSpec::parse(&line) {
                    Ok(spec) => found.push((id, spec)),
                    Err(e) => rejected.push((id, format!("unparseable spec: {e}"))),
                },
                Err(e) => rejected.push((id, format!("unreadable spec: {e}"))),
            }
        }
        found.sort_by(|a, b| a.0.cmp(&b.0));
        rejected.sort_by(|a, b| a.0.cmp(&b.0));
        Ok((found, rejected))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_spool(tag: &str) -> Spool {
        let root = std::env::temp_dir().join(format!("rnuca-spool-{}-{tag}", std::process::id()));
        fs::remove_dir_all(&root).ok();
        Spool::new(&root).expect("temp spool")
    }

    #[test]
    fn specs_roundtrip_through_the_scan() {
        let spool = temp_spool("roundtrip");
        let a = SubmitSpec::default();
        let b = SubmitSpec {
            config: "quick".to_string(),
            workloads: vec!["mix".to_string()],
            ..SubmitSpec::default()
        };
        spool.write_spec("s02", &b).unwrap();
        spool.write_spec("s01", &a).unwrap();
        let (found, rejected) = spool.scan().unwrap();
        assert!(rejected.is_empty());
        assert_eq!(
            found,
            vec![("s01".to_string(), a), ("s02".to_string(), b)],
            "scan returns specs sorted by id"
        );
        spool.remove("s01").unwrap();
        let (found, _) = spool.scan().unwrap();
        assert_eq!(found.len(), 1);
        spool.remove("s01").expect("removing twice is fine");
        fs::remove_dir_all(spool.root()).ok();
    }

    #[test]
    fn a_broken_spec_is_reported_not_fatal() {
        let spool = temp_spool("broken");
        spool.write_spec("sgood", &SubmitSpec::default()).unwrap();
        fs::create_dir_all(spool.dir("sbad")).unwrap();
        fs::write(spool.spec_path("sbad"), "v9|nope").unwrap();
        fs::create_dir_all(spool.dir("sempty")).unwrap();
        let (found, rejected) = spool.scan().unwrap();
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].0, "sgood");
        assert_eq!(rejected.len(), 2);
        assert_eq!(rejected[0].0, "sbad");
        assert_eq!(rejected[1].0, "sempty");
        fs::remove_dir_all(spool.root()).ok();
    }
}
