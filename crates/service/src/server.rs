//! The resident service: a thread-based acceptor over a Unix-domain socket
//! plus the drain/shutdown choreography.
//!
//! [`serve`] owns the whole lifecycle:
//!
//! 1. Open the spool and *scan it* — any submission a previous process left
//!    behind (crash, `kill -9`, drain) is re-enqueued, so interrupted
//!    sweeps resume automatically from their journals.
//! 2. Bind the socket (removing a stale one a crashed process left), start
//!    the single [`Runner`] thread, and accept connections; each connection
//!    gets its own handler thread speaking the framed protocol.
//! 3. On `drain`: stop accepting, let the runner finish its in-flight
//!    chunk and journal it, then return. Unfinished submissions keep their
//!    spool entries for the next start. `kill -9` is the same story minus
//!    the courtesy — the journal's torn-tail tolerance and the startup scan
//!    make the two indistinguishable after restart.

use crate::protocol::{read_frame, write_frame, Request};
use crate::runner::Runner;
use crate::spec::SubmitSpec;
use crate::spool::Spool;
use crate::state::{Registry, SubmitOutcome};
use std::io;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// What a service instance needs to run.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Spool directory (also hosts the socket).
    pub spool: PathBuf,
    /// Warehouse file completed sweeps land in.
    pub store: PathBuf,
    /// Engine worker threads.
    pub workers: usize,
}

/// Runs the service until a client sends `drain`. Blocks the calling
/// thread; see the module docs for the lifecycle.
///
/// # Errors
///
/// Spool or socket setup failures, or an accept-loop error other than
/// "no connection pending".
pub fn serve(config: &ServiceConfig) -> io::Result<()> {
    let spool = Spool::new(&config.spool)?;
    let registry = Arc::new(Registry::new());

    // Startup auto-resume: everything still in the spool is unfinished.
    let (found, rejected) = spool.scan()?;
    for (id, reason) in &rejected {
        eprintln!("service: ignoring spooled `{id}`: {reason}");
    }
    for (id, spec) in found {
        eprintln!("service: resuming spooled submission {id}");
        registry
            .submit(&id, spec)
            .expect("a fresh registry is not draining");
    }

    let socket = spool.socket_path();
    // A previous kill -9 leaves the socket file behind; it is ours to
    // replace (one spool == one service instance).
    std::fs::remove_file(&socket).ok();
    let listener = UnixListener::bind(&socket)?;
    listener.set_nonblocking(true)?;
    eprintln!("service: listening on {}", socket.display());

    let runner = Runner::new(
        registry.clone(),
        spool.clone(),
        config.store.clone(),
        config.workers,
    );
    let runner_thread = thread::spawn(move || runner.run());

    // Accept loop: nonblocking + short poll so a drain is noticed promptly
    // even with no incoming connections.
    let result = loop {
        if registry.is_draining() {
            break Ok(());
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let registry = registry.clone();
                let spool = spool.clone();
                // Handler threads are not joined: a `watch` may outlive the
                // drain, and the process exit after `serve` returns reaps
                // them. They hold only Arc'd state.
                thread::spawn(move || {
                    let _ = serve_connection(stream, &registry, &spool);
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(25));
            }
            Err(e) => break Err(e),
        }
    };

    runner_thread.join().expect("runner thread never panics");
    std::fs::remove_file(&socket).ok();
    eprintln!("service: drained");
    result
}

/// One connection: read request frames, answer until the peer hangs up.
fn serve_connection(mut stream: UnixStream, registry: &Registry, spool: &Spool) -> io::Result<()> {
    loop {
        let Some(line) = read_frame(&mut stream)? else {
            return Ok(());
        };
        let reply = match Request::parse(&line) {
            Err(e) => format!("err {e}"),
            Ok(Request::Submit(spec_line)) => match submit(&spec_line, registry, spool) {
                Ok(reply) => reply,
                Err(e) => format!("err {e}"),
            },
            Ok(Request::Status) => format!("ok {}", registry.status_report()),
            Ok(Request::Cancel(id)) => match registry.cancel(&id) {
                Ok(state) => format!("ok {id} {state}"),
                Err(e) => format!("err {e}"),
            },
            Ok(Request::Drain) => {
                registry.drain();
                "ok draining".to_string()
            }
            Ok(Request::Watch(id)) => {
                watch(&mut stream, registry, &id)?;
                continue;
            }
        };
        write_frame(&mut stream, &reply)?;
    }
}

/// `submit`: spool first, enqueue second. The spec hits disk *before* the
/// queue so there is no accepted-but-unspooled window a crash could lose;
/// if the registry then refuses (drain raced us) the unused spool entry is
/// retired again, unless a journal shows the id was already live.
fn submit(spec_line: &str, registry: &Registry, spool: &Spool) -> Result<String, String> {
    let spec = SubmitSpec::parse(spec_line)?;
    let id = spec.submission_id()?;
    // Known ids answer from the registry without touching the spool —
    // resubmitting a completed spec must not plant a spool entry that the
    // next start's scan would re-run.
    if let Some(state) = registry.state_of(&id) {
        return Ok(format!("ok {id} {state}"));
    }
    spool
        .write_spec(&id, &spec)
        .map_err(|e| format!("spool: {e}"))?;
    match registry.submit(&id, spec) {
        Ok(SubmitOutcome::Enqueued) => Ok(format!("ok {id} queued")),
        Ok(SubmitOutcome::AlreadyKnown(state)) => Ok(format!("ok {id} {state}")),
        Err(e) => {
            if !spool.journal_path(&id).exists() {
                spool.remove(&id).ok();
            }
            Err(e)
        }
    }
}

/// `watch`: stream one `event` frame per observed state change, then one
/// `done` frame when the submission reaches a terminal state.
fn watch(stream: &mut UnixStream, registry: &Registry, id: &str) -> io::Result<()> {
    let Some(mut state) = registry.state_of(id) else {
        return write_frame(stream, &format!("err unknown submission `{id}`"));
    };
    write_frame(stream, &format!("event {id} {state}"))?;
    let mut generation = registry.generation();
    while !state.is_terminal() {
        generation = registry.wait_change(generation, Duration::from_millis(250));
        match registry.state_of(id) {
            Some(next) if next != state => {
                state = next;
                write_frame(stream, &format!("event {id} {state}"))?;
            }
            Some(_) => {}
            None => break,
        }
    }
    write_frame(stream, &format!("done {id} {state}"))
}
