//! The runner thread: claims submissions, executes them as supervised,
//! journaled, deadline-bounded sweeps, and lands their rows in the
//! warehouse.
//!
//! # Execution shape
//!
//! A submission's pending jobs are grouped into fused groups (one group per
//! trace stream) and executed in *chunks* of at most `workers` groups
//! through [`ExperimentEngine::run_supervised_detached`] — the detached
//! path so a per-attempt wall-clock deadline can abandon a wedged attempt.
//! The closure handed to the engine is side-effect-free (it only measures);
//! journaling happens in this thread after each chunk returns, and only for
//! results the supervisor *accepted*. An abandoned deadline-overrun thread
//! can therefore never race a journal append: its late result is simply
//! dropped. The crash window is one chunk of re-computable work.
//!
//! Members of failed groups re-run solo under the submission's full retry
//! policy (seeded backoff, deadline); jobs whose every attempt fails are
//! journaled as typed failure entries, exactly like the library's
//! `run_supervised_journaled`.
//!
//! # The crash-resume and byte-identity invariant
//!
//! The warehouse is written once, at completion: records are built in job
//! order from the (replayed + freshly measured) results, appended in one
//! batch, and saved through the warehouse's atomic temp-fsync-rename path;
//! only after that save returns is the spool entry removed. A `kill -9` at
//! any earlier point leaves the journal behind, the next start's scan
//! re-enqueues the submission, replayed entries fill the same slots the
//! crashed run had journaled, and the final batch is identical row for row
//! — so the saved warehouse is byte-identical to an uninterrupted run's.

use crate::spool::Spool;
use crate::state::{Claim, Registry, SubmissionState};
use rnuca_sim::{
    failed_record, group_indices, result_from, run_group_forked, sweep_record, ExperimentEngine,
    JobFailure, JournalEntry, JournalFailure, JournalReplay, LlcDesign, ScenarioJob,
    ScenarioResult, SnapshotArena, SweepJournal,
};
use rnuca_types::RetryPolicy;
use rnuca_warehouse::{RunRecord, Warehouse};
use rnuca_workloads::{TraceArena, TraceKey, WorkloadSpec};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// How a claimed submission's execution ended.
#[derive(Debug)]
enum Outcome {
    /// Every job has an outcome and the warehouse save returned.
    Completed {
        /// Jobs with a result row.
        completed: usize,
        /// Jobs quarantined with a failed row.
        failed: usize,
    },
    /// The stop flag (drain or cancel) interrupted the run between chunks;
    /// the journal holds everything finished so far.
    Stopped,
}

/// The service's single worker: owns the engine and the arenas, drains the
/// registry queue until a drain is requested.
#[derive(Debug)]
pub struct Runner {
    registry: Arc<Registry>,
    spool: Spool,
    store_path: PathBuf,
    workers: usize,
}

impl Runner {
    /// A runner executing with `workers` engine threads, journaling into
    /// `spool` and landing rows at `store_path`.
    pub fn new(registry: Arc<Registry>, spool: Spool, store_path: PathBuf, workers: usize) -> Self {
        Runner {
            registry,
            spool,
            store_path,
            workers: workers.max(1),
        }
    }

    /// Claims and executes submissions until the registry drains. Never
    /// panics outward: a panic inside a submission (spec bugs, arena
    /// poisoning) marks that submission failed and the loop continues.
    pub fn run(&self) {
        let engine = ExperimentEngine::with_workers(self.workers);
        let arena = Arc::new(TraceArena::new());
        let snapshots = Arc::new(SnapshotArena::new());
        while let Some(claim) = self.registry.claim() {
            self.registry.set_state(
                &claim.id,
                SubmissionState::Running {
                    done_groups: 0,
                    total_groups: 0,
                },
            );
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                self.run_submission(&engine, &arena, &snapshots, &claim)
            }));
            match outcome {
                Ok(Ok(Outcome::Completed { completed, failed })) => self
                    .registry
                    .set_state(&claim.id, SubmissionState::Completed { completed, failed }),
                Ok(Ok(Outcome::Stopped)) => {
                    if claim.cancelled.load(Ordering::SeqCst) {
                        // Cancelled: the submission's work is discarded.
                        self.spool.remove(&claim.id).ok();
                        self.registry
                            .set_state(&claim.id, SubmissionState::Cancelled);
                    }
                    // Drained: leave the journal and spec in the spool; the
                    // next start's scan re-enqueues and resumes it.
                }
                Ok(Err(message)) => self
                    .registry
                    .set_state(&claim.id, SubmissionState::Failed(message)),
                Err(payload) => {
                    let text = payload
                        .downcast_ref::<String>()
                        .map(String::as_str)
                        .or_else(|| payload.downcast_ref::<&str>().copied())
                        .unwrap_or("non-string panic");
                    self.registry
                        .set_state(&claim.id, SubmissionState::Failed(format!("panic: {text}")));
                }
            }
        }
    }

    fn run_submission(
        &self,
        engine: &ExperimentEngine,
        arena: &Arc<TraceArena>,
        snapshots: &Arc<SnapshotArena>,
        claim: &Claim,
    ) -> Result<Outcome, String> {
        let matrix = claim.spec.to_matrix()?;
        let jobs = matrix.jobs().map_err(|e| e.to_string())?;
        let cfg = matrix.cfg;
        let fingerprint = matrix.fingerprint();
        let policy = claim.spec.policy();

        // Create the journal, or resume the one a previous run (or a crash)
        // left behind. The spec line fully determines the matrix, and the id
        // is the fingerprint, so a mismatch here means spool tampering — a
        // hard error, never a silent re-run.
        let journal_path = self.spool.journal_path(&claim.id);
        let (journal, journaled) = if journal_path.exists() {
            let replay = JournalReplay::load(&journal_path).map_err(|e| format!("journal: {e}"))?;
            if replay.fingerprint != fingerprint {
                return Err(format!(
                    "journal fingerprint {:016x} does not match the spec's matrix {:016x}",
                    replay.fingerprint, fingerprint
                ));
            }
            if replay.jobs as usize != jobs.len() {
                return Err(format!(
                    "journal covers {} jobs, the spec's matrix has {}",
                    replay.jobs,
                    jobs.len()
                ));
            }
            let journal = SweepJournal::resume(&journal_path, &replay)
                .map_err(|e| format!("journal: {e}"))?;
            (journal, replay.entries)
        } else {
            let journal = SweepJournal::create(&journal_path, fingerprint, jobs.len() as u64)
                .map_err(|e| format!("journal: {e}"))?;
            (journal, vec![None; jobs.len()])
        };

        // Scatter replayed entries: completed jobs become results, failure
        // entries stay quarantined (resume never re-crashes on them), and
        // only entry-less jobs run.
        let mut results: Vec<Option<Result<ScenarioResult, JobFailure>>> =
            jobs.iter().map(|_| None).collect();
        let mut pending: Vec<usize> = Vec::new();
        for (i, entry) in journaled.into_iter().enumerate() {
            match entry {
                Some(JournalEntry::Run(run)) => results[i] = Some(Ok(result_from(&jobs[i], run))),
                Some(JournalEntry::Failed(f)) => {
                    results[i] = Some(Err(JobFailure {
                        job: i,
                        attempts: f.attempts,
                        cause: f.cause,
                        message: f.message,
                    }));
                }
                None => pending.push(i),
            }
        }

        if !pending.is_empty() {
            if claim.stop.load(Ordering::SeqCst) {
                return Ok(Outcome::Stopped);
            }
            matrix.prepare_arenas(engine, arena, snapshots, &jobs, &pending);
            let groups = group_indices(&pending, |&i| TraceKey::new(&jobs[i].workload, cfg.seed));
            let total_groups = groups.len();
            let mut done_groups = 0;
            self.registry.set_state(
                &claim.id,
                SubmissionState::Running {
                    done_groups,
                    total_groups,
                },
            );

            // Group pass: one shot per group (no retries — a failed group's
            // members get their retry budget solo), but under the spec's
            // deadline so a wedged group is abandoned, not waited on.
            let group_policy = match policy.deadline {
                Some(d) => RetryPolicy::immediate(0).with_deadline(d),
                None => RetryPolicy::immediate(0),
            };
            let member_sets: Vec<Vec<(usize, ScenarioJob)>> = groups
                .iter()
                .map(|(_, idxs)| {
                    idxs.iter()
                        .map(|&p| (pending[p], jobs[pending[p]].clone()))
                        .collect()
                })
                .collect();
            let mut solo: Vec<usize> = Vec::new();
            for chunk in member_sets.chunks(self.workers) {
                if claim.stop.load(Ordering::SeqCst) {
                    return Ok(Outcome::Stopped);
                }
                let items: Arc<Vec<Vec<(usize, ScenarioJob)>>> = Arc::new(chunk.to_vec());
                let run = {
                    let arena = Arc::clone(arena);
                    let snapshots = Arc::clone(snapshots);
                    Arc::new(move |_: usize, members: &Vec<(usize, ScenarioJob)>| {
                        let pairs: Vec<(&WorkloadSpec, LlcDesign)> = members
                            .iter()
                            .map(|(_, job)| (&job.workload, job.design))
                            .collect();
                        run_group_forked(&pairs, &cfg, &arena, &snapshots)
                    })
                };
                let outcomes = engine.run_supervised_detached(
                    Arc::clone(&items),
                    cfg.seed,
                    &group_policy,
                    &claim.stop,
                    run,
                );
                for (members, outcome) in items.iter().zip(outcomes) {
                    match outcome {
                        // Stop raised before the group was claimed.
                        None => {}
                        Some(Ok(runs)) => {
                            for ((job_idx, job), run) in members.iter().zip(&runs) {
                                journal
                                    .append(*job_idx, run)
                                    .map_err(|e| format!("journal append: {e}"))?;
                                results[*job_idx] = Some(Ok(result_from(job, *run)));
                            }
                            done_groups += 1;
                        }
                        Some(Err(_)) => {
                            solo.extend(members.iter().map(|(job_idx, _)| *job_idx));
                            done_groups += 1;
                        }
                    }
                }
                self.registry.set_state(
                    &claim.id,
                    SubmissionState::Running {
                        done_groups,
                        total_groups,
                    },
                );
            }

            // Solo pass: members of failed groups, under the full policy
            // (retries, seeded backoff, deadline).
            let solo_items: Vec<(usize, ScenarioJob)> =
                solo.iter().map(|&i| (i, jobs[i].clone())).collect();
            for chunk in solo_items.chunks(self.workers) {
                if claim.stop.load(Ordering::SeqCst) {
                    return Ok(Outcome::Stopped);
                }
                let items: Arc<Vec<(usize, ScenarioJob)>> = Arc::new(chunk.to_vec());
                let run = {
                    let arena = Arc::clone(arena);
                    let snapshots = Arc::clone(snapshots);
                    Arc::new(move |_: usize, item: &(usize, ScenarioJob)| {
                        let (_, job) = item;
                        let members = [(&job.workload, job.design)];
                        run_group_forked(&members, &cfg, &arena, &snapshots)
                            .pop()
                            .expect("a one-member group yields one run")
                    })
                };
                let outcomes = engine.run_supervised_detached(
                    Arc::clone(&items),
                    cfg.seed,
                    &policy,
                    &claim.stop,
                    run,
                );
                for ((job_idx, job), outcome) in items.iter().zip(outcomes) {
                    match outcome {
                        None => {}
                        Some(Ok(run)) => {
                            journal
                                .append(*job_idx, &run)
                                .map_err(|e| format!("journal append: {e}"))?;
                            results[*job_idx] = Some(Ok(result_from(job, run)));
                        }
                        Some(Err(failure)) => {
                            journal
                                .append_failure(
                                    *job_idx,
                                    &JournalFailure {
                                        attempts: failure.attempts,
                                        cause: failure.cause,
                                        message: failure.message.clone(),
                                    },
                                )
                                .map_err(|e| format!("journal append: {e}"))?;
                            results[*job_idx] = Some(Err(JobFailure {
                                job: *job_idx,
                                ..failure
                            }));
                        }
                    }
                }
            }
        }

        // A stop between a chunk's launch and its last member leaves
        // unclaimed slots; only a fully-resolved sweep reaches the store.
        if results.iter().any(Option::is_none) {
            return Ok(Outcome::Stopped);
        }

        // Completion: one batch of rows in job order, one atomic save, and
        // only then is the spool entry retired.
        let mut completed = 0;
        let mut failed = 0;
        let records: Vec<RunRecord> = jobs
            .iter()
            .zip(&results)
            .map(|(job, slot)| match slot.as_ref().expect("checked above") {
                Ok(result) => {
                    completed += 1;
                    sweep_record(&cfg, &job.workload, result)
                }
                Err(failure) => {
                    failed += 1;
                    failed_record(&cfg, job, failure)
                }
            })
            .collect();
        let store = Warehouse::open(&self.store_path).map_err(|e| format!("warehouse: {e}"))?;
        store.append_all(&records);
        store
            .save(&self.store_path)
            .map_err(|e| format!("warehouse save: {e}"))?;
        drop(journal);
        self.spool
            .remove(&claim.id)
            .map_err(|e| format!("spool cleanup: {e}"))?;
        Ok(Outcome::Completed { completed, failed })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SubmitSpec;
    use std::thread;
    use std::time::Duration;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rnuca-runner-{}-{tag}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn wait_terminal(registry: &Registry, id: &str) -> SubmissionState {
        let mut generation = registry.generation();
        loop {
            if let Some(state) = registry.state_of(id) {
                if state.is_terminal() {
                    return state;
                }
            }
            generation = registry.wait_change(generation, Duration::from_millis(200));
        }
    }

    #[test]
    fn a_submission_runs_to_completion_and_retires_its_spool_entry() {
        let root = temp_dir("complete");
        let spool = Spool::new(&root.join("spool")).unwrap();
        let store_path = root.join("warehouse.bin");
        let registry = Arc::new(Registry::new());
        let spec = SubmitSpec {
            workloads: vec!["oltp-db2".to_string()],
            designs: vec!["S".to_string()],
            core_counts: vec![16],
            ..SubmitSpec::default()
        };
        let id = spec.submission_id().unwrap();
        spool.write_spec(&id, &spec).unwrap();
        registry.submit(&id, spec).unwrap();

        let runner = Runner::new(registry.clone(), spool.clone(), store_path.clone(), 2);
        let handle = {
            let registry = registry.clone();
            let worker = thread::spawn(move || runner.run());
            let state = wait_terminal(&registry, &id);
            registry.drain();
            (worker, state)
        };
        handle.0.join().unwrap();
        assert_eq!(
            handle.1,
            SubmissionState::Completed {
                completed: 1,
                failed: 0
            }
        );
        assert!(!spool.dir(&id).exists(), "completed submissions retire");
        let store = Warehouse::open(&store_path).unwrap();
        let out = store.query("kind=sweep show workload, design").unwrap();
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.rows[0][0].to_string(), "OLTP DB2");
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn an_invalid_spec_fails_the_submission_not_the_runner() {
        let root = temp_dir("badspec");
        let spool = Spool::new(&root.join("spool")).unwrap();
        let registry = Arc::new(Registry::new());
        let spec = SubmitSpec {
            config: "galactic".to_string(),
            ..SubmitSpec::default()
        };
        // The id cannot come from the (invalid) matrix; any id works here.
        registry.submit("sbad", spec).unwrap();
        let runner = Runner::new(
            registry.clone(),
            spool.clone(),
            root.join("warehouse.bin"),
            1,
        );
        let worker = thread::spawn(move || runner.run());
        let state = wait_terminal(&registry, "sbad");
        match state {
            SubmissionState::Failed(msg) => assert!(msg.contains("galactic"), "got: {msg}"),
            other => panic!("expected failure, got {other}"),
        }
        registry.drain();
        worker.join().unwrap();
        std::fs::remove_dir_all(&root).ok();
    }
}
