//! A thin synchronous client for the service protocol — what the `figures`
//! CLI (and the tests) speak through.

use crate::protocol::{read_frame, write_frame, Request};
use std::io;
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::{Duration, Instant};

/// One connection to a running service.
#[derive(Debug)]
pub struct ServiceClient {
    stream: UnixStream,
}

impl ServiceClient {
    /// Connects to the service socket.
    ///
    /// # Errors
    ///
    /// No service is listening there.
    pub fn connect(socket: &Path) -> io::Result<ServiceClient> {
        Ok(ServiceClient {
            stream: UnixStream::connect(socket)?,
        })
    }

    /// Connects, retrying until `timeout` — for callers that just started
    /// the service and race its bind.
    ///
    /// # Errors
    ///
    /// The last connect error once the timeout expires.
    pub fn connect_with_retry(socket: &Path, timeout: Duration) -> io::Result<ServiceClient> {
        let deadline = Instant::now() + timeout;
        loop {
            match ServiceClient::connect(socket) {
                Ok(client) => return Ok(client),
                Err(e) if Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(50)),
            }
        }
    }

    /// Sends one request and returns its single reply frame (`ok ...` or
    /// `err ...`). Not for `watch` — use [`ServiceClient::watch`].
    ///
    /// # Errors
    ///
    /// Transport errors, or the service closing the connection without
    /// replying.
    pub fn request(&mut self, req: &Request) -> io::Result<String> {
        write_frame(&mut self.stream, &req.encode())?;
        read_frame(&mut self.stream)?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "service closed the connection before replying",
            )
        })
    }

    /// Subscribes to a submission's progress: `on_event` sees every `event`
    /// frame; the final `done` (or immediate `err`) frame is returned.
    ///
    /// # Errors
    ///
    /// Transport errors, or the stream ending before `done`.
    pub fn watch(&mut self, id: &str, mut on_event: impl FnMut(&str)) -> io::Result<String> {
        write_frame(&mut self.stream, &Request::Watch(id.to_string()).encode())?;
        loop {
            let frame = read_frame(&mut self.stream)?.ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "service closed the connection mid-watch",
                )
            })?;
            if frame.starts_with("done ") || frame.starts_with("err ") {
                return Ok(frame);
            }
            on_event(&frame);
        }
    }
}
