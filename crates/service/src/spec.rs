//! Submission specs: the `submit` verb's payload and the spool's on-disk
//! record of a submission.
//!
//! A spec is one `|`-separated line of `key=value` fields describing a
//! [`ScenarioMatrix`] plus the retry policy supervising it:
//!
//! ```text
//! v1|config=smoke|seed=-|workloads=oltp-db2,mix|designs=S,R|cores=16,32
//!   |slices=|clusters=|retries=1|deadline_ms=0
//! ```
//!
//! The encoding is *canonical* — [`SubmitSpec::encode`] always emits every
//! field in this order — so the same line doubles as the spool's spec file
//! and as input to the submission id (which is derived from the matrix
//! fingerprint, making resubmission of an identical spec idempotent).

use rnuca_sim::{AsrPolicy, ExperimentConfig, LlcDesign, ScenarioMatrix};
use rnuca_types::retry::{BackoffConfig, RetryPolicy};
use rnuca_workloads::WorkloadSpec;
use std::time::Duration;

/// A parsed submission: the matrix axes plus the supervision policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubmitSpec {
    /// Run-length preset: `smoke`, `quick`, or `full`.
    pub config: String,
    /// Trace seed override (`None` keeps the preset's seed).
    pub seed: Option<u64>,
    /// Workload slugs (see [`workload_by_slug`]); empty means the full
    /// evaluation suite.
    pub workloads: Vec<String>,
    /// Design letters (`P`/`A`/`S`/`R`/`I`); empty means shared + R-NUCA.
    pub designs: Vec<String>,
    /// Core counts to sweep (empty: each workload's preset count).
    pub core_counts: Vec<usize>,
    /// L2 slice capacities in KB to sweep (empty: preset capacity).
    pub slice_kb: Vec<usize>,
    /// R-NUCA instruction-cluster sizes to sweep (empty: the default).
    pub clusters: Vec<usize>,
    /// Solo retries per quarantined member.
    pub retries: u32,
    /// Per-attempt wall-clock deadline in milliseconds (0 = unbounded).
    pub deadline_ms: u64,
}

impl Default for SubmitSpec {
    fn default() -> Self {
        SubmitSpec {
            config: "smoke".to_string(),
            seed: None,
            workloads: Vec::new(),
            designs: Vec::new(),
            core_counts: Vec::new(),
            slice_kb: Vec::new(),
            clusters: Vec::new(),
            retries: 1,
            deadline_ms: 0,
        }
    }
}

/// Resolves a workload slug to its preset spec.
///
/// Slugs are the preset names lower-cased with spaces as dashes:
/// `oltp-db2`, `oltp-oracle`, `apache`, `dss-qry6`, `dss-qry8`,
/// `dss-qry13`, `em3d`, `mix`.
pub fn workload_by_slug(slug: &str) -> Option<WorkloadSpec> {
    match slug {
        "oltp-db2" => Some(WorkloadSpec::oltp_db2()),
        "oltp-oracle" => Some(WorkloadSpec::oltp_oracle()),
        "apache" => Some(WorkloadSpec::apache()),
        "dss-qry6" => Some(WorkloadSpec::dss_qry6()),
        "dss-qry8" => Some(WorkloadSpec::dss_qry8()),
        "dss-qry13" => Some(WorkloadSpec::dss_qry13()),
        "em3d" => Some(WorkloadSpec::em3d()),
        "mix" => Some(WorkloadSpec::mix()),
        _ => None,
    }
}

/// Resolves a design letter to its design (the paper's P/A/S/R/I).
pub fn design_by_letter(letter: &str) -> Option<LlcDesign> {
    match letter {
        "P" => Some(LlcDesign::Private),
        "A" => Some(LlcDesign::Asr {
            policy: AsrPolicy::Adaptive,
        }),
        "S" => Some(LlcDesign::Shared),
        "R" => Some(LlcDesign::rnuca_default()),
        "I" => Some(LlcDesign::Ideal),
        _ => None,
    }
}

fn parse_list(value: &str) -> Vec<String> {
    value
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect()
}

fn parse_usize_list(key: &str, value: &str) -> Result<Vec<usize>, String> {
    parse_list(value)
        .iter()
        .map(|v| {
            v.parse::<usize>()
                .map_err(|_| format!("{key}: `{v}` is not a number"))
        })
        .collect()
}

fn join<T: ToString>(values: &[T]) -> String {
    values
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(",")
}

impl SubmitSpec {
    /// The canonical spec line (every field, fixed order).
    pub fn encode(&self) -> String {
        format!(
            "v1|config={}|seed={}|workloads={}|designs={}|cores={}|slices={}|clusters={}\
             |retries={}|deadline_ms={}",
            self.config,
            self.seed.map_or("-".to_string(), |s| s.to_string()),
            self.workloads.join(","),
            self.designs.join(","),
            join(&self.core_counts),
            join(&self.slice_kb),
            join(&self.clusters),
            self.retries,
            self.deadline_ms,
        )
    }

    /// Parses a spec line (the inverse of [`SubmitSpec::encode`]; unknown
    /// keys are rejected so typos fail loudly instead of silently running a
    /// different sweep).
    ///
    /// # Errors
    ///
    /// A human-readable message naming the offending field.
    pub fn parse(line: &str) -> Result<SubmitSpec, String> {
        let mut fields = line.trim().split('|');
        match fields.next() {
            Some("v1") => {}
            Some(other) => return Err(format!("unknown spec version `{other}` (expected v1)")),
            None => return Err("empty spec".to_string()),
        }
        let mut spec = SubmitSpec {
            retries: 0,
            ..SubmitSpec::default()
        };
        for field in fields {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| format!("malformed field `{field}` (expected key=value)"))?;
            match key {
                "config" => spec.config = value.to_string(),
                "seed" if value == "-" => spec.seed = None,
                "seed" => {
                    spec.seed = Some(
                        value
                            .parse()
                            .map_err(|_| format!("seed: `{value}` is not a number"))?,
                    )
                }
                "workloads" => spec.workloads = parse_list(value),
                "designs" => spec.designs = parse_list(value),
                "cores" => spec.core_counts = parse_usize_list(key, value)?,
                "slices" => spec.slice_kb = parse_usize_list(key, value)?,
                "clusters" => spec.clusters = parse_usize_list(key, value)?,
                "retries" => {
                    spec.retries = value
                        .parse()
                        .map_err(|_| format!("retries: `{value}` is not a number"))?
                }
                "deadline_ms" => {
                    spec.deadline_ms = value
                        .parse()
                        .map_err(|_| format!("deadline_ms: `{value}` is not a number"))?
                }
                other => return Err(format!("unknown spec field `{other}`")),
            }
        }
        Ok(spec)
    }

    /// Builds the scenario matrix this spec describes.
    ///
    /// # Errors
    ///
    /// An unknown config label, workload slug, or design letter.
    pub fn to_matrix(&self) -> Result<ScenarioMatrix, String> {
        let mut cfg = match self.config.as_str() {
            "smoke" => ExperimentConfig::smoke(),
            "quick" => ExperimentConfig::quick(),
            "full" => ExperimentConfig::full(),
            other => return Err(format!("unknown config `{other}` (smoke/quick/full)")),
        };
        if let Some(seed) = self.seed {
            cfg.seed = seed;
        }
        let mut matrix = ScenarioMatrix::new(cfg);
        matrix.workloads = if self.workloads.is_empty() {
            WorkloadSpec::evaluation_suite()
        } else {
            self.workloads
                .iter()
                .map(|slug| {
                    workload_by_slug(slug).ok_or_else(|| format!("unknown workload `{slug}`"))
                })
                .collect::<Result<_, _>>()?
        };
        matrix.designs = if self.designs.is_empty() {
            vec![LlcDesign::Shared, LlcDesign::rnuca_default()]
        } else {
            self.designs
                .iter()
                .map(|l| design_by_letter(l).ok_or_else(|| format!("unknown design `{l}`")))
                .collect::<Result<_, _>>()?
        };
        matrix.core_counts = self.core_counts.clone();
        matrix.slice_capacities_kb = self.slice_kb.clone();
        matrix.cluster_sizes = self.clusters.clone();
        Ok(matrix)
    }

    /// The retry policy supervising this submission's solo re-runs:
    /// `retries` extra attempts, the service's seeded backoff, and the
    /// spec's per-attempt deadline when one is set.
    pub fn policy(&self) -> RetryPolicy {
        let policy =
            RetryPolicy::immediate(self.retries).with_backoff(BackoffConfig::default_service());
        match self.deadline_ms {
            0 => policy,
            ms => policy.with_deadline(Duration::from_millis(ms)),
        }
    }

    /// The submission id: the matrix fingerprint, rendered. Identical specs
    /// (and only identical specs) share an id, so resubmitting a sweep that
    /// is already queued or running is a no-op rather than a duplicate.
    ///
    /// # Errors
    ///
    /// Same as [`SubmitSpec::to_matrix`].
    pub fn submission_id(&self) -> Result<String, String> {
        Ok(format!("s{:016x}", self.to_matrix()?.fingerprint()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_parse_roundtrips_and_is_canonical() {
        let spec = SubmitSpec {
            config: "quick".to_string(),
            seed: Some(7),
            workloads: vec!["oltp-db2".to_string(), "mix".to_string()],
            designs: vec!["S".to_string(), "R".to_string()],
            core_counts: vec![16, 32],
            slice_kb: vec![512],
            clusters: vec![2, 4],
            retries: 3,
            deadline_ms: 120_000,
        };
        let line = spec.encode();
        let parsed = SubmitSpec::parse(&line).unwrap();
        assert_eq!(parsed, spec);
        assert_eq!(parsed.encode(), line, "encode must be canonical");
    }

    #[test]
    fn defaults_parse_from_a_minimal_line() {
        let spec = SubmitSpec::parse("v1|config=smoke").unwrap();
        assert_eq!(spec.config, "smoke");
        assert!(spec.workloads.is_empty());
        assert_eq!(spec.retries, 0);
        assert_eq!(spec.deadline_ms, 0);
        assert!(spec.policy().deadline.is_none());
    }

    #[test]
    fn bad_fields_fail_loudly() {
        assert!(SubmitSpec::parse("v2|config=smoke").is_err());
        assert!(SubmitSpec::parse("v1|confg=smoke").is_err());
        assert!(SubmitSpec::parse("v1|cores=abc").is_err());
        assert!(SubmitSpec::parse("v1|seed=x").is_err());
        let spec = SubmitSpec {
            workloads: vec!["no-such-workload".to_string()],
            ..SubmitSpec::default()
        };
        assert!(spec.to_matrix().is_err());
        let spec = SubmitSpec {
            designs: vec!["Z".to_string()],
            ..SubmitSpec::default()
        };
        assert!(spec.to_matrix().is_err());
    }

    #[test]
    fn identical_specs_share_a_submission_id() {
        let a = SubmitSpec::default();
        let b = SubmitSpec::parse(&a.encode()).unwrap();
        assert_eq!(a.submission_id().unwrap(), b.submission_id().unwrap());
        let c = SubmitSpec {
            seed: Some(99),
            ..SubmitSpec::default()
        };
        assert_ne!(a.submission_id().unwrap(), c.submission_id().unwrap());
    }

    #[test]
    fn every_letter_and_slug_resolves() {
        for l in ["P", "A", "S", "R", "I"] {
            assert!(design_by_letter(l).is_some(), "letter {l}");
        }
        for w in WorkloadSpec::evaluation_suite() {
            let slug = w.name.to_lowercase().replace(' ', "-");
            let resolved =
                workload_by_slug(&slug).unwrap_or_else(|| panic!("slug {slug} does not resolve"));
            assert_eq!(resolved.name, w.name);
        }
    }
}
