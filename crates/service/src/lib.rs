//! Resident experiment service: a supervised job server over a Unix-domain
//! socket with per-job deadlines, seeded retry backoff, graceful drain, and
//! crash-resume.
//!
//! The library crates can already run a sweep crash-safely in one process
//! (`rnuca-sim`'s journaled sweeps); this crate makes that a *service*: a
//! long-lived process that accepts sweep submissions over a socket, runs
//! them one at a time under supervision, streams progress to watchers, and
//! — the load-bearing property — survives being killed at any instant.
//! A `kill -9` mid-sweep followed by a restart yields a warehouse
//! byte-identical to a run that was never interrupted.
//!
//! # Pieces
//!
//! | module | role |
//! |---|---|
//! | [`protocol`] | framed wire protocol (the rustdoc there is the spec) |
//! | [`spec`] | `SubmitSpec`: the submit payload → `ScenarioMatrix` + policy |
//! | [`spool`] | on-disk submission state; the crash-resume ground truth |
//! | [`state`] | in-memory registry: queue, lifecycle states, watch wakeups |
//! | [`runner`] | the worker: chunked supervised execution + journaling |
//! | [`server`] | `serve()`: acceptor, handlers, drain choreography |
//! | [`client`] | `ServiceClient`: what the CLI's thin verbs speak |
//!
//! # Quick start
//!
//! ```no_run
//! use rnuca_service::{serve, ServiceConfig};
//! serve(&ServiceConfig {
//!     spool: "bench/spool".into(),
//!     store: "bench/warehouse.bin".into(),
//!     workers: 4,
//! })
//! .expect("service runs until drained");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod client;
pub mod protocol;
pub mod runner;
pub mod server;
pub mod spec;
pub mod spool;
pub mod state;

pub use client::ServiceClient;
pub use protocol::{read_frame, write_frame, Request, MAX_FRAME};
pub use runner::Runner;
pub use server::{serve, ServiceConfig};
pub use spec::SubmitSpec;
pub use spool::Spool;
pub use state::{Claim, Registry, SubmissionState, SubmitOutcome};
