//! The service wire protocol: length-prefixed UTF-8 line frames over a
//! Unix-domain socket.
//!
//! # Framing
//!
//! Every message — request or response — is one *frame*:
//!
//! ```text
//! frame := len u32 (little-endian) | payload (len bytes, UTF-8)
//! ```
//!
//! The payload is a single logical line of text (it may contain embedded
//! newlines — a `status` response carries one line per submission inside
//! one frame). Frames are capped at [`MAX_FRAME`] bytes; a peer announcing
//! a larger frame is protocol-broken and the connection is dropped rather
//! than allocating unbounded memory from a hostile or corrupt length.
//!
//! # Requests
//!
//! One frame per request, first token selects the verb:
//!
//! ```text
//! submit <spec>     queue a sweep; <spec> is a SubmitSpec line (spec.rs)
//! status            one-frame report over every known submission
//! watch <id>        subscribe to a submission's progress events
//! cancel <id>       stop a queued or running submission and discard it
//! drain             finish in-flight work, journal it, refuse new
//!                   submissions, and shut the service down
//! ```
//!
//! # Responses
//!
//! Every request is answered by at least one frame whose first token is the
//! outcome:
//!
//! * `ok <body>` — the request succeeded; `<body>` is verb-specific
//!   (`submit` echoes the submission id, `status` carries the report).
//! * `err <message>` — the request failed; the connection stays usable.
//! * `event <id> <detail>` — only while a `watch` is active: one frame per
//!   observed state change (queue position, per-chunk group progress,
//!   terminal state).
//! * `done <id> <state>` — terminates a `watch` stream; after it the
//!   connection returns to request/response.
//!
//! The protocol is deliberately synchronous per connection: a client sends
//! one request and reads frames until `ok`/`err` (or, for `watch`, until
//! `done`). Concurrency comes from opening more connections, each served by
//! its own thread.

use std::io::{self, Read, Write};

/// Upper bound on a frame payload. Requests and responses are short text
/// lines; even a `status` report over hundreds of submissions fits with
/// orders of magnitude to spare. A length above this means the peer is not
/// speaking this protocol (or the stream is corrupt), and is treated as a
/// connection error instead of an allocation request.
pub const MAX_FRAME: usize = 1 << 20;

/// Writes one frame: little-endian `u32` payload length, then the payload.
///
/// # Errors
///
/// The payload exceeding [`MAX_FRAME`] (an `InvalidInput` error — the
/// frame is never partially written), or any underlying write error.
pub fn write_frame<W: Write>(w: &mut W, line: &str) -> io::Result<()> {
    let payload = line.as_bytes();
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "frame of {} bytes exceeds the {MAX_FRAME}-byte cap",
                payload.len()
            ),
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame, returning `None` on a clean end-of-stream (the peer
/// closed the connection between frames).
///
/// # Errors
///
/// A truncated frame (EOF mid-length or mid-payload), a length above
/// [`MAX_FRAME`], a payload that is not UTF-8, or any underlying read
/// error.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<String>> {
    let mut len_bytes = [0u8; 4];
    match r.read_exact(&mut len_bytes) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("peer announced a {len}-byte frame (cap {MAX_FRAME})"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    String::from_utf8(payload)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("non-UTF-8 frame: {e}")))
}

/// A parsed client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Queue a sweep described by the spec line (see `spec.rs`).
    Submit(String),
    /// Report every known submission.
    Status,
    /// Stream progress events for one submission.
    Watch(String),
    /// Stop (and discard) one submission.
    Cancel(String),
    /// Graceful shutdown: finish in-flight groups, journal, exit.
    Drain,
}

impl Request {
    /// Parses one request frame.
    ///
    /// # Errors
    ///
    /// A human-readable message for an unknown verb or missing operand —
    /// sent back to the client verbatim as an `err` frame.
    pub fn parse(line: &str) -> Result<Request, String> {
        let line = line.trim();
        let (verb, rest) = match line.split_once(' ') {
            Some((v, r)) => (v, r.trim()),
            None => (line, ""),
        };
        match verb {
            "submit" if !rest.is_empty() => Ok(Request::Submit(rest.to_string())),
            "submit" => Err("submit needs a spec: `submit <spec>`".to_string()),
            "status" => Ok(Request::Status),
            "watch" if !rest.is_empty() => Ok(Request::Watch(rest.to_string())),
            "watch" => Err("watch needs a submission id: `watch <id>`".to_string()),
            "cancel" if !rest.is_empty() => Ok(Request::Cancel(rest.to_string())),
            "cancel" => Err("cancel needs a submission id: `cancel <id>`".to_string()),
            "drain" => Ok(Request::Drain),
            other => Err(format!(
                "unknown request `{other}` (expected submit/status/watch/cancel/drain)"
            )),
        }
    }

    /// The request as the line a client sends (the inverse of
    /// [`Request::parse`]).
    pub fn encode(&self) -> String {
        match self {
            Request::Submit(spec) => format!("submit {spec}"),
            Request::Status => "status".to_string(),
            Request::Watch(id) => format!("watch {id}"),
            Request::Cancel(id) => format!("cancel {id}"),
            Request::Drain => "drain".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip_through_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "submit v1|config=smoke").unwrap();
        write_frame(&mut buf, "").unwrap();
        write_frame(&mut buf, "status\nmulti line").unwrap();
        let mut r = io::Cursor::new(buf);
        assert_eq!(
            read_frame(&mut r).unwrap().as_deref(),
            Some("submit v1|config=smoke")
        );
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(""));
        assert_eq!(
            read_frame(&mut r).unwrap().as_deref(),
            Some("status\nmulti line")
        );
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF is None");
    }

    #[test]
    fn truncated_and_oversized_frames_are_errors() {
        // EOF mid-payload.
        let mut buf = Vec::new();
        write_frame(&mut buf, "status").unwrap();
        buf.truncate(buf.len() - 2);
        let mut r = io::Cursor::new(buf);
        assert!(read_frame(&mut r).is_err());

        // A hostile length is rejected before allocating.
        let mut r = io::Cursor::new((u32::MAX).to_le_bytes().to_vec());
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // Writing an oversized frame refuses up front.
        let huge = "x".repeat(MAX_FRAME + 1);
        let err = write_frame(&mut Vec::new(), &huge).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn requests_parse_and_encode_roundtrip() {
        for req in [
            Request::Submit("v1|config=smoke|workloads=mix".to_string()),
            Request::Status,
            Request::Watch("s0123".to_string()),
            Request::Cancel("s0123".to_string()),
            Request::Drain,
        ] {
            assert_eq!(Request::parse(&req.encode()).as_ref(), Ok(&req));
        }
        assert!(Request::parse("submit").is_err());
        assert!(Request::parse("watch ").is_err());
        assert!(Request::parse("reboot").is_err());
    }
}
