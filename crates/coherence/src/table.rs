//! Structure-of-arrays slot store backing the [`Directory`]'s per-block
//! entries.
//!
//! The directory is the largest randomly-probed structure of the private/ASR
//! designs: at 64 tiles it tracks ~a million blocks, and every local L2 miss,
//! store, and eviction probes it. A generic map stores each entry as a tagged
//! `(key, value)` slot — 32 bytes once the entry's sharer mask, owner, and
//! dirty flag are padded — so the probe path drags a 4-byte-per-useful-bit
//! working set through the host's caches. This table splits the entry into
//! three parallel arrays instead:
//!
//! * `keys` — 8 bytes per slot, `u64::MAX` marking an empty slot (block
//!   numbers are bounded by the 42-bit physical address space, so the
//!   sentinel can never collide with a real key);
//! * `sharers` — the 64-bit sharer mask;
//! * `owner_dirty` — the owner tile and dirty flag packed into 16 bits.
//!
//! A probe that misses — the common case for streaming workloads, where most
//! requested blocks are tracked by nobody — now touches *only* the keys
//! array, a quarter of the footprint, and eight slots share each cache line.
//! Hashing, linear probing, and backward-shift deletion mirror
//! `rnuca_types::index_map::U64Map`, whose randomized differential tests
//! pinned the algorithm down; the table adds the same operations over the
//! split layout and is itself differentially tested against a `HashMap`
//! reference below.
//!
//! [`Directory`]: crate::directory::Directory

use rnuca_types::ids::TileId;
use rnuca_types::os_hint;
use rnuca_types::{Snap, SnapReader};

/// Sentinel key marking an empty slot. Real keys are block numbers, bounded
/// well below this by the simulated physical address width.
const EMPTY_KEY: u64 = u64::MAX;

/// Fibonacci-hash multiplier (`2^64 / phi`, odd), as in `U64Map`.
const FIB_MULT: u64 = 0x9E37_79B9_7F4A_7C15;

/// Smallest slot-array size.
const MIN_SLOTS: usize = 16;

/// `owner_dirty` bit 15: the block is dirty on chip.
const OD_DIRTY: u16 = 1 << 15;
/// `owner_dirty` bit 14: the owner field is meaningful.
const OD_HAS_OWNER: u16 = 1 << 14;
/// Low bits of `owner_dirty`: the owner's tile index (0..64).
const OD_OWNER_MASK: u16 = 0x3F;

/// Index of an occupied slot; valid until the next insertion or removal.
pub(crate) type SlotIdx = usize;

/// The structure-of-arrays entry store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct EntryTable {
    keys: Vec<u64>,
    sharers: Vec<u64>,
    owner_dirty: Vec<u16>,
    len: usize,
}

impl EntryTable {
    /// A table pre-sized for `capacity` entries.
    pub(crate) fn with_capacity(capacity: usize) -> Self {
        let slots = (capacity * 8 / 7 + 1).next_power_of_two().max(MIN_SLOTS);
        Self::with_slots(slots)
    }

    fn with_slots(slots: usize) -> Self {
        let keys = alloc_hinted(slots, EMPTY_KEY);
        let sharers = alloc_hinted(slots, 0u64);
        let owner_dirty = alloc_hinted(slots, 0u16);
        EntryTable {
            keys,
            sharers,
            owner_dirty,
            len: 0,
        }
    }

    /// Number of entries stored.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    fn mask(&self) -> usize {
        self.keys.len() - 1
    }

    fn home(&self, key: u64) -> usize {
        let hash = key.wrapping_mul(FIB_MULT);
        (hash >> (64 - self.keys.len().trailing_zeros())) as usize
    }

    /// Pulls the probe chain's first keys line toward the CPU (performance
    /// hint only). The parallel value lines are deliberately not touched:
    /// most probes miss and never read them.
    #[inline]
    pub(crate) fn prefetch(&self, key: u64) {
        rnuca_types::index_map::prefetch_read(&self.keys[self.home(key)]);
    }

    /// The slot holding `key`, if present.
    #[inline]
    pub(crate) fn find(&self, key: u64) -> Option<SlotIdx> {
        debug_assert_ne!(key, EMPTY_KEY, "sentinel key cannot be stored");
        let mask = self.mask();
        let mut i = self.home(key);
        loop {
            let k = self.keys[i];
            if k == key {
                return Some(i);
            }
            if k == EMPTY_KEY {
                return None;
            }
            i = (i + 1) & mask;
        }
    }

    /// The slot for `key`, inserting an empty entry (no sharers, no owner,
    /// clean) if absent. The flag reports whether the entry was created.
    pub(crate) fn get_or_insert(&mut self, key: u64) -> (SlotIdx, bool) {
        debug_assert_ne!(key, EMPTY_KEY, "sentinel key cannot be stored");
        self.reserve_one();
        let mask = self.mask();
        let mut i = self.home(key);
        loop {
            let k = self.keys[i];
            if k == key {
                return (i, false);
            }
            if k == EMPTY_KEY {
                self.keys[i] = key;
                self.sharers[i] = 0;
                self.owner_dirty[i] = 0;
                self.len += 1;
                return (i, true);
            }
            i = (i + 1) & mask;
        }
    }

    /// Removes the entry at an occupied slot (backward-shift deletion, no
    /// tombstones), exactly as `U64Map::remove_slot` does but over the three
    /// parallel arrays.
    pub(crate) fn remove_at(&mut self, slot: SlotIdx) {
        debug_assert_ne!(self.keys[slot], EMPTY_KEY, "slot must be occupied");
        self.keys[slot] = EMPTY_KEY;
        self.len -= 1;
        let mask = self.mask();
        let mut hole = slot;
        let mut i = slot;
        loop {
            i = (i + 1) & mask;
            let k = self.keys[i];
            if k == EMPTY_KEY {
                break;
            }
            let home = self.home(k);
            let dist_from_home = i.wrapping_sub(home) & mask;
            let dist_from_hole = i.wrapping_sub(hole) & mask;
            if dist_from_home >= dist_from_hole {
                self.keys[hole] = k;
                self.sharers[hole] = self.sharers[i];
                self.owner_dirty[hole] = self.owner_dirty[i];
                self.keys[i] = EMPTY_KEY;
                hole = i;
            }
        }
    }

    /// The sharer mask stored at an occupied slot.
    #[inline]
    pub(crate) fn sharer_bits(&self, slot: SlotIdx) -> u64 {
        self.sharers[slot]
    }

    /// Replaces the sharer mask at an occupied slot.
    #[inline]
    pub(crate) fn set_sharer_bits(&mut self, slot: SlotIdx, bits: u64) {
        self.sharers[slot] = bits;
    }

    /// The owner recorded at an occupied slot.
    #[inline]
    pub(crate) fn owner(&self, slot: SlotIdx) -> Option<TileId> {
        let od = self.owner_dirty[slot];
        (od & OD_HAS_OWNER != 0).then(|| TileId::new((od & OD_OWNER_MASK) as usize))
    }

    /// Records the owner at an occupied slot, preserving the dirty flag.
    #[inline]
    pub(crate) fn set_owner(&mut self, slot: SlotIdx, owner: Option<TileId>) {
        let od = &mut self.owner_dirty[slot];
        *od &= OD_DIRTY;
        if let Some(tile) = owner {
            debug_assert!(tile.index() < 64, "owner index fits the packed field");
            *od |= OD_HAS_OWNER | tile.index() as u16;
        }
    }

    /// The dirty flag at an occupied slot.
    #[inline]
    pub(crate) fn dirty(&self, slot: SlotIdx) -> bool {
        self.owner_dirty[slot] & OD_DIRTY != 0
    }

    /// Sets the dirty flag at an occupied slot, preserving the owner.
    #[inline]
    pub(crate) fn set_dirty(&mut self, slot: SlotIdx, dirty: bool) {
        if dirty {
            self.owner_dirty[slot] |= OD_DIRTY;
        } else {
            self.owner_dirty[slot] &= !OD_DIRTY;
        }
    }

    /// Grows the arrays when one more insert would pass a 7/8 load factor.
    fn reserve_one(&mut self) {
        if (self.len + 1) * 8 <= self.keys.len() * 7 {
            return;
        }
        let mut grown = Self::with_slots(self.keys.len() * 2);
        for i in 0..self.keys.len() {
            let k = self.keys[i];
            if k == EMPTY_KEY {
                continue;
            }
            let (slot, inserted) = grown.get_or_insert(k);
            debug_assert!(inserted, "keys are unique during rehash");
            grown.sharers[slot] = self.sharers[i];
            grown.owner_dirty[slot] = self.owner_dirty[i];
        }
        *self = grown;
    }
}

impl Snap for EntryTable {
    /// Encodes the three parallel slot arrays position-for-position, probe
    /// chains included, so the decoded table is the bit-identical layout —
    /// probes, growth timing, and backward shifts all continue unchanged.
    fn encode(&self, out: &mut Vec<u8>) {
        self.keys.encode(out);
        self.sharers.encode(out);
        self.owner_dirty.encode(out);
        self.len.encode(out);
    }

    fn decode(r: &mut SnapReader<'_>) -> Self {
        let keys = rnuca_types::snap::decode_vec_hinted(r);
        let sharers = rnuca_types::snap::decode_vec_hinted(r);
        let owner_dirty = rnuca_types::snap::decode_vec_hinted(r);
        EntryTable {
            keys,
            sharers,
            owner_dirty,
            len: r.get(),
        }
    }
}

/// Allocates a slot array filled with `fill`, hinting huge-page backing for
/// the large tables (see [`os_hint::advise_huge_pages`]).
fn alloc_hinted<T: Copy>(slots: usize, fill: T) -> Vec<T> {
    let mut v: Vec<T> = Vec::with_capacity(slots);
    os_hint::advise_huge_pages(v.as_ptr(), slots * std::mem::size_of::<T>());
    v.resize(slots, fill);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::HashMap;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    struct RefEntry {
        sharers: u64,
        owner: Option<TileId>,
        dirty: bool,
    }

    #[test]
    fn insert_find_remove_roundtrip() {
        let mut t = EntryTable::with_capacity(4);
        assert_eq!(t.len(), 0);
        assert_eq!(t.find(7), None);
        let (slot, inserted) = t.get_or_insert(7);
        assert!(inserted);
        assert_eq!(t.sharer_bits(slot), 0);
        assert_eq!(t.owner(slot), None);
        assert!(!t.dirty(slot));

        t.set_sharer_bits(slot, 0b1010);
        t.set_owner(slot, Some(TileId::new(3)));
        t.set_dirty(slot, true);
        let (again, inserted) = t.get_or_insert(7);
        assert!(!inserted);
        assert_eq!(again, slot);
        assert_eq!(t.sharer_bits(slot), 0b1010);
        assert_eq!(t.owner(slot), Some(TileId::new(3)));
        assert!(t.dirty(slot));

        // Owner and dirty updates preserve each other.
        t.set_owner(slot, Some(TileId::new(63)));
        assert!(t.dirty(slot));
        t.set_dirty(slot, false);
        assert_eq!(t.owner(slot), Some(TileId::new(63)));
        t.set_owner(slot, None);
        assert_eq!(t.owner(slot), None);

        t.remove_at(t.find(7).unwrap());
        assert_eq!(t.find(7), None);
        assert_eq!(t.len(), 0);
        t.prefetch(7); // hint path never panics
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut t = EntryTable::with_capacity(2);
        for k in 0..2_000u64 {
            let (slot, inserted) = t.get_or_insert(k * 977);
            assert!(inserted);
            t.set_sharer_bits(slot, k);
        }
        assert_eq!(t.len(), 2_000);
        for k in 0..2_000u64 {
            let slot = t.find(k * 977).expect("key survived growth");
            assert_eq!(t.sharer_bits(slot), k);
        }
    }

    /// Randomized differential test against a `HashMap` reference: the same
    /// operation mix over a tiny key universe (forcing shared probe chains
    /// and wrap-around backward shifts) must match exactly.
    #[test]
    fn randomized_operations_match_reference() {
        let mut rng = StdRng::seed_from_u64(0xD1AB10);
        let mut ours = EntryTable::with_capacity(8);
        let mut reference: HashMap<u64, RefEntry> = HashMap::new();
        for step in 0..50_000u64 {
            let key = rng.gen_range(0..300u64);
            match rng.gen_range(0..10) {
                0..=5 => {
                    let (slot, inserted) = ours.get_or_insert(key);
                    let fresh = !reference.contains_key(&key);
                    assert_eq!(inserted, fresh, "step {step}");
                    let entry = RefEntry {
                        sharers: step,
                        owner: Some(TileId::new((step % 64) as usize)),
                        dirty: step % 3 == 0,
                    };
                    ours.set_sharer_bits(slot, entry.sharers);
                    ours.set_owner(slot, entry.owner);
                    ours.set_dirty(slot, entry.dirty);
                    reference.insert(key, entry);
                }
                6..=8 => {
                    let ref_removed = reference.remove(&key);
                    match ours.find(key) {
                        Some(slot) => {
                            assert!(ref_removed.is_some(), "step {step}");
                            ours.remove_at(slot);
                        }
                        None => assert!(ref_removed.is_none(), "step {step}"),
                    }
                }
                _ => match ours.find(key) {
                    Some(slot) => {
                        let e = reference.get(&key).expect("reference agrees");
                        assert_eq!(ours.sharer_bits(slot), e.sharers);
                        assert_eq!(ours.owner(slot), e.owner);
                        assert_eq!(ours.dirty(slot), e.dirty);
                    }
                    None => assert!(!reference.contains_key(&key)),
                },
            }
            assert_eq!(ours.len(), reference.len());
        }
        for (&key, e) in &reference {
            let slot = ours.find(key).expect("every reference key present");
            assert_eq!(ours.sharer_bits(slot), e.sharers);
            assert_eq!(ours.owner(slot), e.owner);
            assert_eq!(ours.dirty(slot), e.dirty);
        }
    }
}
