//! Sharer bit-set: which tiles hold a copy of a block.

use rnuca_types::ids::TileId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A set of tiles holding a copy of a block, stored as a 64-bit mask.
///
/// The paper's directory stores a 16-bit sharers mask per block (Section 2.2);
/// 64 bits leaves room for the larger configurations discussed in Section 5.5.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SharerSet(u64);

impl SharerSet {
    /// The empty sharer set.
    pub const EMPTY: SharerSet = SharerSet(0);

    /// Creates an empty sharer set.
    pub fn new() -> Self {
        Self::EMPTY
    }

    /// Creates a set containing a single tile.
    pub fn singleton(tile: TileId) -> Self {
        let mut s = Self::EMPTY;
        s.insert(tile);
        s
    }

    /// The raw 64-bit mask (bit `i` = tile `i` holds a copy).
    pub fn to_bits(self) -> u64 {
        self.0
    }

    /// Reconstructs a set from a raw mask produced by [`SharerSet::to_bits`].
    pub fn from_bits(bits: u64) -> Self {
        SharerSet(bits)
    }

    /// Adds a tile to the set.
    ///
    /// # Panics
    ///
    /// Panics if the tile index is 64 or larger.
    pub fn insert(&mut self, tile: TileId) {
        assert!(tile.index() < 64, "sharer set supports up to 64 tiles");
        self.0 |= 1 << tile.index();
    }

    /// Removes a tile from the set; returns `true` if it was present.
    pub fn remove(&mut self, tile: TileId) -> bool {
        let bit = 1u64 << tile.index();
        let present = self.0 & bit != 0;
        self.0 &= !bit;
        present
    }

    /// Returns `true` if the tile is in the set.
    pub fn contains(&self, tile: TileId) -> bool {
        tile.index() < 64 && self.0 & (1 << tile.index()) != 0
    }

    /// Number of tiles in the set.
    pub fn len(&self) -> usize {
        self.0.count_ones() as usize
    }

    /// Returns `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Iterates over the tiles in the set in ascending index order.
    pub fn iter(&self) -> impl Iterator<Item = TileId> + '_ {
        (0..64).filter(|i| self.0 & (1 << i) != 0).map(TileId::new)
    }

    /// The set with `except` removed, without touching `self` — the
    /// directory uses this on its per-store path to report "everyone but
    /// the writer" without allocating.
    pub fn without(&self, except: TileId) -> SharerSet {
        let mut s = *self;
        s.remove(except);
        s
    }

    /// Returns an arbitrary (lowest-index) member, if any.
    pub fn first(&self) -> Option<TileId> {
        if self.is_empty() {
            None
        } else {
            Some(TileId::new(self.0.trailing_zeros() as usize))
        }
    }

    /// Removes every tile from the set.
    pub fn clear(&mut self) {
        self.0 = 0;
    }
}

impl FromIterator<TileId> for SharerSet {
    fn from_iter<I: IntoIterator<Item = TileId>>(iter: I) -> Self {
        let mut s = SharerSet::new();
        for t in iter {
            s.insert(t);
        }
        s
    }
}

impl fmt::Display for SharerSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for t in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{t}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: usize) -> TileId {
        TileId::new(i)
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = SharerSet::new();
        assert!(s.is_empty());
        s.insert(t(3));
        s.insert(t(15));
        assert!(s.contains(t(3)));
        assert!(s.contains(t(15)));
        assert!(!s.contains(t(4)));
        assert_eq!(s.len(), 2);
        assert!(s.remove(t(3)));
        assert!(!s.remove(t(3)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn singleton_and_first() {
        let s = SharerSet::singleton(t(5));
        assert_eq!(s.len(), 1);
        assert_eq!(s.first(), Some(t(5)));
        assert_eq!(SharerSet::EMPTY.first(), None);
    }

    #[test]
    fn iter_is_sorted() {
        let s: SharerSet = [t(9), t(1), t(4)].into_iter().collect();
        let v: Vec<_> = s.iter().collect();
        assert_eq!(v, vec![t(1), t(4), t(9)]);
    }

    #[test]
    fn without_excludes_only_the_given_tile() {
        let s: SharerSet = [t(9), t(1), t(4)].into_iter().collect();
        assert_eq!(s.without(t(4)).iter().collect::<Vec<_>>(), vec![t(1), t(9)]);
        assert_eq!(s.without(t(7)), s, "removing a non-member changes nothing");
        assert!(!s.without(t(4)).contains(t(4)));
        assert_eq!(s.len(), 3, "without must not mutate the receiver");
    }

    #[test]
    fn display_lists_members() {
        let s: SharerSet = [t(2), t(0)].into_iter().collect();
        assert_eq!(s.to_string(), "{T0,T2}");
        assert_eq!(SharerSet::EMPTY.to_string(), "{}");
    }

    #[test]
    fn clear_empties() {
        let mut s = SharerSet::singleton(t(1));
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    #[should_panic(expected = "up to 64 tiles")]
    fn oversized_tile_panics() {
        SharerSet::new().insert(t(64));
    }
}
