//! Directory-based MOSI coherence protocol model.
//!
//! The paper's private and ASR designs keep the per-tile L2 slices coherent
//! with a four-state MOSI protocol modelled after Piranha, driven by an
//! (optimistically zero-area) full-map distributed directory; the shared and
//! R-NUCA designs only need a directory covering the L1 caches, because every
//! modifiable block has exactly one possible L2 location (Sections 2.2 and 4).
//!
//! This crate provides the *functional* protocol: a [`Directory`] that tracks
//! sharers/owners per block and answers, for every read or write, which
//! coherence actions are required (forward to owner, invalidate sharers,
//! fetch from memory). The *timing* of those actions — network traversals and
//! slice lookups — is charged by the simulator crate.
//!
//! # Example
//!
//! ```
//! use rnuca_coherence::{Directory, ReadSource};
//! use rnuca_types::addr::BlockAddr;
//! use rnuca_types::ids::TileId;
//!
//! let mut dir = Directory::new(16);
//! let block = BlockAddr::from_block_number(7);
//! // First reader fetches from memory.
//! let r0 = dir.handle_read(block, TileId::new(0));
//! assert_eq!(r0.source, ReadSource::Memory);
//! // Second reader is serviced by an existing sharer.
//! let r1 = dir.handle_read(block, TileId::new(1));
//! assert_eq!(r1.source, ReadSource::Cache(TileId::new(0)));
//! // A writer invalidates every other sharer.
//! let w = dir.handle_write(block, TileId::new(2));
//! assert_eq!(w.invalidations.len(), 2);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod directory;
pub mod protocol;
pub mod sharers;
mod table;

pub use directory::{Directory, DirectoryStats};
pub use protocol::{MosiState, ReadOutcome, ReadSource, WriteOutcome};
pub use sharers::SharerSet;
