//! MOSI protocol vocabulary: block states and the outcomes of directory transactions.

use crate::sharers::SharerSet;
use rnuca_types::ids::TileId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The four stable states of the MOSI protocol (modelled after Piranha, per Section 5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MosiState {
    /// The only copy on chip, dirty with respect to memory.
    Modified,
    /// A dirty copy that other tiles may share read-only; this tile must
    /// supply data and eventually write back.
    Owned,
    /// A clean, possibly replicated, read-only copy.
    Shared,
    /// No valid copy.
    Invalid,
}

impl MosiState {
    /// Returns `true` if the state carries a valid copy of the data.
    pub fn is_valid(self) -> bool {
        !matches!(self, MosiState::Invalid)
    }

    /// Returns `true` if the copy is dirty with respect to memory.
    pub fn is_dirty(self) -> bool {
        matches!(self, MosiState::Modified | MosiState::Owned)
    }

    /// Returns `true` if the holder may write without further coherence actions.
    pub fn is_writable(self) -> bool {
        matches!(self, MosiState::Modified)
    }
}

impl fmt::Display for MosiState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MosiState::Modified => "M",
            MosiState::Owned => "O",
            MosiState::Shared => "S",
            MosiState::Invalid => "I",
        };
        f.write_str(s)
    }
}

/// Where the data for a read request comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReadSource {
    /// No on-chip copy existed; the block is fetched from main memory.
    Memory,
    /// The request already had a valid copy (hit at the requester; no transaction needed).
    AlreadyPresent,
    /// The data is forwarded from the cache of another tile (the owner or a sharer).
    Cache(TileId),
}

/// The directory's answer to a read request.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReadOutcome {
    /// Where the data comes from.
    pub source: ReadSource,
    /// Whether the supplying tile had the block in a dirty state (M or O), in
    /// which case the protocol performs an ownership transfer / sharing
    /// downgrade rather than a plain copy.
    pub downgraded_owner: bool,
    /// The requester's resulting state.
    pub new_state: MosiState,
}

/// The directory's answer to a write (or upgrade) request.
///
/// The invalidation set is a [`SharerSet`] bit-mask rather than a
/// `Vec<TileId>`: directory writes happen on every store the private/ASR
/// designs simulate, and a heap allocation per store was the single
/// per-access allocation left on the simulator's hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WriteOutcome {
    /// Where the data comes from (memory, a remote cache, or already present
    /// if the requester only needed an upgrade).
    pub source: ReadSource,
    /// Tiles whose copies must be invalidated before the write can proceed.
    pub invalidations: SharerSet,
    /// The requester's resulting state (always [`MosiState::Modified`]).
    pub new_state: MosiState,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_predicates() {
        assert!(MosiState::Modified.is_valid());
        assert!(MosiState::Owned.is_dirty());
        assert!(!MosiState::Shared.is_dirty());
        assert!(!MosiState::Invalid.is_valid());
        assert!(MosiState::Modified.is_writable());
        assert!(!MosiState::Owned.is_writable());
        assert!(!MosiState::Shared.is_writable());
    }

    #[test]
    fn state_display() {
        assert_eq!(MosiState::Modified.to_string(), "M");
        assert_eq!(MosiState::Owned.to_string(), "O");
        assert_eq!(MosiState::Shared.to_string(), "S");
        assert_eq!(MosiState::Invalid.to_string(), "I");
    }
}
