//! Full-map directory: per-block sharer tracking and MOSI transaction handling.

use crate::protocol::{MosiState, ReadOutcome, ReadSource, WriteOutcome};
use crate::sharers::SharerSet;
use crate::table::EntryTable;
use rnuca_types::addr::BlockAddr;
use rnuca_types::ids::TileId;
use rnuca_types::{Snap, SnapReader};
use serde::{Deserialize, Serialize};

/// Blocks the directory pre-sizes for; past this it grows by doubling.
const INITIAL_BLOCK_CAPACITY: usize = 8_192;

/// Counters accumulated by a [`Directory`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DirectoryStats {
    /// Read transactions handled.
    pub reads: u64,
    /// Write/upgrade transactions handled.
    pub writes: u64,
    /// Transactions that had to fetch the block from main memory.
    pub memory_fetches: u64,
    /// Transactions serviced by forwarding from another tile's cache.
    pub forwards: u64,
    /// Invalidation messages sent to sharers.
    pub invalidations_sent: u64,
    /// Dirty writebacks to memory caused by evictions of owned blocks.
    pub dirty_writebacks: u64,
}

/// A full-map coherence directory.
///
/// One logical directory suffices for the functional model even though the
/// real hardware distributes it by address interleaving across the tiles; the
/// *location* of the directory slice consulted by a transaction (and therefore
/// the network distance to reach it) is decided by the simulator, which knows
/// the address-to-home mapping.
///
/// The same structure serves both deployment points of the paper:
/// * tracking which **L1** caches share a block (shared / R-NUCA designs), and
/// * tracking which **L2 slices** hold a block (private / ASR designs).
///
/// Every store and every local L2 miss of the private/ASR designs performs a
/// directory transaction, so the entry table is an open-addressed,
/// structure-of-arrays store keyed by the block number (see the `table`
/// module for the layout rationale) rather than a SipHash `HashMap`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Directory {
    num_tiles: usize,
    entries: EntryTable,
    stats: DirectoryStats,
}

impl Directory {
    /// Creates a directory for a system with `num_tiles` tiles.
    ///
    /// # Panics
    ///
    /// Panics if `num_tiles` is zero or greater than 64 (the sharer-mask width).
    pub fn new(num_tiles: usize) -> Self {
        assert!(
            num_tiles > 0 && num_tiles <= 64,
            "directory supports 1..=64 tiles"
        );
        Directory {
            num_tiles,
            entries: EntryTable::with_capacity(INITIAL_BLOCK_CAPACITY),
            stats: DirectoryStats::default(),
        }
    }

    /// Number of tiles this directory was built for.
    pub fn num_tiles(&self) -> usize {
        self.num_tiles
    }

    /// Accumulated transaction statistics.
    pub fn stats(&self) -> &DirectoryStats {
        &self.stats
    }

    /// Resets the statistics, keeping the sharing state.
    pub fn reset_stats(&mut self) {
        self.stats = DirectoryStats::default();
    }

    /// Number of blocks with at least one on-chip copy.
    pub fn tracked_blocks(&self) -> usize {
        self.entries.len()
    }

    /// Hints the CPU to pull the directory entry of `block` into cache ahead
    /// of a transaction. The entry table is the largest randomly-probed
    /// structure of the private/ASR designs, so the simulator's batch
    /// drivers prefetch upcoming blocks to overlap the misses. Performance
    /// hint only — no state changes.
    #[inline]
    pub fn prefetch(&self, block: BlockAddr) {
        self.entries.prefetch(block.block_number());
    }

    /// The sharers currently recorded for a block.
    pub fn sharers(&self, block: BlockAddr) -> SharerSet {
        self.entries
            .find(block.block_number())
            .map(|slot| SharerSet::from_bits(self.entries.sharer_bits(slot)))
            .unwrap_or_default()
    }

    /// The current owner of a block (the tile responsible for supplying dirty data), if any.
    pub fn owner(&self, block: BlockAddr) -> Option<TileId> {
        self.entries
            .find(block.block_number())
            .and_then(|slot| self.entries.owner(slot))
    }

    /// Returns `true` if any tile holds a copy of the block.
    pub fn is_cached(&self, block: BlockAddr) -> bool {
        self.entries
            .find(block.block_number())
            .map(|slot| self.entries.sharer_bits(slot) != 0)
            .unwrap_or(false)
    }

    fn check_tile(&self, tile: TileId) {
        assert!(
            tile.index() < self.num_tiles,
            "tile {tile} out of range for a {}-tile directory",
            self.num_tiles
        );
    }

    /// Handles a read request from `requester`, returning where the data comes
    /// from and which state the requester ends up in.
    pub fn handle_read(&mut self, block: BlockAddr, requester: TileId) -> ReadOutcome {
        self.check_tile(requester);
        self.stats.reads += 1;
        let (slot, _) = self.entries.get_or_insert(block.block_number());
        let mut sharers = SharerSet::from_bits(self.entries.sharer_bits(slot));

        if sharers.contains(requester) {
            // Already has a copy: nothing to do (the requester's cache hit).
            let state = if self.entries.owner(slot) == Some(requester) && self.entries.dirty(slot) {
                MosiState::Modified
            } else {
                MosiState::Shared
            };
            return ReadOutcome {
                source: ReadSource::AlreadyPresent,
                downgraded_owner: false,
                new_state: state,
            };
        }

        if sharers.is_empty() {
            // Not on chip: fetch from memory, requester becomes the sole (clean) sharer.
            self.entries
                .set_sharer_bits(slot, SharerSet::singleton(requester).to_bits());
            self.entries.set_owner(slot, Some(requester));
            self.entries.set_dirty(slot, false);
            self.stats.memory_fetches += 1;
            return ReadOutcome {
                source: ReadSource::Memory,
                downgraded_owner: false,
                new_state: MosiState::Shared,
            };
        }

        // Forward from the owner (if dirty) or any current sharer.
        let dirty = self.entries.dirty(slot);
        let supplier = if dirty {
            self.entries
                .owner(slot)
                .or_else(|| sharers.first())
                .expect("dirty entry has an owner")
        } else {
            sharers.first().expect("non-empty sharer set")
        };
        sharers.insert(requester);
        self.entries.set_sharer_bits(slot, sharers.to_bits());
        self.stats.forwards += 1;
        ReadOutcome {
            source: ReadSource::Cache(supplier),
            downgraded_owner: dirty,
            new_state: MosiState::Shared,
        }
    }

    /// Handles a write (or upgrade) request from `requester`, returning the
    /// data source and the set of tiles that must be invalidated.
    pub fn handle_write(&mut self, block: BlockAddr, requester: TileId) -> WriteOutcome {
        self.check_tile(requester);
        self.stats.writes += 1;
        let (slot, _) = self.entries.get_or_insert(block.block_number());
        let sharers = SharerSet::from_bits(self.entries.sharer_bits(slot));

        let had_copy = sharers.contains(requester);
        let invalidations = sharers.without(requester);
        self.stats.invalidations_sent += invalidations.len() as u64;

        let source = if had_copy {
            ReadSource::AlreadyPresent
        } else if sharers.is_empty() {
            self.stats.memory_fetches += 1;
            ReadSource::Memory
        } else {
            let supplier = if self.entries.dirty(slot) {
                self.entries
                    .owner(slot)
                    .or_else(|| sharers.first())
                    .expect("dirty entry has an owner")
            } else {
                sharers.first().expect("non-empty sharer set")
            };
            self.stats.forwards += 1;
            ReadSource::Cache(supplier)
        };

        self.entries
            .set_sharer_bits(slot, SharerSet::singleton(requester).to_bits());
        self.entries.set_owner(slot, Some(requester));
        self.entries.set_dirty(slot, true);
        WriteOutcome {
            source,
            invalidations,
            new_state: MosiState::Modified,
        }
    }

    /// Records that `tile` evicted its copy of `block`.
    ///
    /// Returns `true` if the eviction requires a dirty writeback to memory
    /// (the evicting tile was the owner of a dirty block).
    pub fn handle_eviction(&mut self, block: BlockAddr, tile: TileId) -> bool {
        self.check_tile(tile);
        // Every eviction of a tracked block used to probe the entry table
        // twice (lookup, then keyed removal once the sharer set drained);
        // the slot index makes the removal free.
        let Some(slot) = self.entries.find(block.block_number()) else {
            return false;
        };
        let mut sharers = SharerSet::from_bits(self.entries.sharer_bits(slot));
        let was_present = sharers.remove(tile);
        if !was_present {
            return false;
        }
        self.entries.set_sharer_bits(slot, sharers.to_bits());
        let needs_writeback = self.entries.dirty(slot) && self.entries.owner(slot) == Some(tile);
        if needs_writeback {
            self.stats.dirty_writebacks += 1;
            // Ownership (and the dirty data) returns to memory; remaining
            // sharers keep clean copies.
            self.entries.set_dirty(slot, false);
            self.entries.set_owner(slot, sharers.first());
        } else if self.entries.owner(slot) == Some(tile) {
            self.entries.set_owner(slot, sharers.first());
        }
        if sharers.is_empty() {
            self.entries.remove_at(slot);
        }
        needs_writeback
    }

    /// Invalidates every copy of `block` on chip (e.g. an R-NUCA page
    /// shoot-down), returning the tiles that held a copy.
    pub fn invalidate_all(&mut self, block: BlockAddr) -> Vec<TileId> {
        match self.entries.find(block.block_number()) {
            Some(slot) => {
                let tiles: Vec<TileId> = SharerSet::from_bits(self.entries.sharer_bits(slot))
                    .iter()
                    .collect();
                self.entries.remove_at(slot);
                self.stats.invalidations_sent += tiles.len() as u64;
                tiles
            }
            None => Vec::new(),
        }
    }
}

impl Snap for DirectoryStats {
    fn encode(&self, out: &mut Vec<u8>) {
        self.reads.encode(out);
        self.writes.encode(out);
        self.memory_fetches.encode(out);
        self.forwards.encode(out);
        self.invalidations_sent.encode(out);
        self.dirty_writebacks.encode(out);
    }

    fn decode(r: &mut SnapReader<'_>) -> Self {
        DirectoryStats {
            reads: r.get(),
            writes: r.get(),
            memory_fetches: r.get(),
            forwards: r.get(),
            invalidations_sent: r.get(),
            dirty_writebacks: r.get(),
        }
    }
}

impl Snap for Directory {
    fn encode(&self, out: &mut Vec<u8>) {
        self.num_tiles.encode(out);
        self.entries.encode(out);
        self.stats.encode(out);
    }

    fn decode(r: &mut SnapReader<'_>) -> Self {
        Directory {
            num_tiles: r.get(),
            entries: r.get(),
            stats: r.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(n: u64) -> BlockAddr {
        BlockAddr::from_block_number(n)
    }

    fn t(i: usize) -> TileId {
        TileId::new(i)
    }

    #[test]
    fn first_read_fetches_from_memory() {
        let mut d = Directory::new(16);
        let r = d.handle_read(b(1), t(0));
        assert_eq!(r.source, ReadSource::Memory);
        assert_eq!(r.new_state, MosiState::Shared);
        assert!(d.is_cached(b(1)));
        assert_eq!(d.stats().memory_fetches, 1);
    }

    #[test]
    fn second_read_forwards_from_sharer() {
        let mut d = Directory::new(16);
        d.handle_read(b(1), t(0));
        let r = d.handle_read(b(1), t(3));
        assert_eq!(r.source, ReadSource::Cache(t(0)));
        assert!(
            !r.downgraded_owner,
            "clean copy should not need a downgrade"
        );
        assert_eq!(d.sharers(b(1)).len(), 2);
        assert_eq!(d.stats().forwards, 1);
    }

    #[test]
    fn read_after_write_downgrades_the_owner() {
        let mut d = Directory::new(16);
        d.handle_write(b(1), t(2));
        let r = d.handle_read(b(1), t(5));
        assert_eq!(r.source, ReadSource::Cache(t(2)));
        assert!(r.downgraded_owner);
        assert_eq!(d.owner(b(1)), Some(t(2)));
    }

    #[test]
    fn repeated_read_by_same_tile_is_already_present() {
        let mut d = Directory::new(16);
        d.handle_read(b(1), t(0));
        let r = d.handle_read(b(1), t(0));
        assert_eq!(r.source, ReadSource::AlreadyPresent);
    }

    #[test]
    fn write_invalidates_all_other_sharers() {
        let mut d = Directory::new(16);
        for i in 0..4 {
            d.handle_read(b(9), t(i));
        }
        let w = d.handle_write(b(9), t(1));
        assert_eq!(w.invalidations.len(), 3);
        assert!(!w.invalidations.contains(t(1)));
        assert_eq!(w.source, ReadSource::AlreadyPresent);
        assert_eq!(w.new_state, MosiState::Modified);
        assert_eq!(d.sharers(b(9)).len(), 1);
        assert_eq!(d.owner(b(9)), Some(t(1)));
    }

    #[test]
    fn write_by_non_sharer_forwards_and_invalidates() {
        let mut d = Directory::new(16);
        d.handle_read(b(9), t(0));
        let w = d.handle_write(b(9), t(5));
        assert_eq!(w.source, ReadSource::Cache(t(0)));
        assert_eq!(w.invalidations, SharerSet::singleton(t(0)));
    }

    #[test]
    fn write_miss_with_no_copies_goes_to_memory() {
        let mut d = Directory::new(16);
        let w = d.handle_write(b(2), t(7));
        assert_eq!(w.source, ReadSource::Memory);
        assert!(w.invalidations.is_empty());
    }

    #[test]
    fn eviction_of_dirty_owner_requires_writeback() {
        let mut d = Directory::new(16);
        d.handle_write(b(4), t(3));
        assert!(d.handle_eviction(b(4), t(3)));
        assert!(!d.is_cached(b(4)));
        assert_eq!(d.stats().dirty_writebacks, 1);
    }

    #[test]
    fn eviction_of_clean_sharer_needs_no_writeback() {
        let mut d = Directory::new(16);
        d.handle_read(b(4), t(0));
        d.handle_read(b(4), t(1));
        assert!(!d.handle_eviction(b(4), t(0)));
        assert!(d.is_cached(b(4)));
        assert_eq!(d.sharers(b(4)).len(), 1);
        // Evicting a non-sharer is a no-op.
        assert!(!d.handle_eviction(b(4), t(9)));
    }

    #[test]
    fn eviction_of_dirty_owner_with_remaining_sharers_passes_ownership() {
        let mut d = Directory::new(16);
        d.handle_write(b(4), t(3));
        d.handle_read(b(4), t(5)); // downgrades owner, two sharers now
        assert!(d.handle_eviction(b(4), t(3)));
        assert_eq!(d.owner(b(4)), Some(t(5)));
        assert!(d.is_cached(b(4)));
    }

    #[test]
    fn invalidate_all_clears_the_entry() {
        let mut d = Directory::new(16);
        for i in 0..5 {
            d.handle_read(b(7), t(i));
        }
        let mut tiles = d.invalidate_all(b(7));
        tiles.sort();
        assert_eq!(tiles, (0..5).map(t).collect::<Vec<_>>());
        assert!(!d.is_cached(b(7)));
        assert!(d.invalidate_all(b(7)).is_empty());
    }

    #[test]
    fn tracked_blocks_counts_entries() {
        let mut d = Directory::new(16);
        d.handle_read(b(1), t(0));
        d.handle_read(b(2), t(0));
        assert_eq!(d.tracked_blocks(), 2);
        d.handle_eviction(b(1), t(0));
        assert_eq!(d.tracked_blocks(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_tile_panics() {
        Directory::new(8).handle_read(b(0), t(8));
    }

    #[test]
    #[should_panic(expected = "1..=64")]
    fn zero_tiles_panics() {
        Directory::new(0);
    }
}
