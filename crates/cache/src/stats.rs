//! Hit/miss/eviction counters shared by the cache structures.

use rnuca_types::{Snap, SnapReader};
use serde::{Deserialize, Serialize};

/// Counters accumulated by a [`crate::CacheArray`] (and reused by the victim cache).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Probes that found the block resident.
    pub hits: u64,
    /// Probes that did not find the block.
    pub misses: u64,
    /// Fills of blocks that were not previously resident.
    pub fills: u64,
    /// Blocks displaced by fills into full sets.
    pub evictions: u64,
    /// Blocks removed by explicit invalidation.
    pub invalidations: u64,
}

impl CacheStats {
    /// Total probes (hits + misses).
    pub fn probes(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in [0, 1]; zero if no probes were recorded.
    pub fn hit_rate(&self) -> f64 {
        if self.probes() == 0 {
            0.0
        } else {
            self.hits as f64 / self.probes() as f64
        }
    }

    /// Miss rate in [0, 1]; zero if no probes were recorded.
    pub fn miss_rate(&self) -> f64 {
        if self.probes() == 0 {
            0.0
        } else {
            self.misses as f64 / self.probes() as f64
        }
    }

    /// Adds another set of counters to this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.fills += other.fills;
        self.evictions += other.evictions;
        self.invalidations += other.invalidations;
    }
}

impl Snap for CacheStats {
    fn encode(&self, out: &mut Vec<u8>) {
        self.hits.encode(out);
        self.misses.encode(out);
        self.fills.encode(out);
        self.evictions.encode(out);
        self.invalidations.encode(out);
    }

    fn decode(r: &mut SnapReader<'_>) -> Self {
        CacheStats {
            hits: r.get(),
            misses: r.get(),
            fills: r.get(),
            evictions: r.get(),
            invalidations: r.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates() {
        let s = CacheStats {
            hits: 3,
            misses: 1,
            ..Default::default()
        };
        assert_eq!(s.probes(), 4);
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert!((s.miss_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_rates_are_zero() {
        let s = CacheStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.miss_rate(), 0.0);
    }

    #[test]
    fn merge_sums_fields() {
        let mut a = CacheStats {
            hits: 1,
            misses: 2,
            fills: 3,
            evictions: 4,
            invalidations: 5,
        };
        let b = CacheStats {
            hits: 10,
            misses: 20,
            fills: 30,
            evictions: 40,
            invalidations: 50,
        };
        a.merge(&b);
        assert_eq!(
            a,
            CacheStats {
                hits: 11,
                misses: 22,
                fills: 33,
                evictions: 44,
                invalidations: 55
            }
        );
    }
}
