//! Miss-status holding registers (MSHRs).
//!
//! Table 1 provisions 32 MSHRs per cache. The trace-driven simulator is not
//! cycle-by-cycle, so MSHRs are modelled as a bounded set of outstanding miss
//! addresses: a secondary miss to an address already outstanding merges with
//! the existing entry, and when all registers are busy the model charges a
//! structural-hazard penalty.

use rnuca_types::addr::BlockAddr;
use rnuca_types::index_map::U64Map;

/// Outcome of trying to allocate an MSHR for a miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrAllocation {
    /// A new register was allocated (primary miss).
    Allocated,
    /// The address already had an outstanding miss; the request merged with it.
    Merged,
    /// All registers are busy; the request must stall.
    Full,
}

/// A bounded file of miss-status holding registers.
///
/// Outstanding misses are keyed by block number in an open-addressed
/// [`U64Map`] — the same treatment the simulator's other per-access maps
/// received — so allocate/release never pay SipHash.
#[derive(Debug, Clone)]
pub struct MshrFile {
    capacity: usize,
    outstanding: U64Map<u32>,
    merges: u64,
    stalls: u64,
    allocations: u64,
}

impl MshrFile {
    /// Creates an MSHR file with `capacity` registers.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "an MSHR file needs at least one register");
        MshrFile {
            capacity,
            outstanding: U64Map::with_capacity(capacity),
            merges: 0,
            stalls: 0,
            allocations: 0,
        }
    }

    /// Number of registers.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of registers currently in use.
    pub fn in_use(&self) -> usize {
        self.outstanding.len()
    }

    /// Returns `true` if every register is busy.
    pub fn is_full(&self) -> bool {
        self.outstanding.len() >= self.capacity
    }

    /// Attempts to allocate (or merge into) a register for a miss to `block`.
    pub fn allocate(&mut self, block: BlockAddr) -> MshrAllocation {
        if let Some(waiters) = self.outstanding.get_mut(block.block_number()) {
            *waiters += 1;
            self.merges += 1;
            return MshrAllocation::Merged;
        }
        if self.is_full() {
            self.stalls += 1;
            return MshrAllocation::Full;
        }
        self.outstanding.insert(block.block_number(), 1);
        self.allocations += 1;
        MshrAllocation::Allocated
    }

    /// Releases the register for `block` when its fill completes.
    ///
    /// Returns the number of requests that were waiting on it, or `None` if
    /// the block had no outstanding miss.
    pub fn release(&mut self, block: BlockAddr) -> Option<u32> {
        self.outstanding.remove(block.block_number())
    }

    /// Returns `true` if `block` currently has an outstanding miss.
    pub fn is_outstanding(&self, block: BlockAddr) -> bool {
        self.outstanding.contains_key(block.block_number())
    }

    /// Total primary-miss allocations.
    pub fn allocations(&self) -> u64 {
        self.allocations
    }

    /// Total secondary misses merged into an existing register.
    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// Total requests that found the file full.
    pub fn stalls(&self) -> u64 {
        self.stalls
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(n: u64) -> BlockAddr {
        BlockAddr::from_block_number(n)
    }

    #[test]
    fn allocate_merge_release_cycle() {
        let mut m = MshrFile::new(2);
        assert_eq!(m.allocate(b(1)), MshrAllocation::Allocated);
        assert_eq!(m.allocate(b(1)), MshrAllocation::Merged);
        assert!(m.is_outstanding(b(1)));
        assert_eq!(m.release(b(1)), Some(2));
        assert!(!m.is_outstanding(b(1)));
        assert_eq!(m.release(b(1)), None);
    }

    #[test]
    fn full_file_stalls() {
        let mut m = MshrFile::new(2);
        m.allocate(b(1));
        m.allocate(b(2));
        assert!(m.is_full());
        assert_eq!(m.allocate(b(3)), MshrAllocation::Full);
        assert_eq!(m.stalls(), 1);
        // Merging into an existing entry still works when full.
        assert_eq!(m.allocate(b(2)), MshrAllocation::Merged);
    }

    #[test]
    fn counters() {
        let mut m = MshrFile::new(4);
        m.allocate(b(1));
        m.allocate(b(2));
        m.allocate(b(1));
        assert_eq!(m.allocations(), 2);
        assert_eq!(m.merges(), 1);
        assert_eq!(m.in_use(), 2);
        assert_eq!(m.capacity(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one register")]
    fn zero_capacity_panics() {
        MshrFile::new(0);
    }
}
