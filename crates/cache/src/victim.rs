//! Small fully-associative victim cache.
//!
//! Table 1 attaches a 16-entry victim cache to each L1 and L2 array. Evicted
//! blocks are parked here; a subsequent miss that hits in the victim cache is
//! serviced at array latency and the block is re-promoted.

use crate::stats::CacheStats;
use rnuca_types::addr::BlockAddr;
use std::collections::VecDeque;

/// A fully-associative FIFO victim buffer holding recently evicted blocks.
#[derive(Debug, Clone)]
pub struct VictimCache<T> {
    capacity: usize,
    entries: VecDeque<(BlockAddr, T)>,
    stats: CacheStats,
}

impl<T> VictimCache<T> {
    /// Creates a victim cache with room for `capacity` blocks.
    ///
    /// A zero capacity is allowed and produces a victim cache that never holds
    /// anything (useful to disable the structure in ablations).
    pub fn new(capacity: usize) -> Self {
        VictimCache {
            capacity,
            entries: VecDeque::new(),
            stats: CacheStats::default(),
        }
    }

    /// Maximum number of blocks held.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of blocks currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no victims are held.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Accumulated statistics (hits = successful recalls, misses = failed probes).
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Inserts an evicted block. If the buffer is full the oldest victim is
    /// dropped and returned.
    pub fn insert(&mut self, block: BlockAddr, meta: T) -> Option<(BlockAddr, T)> {
        if self.capacity == 0 {
            return Some((block, meta));
        }
        self.stats.fills += 1;
        let dropped = if self.entries.len() >= self.capacity {
            self.stats.evictions += 1;
            self.entries.pop_front()
        } else {
            None
        };
        self.entries.push_back((block, meta));
        dropped
    }

    /// Attempts to recall a block, removing it from the buffer on success.
    pub fn recall(&mut self, block: BlockAddr) -> Option<T> {
        match self.entries.iter().position(|(b, _)| *b == block) {
            Some(idx) => {
                self.stats.hits += 1;
                self.entries.remove(idx).map(|(_, meta)| meta)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Returns `true` if the block is currently parked here (no statistics side effects).
    pub fn contains(&self, block: BlockAddr) -> bool {
        self.entries.iter().any(|(b, _)| *b == block)
    }

    /// Removes a block without counting it as a recall (e.g. on invalidation).
    pub fn invalidate(&mut self, block: BlockAddr) -> Option<T> {
        let idx = self.entries.iter().position(|(b, _)| *b == block)?;
        self.stats.invalidations += 1;
        self.entries.remove(idx).map(|(_, meta)| meta)
    }

    /// Removes all victims.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(n: u64) -> BlockAddr {
        BlockAddr::from_block_number(n)
    }

    #[test]
    fn recall_hit_and_miss() {
        let mut v: VictimCache<u32> = VictimCache::new(2);
        v.insert(b(1), 11);
        assert!(v.contains(b(1)));
        assert_eq!(v.recall(b(1)), Some(11));
        assert!(!v.contains(b(1)));
        assert_eq!(v.recall(b(1)), None);
        assert_eq!(v.stats().hits, 1);
        assert_eq!(v.stats().misses, 1);
    }

    #[test]
    fn fifo_overflow_drops_oldest() {
        let mut v: VictimCache<&str> = VictimCache::new(2);
        assert!(v.insert(b(1), "a").is_none());
        assert!(v.insert(b(2), "b").is_none());
        let dropped = v.insert(b(3), "c").expect("capacity exceeded");
        assert_eq!(dropped, (b(1), "a"));
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn zero_capacity_rejects_everything() {
        let mut v: VictimCache<()> = VictimCache::new(0);
        assert_eq!(v.insert(b(1), ()), Some((b(1), ())));
        assert!(v.is_empty());
    }

    #[test]
    fn invalidate_does_not_count_as_hit() {
        let mut v: VictimCache<u32> = VictimCache::new(4);
        v.insert(b(5), 1);
        assert_eq!(v.invalidate(b(5)), Some(1));
        assert_eq!(v.stats().hits, 0);
        assert_eq!(v.stats().invalidations, 1);
        assert_eq!(v.invalidate(b(5)), None);
    }

    #[test]
    fn clear_empties_buffer() {
        let mut v: VictimCache<()> = VictimCache::new(4);
        v.insert(b(1), ());
        v.insert(b(2), ());
        v.clear();
        assert!(v.is_empty());
        assert_eq!(v.capacity(), 4);
    }
}
