//! Small fully-associative victim cache.
//!
//! Table 1 attaches a 16-entry victim cache to each L1 and L2 array. Evicted
//! blocks are parked here; a subsequent miss that hits in the victim cache is
//! serviced at array latency and the block is re-promoted.
//!
//! Like the main [`crate::CacheArray`], the buffer is stored flat: the tags
//! sit in their own contiguous slab so the probe that runs on every slice
//! miss is a vectorizable scan over a couple of cache lines, and metadata is
//! only touched on a hit. FIFO order is kept by an intrusive doubly-linked
//! list over the slots, so inserting a victim and dropping the oldest are
//! both O(1) — the operations the fill path performs on every eviction.

use crate::stats::CacheStats;
use rnuca_types::addr::BlockAddr;
use rnuca_types::{Snap, SnapReader};

/// Sentinel link meaning "no slot".
const NIL: u8 = u8::MAX;

/// A fully-associative FIFO victim buffer holding recently evicted blocks.
#[derive(Debug, Clone, PartialEq)]
pub struct VictimCache<T> {
    capacity: usize,
    /// Tag slab; meaningful only where the occupancy bit is set.
    tags: Vec<u64>,
    metas: Vec<Option<T>>,
    /// Intrusive FIFO list over the slots: `head` is the oldest victim (the
    /// next dropped on overflow), `tail` the most recent insertion.
    next: Vec<u8>,
    prev: Vec<u8>,
    head: u8,
    tail: u8,
    /// Bit `i` set = slot `i` holds a victim.
    occupied: u64,
    stats: CacheStats,
}

impl<T> VictimCache<T> {
    /// Creates a victim cache with room for `capacity` blocks.
    ///
    /// A zero capacity is allowed and produces a victim cache that never holds
    /// anything (useful to disable the structure in ablations).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` exceeds 64 (the occupancy word is a `u64`).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity <= 64, "victim caches support at most 64 entries");
        let mut metas = Vec::with_capacity(capacity);
        metas.resize_with(capacity, || None);
        VictimCache {
            capacity,
            tags: vec![0; capacity],
            metas,
            next: vec![NIL; capacity],
            prev: vec![NIL; capacity],
            head: NIL,
            tail: NIL,
            occupied: 0,
            stats: CacheStats::default(),
        }
    }

    /// Maximum number of blocks held.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The block the next overflow-insert would drop: the oldest victim of a
    /// *full* buffer (`None` while free slots remain, since inserts then
    /// drop nothing). Read-only — prefetch hints use it to warm the dropped
    /// block's bookkeeping without disturbing FIFO order or statistics.
    pub fn peek_oldest(&self) -> Option<BlockAddr> {
        if self.len() < self.capacity || self.head == NIL {
            return None;
        }
        Some(BlockAddr::from_block_number(self.tags[self.head as usize]))
    }

    /// Number of blocks currently held.
    pub fn len(&self) -> usize {
        self.occupied.count_ones() as usize
    }

    /// Returns `true` if no victims are held.
    pub fn is_empty(&self) -> bool {
        self.occupied == 0
    }

    /// Accumulated statistics (hits = successful recalls, misses = failed probes).
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// The slot holding `block`, if parked here. When duplicate tags exist
    /// (a block filled into the slice while an older copy sat here, then
    /// evicted again) the oldest copy wins, which is what scanning the queue
    /// from its head used to do.
    #[inline]
    fn find(&self, block: BlockAddr) -> Option<usize> {
        let tag = block.block_number();
        let mut hit_mask = 0u64;
        for (i, &t) in self.tags.iter().enumerate() {
            hit_mask |= u64::from(t == tag) << i;
        }
        hit_mask &= self.occupied;
        if hit_mask == 0 {
            return None;
        }
        if hit_mask & (hit_mask - 1) == 0 {
            return Some(hit_mask.trailing_zeros() as usize);
        }
        // Rare duplicate-tag case: walk the FIFO list from the oldest end.
        let mut i = self.head;
        while i != NIL {
            if hit_mask >> i & 1 == 1 {
                return Some(i as usize);
            }
            i = self.next[i as usize];
        }
        unreachable!("occupied matches are always reachable from the head")
    }

    /// Unlinks `slot` from the FIFO list and clears its occupancy.
    fn unlink(&mut self, slot: usize) {
        let (p, n) = (self.prev[slot], self.next[slot]);
        if p == NIL {
            self.head = n;
        } else {
            self.next[p as usize] = n;
        }
        if n == NIL {
            self.tail = p;
        } else {
            self.prev[n as usize] = p;
        }
        self.occupied &= !(1 << slot);
    }

    fn take(&mut self, slot: usize) -> (BlockAddr, T) {
        self.unlink(slot);
        (
            BlockAddr::from_block_number(self.tags[slot]),
            self.metas[slot].take().expect("occupied slot has metadata"),
        )
    }

    /// Inserts an evicted block. If the buffer is full the oldest victim is
    /// dropped and returned.
    pub fn insert(&mut self, block: BlockAddr, meta: T) -> Option<(BlockAddr, T)> {
        if self.capacity == 0 {
            return Some((block, meta));
        }
        self.stats.fills += 1;
        let (slot, dropped) = if self.len() >= self.capacity {
            self.stats.evictions += 1;
            let oldest = self.head as usize;
            let dropped = self.take(oldest);
            (oldest, Some(dropped))
        } else {
            ((!self.occupied).trailing_zeros() as usize, None)
        };
        self.tags[slot] = block.block_number();
        self.metas[slot] = Some(meta);
        self.occupied |= 1 << slot;
        // Link at the tail (the youngest end).
        self.prev[slot] = self.tail;
        self.next[slot] = NIL;
        if self.tail == NIL {
            self.head = slot as u8;
        } else {
            self.next[self.tail as usize] = slot as u8;
        }
        self.tail = slot as u8;
        dropped
    }

    /// Attempts to recall a block, removing it from the buffer on success.
    pub fn recall(&mut self, block: BlockAddr) -> Option<T> {
        match self.find(block) {
            Some(slot) => {
                self.stats.hits += 1;
                Some(self.take(slot).1)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Returns `true` if the block is currently parked here (no statistics side effects).
    pub fn contains(&self, block: BlockAddr) -> bool {
        self.find(block).is_some()
    }

    /// Removes a block without counting it as a recall (e.g. on invalidation).
    pub fn invalidate(&mut self, block: BlockAddr) -> Option<T> {
        let slot = self.find(block)?;
        self.stats.invalidations += 1;
        Some(self.take(slot).1)
    }

    /// Removes all victims.
    pub fn clear(&mut self) {
        for m in &mut self.metas {
            *m = None;
        }
        self.occupied = 0;
        self.head = NIL;
        self.tail = NIL;
    }
}

impl<T: Snap> Snap for VictimCache<T> {
    /// Encodes the slot slabs and the intrusive FIFO links verbatim, so the
    /// decoded buffer drops victims in exactly the order the original would.
    fn encode(&self, out: &mut Vec<u8>) {
        self.capacity.encode(out);
        self.tags.encode(out);
        self.metas.encode(out);
        self.next.encode(out);
        self.prev.encode(out);
        self.head.encode(out);
        self.tail.encode(out);
        self.occupied.encode(out);
        self.stats.encode(out);
    }

    fn decode(r: &mut SnapReader<'_>) -> Self {
        VictimCache {
            capacity: r.get(),
            tags: r.get(),
            metas: r.get(),
            next: r.get(),
            prev: r.get(),
            head: r.get(),
            tail: r.get(),
            occupied: r.get(),
            stats: r.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(n: u64) -> BlockAddr {
        BlockAddr::from_block_number(n)
    }

    #[test]
    fn recall_hit_and_miss() {
        let mut v: VictimCache<u32> = VictimCache::new(2);
        v.insert(b(1), 11);
        assert!(v.contains(b(1)));
        assert_eq!(v.recall(b(1)), Some(11));
        assert!(!v.contains(b(1)));
        assert_eq!(v.recall(b(1)), None);
        assert_eq!(v.stats().hits, 1);
        assert_eq!(v.stats().misses, 1);
    }

    #[test]
    fn fifo_overflow_drops_oldest() {
        let mut v: VictimCache<&str> = VictimCache::new(2);
        assert!(v.insert(b(1), "a").is_none());
        assert!(v.insert(b(2), "b").is_none());
        let dropped = v.insert(b(3), "c").expect("capacity exceeded");
        assert_eq!(dropped, (b(1), "a"));
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn fifo_order_survives_middle_removal() {
        let mut v: VictimCache<u32> = VictimCache::new(3);
        v.insert(b(1), 1);
        v.insert(b(2), 2);
        v.insert(b(3), 3);
        // Recall the middle entry; the hole is refilled by the next insert
        // but the drop order stays 1, then 3.
        assert_eq!(v.recall(b(2)), Some(2));
        v.insert(b(4), 4);
        let dropped = v.insert(b(5), 5).expect("full");
        assert_eq!(dropped, (b(1), 1));
        let dropped = v.insert(b(6), 6).expect("full");
        assert_eq!(dropped, (b(3), 3));
    }

    #[test]
    fn sustained_churn_preserves_queue_order() {
        // Overflow repeatedly so every slot is recycled several times; drops
        // must always come out in insertion order.
        let mut v: VictimCache<u64> = VictimCache::new(4);
        let mut dropped = Vec::new();
        for n in 0..32u64 {
            if let Some((blk, meta)) = v.insert(b(n), n) {
                assert_eq!(blk.block_number(), meta);
                dropped.push(meta);
            }
        }
        assert_eq!(dropped, (0..28).collect::<Vec<u64>>());
    }

    #[test]
    fn zero_capacity_rejects_everything() {
        let mut v: VictimCache<()> = VictimCache::new(0);
        assert_eq!(v.insert(b(1), ()), Some((b(1), ())));
        assert!(v.is_empty());
    }

    #[test]
    fn invalidate_does_not_count_as_hit() {
        let mut v: VictimCache<u32> = VictimCache::new(4);
        v.insert(b(5), 1);
        assert_eq!(v.invalidate(b(5)), Some(1));
        assert_eq!(v.stats().hits, 0);
        assert_eq!(v.stats().invalidations, 1);
        assert_eq!(v.invalidate(b(5)), None);
    }

    #[test]
    fn clear_empties_buffer() {
        let mut v: VictimCache<()> = VictimCache::new(4);
        v.insert(b(1), ());
        v.insert(b(2), ());
        v.clear();
        assert!(v.is_empty());
        assert_eq!(v.capacity(), 4);
        // The buffer is fully usable after a clear.
        v.insert(b(3), ());
        assert!(v.contains(b(3)));
    }

    #[test]
    fn stale_tags_never_match_after_removal() {
        let mut v: VictimCache<u32> = VictimCache::new(4);
        v.insert(b(7), 70);
        assert_eq!(v.recall(b(7)), Some(70));
        // The tag slab still holds 7; occupancy must keep it from matching.
        assert!(!v.contains(b(7)));
        assert_eq!(v.recall(b(7)), None);
    }

    #[test]
    fn duplicate_tags_recall_the_oldest_copy() {
        let mut v: VictimCache<u32> = VictimCache::new(4);
        v.insert(b(9), 1);
        v.insert(b(8), 2);
        v.insert(b(9), 3);
        assert_eq!(v.recall(b(9)), Some(1), "queue order: oldest copy first");
        assert_eq!(v.recall(b(9)), Some(3));
        assert_eq!(v.recall(b(9)), None);
    }
}
