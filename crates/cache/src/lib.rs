//! Cache building blocks: set-associative arrays, MSHRs, and victim caches.
//!
//! Every cache in the modelled system — the split L1 I/D caches and the L2
//! NUCA slices (Table 1 of the paper) — is built from the same
//! [`CacheArray`]: a set-associative, true-LRU array that stores caller-chosen
//! metadata with every block. The array is purely functional state (no
//! timing); the timing model lives in `rnuca-sim`.
//!
//! # Example
//!
//! ```
//! use rnuca_cache::CacheArray;
//! use rnuca_types::addr::BlockAddr;
//! use rnuca_types::config::CacheGeometry;
//!
//! let geom = CacheGeometry::new(64 * 1024, 2, 64)?;
//! let mut l1: CacheArray<()> = CacheArray::new(geom);
//! let block = BlockAddr::from_block_number(42);
//! assert!(l1.probe(block).is_none());      // cold miss
//! l1.insert(block, ());
//! assert!(l1.probe(block).is_some());      // hit
//! # Ok::<(), rnuca_types::ConfigError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod array;
pub mod mshr;
pub mod stats;
pub mod victim;

pub use array::{CacheArray, EntryRef, Eviction, ProbeEntry, SetRef};
pub use mshr::MshrFile;
pub use stats::CacheStats;
pub use victim::VictimCache;
