//! Set-associative cache array with true-LRU replacement.

use crate::stats::CacheStats;
use rnuca_types::addr::BlockAddr;
use rnuca_types::config::CacheGeometry;

/// A block evicted from a [`CacheArray`] to make room for a fill.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Eviction<T> {
    /// Address of the evicted block.
    pub block: BlockAddr,
    /// Metadata stored with the evicted block (e.g. coherence state, dirty bit).
    pub meta: T,
}

#[derive(Debug, Clone)]
struct Way<T> {
    block: BlockAddr,
    meta: T,
    /// Monotonic counter value of the last touch; larger = more recent.
    last_use: u64,
}

/// A set-associative cache array with true-LRU replacement.
///
/// The array indexes blocks by [`BlockAddr`] using the low bits of the block
/// number as the set index, exactly as a physical cache indexed above the
/// block offset would. Per-block metadata of type `T` travels with each entry
/// (coherence state, dirty bit, owning cluster, ...).
///
/// All operations are O(associativity). The array never allocates after
/// construction beyond the per-set way vectors.
#[derive(Debug, Clone)]
pub struct CacheArray<T> {
    geometry: CacheGeometry,
    sets: Vec<Vec<Way<T>>>,
    clock: u64,
    stats: CacheStats,
}

impl<T> CacheArray<T> {
    /// Creates an empty array with the given geometry.
    pub fn new(geometry: CacheGeometry) -> Self {
        let num_sets = geometry.num_sets();
        let mut sets = Vec::with_capacity(num_sets);
        for _ in 0..num_sets {
            sets.push(Vec::with_capacity(geometry.ways));
        }
        CacheArray {
            geometry,
            sets,
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The geometry this array was built with.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// Accumulated hit/miss/eviction statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets the accumulated statistics (contents are untouched).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Number of blocks currently resident.
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Returns `true` if no blocks are resident.
    pub fn is_empty(&self) -> bool {
        self.sets.iter().all(Vec::is_empty)
    }

    fn set_index(&self, block: BlockAddr) -> usize {
        block.set_index(self.geometry.num_sets())
    }

    /// Looks up a block, updating LRU state and hit/miss counters.
    ///
    /// Returns a reference to the stored metadata on a hit.
    pub fn probe(&mut self, block: BlockAddr) -> Option<&T> {
        self.clock += 1;
        let clock = self.clock;
        let set = self.set_index(block);
        let found = self.sets[set].iter_mut().find(|w| w.block == block);
        match found {
            Some(way) => {
                way.last_use = clock;
                self.stats.hits += 1;
                Some(&way.meta)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Looks up a block, updating LRU state and hit/miss counters, returning
    /// mutable access to the stored metadata on a hit.
    pub fn probe_mut(&mut self, block: BlockAddr) -> Option<&mut T> {
        self.clock += 1;
        let clock = self.clock;
        let set = self.set_index(block);
        let found = self.sets[set].iter_mut().find(|w| w.block == block);
        match found {
            Some(way) => {
                way.last_use = clock;
                self.stats.hits += 1;
                Some(&mut way.meta)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Checks residency without perturbing LRU state or statistics.
    pub fn peek(&self, block: BlockAddr) -> Option<&T> {
        let set = self.set_index(block);
        self.sets[set]
            .iter()
            .find(|w| w.block == block)
            .map(|w| &w.meta)
    }

    /// Returns `true` if the block is resident (no LRU/statistics side effects).
    pub fn contains(&self, block: BlockAddr) -> bool {
        self.peek(block).is_some()
    }

    /// Inserts (fills) a block with the given metadata.
    ///
    /// If the block is already resident its metadata is replaced and its LRU
    /// position refreshed. If the set is full, the least-recently-used way is
    /// evicted and returned.
    pub fn insert(&mut self, block: BlockAddr, meta: T) -> Option<Eviction<T>> {
        self.clock += 1;
        let clock = self.clock;
        let ways = self.geometry.ways;
        let set = self.set_index(block);
        let entries = &mut self.sets[set];

        if let Some(way) = entries.iter_mut().find(|w| w.block == block) {
            way.meta = meta;
            way.last_use = clock;
            return None;
        }

        self.stats.fills += 1;
        let evicted = if entries.len() >= ways {
            let victim_idx = entries
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.last_use)
                .map(|(i, _)| i)
                .expect("full set has at least one way");
            let victim = entries.swap_remove(victim_idx);
            self.stats.evictions += 1;
            Some(Eviction {
                block: victim.block,
                meta: victim.meta,
            })
        } else {
            None
        };

        entries.push(Way {
            block,
            meta,
            last_use: clock,
        });
        evicted
    }

    /// Removes a block from the array, returning its metadata if it was resident.
    pub fn invalidate(&mut self, block: BlockAddr) -> Option<T> {
        let set = self.set_index(block);
        let entries = &mut self.sets[set];
        let idx = entries.iter().position(|w| w.block == block)?;
        self.stats.invalidations += 1;
        Some(entries.swap_remove(idx).meta)
    }

    /// Removes every resident block for which the predicate returns `true`,
    /// returning the removed blocks. Used for page shoot-downs during R-NUCA
    /// re-classification.
    pub fn invalidate_matching<F>(&mut self, mut pred: F) -> Vec<Eviction<T>>
    where
        F: FnMut(BlockAddr, &T) -> bool,
    {
        let mut removed = Vec::new();
        for set in &mut self.sets {
            let mut i = 0;
            while i < set.len() {
                if pred(set[i].block, &set[i].meta) {
                    let way = set.swap_remove(i);
                    self.stats.invalidations += 1;
                    removed.push(Eviction {
                        block: way.block,
                        meta: way.meta,
                    });
                } else {
                    i += 1;
                }
            }
        }
        removed
    }

    /// Iterates over all resident blocks and their metadata (set order, then way order).
    pub fn iter(&self) -> impl Iterator<Item = (BlockAddr, &T)> {
        self.sets
            .iter()
            .flat_map(|set| set.iter().map(|w| (w.block, &w.meta)))
    }

    /// Removes every block from the array.
    pub fn clear(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnuca_types::config::CacheGeometry;

    fn tiny() -> CacheGeometry {
        // 4 sets x 2 ways x 64B blocks = 512B.
        CacheGeometry::new(512, 2, 64).unwrap()
    }

    fn b(n: u64) -> BlockAddr {
        BlockAddr::from_block_number(n)
    }

    #[test]
    fn miss_then_hit() {
        let mut c: CacheArray<u32> = CacheArray::new(tiny());
        assert!(c.probe(b(1)).is_none());
        c.insert(b(1), 7);
        assert_eq!(c.probe(b(1)), Some(&7));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_eviction_within_a_set() {
        let mut c: CacheArray<&str> = CacheArray::new(tiny());
        // Blocks 0, 4, 8 all map to set 0 (4 sets).
        c.insert(b(0), "a");
        c.insert(b(4), "b");
        // Touch block 0 so block 4 becomes LRU.
        assert!(c.probe(b(0)).is_some());
        let ev = c.insert(b(8), "c").expect("set is full, must evict");
        assert_eq!(ev.block, b(4));
        assert_eq!(ev.meta, "b");
        assert!(c.contains(b(0)));
        assert!(c.contains(b(8)));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn insert_existing_block_updates_metadata_without_eviction() {
        let mut c: CacheArray<u32> = CacheArray::new(tiny());
        c.insert(b(3), 1);
        assert!(c.insert(b(3), 2).is_none());
        assert_eq!(c.peek(b(3)), Some(&2));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn peek_does_not_touch_lru_or_stats() {
        let mut c: CacheArray<u32> = CacheArray::new(tiny());
        c.insert(b(0), 0);
        c.insert(b(4), 4);
        // Peek block 0 (older); it must NOT be promoted.
        assert_eq!(c.peek(b(0)), Some(&0));
        let hits_before = c.stats().hits;
        let ev = c.insert(b(8), 8).unwrap();
        assert_eq!(ev.block, b(0), "peek must not refresh LRU");
        assert_eq!(c.stats().hits, hits_before);
    }

    #[test]
    fn probe_mut_allows_in_place_update() {
        let mut c: CacheArray<u32> = CacheArray::new(tiny());
        c.insert(b(2), 10);
        if let Some(m) = c.probe_mut(b(2)) {
            *m += 5;
        }
        assert_eq!(c.peek(b(2)), Some(&15));
    }

    #[test]
    fn invalidate_removes_block() {
        let mut c: CacheArray<u32> = CacheArray::new(tiny());
        c.insert(b(5), 50);
        assert_eq!(c.invalidate(b(5)), Some(50));
        assert_eq!(c.invalidate(b(5)), None);
        assert!(!c.contains(b(5)));
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn invalidate_matching_removes_page_blocks() {
        let mut c: CacheArray<u64> = CacheArray::new(tiny());
        for n in 0..8 {
            c.insert(b(n), n);
        }
        // Remove all even block numbers (e.g. "blocks of a page being reclassified").
        let removed = c.invalidate_matching(|blk, _| blk.block_number() % 2 == 0);
        assert_eq!(removed.len(), 4);
        assert!(c.iter().all(|(blk, _)| blk.block_number() % 2 == 1));
    }

    #[test]
    fn different_sets_do_not_conflict() {
        let mut c: CacheArray<()> = CacheArray::new(tiny());
        // Blocks 0..4 map to distinct sets; filling them evicts nothing.
        for n in 0..4 {
            assert!(c.insert(b(n), ()).is_none());
        }
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn capacity_is_bounded_by_geometry() {
        let geom = tiny();
        let mut c: CacheArray<()> = CacheArray::new(geom);
        for n in 0..1000 {
            c.insert(b(n), ());
        }
        assert!(c.len() <= geom.num_blocks());
        assert_eq!(c.len(), geom.num_blocks());
    }

    #[test]
    fn clear_and_is_empty() {
        let mut c: CacheArray<()> = CacheArray::new(tiny());
        assert!(c.is_empty());
        c.insert(b(1), ());
        assert!(!c.is_empty());
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut c: CacheArray<()> = CacheArray::new(tiny());
        c.insert(b(1), ());
        c.probe(b(1));
        c.reset_stats();
        assert_eq!(c.stats().hits, 0);
        assert!(c.contains(b(1)));
    }
}
