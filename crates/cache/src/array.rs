//! Set-associative cache array with true-LRU replacement, stored as one
//! flat slab.
//!
//! Every simulated L2 reference lands in a [`CacheArray`] probe, so the
//! layout is optimised for the probe path: the tags of a set are contiguous
//! `u64`s (two cache lines for a 16-way set), per-set occupancy is a single
//! `u64` bitmask, and LRU state is a slab of packed one-byte recency ranks.
//! Metadata lives in its own parallel slab and is only touched on a hit or
//! fill, never during the tag scan.

use crate::stats::CacheStats;
use rnuca_types::addr::BlockAddr;
use rnuca_types::config::CacheGeometry;
use rnuca_types::{Snap, SnapReader};

/// Recency rank marking an unoccupied way. Valid ways always hold a rank
/// below their set's associativity, so this value never collides.
const AGE_INVALID: u8 = u8::MAX;

/// A block evicted from a [`CacheArray`] to make room for a fill.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Eviction<T> {
    /// Address of the evicted block.
    pub block: BlockAddr,
    /// Metadata stored with the evicted block (e.g. coherence state, dirty bit).
    pub meta: T,
}

/// Handle to the set searched by [`CacheArray::probe_entry`].
///
/// On a miss, passing the handle to [`CacheArray::fill_at`] fills the block
/// into that set without recomputing the set index or re-scanning the tags —
/// the lookup-then-update sequences of the simulator become single-probe.
/// The handle stays valid as long as no other operation mutates the array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SetRef(u32);

/// Handle to a specific resident way, as returned by a [`CacheArray::probe_entry`]
/// hit or a [`CacheArray::fill_at`]. Valid until the block is moved or removed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EntryRef {
    set: u32,
    way: u32,
}

/// Outcome of [`CacheArray::probe_entry`]: a located resident way, or the
/// set to fill on a miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeEntry {
    /// The block is resident at this way (LRU refreshed, hit counted).
    Hit(EntryRef),
    /// The block is absent; fill into this set (miss counted).
    Miss(SetRef),
}

/// A set-associative cache array with true-LRU replacement.
///
/// The array indexes blocks by [`BlockAddr`] using the low bits of the block
/// number as the set index, exactly as a physical cache indexed above the
/// block offset would. Per-block metadata of type `T` travels with each entry
/// (coherence state, dirty bit, owning cluster, ...).
///
/// All operations are O(associativity) over contiguous memory; the array
/// never allocates after construction. Residency is tracked by a maintained
/// counter, so [`CacheArray::len`] is O(1).
#[derive(Debug, Clone, PartialEq)]
pub struct CacheArray<T> {
    geometry: CacheGeometry,
    num_sets: usize,
    ways: usize,
    /// Tag slab, `num_sets * ways` long: the block number of each way.
    /// Meaningful only where the set's occupancy bit is set.
    tags: Vec<u64>,
    /// LRU slab, parallel to `tags`: recency rank within the set (0 = MRU).
    /// The occupied ways of a set always hold a permutation of `0..count`.
    ages: Vec<u8>,
    /// Metadata slab, parallel to `tags`.
    meta: Vec<Option<T>>,
    /// Per-set occupancy bitmask (bit `w` = way `w` holds a block).
    occupied: Vec<u64>,
    /// Number of blocks currently resident (maintained, O(1) `len`).
    resident: usize,
    stats: CacheStats,
}

impl<T> CacheArray<T> {
    /// Creates an empty array with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry's associativity exceeds 64 (the per-set
    /// occupancy word is a `u64`).
    pub fn new(geometry: CacheGeometry) -> Self {
        let num_sets = geometry.num_sets();
        let ways = geometry.ways;
        assert!(ways <= 64, "flat-slab cache arrays support at most 64 ways");
        let slots = num_sets * ways;
        let mut meta: Vec<Option<T>> = Vec::with_capacity(slots);
        // Hint huge-page backing for the large slabs before first touch:
        // probes index them by set at random, and with 4 KB pages each
        // probe of a big array (the ideal design's aggregate cache in
        // particular) costs a dTLB miss on top of the data miss.
        rnuca_types::os_hint::advise_huge_pages(
            meta.as_ptr(),
            slots * std::mem::size_of::<Option<T>>(),
        );
        meta.resize_with(slots, || None);
        let tags = vec![0u64; slots];
        rnuca_types::os_hint::advise_huge_pages_slice(&tags);
        CacheArray {
            geometry,
            num_sets,
            ways,
            tags,
            ages: vec![AGE_INVALID; slots],
            meta,
            occupied: vec![0; num_sets],
            resident: 0,
            stats: CacheStats::default(),
        }
    }

    /// The geometry this array was built with.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// Accumulated hit/miss/eviction statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets the accumulated statistics (contents are untouched).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Number of blocks currently resident.
    pub fn len(&self) -> usize {
        self.resident
    }

    /// Returns `true` if no blocks are resident.
    pub fn is_empty(&self) -> bool {
        self.resident == 0
    }

    fn set_index(&self, block: BlockAddr) -> usize {
        block.set_index(self.num_sets)
    }

    /// Hints the CPU to pull `block`'s set — its tag lines and occupancy
    /// word — into cache ahead of a probe. Purely a performance hint with
    /// no architectural effect; the simulator's batch drivers call this for
    /// upcoming references so independent probe misses overlap.
    #[inline]
    pub fn prefetch(&self, block: BlockAddr) {
        let set = self.set_index(block);
        let base = set * self.ways;
        rnuca_types::index_map::prefetch_read(&self.tags[base]);
        // A 16-way set spans two 64-byte tag lines; touch the second too.
        if self.ways > 8 {
            rnuca_types::index_map::prefetch_read(&self.tags[base + 8]);
        }
        rnuca_types::index_map::prefetch_read(&self.occupied[set]);
        // A hit promotes the way to MRU (ages) and reads its metadata; both
        // slabs are parallel to the tags, one line per set.
        rnuca_types::index_map::prefetch_read(&self.ages[base]);
        rnuca_types::index_map::prefetch_read(&self.meta[base]);
    }

    /// The way holding `block` in `set`, if resident.
    ///
    /// The scan is branchless — a tag-compare bitmask ANDed with the set's
    /// occupancy word — so the compiler can vectorize the tag comparisons
    /// and the probe never mispredicts on tag contents.
    #[inline]
    fn find_way(&self, set: usize, block: BlockAddr) -> Option<usize> {
        let tag = block.block_number();
        let base = set * self.ways;
        let tags = &self.tags[base..base + self.ways];
        let mut hit_mask = 0u64;
        for (w, &t) in tags.iter().enumerate() {
            hit_mask |= u64::from(t == tag) << w;
        }
        hit_mask &= self.occupied[set];
        if hit_mask != 0 {
            Some(hit_mask.trailing_zeros() as usize)
        } else {
            None
        }
    }

    /// Promotes way `w` of `set` to MRU, demoting the ways that were more
    /// recent. Unoccupied ways carry [`AGE_INVALID`] and are never demoted
    /// (their rank can never sit below a valid rank).
    #[inline]
    fn touch(&mut self, set: usize, w: usize) {
        let base = set * self.ways;
        let ages = &mut self.ages[base..base + self.ways];
        let rank = ages[w];
        for a in ages.iter_mut() {
            *a += u8::from(*a < rank);
        }
        ages[w] = 0;
    }

    /// Looks up a block, updating LRU state and hit/miss counters.
    ///
    /// Returns a reference to the stored metadata on a hit.
    pub fn probe(&mut self, block: BlockAddr) -> Option<&T> {
        match self.probe_entry(block) {
            ProbeEntry::Hit(e) => Some(self.entry_meta(e)),
            ProbeEntry::Miss(_) => None,
        }
    }

    /// Looks up a block, updating LRU state and hit/miss counters, returning
    /// mutable access to the stored metadata on a hit.
    pub fn probe_mut(&mut self, block: BlockAddr) -> Option<&mut T> {
        match self.probe_entry(block) {
            ProbeEntry::Hit(e) => Some(self.entry_meta_mut(e)),
            ProbeEntry::Miss(_) => None,
        }
    }

    /// Looks up a block, updating LRU state and hit/miss counters, and
    /// returns a handle: the resident way on a hit, or the searched set on a
    /// miss. A miss handle passed to [`CacheArray::fill_at`] turns the
    /// classic lookup-then-insert double probe into a single one.
    pub fn probe_entry(&mut self, block: BlockAddr) -> ProbeEntry {
        let set = self.set_index(block);
        match self.find_way(set, block) {
            Some(w) => {
                self.touch(set, w);
                self.stats.hits += 1;
                ProbeEntry::Hit(EntryRef {
                    set: set as u32,
                    way: w as u32,
                })
            }
            None => {
                self.stats.misses += 1;
                ProbeEntry::Miss(SetRef(set as u32))
            }
        }
    }

    /// The metadata of a resident way located by a probe or fill.
    pub fn entry_meta(&self, e: EntryRef) -> &T {
        self.meta[e.set as usize * self.ways + e.way as usize]
            .as_ref()
            .expect("entry handle points at an occupied way")
    }

    /// Mutable access to the metadata of a resident way.
    pub fn entry_meta_mut(&mut self, e: EntryRef) -> &mut T {
        self.meta[e.set as usize * self.ways + e.way as usize]
            .as_mut()
            .expect("entry handle points at an occupied way")
    }

    /// Checks residency without perturbing LRU state or statistics.
    pub fn peek(&self, block: BlockAddr) -> Option<&T> {
        let set = self.set_index(block);
        let w = self.find_way(set, block)?;
        self.meta[set * self.ways + w].as_ref()
    }

    /// Returns `true` if the block is resident (no LRU/statistics side effects).
    pub fn contains(&self, block: BlockAddr) -> bool {
        let set = self.set_index(block);
        self.find_way(set, block).is_some()
    }

    /// Fills `block` into the set a preceding [`CacheArray::probe_entry`]
    /// miss searched, without re-scanning the tags. The block must not be
    /// resident (which the miss established). If the set is full, the
    /// least-recently-used way is evicted and returned alongside the filled
    /// way's handle.
    pub fn fill_at(
        &mut self,
        slot: SetRef,
        block: BlockAddr,
        meta: T,
    ) -> (EntryRef, Option<Eviction<T>>) {
        let set = slot.0 as usize;
        debug_assert!(
            self.find_way(set, block).is_none(),
            "fill_at requires the block to be absent (a preceding probe miss)"
        );
        self.stats.fills += 1;
        let mask = self.occupied[set];
        let full = mask.count_ones() as usize >= self.ways;
        let (w, evicted) = if full {
            let w = self.lru_way(set);
            self.stats.evictions += 1;
            let base = set * self.ways;
            let victim = Eviction {
                block: BlockAddr::from_block_number(self.tags[base + w]),
                meta: self.meta[base + w]
                    .take()
                    .expect("occupied way has metadata"),
            };
            self.resident -= 1;
            (w, Some(victim))
        } else {
            // First free way: the lowest zero bit of the occupancy mask.
            ((!mask).trailing_zeros() as usize, None)
        };
        let base = set * self.ways;
        self.tags[base + w] = block.block_number();
        self.meta[base + w] = Some(meta);
        self.occupied[set] |= 1 << w;
        self.resident += 1;
        // Demote every occupied way, then seat the new block as MRU. Ranks
        // stay a permutation of 0..count.
        let ways = self.ways as u8;
        for a in &mut self.ages[base..base + self.ways] {
            *a += u8::from(*a < ways);
        }
        self.ages[base + w] = 0;
        (
            EntryRef {
                set: set as u32,
                way: w as u32,
            },
            evicted,
        )
    }

    /// The occupied way of `set` with the highest recency rank (the LRU way).
    fn lru_way(&self, set: usize) -> usize {
        let base = set * self.ways;
        let target = self.occupied[set].count_ones() as u8 - 1;
        self.ages[base..base + self.ways]
            .iter()
            .position(|&a| a == target)
            .expect("occupied ranks form a permutation of 0..count")
    }

    /// Inserts (fills) a block with the given metadata.
    ///
    /// If the block is already resident its metadata is replaced and its LRU
    /// position refreshed. If the set is full, the least-recently-used way is
    /// evicted and returned.
    pub fn insert(&mut self, block: BlockAddr, meta: T) -> Option<Eviction<T>> {
        let set = self.set_index(block);
        if let Some(w) = self.find_way(set, block) {
            self.meta[set * self.ways + w] = Some(meta);
            self.touch(set, w);
            return None;
        }
        self.fill_at(SetRef(set as u32), block, meta).1
    }

    /// Removes a block from the array, returning its metadata if it was resident.
    pub fn invalidate(&mut self, block: BlockAddr) -> Option<T> {
        let set = self.set_index(block);
        let w = self.find_way(set, block)?;
        self.stats.invalidations += 1;
        Some(self.remove_way(set, w))
    }

    /// Removes way `w` of `set`, keeping the remaining ranks a permutation.
    fn remove_way(&mut self, set: usize, w: usize) -> T {
        let base = set * self.ways;
        let rank = self.ages[base + w];
        let ways = self.ways as u8;
        for a in &mut self.ages[base..base + self.ways] {
            *a -= u8::from(*a > rank && *a < ways);
        }
        self.ages[base + w] = AGE_INVALID;
        self.occupied[set] &= !(1 << w);
        self.resident -= 1;
        self.meta[base + w]
            .take()
            .expect("occupied way has metadata")
    }

    /// Removes every resident block for which the predicate returns `true`,
    /// returning the removed blocks. Used for page shoot-downs during R-NUCA
    /// re-classification.
    pub fn invalidate_matching<F>(&mut self, mut pred: F) -> Vec<Eviction<T>>
    where
        F: FnMut(BlockAddr, &T) -> bool,
    {
        let mut removed = Vec::new();
        for set in 0..self.num_sets {
            let base = set * self.ways;
            let mut mask = self.occupied[set];
            while mask != 0 {
                let w = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                let block = BlockAddr::from_block_number(self.tags[base + w]);
                let keep = {
                    let meta = self.meta[base + w].as_ref().expect("occupied way");
                    !pred(block, meta)
                };
                if !keep {
                    self.stats.invalidations += 1;
                    let meta = self.remove_way(set, w);
                    removed.push(Eviction { block, meta });
                }
            }
        }
        removed
    }

    /// Iterates over all resident blocks and their metadata (set order, then way order).
    pub fn iter(&self) -> impl Iterator<Item = (BlockAddr, &T)> {
        self.occupied
            .iter()
            .enumerate()
            .flat_map(move |(set, &mask)| {
                let base = set * self.ways;
                (0..self.ways).filter_map(move |w| {
                    if (mask >> w) & 1 == 1 {
                        Some((
                            BlockAddr::from_block_number(self.tags[base + w]),
                            self.meta[base + w].as_ref().expect("occupied way"),
                        ))
                    } else {
                        None
                    }
                })
            })
    }

    /// Removes every block from the array.
    pub fn clear(&mut self) {
        for m in &mut self.meta {
            *m = None;
        }
        for a in &mut self.ages {
            *a = AGE_INVALID;
        }
        for o in &mut self.occupied {
            *o = 0;
        }
        self.resident = 0;
    }
}

impl<T: Snap> Snap for CacheArray<T> {
    /// Verbatim slab capture: tags, LRU ranks, metadata, and occupancy masks
    /// are encoded exactly as laid out, so a decoded array probes, promotes,
    /// and evicts identically to the original — not just as a set of blocks.
    fn encode(&self, out: &mut Vec<u8>) {
        self.geometry.encode(out);
        self.tags.encode(out);
        self.ages.encode(out);
        self.meta.encode(out);
        self.occupied.encode(out);
        self.resident.encode(out);
        self.stats.encode(out);
    }

    fn decode(r: &mut SnapReader<'_>) -> Self {
        let geometry = CacheGeometry::decode(r);
        // The large slabs get the same huge-page first-touch hint
        // `CacheArray::new` gives them, so a forked simulator probes at the
        // same dTLB cost as a warmed one.
        let tags = rnuca_types::snap::decode_vec_hinted(r);
        let ages = rnuca_types::snap::decode_vec_hinted(r);
        let meta = rnuca_types::snap::decode_vec_hinted(r);
        CacheArray {
            geometry,
            num_sets: geometry.num_sets(),
            ways: geometry.ways,
            tags,
            ages,
            meta,
            occupied: r.get(),
            resident: r.get(),
            stats: r.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnuca_types::config::CacheGeometry;

    fn tiny() -> CacheGeometry {
        // 4 sets x 2 ways x 64B blocks = 512B.
        CacheGeometry::new(512, 2, 64).unwrap()
    }

    fn b(n: u64) -> BlockAddr {
        BlockAddr::from_block_number(n)
    }

    #[test]
    fn miss_then_hit() {
        let mut c: CacheArray<u32> = CacheArray::new(tiny());
        assert!(c.probe(b(1)).is_none());
        c.insert(b(1), 7);
        assert_eq!(c.probe(b(1)), Some(&7));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_eviction_within_a_set() {
        let mut c: CacheArray<&str> = CacheArray::new(tiny());
        // Blocks 0, 4, 8 all map to set 0 (4 sets).
        c.insert(b(0), "a");
        c.insert(b(4), "b");
        // Touch block 0 so block 4 becomes LRU.
        assert!(c.probe(b(0)).is_some());
        let ev = c.insert(b(8), "c").expect("set is full, must evict");
        assert_eq!(ev.block, b(4));
        assert_eq!(ev.meta, "b");
        assert!(c.contains(b(0)));
        assert!(c.contains(b(8)));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn insert_existing_block_updates_metadata_without_eviction() {
        let mut c: CacheArray<u32> = CacheArray::new(tiny());
        c.insert(b(3), 1);
        assert!(c.insert(b(3), 2).is_none());
        assert_eq!(c.peek(b(3)), Some(&2));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn peek_does_not_touch_lru_or_stats() {
        let mut c: CacheArray<u32> = CacheArray::new(tiny());
        c.insert(b(0), 0);
        c.insert(b(4), 4);
        // Peek block 0 (older); it must NOT be promoted.
        assert_eq!(c.peek(b(0)), Some(&0));
        let hits_before = c.stats().hits;
        let ev = c.insert(b(8), 8).unwrap();
        assert_eq!(ev.block, b(0), "peek must not refresh LRU");
        assert_eq!(c.stats().hits, hits_before);
    }

    #[test]
    fn probe_mut_allows_in_place_update() {
        let mut c: CacheArray<u32> = CacheArray::new(tiny());
        c.insert(b(2), 10);
        if let Some(m) = c.probe_mut(b(2)) {
            *m += 5;
        }
        assert_eq!(c.peek(b(2)), Some(&15));
    }

    #[test]
    fn invalidate_removes_block() {
        let mut c: CacheArray<u32> = CacheArray::new(tiny());
        c.insert(b(5), 50);
        assert_eq!(c.invalidate(b(5)), Some(50));
        assert_eq!(c.invalidate(b(5)), None);
        assert!(!c.contains(b(5)));
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn invalidate_matching_removes_page_blocks() {
        let mut c: CacheArray<u64> = CacheArray::new(tiny());
        for n in 0..8 {
            c.insert(b(n), n);
        }
        // Remove all even block numbers (e.g. "blocks of a page being reclassified").
        let removed = c.invalidate_matching(|blk, _| blk.block_number() % 2 == 0);
        assert_eq!(removed.len(), 4);
        assert!(c.iter().all(|(blk, _)| blk.block_number() % 2 == 1));
    }

    #[test]
    fn different_sets_do_not_conflict() {
        let mut c: CacheArray<()> = CacheArray::new(tiny());
        // Blocks 0..4 map to distinct sets; filling them evicts nothing.
        for n in 0..4 {
            assert!(c.insert(b(n), ()).is_none());
        }
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn capacity_is_bounded_by_geometry() {
        let geom = tiny();
        let mut c: CacheArray<()> = CacheArray::new(geom);
        for n in 0..1000 {
            c.insert(b(n), ());
        }
        assert!(c.len() <= geom.num_blocks());
        assert_eq!(c.len(), geom.num_blocks());
    }

    #[test]
    fn clear_and_is_empty() {
        let mut c: CacheArray<()> = CacheArray::new(tiny());
        assert!(c.is_empty());
        c.insert(b(1), ());
        assert!(!c.is_empty());
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut c: CacheArray<()> = CacheArray::new(tiny());
        c.insert(b(1), ());
        c.probe(b(1));
        c.reset_stats();
        assert_eq!(c.stats().hits, 0);
        assert!(c.contains(b(1)));
    }

    #[test]
    fn probe_entry_miss_then_fill_at_is_a_single_probe() {
        let mut c: CacheArray<u32> = CacheArray::new(tiny());
        let slot = match c.probe_entry(b(4)) {
            ProbeEntry::Miss(slot) => slot,
            ProbeEntry::Hit(_) => panic!("cold cache cannot hit"),
        };
        let (entry, evicted) = c.fill_at(slot, b(4), 40);
        assert!(evicted.is_none());
        assert_eq!(c.entry_meta(entry), &40);
        match c.probe_entry(b(4)) {
            ProbeEntry::Hit(e) => {
                *c.entry_meta_mut(e) += 2;
            }
            ProbeEntry::Miss(_) => panic!("filled block must hit"),
        }
        assert_eq!(c.peek(b(4)), Some(&42));
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().fills, 1);
    }

    #[test]
    fn fill_at_evicts_the_lru_way_of_a_full_set() {
        let mut c: CacheArray<u32> = CacheArray::new(tiny());
        c.insert(b(0), 0);
        c.insert(b(4), 4);
        c.probe(b(0)); // block 4 becomes LRU
        let slot = match c.probe_entry(b(8)) {
            ProbeEntry::Miss(slot) => slot,
            ProbeEntry::Hit(_) => panic!("block 8 is absent"),
        };
        let (_, evicted) = c.fill_at(slot, b(8), 8);
        let ev = evicted.expect("full set must evict");
        assert_eq!(ev.block, b(4));
        assert_eq!(ev.meta, 4);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn stale_tags_of_invalidated_ways_never_match() {
        let mut c: CacheArray<u32> = CacheArray::new(tiny());
        c.insert(b(4), 1);
        c.invalidate(b(4));
        // The tag slab still holds block 4's number in the freed way; the
        // occupancy mask must keep it from matching.
        assert!(!c.contains(b(4)));
        assert!(c.probe(b(4)).is_none());
        // Refill and make sure exactly one copy exists.
        c.insert(b(4), 2);
        assert_eq!(c.iter().filter(|(blk, _)| *blk == b(4)).count(), 1);
    }

    #[test]
    fn lru_order_survives_interleaved_invalidations() {
        let mut c: CacheArray<u32> = CacheArray::new(CacheGeometry::new(1024, 4, 64).unwrap());
        // Four blocks in set 0 (multiples of 4), touched in a known order.
        for n in [0u64, 4, 8, 12] {
            c.insert(b(n), n as u32);
        }
        // Recency now 12 > 8 > 4 > 0. Drop the middle one.
        c.invalidate(b(8));
        // Refill with a new block; no eviction (set has a free way).
        assert!(c.insert(b(16), 16).is_none());
        // Set is full again; recency 16 > 12 > 4 > 0, so 0 is the victim.
        let ev = c.insert(b(20), 20).expect("full set");
        assert_eq!(ev.block, b(0));
        // And the next victim is 4.
        let ev = c.insert(b(24), 24).expect("full set");
        assert_eq!(ev.block, b(4));
    }
}
