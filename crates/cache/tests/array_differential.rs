//! Randomized differential test: the flat-slab [`CacheArray`] against a
//! straightforward reference model.
//!
//! The reference keeps each set as a `Vec` in strict recency order (most
//! recent last) — the obviously-correct encoding of true LRU — and the test
//! drives both implementations through a long random mix of probes, fills,
//! entry-handle fill sequences, invalidations, predicate shoot-downs, and
//! clears, comparing every return value, every eviction, the statistics
//! counters, and (periodically) the full resident contents. Any divergence
//! in the packed-age LRU bookkeeping, the occupancy masks, or backward
//! compatibility of the classic `insert` path fails loudly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rnuca_cache::{CacheArray, ProbeEntry};
use rnuca_types::addr::BlockAddr;
use rnuca_types::config::CacheGeometry;

/// Reference model: per-set recency lists, most recently used last.
struct RefModel {
    num_sets: usize,
    ways: usize,
    sets: Vec<Vec<(u64, u64)>>,
}

impl RefModel {
    fn new(geometry: CacheGeometry) -> Self {
        RefModel {
            num_sets: geometry.num_sets(),
            ways: geometry.ways,
            sets: vec![Vec::new(); geometry.num_sets()],
        }
    }

    fn set_of(&self, block: u64) -> usize {
        (block as usize) % self.num_sets
    }

    /// Probe with LRU refresh; returns the metadata on a hit.
    fn probe(&mut self, block: u64) -> Option<u64> {
        let set_idx = self.set_of(block);
        let set = &mut self.sets[set_idx];
        let pos = set.iter().position(|&(b, _)| b == block)?;
        let entry = set.remove(pos);
        set.push(entry);
        Some(entry.1)
    }

    fn peek(&self, block: u64) -> Option<u64> {
        self.sets[self.set_of(block)]
            .iter()
            .find(|&&(b, _)| b == block)
            .map(|&(_, m)| m)
    }

    /// Insert: replace + refresh on a duplicate, else fill, evicting the LRU
    /// head when the set is full. Returns the eviction.
    fn insert(&mut self, block: u64, meta: u64) -> Option<(u64, u64)> {
        let ways = self.ways;
        let set_idx = self.set_of(block);
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&(b, _)| b == block) {
            set.remove(pos);
            set.push((block, meta));
            return None;
        }
        let evicted = if set.len() >= ways {
            Some(set.remove(0))
        } else {
            None
        };
        set.push((block, meta));
        evicted
    }

    fn invalidate(&mut self, block: u64) -> Option<u64> {
        let set_idx = self.set_of(block);
        let set = &mut self.sets[set_idx];
        let pos = set.iter().position(|&(b, _)| b == block)?;
        Some(set.remove(pos).1)
    }

    fn invalidate_matching(&mut self, pred: impl Fn(u64, u64) -> bool) -> Vec<(u64, u64)> {
        let mut removed = Vec::new();
        for set in &mut self.sets {
            set.retain(|&(b, m)| {
                if pred(b, m) {
                    removed.push((b, m));
                    false
                } else {
                    true
                }
            });
        }
        removed
    }

    fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    fn contents(&self) -> Vec<(u64, u64)> {
        let mut all: Vec<(u64, u64)> = self.sets.iter().flatten().copied().collect();
        all.sort_unstable();
        all
    }
}

fn b(n: u64) -> BlockAddr {
    BlockAddr::from_block_number(n)
}

fn drive(geometry: CacheGeometry, seed: u64, steps: u32, key_space: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ours: CacheArray<u64> = CacheArray::new(geometry);
    let mut reference = RefModel::new(geometry);

    for step in 0..steps {
        let block = rng.gen_range(0..key_space);
        let meta = u64::from(step);
        match rng.gen_range(0..100) {
            // Probe with LRU side effects.
            0..=29 => {
                assert_eq!(ours.probe(b(block)).copied(), reference.probe(block));
            }
            // The classic lookup-then-insert path.
            30..=54 => {
                let ev = ours.insert(b(block), meta);
                let ref_ev = reference.insert(block, meta);
                assert_eq!(
                    ev.map(|e| (e.block.block_number(), e.meta)),
                    ref_ev,
                    "insert eviction diverged at step {step}"
                );
            }
            // The single-probe entry-handle path the simulator uses.
            55..=74 => match ours.probe_entry(b(block)) {
                ProbeEntry::Hit(entry) => {
                    assert_eq!(reference.probe(block), Some(*ours.entry_meta(entry)));
                    *ours.entry_meta_mut(entry) = meta;
                    reference.insert(block, meta); // refresh + replace
                }
                ProbeEntry::Miss(slot) => {
                    assert_eq!(reference.probe(block), None);
                    let (entry, ev) = ours.fill_at(slot, b(block), meta);
                    assert_eq!(ours.entry_meta(entry), &meta);
                    let ref_ev = reference.insert(block, meta);
                    assert_eq!(
                        ev.map(|e| (e.block.block_number(), e.meta)),
                        ref_ev,
                        "fill_at eviction diverged at step {step}"
                    );
                }
            },
            // Peek must not disturb anything.
            75..=84 => {
                assert_eq!(ours.peek(b(block)).copied(), reference.peek(block));
                assert_eq!(ours.contains(b(block)), reference.peek(block).is_some());
            }
            // Invalidation.
            85..=94 => {
                assert_eq!(ours.invalidate(b(block)), reference.invalidate(block));
            }
            // Page-style predicate shoot-down over a small block range.
            95..=98 => {
                let base = block & !7;
                let mut removed: Vec<(u64, u64)> = ours
                    .invalidate_matching(|blk, _| (base..base + 8).contains(&blk.block_number()))
                    .into_iter()
                    .map(|e| (e.block.block_number(), e.meta))
                    .collect();
                let mut ref_removed =
                    reference.invalidate_matching(|blk, _| (base..base + 8).contains(&blk));
                removed.sort_unstable();
                ref_removed.sort_unstable();
                assert_eq!(removed, ref_removed, "shoot-down diverged at step {step}");
            }
            // Occasional full clear.
            _ => {
                ours.clear();
                reference.sets.iter_mut().for_each(Vec::clear);
            }
        }
        assert_eq!(ours.len(), reference.len(), "len diverged at step {step}");
        assert_eq!(ours.is_empty(), reference.len() == 0);
        if step % 4096 == 0 {
            let mut contents: Vec<(u64, u64)> = ours
                .iter()
                .map(|(blk, &m)| (blk.block_number(), m))
                .collect();
            contents.sort_unstable();
            assert_eq!(contents, reference.contents(), "contents diverged");
        }
    }
    // Final full comparison.
    let mut contents: Vec<(u64, u64)> = ours
        .iter()
        .map(|(blk, &m)| (blk.block_number(), m))
        .collect();
    contents.sort_unstable();
    assert_eq!(contents, reference.contents());
}

#[test]
fn flat_slab_matches_reference_on_a_tiny_thrashing_geometry() {
    // 4 sets x 2 ways with a small key universe: constant conflict misses,
    // evictions, and duplicate-key refreshes.
    drive(CacheGeometry::new(512, 2, 64).unwrap(), 0xA11CE, 40_000, 64);
}

#[test]
fn flat_slab_matches_reference_on_a_wide_set() {
    // 2 sets x 16 ways: deep LRU chains exercise the packed-age ranks hard.
    drive(CacheGeometry::new(2048, 16, 64).unwrap(), 0xB0B, 40_000, 96);
}

#[test]
fn flat_slab_matches_reference_on_a_realistic_slice() {
    // 64 sets x 8 ways with a larger key space: a mix of cold sets, capacity
    // pressure, and shoot-downs, as the simulator's L2 slices see.
    drive(
        CacheGeometry::new(32_768, 8, 64).unwrap(),
        0xC0DE,
        60_000,
        4_096,
    );
}

#[test]
fn single_way_sets_degenerate_to_direct_mapped() {
    drive(CacheGeometry::new(256, 1, 64).unwrap(), 0xD1CE, 20_000, 32);
}
