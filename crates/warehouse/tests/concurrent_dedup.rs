//! Concurrent appends dedup to exactly one copy per key.
//!
//! Mirrors the `TraceArena` exactly-once population tests: many threads
//! race to append the same record set, and the store must end with each
//! distinct key stored exactly once, with the per-thread summaries
//! accounting for every attempt as either added or deduplicated.

use std::sync::Arc;
use std::thread;

use rnuca_warehouse::{RowKind, RunRecord, Warehouse};

fn scenario(workload: &str, design: &str, cores: i64) -> RunRecord {
    let mut r = RunRecord::new(RowKind::Scenario, 42, 5, "full");
    r.workload = Some(workload.to_string());
    r.design = Some(design.to_string());
    r.cores = Some(cores);
    r.total_cpi = Some(1.0 + cores as f64 / 64.0);
    r
}

fn distinct_records() -> Vec<RunRecord> {
    let mut records = Vec::new();
    for workload in ["apache", "oltp", "em3d"] {
        for design in ["R", "P", "S", "A", "I"] {
            for cores in [16, 32, 64] {
                records.push(scenario(workload, design, cores));
            }
        }
    }
    records
}

#[test]
fn racing_appends_store_each_key_exactly_once() {
    let records = Arc::new(distinct_records());
    let warehouse = Arc::new(Warehouse::new());
    let threads = 8;

    let mut handles = Vec::new();
    for t in 0..threads {
        let records = Arc::clone(&records);
        let warehouse = Arc::clone(&warehouse);
        handles.push(thread::spawn(move || {
            // Each thread appends every record, one call per record and
            // starting at a different offset so the interleavings vary.
            let mut added = 0;
            for i in 0..records.len() {
                let record = &records[(i + t * 7) % records.len()];
                if warehouse.append(record) {
                    added += 1;
                }
            }
            added
        }));
    }

    let total_added: usize = handles
        .into_iter()
        .map(|h| h.join().expect("no panic"))
        .sum();
    assert_eq!(
        total_added,
        records.len(),
        "across all threads each key must be added exactly once"
    );
    assert_eq!(warehouse.len(), records.len());

    // And the store agrees row-by-row: one scenario row per (workload,
    // design, cores) combination.
    let out = warehouse
        .query("kind=scenario & workload=apache & design=R show cores sort cores")
        .expect("clean query");
    let cores: Vec<String> = out.rows.iter().map(|r| r[0].to_string()).collect();
    assert_eq!(cores, ["16", "32", "64"]);
}

#[test]
fn racing_batch_appends_also_dedup_exactly_once() {
    let records = Arc::new(distinct_records());
    let warehouse = Arc::new(Warehouse::new());

    let mut handles = Vec::new();
    for _ in 0..8 {
        let records = Arc::clone(&records);
        let warehouse = Arc::clone(&warehouse);
        handles.push(thread::spawn(move || warehouse.append_all(&records).added));
    }
    let total_added: usize = handles
        .into_iter()
        .map(|h| h.join().expect("no panic"))
        .sum();
    assert_eq!(total_added, records.len());
    assert_eq!(warehouse.len(), records.len());
}
