//! Crash-safety of the warehouse save path: a fault injected at every stage
//! of `Warehouse::save` — writing the temp file, syncing it, renaming it
//! into place, or tearing the temp write halfway — must leave either the
//! old store or the new store on disk, fully intact, and never a torn file
//! or a stray `.tmp` sibling.
//!
//! Fail points are live because this test depends on `rnuca-types` with the
//! `failpoints` feature (dev-dependencies only).

use rnuca_types::failpoint::{self, FailAction, FailSpec};
use rnuca_warehouse::{RowKind, RunRecord, Warehouse};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Serializes the tests in this binary around the process-wide fail-point
/// registry.
static SERIAL: Mutex<()> = Mutex::new(());

fn record(workload: &str, cores: i64) -> RunRecord {
    let mut r = RunRecord::new(RowKind::Sweep, 42, 5, "smoke");
    r.fingerprint = cores as u64;
    r.workload = Some(workload.to_string());
    r.cores = Some(cores);
    r.total_cpi = Some(1.5);
    r
}

fn store_with(rows: &[RunRecord]) -> Warehouse {
    let store = Warehouse::new();
    store.append_all(rows);
    store
}

fn save_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("rnuca-atomic-{}-{tag}.bin", std::process::id()))
}

fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .expect("test paths have names")
        .to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Every injectable stage of the save path, in write order.
fn stages() -> Vec<(&'static str, FailAction)> {
    vec![
        ("warehouse::save::temp_write", FailAction::Io),
        ("warehouse::save::torn_temp", FailAction::Io),
        ("warehouse::save::fsync", FailAction::Io),
        ("warehouse::save::rename", FailAction::Io),
    ]
}

#[test]
fn a_failed_save_leaves_the_old_store_intact() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let old = store_with(&[record("oltp", 16)]);
    let new = store_with(&[record("oltp", 16), record("em3d", 32)]);
    for (site, action) in stages() {
        let path = save_path(&site.replace("::", "-"));
        old.save(&path).expect("the initial save is fault-free");
        let old_bytes = std::fs::read(&path).expect("the initial save exists");
        {
            let _guard = failpoint::arm(&[FailSpec::nth(site, action, 1)]);
            let err = new
                .save(&path)
                .expect_err("the injected fault must fail the save");
            assert!(
                err.to_string().contains(site),
                "{site}: the error must name the injected site, got: {err}"
            );
        }
        // Old store intact, byte for byte, and still opens; no temp debris.
        assert_eq!(
            std::fs::read(&path).expect("the old store must survive"),
            old_bytes,
            "{site}: a failed save must not disturb the old store"
        );
        let reopened = Warehouse::open(&path).expect("the old store still opens");
        assert_eq!(reopened.len(), 1, "{site}");
        assert!(
            !tmp_sibling(&path).exists(),
            "{site}: a failed save must clean up its temp file"
        );
        // The fault was transient: the very next save lands the new store.
        new.save(&path).expect("a clean retry succeeds");
        let final_store = Warehouse::open(&path).expect("the new store opens");
        assert_eq!(final_store.len(), 2, "{site}");
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn a_failed_first_save_leaves_no_file_behind() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let store = store_with(&[record("oltp", 16)]);
    for (site, action) in stages() {
        let path = save_path(&format!("fresh-{}", site.replace("::", "-")));
        std::fs::remove_file(&path).ok();
        {
            let _guard = failpoint::arm(&[FailSpec::nth(site, action, 1)]);
            store
                .save(&path)
                .expect_err("the injected fault must fail the save");
        }
        assert!(
            !path.exists(),
            "{site}: a failed first save must not materialize a store"
        );
        assert!(
            !tmp_sibling(&path).exists(),
            "{site}: a failed first save must clean up its temp file"
        );
        // A missing store opens empty — the documented cold-start path.
        let opened = Warehouse::open(&path).expect("missing stores open empty");
        assert_eq!(opened.len(), 0, "{site}");
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn a_torn_write_can_never_be_mistaken_for_a_store() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    // Force the torn half-write THROUGH to the final path (simulating an
    // OS that renamed a partially flushed file after power loss) and prove
    // the checksum trailer refuses it with a typed, offset-carrying error.
    let store = store_with(&[record("oltp", 16), record("em3d", 32)]);
    let path = save_path("torn-final");
    store.save(&path).expect("the initial save is fault-free");
    let bytes = std::fs::read(&path).expect("saved store exists");
    std::fs::write(&path, &bytes[..bytes.len() / 2]).expect("simulate the torn file");
    match Warehouse::open(&path) {
        Err(e @ rnuca_warehouse::StoreError::Corrupt { offset, .. }) => {
            assert!(offset <= bytes.len() / 2, "offset points into the file");
            assert!(!e.to_string().is_empty());
        }
        other => panic!("a torn store must open as Corrupt, got: {other:?}"),
    }
    std::fs::remove_file(&path).ok();
}
