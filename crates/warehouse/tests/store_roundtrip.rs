//! Property test: the warehouse byte codec is a faithful round trip.
//!
//! For random batches of records — including nullable cells, interned
//! string reuse, and floats with arbitrary bit patterns (NaN payloads
//! included) — `append → encode → decode` must reproduce every cell
//! bit-identically, re-encode to the same bytes (canonical encoding),
//! and preserve the dedup index so re-appending the original records
//! adds zero rows.

use proptest::prelude::*;
use rnuca_warehouse::{RowKind, RunRecord, Value, Warehouse};

/// Deterministically expands five random words into one record, hitting
/// every column type and both null and non-null cells.
fn record_from(id: u64, kind_idx: u64, a: u64, b: u64, c: u64) -> RunRecord {
    let kind = match kind_idx % 4 {
        0 => RowKind::Scenario,
        1 => RowKind::Group,
        2 => RowKind::Totals,
        _ => RowKind::Sweep,
    };
    let config = ["full", "quick", "smoke", "custom"][(a % 4) as usize];
    let mut r = RunRecord::new(kind, (id % 1000) as i64, 5, config);
    r.fingerprint = a;
    r.partial = a & 1 == 0;
    if a & 2 == 0 {
        r.workload = Some(format!("wl{}", id % 7));
    }
    if a & 4 == 0 {
        r.design = Some(["R", "P", "S", "A", "I"][(b % 5) as usize].to_string());
    }
    if a & 8 == 0 {
        r.cores = Some((b % 128) as i64);
    }
    if a & 16 == 0 {
        r.slice_kb = Some((b % 2048) as i64);
    }
    if a & 32 == 0 {
        // Arbitrary bit pattern: exercises NaN payloads, infinities,
        // signed zeros. The store must round-trip the exact bits.
        r.total_cpi = Some(f64::from_bits(c));
    }
    if a & 64 == 0 {
        r.off_chip_rate = Some(f64::from_bits(c.rotate_left(17)));
    }
    if a & 128 == 0 {
        r.refs = Some(b as i64);
    }
    if a & 256 == 0 {
        r.group = Some(format!("wl{}/x/{}cores", id % 7, b % 128));
    }
    if a & 512 == 0 {
        r.blocks_per_sec = Some((b % 10_000_000) as f64 + 0.5);
    }
    r
}

/// Bit-level cell equality: `Float` compares by `to_bits`, so NaN == NaN
/// when the payloads match (plain `PartialEq` would reject every NaN).
fn bits_eq(x: &Value, y: &Value) -> bool {
    match (x, y) {
        (Value::Float(a), Value::Float(b)) => a.to_bits() == b.to_bits(),
        _ => x == y,
    }
}

proptest! {
    #[test]
    fn append_reopen_query_is_identity(
        rows in proptest::collection::vec(
            (any::<u64>(), 0u64..4, any::<u64>(), any::<u64>(), any::<u64>()),
            1..24,
        ),
    ) {
        let records: Vec<RunRecord> = rows
            .iter()
            .map(|&(id, k, a, b, c)| record_from(id, k, a, b, c))
            .collect();

        let original = Warehouse::new();
        let summary = original.append_all(&records);
        prop_assert_eq!(summary.added + summary.deduplicated, records.len());

        let bytes = original.to_bytes();
        let reopened = Warehouse::from_bytes(&bytes).expect("decode of fresh encode");

        // Same rows, bit-identical cells.
        prop_assert_eq!(reopened.len(), original.len());
        let want = original.query("").expect("empty query");
        let got = reopened.query("").expect("empty query");
        prop_assert_eq!(&want.columns, &got.columns);
        prop_assert_eq!(want.rows.len(), got.rows.len());
        for (row_w, row_g) in want.rows.iter().zip(&got.rows) {
            for (cell_w, cell_g) in row_w.iter().zip(row_g) {
                prop_assert!(
                    bits_eq(cell_w, cell_g),
                    "cell differs after reopen: {:?} vs {:?}", cell_w, cell_g
                );
            }
        }

        // The encoding is canonical: encode(decode(bytes)) == bytes.
        prop_assert_eq!(reopened.to_bytes(), bytes);

        // The dedup index survives the round trip: the same records all
        // dedup against the reopened store.
        let again = reopened.append_all(&records);
        prop_assert_eq!(again.added, 0);
        prop_assert_eq!(again.deduplicated, records.len());
    }
}
