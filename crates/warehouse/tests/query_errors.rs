//! Query diagnostics: every class of user mistake gets a message that
//! names the problem, carries the right span, and (where a fix is
//! guessable) suggests it — and a broken clause never hides the errors
//! after it.

use rnuca_warehouse::{render_errors, RowKind, RunRecord, Span, Warehouse};

fn store_with_one_row() -> Warehouse {
    let w = Warehouse::new();
    let mut r = RunRecord::new(RowKind::Scenario, 42, 5, "full");
    r.workload = Some("apache".to_string());
    r.design = Some("R".to_string());
    r.cores = Some(32);
    w.append(&r);
    w
}

#[test]
fn unknown_column_points_at_the_name_and_suggests() {
    let w = store_with_one_row();
    let src = "design=R & coress>=32";
    let errors = w.query(src).expect_err("coress is not a column");
    assert_eq!(errors.len(), 1);
    assert_eq!(errors[0].message, "unknown column `coress`");
    assert_eq!(
        errors[0].span,
        Span::new(11, 17),
        "span must cover `coress`"
    );
    assert_eq!(errors[0].help.as_deref(), Some("did you mean `cores`?"));

    let rendered = errors[0].render(src);
    assert!(rendered.contains("^^^^^^"), "caret underline:\n{rendered}");
    assert!(rendered.contains("= help: did you mean `cores`?"));
}

#[test]
fn type_mismatch_names_column_type_and_value_type() {
    let w = store_with_one_row();
    let src = "cores=apache";
    let errors = w.query(src).expect_err("int column, string value");
    assert_eq!(errors.len(), 1);
    assert_eq!(
        errors[0].message,
        "type mismatch: column `cores` is int, but the value is a string"
    );
    assert_eq!(errors[0].span, Span::new(6, 12), "span must cover `apache`");
    assert!(errors[0]
        .help
        .as_deref()
        .expect("hint")
        .contains("cores>=32"));
}

#[test]
fn ordering_operator_on_a_string_column_is_rejected() {
    let w = store_with_one_row();
    let src = "design>=R";
    let errors = w.query(src).expect_err("str columns are equality-only");
    assert_eq!(errors.len(), 1);
    assert_eq!(
        errors[0].message,
        "operator `>=` cannot apply to str column `design`"
    );
    assert_eq!(errors[0].span, Span::new(6, 8), "span must cover `>=`");
    assert_eq!(
        errors[0].help.as_deref(),
        Some("str columns support only `=` and `!=`")
    );
}

#[test]
fn all_mistakes_surface_in_one_pass() {
    let w = store_with_one_row();
    // Three independent mistakes: unknown column, bad operator, missing
    // value. Resilient parsing must report all of them together.
    let src = "coress=1 & design>=R & cores>=";
    let errors = w.query(src).expect_err("three broken clauses");
    assert_eq!(errors.len(), 3, "{errors:?}");
    assert!(errors
        .iter()
        .any(|e| e.message.contains("unknown column `coress`")));
    assert!(errors
        .iter()
        .any(|e| e.message.contains("operator `>=` cannot apply")));
    assert!(errors
        .iter()
        .any(|e| e.message.contains("expected a value after `>=`")));

    // render_errors stacks one compiler-style block per diagnostic.
    let rendered = render_errors(&errors, src);
    assert_eq!(rendered.matches("error:").count(), 3, "{rendered}");
    assert_eq!(
        rendered
            .matches("  | coress=1 & design>=R & cores>=")
            .count(),
        3
    );
}

#[test]
fn good_clauses_still_execute_after_fixing_the_bad_one() {
    // The recovery story end-to-end: the fixed-up query runs and filters.
    let w = store_with_one_row();
    let out = w
        .query("design=R & cores>=32 show workload")
        .expect("clean");
    assert_eq!(out.rows.len(), 1);
    let none = w.query("design=R & cores>=33").expect("clean");
    assert_eq!(none.rows.len(), 0);
}

#[test]
fn end_of_query_errors_use_a_point_span() {
    let w = store_with_one_row();
    let src = "cores>=";
    let errors = w.query(src).expect_err("missing value");
    assert_eq!(errors.len(), 1);
    assert_eq!(errors[0].span, Span::point(src.len()));
    // The caret still renders (one caret just past the text).
    let caret_line = errors[0]
        .render(src)
        .lines()
        .nth(2)
        .expect("caret line")
        .to_string();
    assert!(caret_line.ends_with('^'), "{caret_line}");
}
