//! Append-only columnar results warehouse with a typed query language.
//!
//! Every measured run the simulator produces — perf-gate scenarios, fused
//! group aggregates, report totals, and sweep points — lands in one
//! [`Warehouse`]: a versioned, structure-of-arrays columnar store keyed by
//! `(workload fingerprint, design, geometry, seed, schema version)`. The
//! key makes appends idempotent: re-ingesting the same report or re-running
//! the same sweep adds zero new rows, so repeated CI runs and local sweeps
//! accumulate incrementally instead of duplicating.
//!
//! On top of the store sits a small typed query language:
//!
//! ```text
//! design=R & cores>=32 sort off_chip_rate show workload, cores, off_chip_rate top 5
//! ```
//!
//! The pipeline is a lexer, a resilient parser that collects every syntax
//! error in one pass, name resolution against the typed column
//! [catalog](catalog::CATALOG) (with did-you-mean suggestions), and an
//! executor supporting conjunctive filters, comparisons, sorting,
//! projection, and row limits. Errors carry byte spans into the query text
//! and render in compiler style.
//!
//! The CI perf gate is itself a query over this store: the gate verdict is
//! "does at least one totals row from the latest batch clear the baseline
//! threshold", evaluated by the same engine that serves `figures query`.
#![warn(missing_docs)]

pub mod catalog;
pub mod query;
pub mod record;
pub mod store;

pub use catalog::{column_index, ColumnType, CATALOG};
pub use query::{render_errors, QueryError, QueryOutput, Span};
pub use record::{RowKind, RunRecord};
pub use store::{AppendSummary, StoreError, Value, Warehouse};
