//! The typed column catalog the store and the query language share.
//!
//! The catalog is static: every warehouse file carries the same fixed set
//! of columns, and the file header pins a hash of the catalog so a store
//! written against a different column set is rejected with a clear error
//! instead of silently misread. Name resolution in the query layer checks
//! column names and operator/type compatibility against this table.

use rnuca_types::Fnv64;

/// The type of one warehouse column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float (stored by bit pattern, round-trips exactly).
    Float,
    /// Boolean.
    Bool,
    /// Interned UTF-8 string.
    Str,
}

impl ColumnType {
    /// The lowercase name used in error messages and the file header hash.
    pub fn name(self) -> &'static str {
        match self {
            ColumnType::Int => "int",
            ColumnType::Float => "float",
            ColumnType::Bool => "bool",
            ColumnType::Str => "str",
        }
    }
}

/// One column of the catalog: its query-visible name and its type.
///
/// Columns not listed as required may be null on any given row (a totals
/// row has no `workload`; a scenario row has no `blocks_per_sec`).
#[derive(Debug, Clone, Copy)]
pub struct Column {
    /// The name used in queries and JSON output.
    pub name: &'static str,
    /// The column's type.
    pub ty: ColumnType,
}

/// The full catalog, in storage order.
///
/// `batch` is assigned by the store at append time (monotonic per
/// [`Warehouse::append_all`](crate::Warehouse::append_all) call); every
/// other column comes from the [`RunRecord`](crate::RunRecord).
pub const CATALOG: &[Column] = &[
    Column {
        name: "batch",
        ty: ColumnType::Int,
    },
    Column {
        name: "kind",
        ty: ColumnType::Str,
    },
    Column {
        name: "workload",
        ty: ColumnType::Str,
    },
    Column {
        name: "design",
        ty: ColumnType::Str,
    },
    Column {
        name: "letter",
        ty: ColumnType::Str,
    },
    Column {
        name: "cores",
        ty: ColumnType::Int,
    },
    Column {
        name: "slice_kb",
        ty: ColumnType::Int,
    },
    Column {
        name: "cluster",
        ty: ColumnType::Int,
    },
    Column {
        name: "seed",
        ty: ColumnType::Int,
    },
    Column {
        name: "schema",
        ty: ColumnType::Int,
    },
    Column {
        name: "config",
        ty: ColumnType::Str,
    },
    Column {
        name: "partial",
        ty: ColumnType::Bool,
    },
    Column {
        name: "group",
        ty: ColumnType::Str,
    },
    Column {
        name: "refs",
        ty: ColumnType::Int,
    },
    Column {
        name: "scenarios",
        ty: ColumnType::Int,
    },
    Column {
        name: "groups",
        ty: ColumnType::Int,
    },
    Column {
        name: "total_cpi",
        ty: ColumnType::Float,
    },
    Column {
        name: "cpi_busy",
        ty: ColumnType::Float,
    },
    Column {
        name: "cpi_l1_to_l1",
        ty: ColumnType::Float,
    },
    Column {
        name: "cpi_l2",
        ty: ColumnType::Float,
    },
    Column {
        name: "cpi_off_chip",
        ty: ColumnType::Float,
    },
    Column {
        name: "cpi_other",
        ty: ColumnType::Float,
    },
    Column {
        name: "cpi_reclass",
        ty: ColumnType::Float,
    },
    Column {
        name: "off_chip_rate",
        ty: ColumnType::Float,
    },
    Column {
        name: "l1_to_l1_rate",
        ty: ColumnType::Float,
    },
    Column {
        name: "misclass_rate",
        ty: ColumnType::Float,
    },
    Column {
        name: "reclassifications",
        ty: ColumnType::Int,
    },
    Column {
        name: "fork_nanos",
        ty: ColumnType::Int,
    },
    Column {
        name: "measured_nanos",
        ty: ColumnType::Int,
    },
    Column {
        name: "loop_nanos",
        ty: ColumnType::Int,
    },
    Column {
        name: "blocks_per_sec",
        ty: ColumnType::Float,
    },
    Column {
        name: "jobs_per_sec",
        ty: ColumnType::Float,
    },
    Column {
        name: "failure",
        ty: ColumnType::Str,
    },
];

/// The position of `name` in [`CATALOG`], if it is a known column.
pub fn column_index(name: &str) -> Option<usize> {
    CATALOG.iter().position(|c| c.name == name)
}

/// A fingerprint of the catalog (names and types, in order).
///
/// Written into every store file header; a mismatch on open means the file
/// was produced by an incompatible catalog revision and must be re-built,
/// which [`StoreError::CatalogMismatch`](crate::StoreError) reports rather
/// than decoding columns under the wrong layout.
pub fn catalog_hash() -> u64 {
    let mut h = Fnv64::new();
    for col in CATALOG {
        h.write_str(col.name);
        h.write_str(col.ty.name());
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_resolvable() {
        for (i, col) in CATALOG.iter().enumerate() {
            assert_eq!(
                column_index(col.name),
                Some(i),
                "duplicate or shadowed column {}",
                col.name
            );
        }
        assert_eq!(column_index("no_such_column"), None);
    }

    #[test]
    fn hash_is_stable_across_calls() {
        assert_eq!(catalog_hash(), catalog_hash());
        assert_ne!(catalog_hash(), 0);
    }
}
