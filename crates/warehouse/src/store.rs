//! The columnar store: SoA slabs, dedup index, byte codec, and the
//! thread-safe [`Warehouse`] wrapper.
//!
//! Layout follows the simulator's slab idiom (`TraceSlab`, `EntryTable`):
//! one contiguous array per column plus a validity byte per cell, with
//! strings interned into a shared pool so repeated workload/design names
//! cost four bytes per row. The file format is little-endian, versioned,
//! and headed by a catalog hash, so decoding against a changed column set
//! fails loudly instead of misreading slabs.
//!
//! The store is *logically* append-only: rows are never mutated or
//! removed, and every append is keyed by [`RunRecord::key`] against a
//! `HashMap` index, which makes re-appends no-ops. Persistence rewrites
//! the file wholesale — row counts are thousands, not billions, and a
//! single atomic rewrite keeps the format trivially seekable (fixed-width
//! slabs, mmap-friendly) without a journal.

use std::collections::HashMap;
use std::fmt;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::catalog::{catalog_hash, ColumnType, CATALOG};
use crate::query::{self, QueryError, QueryOutput};
use crate::record::RunRecord;
use rnuca_types::failpoint;
use rnuca_types::Fnv64;

/// Eight magic bytes opening every warehouse file.
const MAGIC: &[u8; 8] = b"RNUCAWH\0";

/// Bumped on any change to the byte layout below.
/// Version 2 added the FNV-64 checksum trailer.
const FORMAT_VERSION: u32 = 2;

/// One materialized cell, as queries and projections see it.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A null cell (the record left the column unset).
    Null,
    /// An integer cell.
    Int(i64),
    /// A float cell.
    Float(f64),
    /// A boolean cell.
    Bool(bool),
    /// A string cell.
    Str(String),
}

impl fmt::Display for Value {
    /// Table rendering: nulls print as `-`; floats print shortest-exact.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "-"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v}"),
        }
    }
}

impl Value {
    /// JSON rendering of this cell (`null`, number, boolean, or string).
    pub fn to_json(&self) -> String {
        match self {
            Value::Null => "null".to_string(),
            Value::Int(v) => v.to_string(),
            Value::Float(v) => {
                if v.is_finite() {
                    format!("{v}")
                } else {
                    "null".to_string()
                }
            }
            Value::Bool(v) => v.to_string(),
            Value::Str(v) => json_string(v),
        }
    }
}

/// Escapes `s` as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Why a store failed to open or save.
#[derive(Debug)]
pub enum StoreError {
    /// The bytes are not a warehouse file, or are truncated/torn/garbled.
    /// Never a panic, never silently-partial data: the whole file is
    /// checksummed, so a torn save or a bit flip lands here.
    Corrupt {
        /// Byte offset where decoding stopped making sense.
        offset: usize,
        /// What was wrong there.
        message: String,
    },
    /// The file uses a format version this build does not read.
    Version(u32),
    /// The file was written against a different column catalog.
    CatalogMismatch {
        /// Catalog hash found in the file header.
        found: u64,
        /// Catalog hash this build expects.
        expected: u64,
    },
    /// The underlying file could not be read or written.
    Io(std::io::Error),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Corrupt { offset, message } => {
                write!(f, "corrupt warehouse file at byte {offset}: {message}")
            }
            StoreError::Version(v) => write!(
                f,
                "warehouse format version {v} is not supported (this build reads {FORMAT_VERSION})"
            ),
            StoreError::CatalogMismatch { found, expected } => write!(
                f,
                "warehouse catalog mismatch: file has {found:#018x}, this build expects \
                 {expected:#018x}; re-ingest into a fresh store"
            ),
            StoreError::Io(e) => write!(f, "warehouse i/o error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl StoreError {
    /// Renders this error in compiler style against the file it came from
    /// — the same shape as [`QueryError::render`], with a hex context
    /// window pointing at the offending byte for corruption errors:
    ///
    /// ```text
    /// error: corrupt warehouse file: checksum mismatch: ...
    ///   --> bench/warehouse.bin (byte 212 of 220)
    ///    | 000000d0  4f 4c 54 50 [..] 44 42 32
    ///    |                       ^^
    ///    = help: restore the file from a backup, or delete it and re-ingest
    /// ```
    pub fn render(&self, path: &Path, bytes: &[u8]) -> String {
        match self {
            StoreError::Corrupt { offset, message } => {
                let mut out = format!(
                    "error: corrupt warehouse file: {message}\n  --> {} (byte {offset} of {})\n",
                    path.display(),
                    bytes.len()
                );
                out.push_str(&hex_context(bytes, *offset));
                out.push_str(
                    "   = help: restore the file from a backup, or delete it and re-ingest",
                );
                out
            }
            StoreError::Version(_) => format!(
                "error: {self}\n  --> {}\n   = help: re-run the sweep (or re-ingest) with this \
                 build to write the current format",
                path.display()
            ),
            StoreError::CatalogMismatch { .. } => {
                format!("error: {self}\n  --> {}", path.display())
            }
            StoreError::Io(_) => format!("error: {self}\n  --> {}", path.display()),
        }
    }
}

/// One hex-dump line (16 bytes) around `offset`, caret under the byte —
/// the corruption renderer's context window. Empty for empty files; for
/// an offset at end-of-file (truncation), the last line is shown with the
/// caret past its final byte.
fn hex_context(bytes: &[u8], offset: usize) -> String {
    if bytes.is_empty() {
        return String::new();
    }
    let at = offset.min(bytes.len());
    let line = (at.min(bytes.len() - 1) / 16) * 16;
    let end = (line + 16).min(bytes.len());
    let mut hex = String::new();
    for (i, b) in bytes[line..end].iter().enumerate() {
        if i > 0 {
            hex.push(' ');
        }
        hex.push_str(&format!("{b:02x}"));
    }
    let col = at - line;
    format!(
        "   | {line:08x}  {hex}\n   |           {}^^\n",
        " ".repeat(col * 3)
    )
}

/// The outcome of one append call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppendSummary {
    /// Rows actually added.
    pub added: usize,
    /// Rows skipped because their key was already present.
    pub deduplicated: usize,
    /// The batch number stamped on the added rows.
    pub batch: u32,
}

/// Interned string storage: each distinct string stored once, cells hold
/// a `u32` id.
#[derive(Debug, Default)]
struct StringPool {
    strings: Vec<String>,
    index: HashMap<String, u32>,
}

impl StringPool {
    fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.index.get(s) {
            return id;
        }
        let id = u32::try_from(self.strings.len()).expect("string pool fits u32");
        self.strings.push(s.to_string());
        self.index.insert(s.to_string(), id);
        id
    }

    fn get(&self, id: u32) -> &str {
        &self.strings[id as usize]
    }
}

/// One column's cells, structure-of-arrays style.
#[derive(Debug)]
enum ColumnData {
    Int(Vec<i64>),
    Float(Vec<f64>),
    Bool(Vec<u8>),
    Str(Vec<u32>),
}

impl ColumnData {
    fn with_type(ty: ColumnType) -> Self {
        match ty {
            ColumnType::Int => ColumnData::Int(Vec::new()),
            ColumnType::Float => ColumnData::Float(Vec::new()),
            ColumnType::Bool => ColumnData::Bool(Vec::new()),
            ColumnType::Str => ColumnData::Str(Vec::new()),
        }
    }
}

/// One column: a validity byte per row plus the typed data slab.
#[derive(Debug)]
struct ColumnSlab {
    valid: Vec<u8>,
    data: ColumnData,
}

impl ColumnSlab {
    fn with_type(ty: ColumnType) -> Self {
        ColumnSlab {
            valid: Vec::new(),
            data: ColumnData::with_type(ty),
        }
    }

    /// Appends one cell; null pushes a zeroed placeholder so every slab
    /// stays exactly `row_count` long (fixed-width, seekable).
    fn push(&mut self, value: Value, pool: &mut StringPool) {
        let valid = !matches!(value, Value::Null);
        self.valid.push(u8::from(valid));
        match (&mut self.data, value) {
            (ColumnData::Int(v), Value::Int(x)) => v.push(x),
            (ColumnData::Int(v), Value::Null) => v.push(0),
            (ColumnData::Float(v), Value::Float(x)) => v.push(x),
            (ColumnData::Float(v), Value::Null) => v.push(0.0),
            (ColumnData::Bool(v), Value::Bool(x)) => v.push(u8::from(x)),
            (ColumnData::Bool(v), Value::Null) => v.push(0),
            (ColumnData::Str(v), Value::Str(x)) => v.push(pool.intern(&x)),
            (ColumnData::Str(v), Value::Null) => v.push(0),
            (_, v) => unreachable!("cell {v:?} does not match the column type"),
        }
    }

    fn value(&self, row: usize, pool: &StringPool) -> Value {
        if self.valid[row] == 0 {
            return Value::Null;
        }
        match &self.data {
            ColumnData::Int(v) => Value::Int(v[row]),
            ColumnData::Float(v) => Value::Float(v[row]),
            ColumnData::Bool(v) => Value::Bool(v[row] != 0),
            ColumnData::Str(v) => Value::Str(pool.get(v[row]).to_string()),
        }
    }
}

/// The single-threaded store: slabs, keys, dedup index.
#[derive(Debug)]
pub(crate) struct Store {
    keys: Vec<u64>,
    index: HashMap<u64, usize>,
    next_batch: u32,
    pool: StringPool,
    columns: Vec<ColumnSlab>,
}

impl Store {
    fn new() -> Self {
        Store {
            keys: Vec::new(),
            index: HashMap::new(),
            next_batch: 0,
            pool: StringPool::default(),
            columns: CATALOG
                .iter()
                .map(|c| ColumnSlab::with_type(c.ty))
                .collect(),
        }
    }

    pub(crate) fn row_count(&self) -> usize {
        self.keys.len()
    }

    /// The cell at (`row`, `col`), materialized.
    pub(crate) fn value(&self, row: usize, col: usize) -> Value {
        self.columns[col].value(row, &self.pool)
    }

    /// Appends `record` unless its key is already present.
    fn push_record(&mut self, record: &RunRecord, batch: u32) -> bool {
        let key = record.key();
        if self.index.contains_key(&key) {
            return false;
        }
        let row = self.keys.len();
        self.keys.push(key);
        self.index.insert(key, row);
        for (slab, col) in self.columns.iter_mut().zip(CATALOG) {
            slab.push(record.cell(col.name, batch), &mut self.pool);
        }
        true
    }

    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&catalog_hash().to_le_bytes());
        out.extend_from_slice(&(self.keys.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.next_batch.to_le_bytes());
        for key in &self.keys {
            out.extend_from_slice(&key.to_le_bytes());
        }
        out.extend_from_slice(&(self.pool.strings.len() as u32).to_le_bytes());
        for s in &self.pool.strings {
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        for slab in &self.columns {
            out.extend_from_slice(&slab.valid);
            match &slab.data {
                ColumnData::Int(v) => {
                    for x in v {
                        out.extend_from_slice(&x.to_le_bytes());
                    }
                }
                ColumnData::Float(v) => {
                    for x in v {
                        out.extend_from_slice(&x.to_bits().to_le_bytes());
                    }
                }
                ColumnData::Bool(v) => out.extend_from_slice(v),
                ColumnData::Str(v) => {
                    for x in v {
                        out.extend_from_slice(&x.to_le_bytes());
                    }
                }
            }
        }
        // Checksum trailer over everything above: a torn save or a bit
        // flip anywhere in the file fails loudly on open instead of
        // misreading slabs (a flipped float byte would otherwise decode
        // silently).
        let mut h = Fnv64::new();
        h.write(&out);
        out.extend_from_slice(&h.finish().to_le_bytes());
        out
    }

    fn decode(bytes: &[u8]) -> Result<Self, StoreError> {
        let mut r = ByteReader::new(bytes);
        let magic = r.take(8, "magic")?;
        if magic != MAGIC {
            return Err(StoreError::Corrupt {
                offset: 0,
                message: "bad magic bytes (not a warehouse file)".to_string(),
            });
        }
        let version = r.u32("format version")?;
        if version != FORMAT_VERSION {
            return Err(StoreError::Version(version));
        }
        let found = r.u64("catalog hash")?;
        let expected = catalog_hash();
        if found != expected {
            return Err(StoreError::CatalogMismatch { found, expected });
        }
        // Header is plausible: verify the checksum trailer over the whole
        // body before trusting any slab bytes.
        let body_len = match bytes.len().checked_sub(8) {
            Some(body_len) if body_len >= r.pos() => body_len,
            _ => {
                return Err(StoreError::Corrupt {
                    offset: bytes.len(),
                    message: format!(
                        "{}-byte file is too short to hold its checksum trailer",
                        bytes.len()
                    ),
                })
            }
        };
        let stored = u64::from_le_bytes(bytes[body_len..].try_into().expect("8 bytes"));
        let mut h = Fnv64::new();
        h.write(&bytes[..body_len]);
        let computed = h.finish();
        if stored != computed {
            return Err(StoreError::Corrupt {
                offset: body_len,
                message: format!(
                    "checksum mismatch: trailer records {stored:#018x} but the content \
                     hashes to {computed:#018x} — the file is torn or bit-flipped"
                ),
            });
        }
        // From here on read only checksummed body bytes (offsets in
        // errors stay absolute file offsets).
        let mut r = ByteReader::resume(&bytes[..body_len], r.pos());
        let row_count_at = r.pos();
        let row_count = usize::try_from(r.u64("row count")?).map_err(|_| StoreError::Corrupt {
            offset: row_count_at,
            message: "row count overflows usize".to_string(),
        })?;
        // A row costs well over 8 bytes, so this rejects absurd counts in
        // truncated/garbled headers before any large allocation.
        if row_count > bytes.len() / 8 {
            return Err(StoreError::Corrupt {
                offset: row_count_at,
                message: format!(
                    "row count {row_count} is impossible for a {}-byte file",
                    bytes.len()
                ),
            });
        }
        let next_batch = r.u32("next batch")?;

        let keys_at = r.pos();
        let mut keys = Vec::with_capacity(row_count);
        for _ in 0..row_count {
            keys.push(r.u64("row key")?);
        }
        let mut index = HashMap::with_capacity(row_count);
        for (row, &key) in keys.iter().enumerate() {
            if index.insert(key, row).is_some() {
                return Err(StoreError::Corrupt {
                    offset: keys_at + row * 8,
                    message: format!("duplicate row key {key:#x}"),
                });
            }
        }

        let pool_len = r.u32("string pool size")? as usize;
        let mut pool = StringPool::default();
        for i in 0..pool_len {
            let len = r.u32("string length")? as usize;
            let string_at = r.pos();
            let raw = r.take(len, "string bytes")?;
            let s = std::str::from_utf8(raw).map_err(|_| StoreError::Corrupt {
                offset: string_at,
                message: format!("pool string {i} is not UTF-8"),
            })?;
            pool.intern(s);
        }

        let mut columns = Vec::with_capacity(CATALOG.len());
        for col in CATALOG {
            let valid = r.take(row_count, "validity slab")?.to_vec();
            let data = match col.ty {
                ColumnType::Int => {
                    let mut v = Vec::with_capacity(row_count);
                    for _ in 0..row_count {
                        v.push(r.i64("int cell")?);
                    }
                    ColumnData::Int(v)
                }
                ColumnType::Float => {
                    let mut v = Vec::with_capacity(row_count);
                    for _ in 0..row_count {
                        v.push(f64::from_bits(r.u64("float cell")?));
                    }
                    ColumnData::Float(v)
                }
                ColumnType::Bool => ColumnData::Bool(r.take(row_count, "bool slab")?.to_vec()),
                ColumnType::Str => {
                    let mut v = Vec::with_capacity(row_count);
                    for _ in 0..row_count {
                        let id_at = r.pos();
                        let id = r.u32("string cell")?;
                        if id as usize >= pool.strings.len().max(1) {
                            return Err(StoreError::Corrupt {
                                offset: id_at,
                                message: format!(
                                    "string id {id} out of range for column {}",
                                    col.name
                                ),
                            });
                        }
                        v.push(id);
                    }
                    ColumnData::Str(v)
                }
            };
            columns.push(ColumnSlab { valid, data });
        }
        if r.remaining() != 0 {
            return Err(StoreError::Corrupt {
                offset: r.pos(),
                message: format!(
                    "{} trailing bytes after the last column slab",
                    r.remaining()
                ),
            });
        }
        Ok(Store {
            keys,
            index,
            next_batch,
            pool,
            columns,
        })
    }
}

/// A checked little-endian reader over untrusted file bytes.
///
/// Unlike the snapshot codec's `SnapReader` (which panics on underrun,
/// because snapshots never leave the process), warehouse files live on
/// disk and cross builds, so every read returns a [`StoreError`].
struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        ByteReader { bytes, pos: 0 }
    }

    /// A reader over `bytes` with its cursor already at `pos` (used to
    /// re-bound the reader to the checksummed body while keeping error
    /// offsets absolute).
    fn resume(bytes: &'a [u8], pos: usize) -> Self {
        ByteReader { bytes, pos }
    }

    fn pos(&self) -> usize {
        self.pos
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], StoreError> {
        if self.remaining() < n {
            return Err(StoreError::Corrupt {
                offset: self.pos,
                message: format!(
                    "truncated while reading {what}: need {n} bytes, have {}",
                    self.remaining()
                ),
            });
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u32(&mut self, what: &str) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(
            self.take(4, what)?.try_into().expect("sized take"),
        ))
    }

    fn u64(&mut self, what: &str) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(
            self.take(8, what)?.try_into().expect("sized take"),
        ))
    }

    fn i64(&mut self, what: &str) -> Result<i64, StoreError> {
        Ok(i64::from_le_bytes(
            self.take(8, what)?.try_into().expect("sized take"),
        ))
    }
}

/// The thread-safe results warehouse.
///
/// A `Warehouse` wraps the columnar `Store` in a mutex so concurrent
/// producers (the perf harness's worker pool, parallel sweep jobs) can
/// append directly; the dedup index makes appends idempotent, so racing
/// producers of the same row resolve to exactly one copy.
#[derive(Debug)]
pub struct Warehouse {
    inner: Mutex<Store>,
}

impl Default for Warehouse {
    fn default() -> Self {
        Warehouse::new()
    }
}

impl Warehouse {
    /// An empty in-memory warehouse.
    pub fn new() -> Self {
        Warehouse {
            inner: Mutex::new(Store::new()),
        }
    }

    /// Decodes a warehouse from its file bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, StoreError> {
        Ok(Warehouse {
            inner: Mutex::new(Store::decode(bytes)?),
        })
    }

    /// Opens the warehouse at `path`; a missing file yields an empty store
    /// (first ingest creates it on [`save`](Warehouse::save)).
    pub fn open(path: &Path) -> Result<Self, StoreError> {
        match std::fs::read(path) {
            Ok(bytes) => Warehouse::from_bytes(&bytes),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Warehouse::new()),
            Err(e) => Err(StoreError::Io(e)),
        }
    }

    /// Encodes the store to its file bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.inner.lock().expect("warehouse lock").encode()
    }

    /// Writes the store to `path` durably: the bytes go to a sibling
    /// temporary file first, are fsynced, and are renamed over `path` in
    /// one atomic step. A crash at any point leaves either the old store
    /// or the new store on disk — never a torn file (and any torn
    /// *temporary* left behind is invisible: opens go to `path`).
    ///
    /// # Errors
    ///
    /// Any I/O error from writing, syncing, or renaming; the temporary
    /// file is removed (best effort) on the error path.
    pub fn save(&self, path: &Path) -> Result<(), StoreError> {
        let tmp = tmp_path(path);
        let result = write_durably(path, &tmp, &self.to_bytes());
        if result.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        result
    }

    /// Appends one record; returns `false` if its key was already present.
    ///
    /// The record gets its own batch number; use
    /// [`append_all`](Warehouse::append_all) to stamp a group of rows as
    /// one batch.
    pub fn append(&self, record: &RunRecord) -> bool {
        self.append_all(std::slice::from_ref(record)).added == 1
    }

    /// Appends `records` as one batch, deduplicating by key.
    ///
    /// All added rows share a batch number, so "the latest run" is
    /// queryable as `sort batch desc top 1`. A call where *every* row
    /// dedups does not advance the batch counter, which keeps a re-ingest
    /// of the same file byte-identical end to end (zero new rows *and* an
    /// unchanged store file).
    pub fn append_all(&self, records: &[RunRecord]) -> AppendSummary {
        let mut store = self.inner.lock().expect("warehouse lock");
        let batch = store.next_batch;
        let mut added = 0;
        for record in records {
            if store.push_record(record, batch) {
                added += 1;
            }
        }
        if added > 0 {
            store.next_batch += 1;
        }
        AppendSummary {
            added,
            deduplicated: records.len() - added,
            batch,
        }
    }

    /// Number of rows in the store.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("warehouse lock").row_count()
    }

    /// True when the store holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Runs a query (see the [query grammar](crate::query)) and returns
    /// the projected rows, or every diagnostic the pipeline collected.
    pub fn query(&self, text: &str) -> Result<QueryOutput, Vec<QueryError>> {
        let store = self.inner.lock().expect("warehouse lock");
        query::run_query(&store, text)
    }
}

/// The sibling temporary path a durable save stages its bytes in.
fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_else(|| "store".into());
    name.push(".tmp");
    path.with_file_name(name)
}

/// The staged write behind [`Warehouse::save`]: temp write, fsync, atomic
/// rename, parent-directory fsync. Each stage carries a fail-point site
/// (`warehouse::save::temp_write`/`fsync`/`rename`, plus
/// `warehouse::save::torn_temp` for a partial write) so the chaos suite
/// can kill the save at every stage and assert old-or-new-never-torn.
fn write_durably(path: &Path, tmp: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    let mut file = std::fs::File::create(tmp)?;
    failpoint::io_point("warehouse::save::temp_write")?;
    if failpoint::triggered("warehouse::save::torn_temp") {
        // Simulate a crash mid-write: half the bytes land, then the
        // injected failure. The rename below never happens, so `path`
        // still holds the previous store.
        file.write_all(&bytes[..bytes.len() / 2])?;
        let _ = file.sync_all();
        return Err(StoreError::Io(std::io::Error::other(
            "fail point `warehouse::save::torn_temp` triggered (injected torn write)",
        )));
    }
    file.write_all(bytes)?;
    failpoint::io_point("warehouse::save::fsync")?;
    // fsync before rename: the rename must never make a file visible
    // whose bytes are still in flight.
    file.sync_all()?;
    drop(file);
    failpoint::io_point("warehouse::save::rename")?;
    std::fs::rename(tmp, path)?;
    // Make the rename itself durable (best effort: some filesystems
    // refuse directory handles, and the data is already safe either way).
    #[cfg(unix)]
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        if let Ok(dir) = std::fs::File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{RowKind, RunRecord};

    fn rec(workload: &str, cores: i64) -> RunRecord {
        let mut r = RunRecord::new(RowKind::Scenario, 42, 5, "full");
        r.workload = Some(workload.to_string());
        r.design = Some("R".to_string());
        r.cores = Some(cores);
        r.total_cpi = Some(1.0 + cores as f64 / 100.0);
        r
    }

    #[test]
    fn append_dedups_by_key() {
        let w = Warehouse::new();
        assert!(w.append(&rec("apache", 16)));
        assert!(!w.append(&rec("apache", 16)), "same key must dedup");
        assert!(w.append(&rec("apache", 32)));
        assert_eq!(w.len(), 2);

        let summary = w.append_all(&[rec("apache", 16), rec("oltp", 16)]);
        assert_eq!((summary.added, summary.deduplicated), (1, 1));
        assert_eq!(w.len(), 3);
    }

    #[test]
    fn roundtrip_preserves_rows_and_dedup_index() {
        let w = Warehouse::new();
        w.append_all(&[rec("apache", 16), rec("oltp", 64)]);
        let bytes = w.to_bytes();
        let back = Warehouse::from_bytes(&bytes).expect("decode");
        assert_eq!(back.len(), 2);
        // The dedup index survives the round trip.
        assert!(!back.append(&rec("oltp", 64)));
        // Re-encoding is canonical.
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn corrupt_inputs_are_rejected_not_panicked() {
        assert!(matches!(
            Warehouse::from_bytes(b"not a warehouse"),
            Err(StoreError::Corrupt { offset: 0, .. })
        ));
        let w = Warehouse::new();
        w.append(&rec("apache", 16));
        let bytes = w.to_bytes();
        // Truncation at every prefix length must error, never panic.
        for len in 0..bytes.len() {
            assert!(
                Warehouse::from_bytes(&bytes[..len]).is_err(),
                "prefix of {len} bytes decoded successfully"
            );
        }
        // A flipped version byte is a version error.
        let mut v = bytes.clone();
        v[8] = 99;
        assert!(matches!(
            Warehouse::from_bytes(&v),
            Err(StoreError::Version(99))
        ));
        // A flipped catalog-hash byte is a catalog mismatch.
        let mut c = bytes.clone();
        c[12] ^= 0xFF;
        assert!(matches!(
            Warehouse::from_bytes(&c),
            Err(StoreError::CatalogMismatch { .. })
        ));
    }

    #[test]
    fn checksum_trailer_catches_single_bit_flips_anywhere() {
        // A flipped bit in a float slab would decode "successfully" as a
        // different number without the trailer; with it, every body byte
        // is covered. Flip each byte past the catalog hash (magic/version/
        // catalog flips report their own, more precise errors).
        let w = Warehouse::new();
        w.append(&rec("apache", 16));
        let bytes = w.to_bytes();
        for at in [20, 32, bytes.len() / 2, bytes.len() - 9, bytes.len() - 1] {
            let mut flipped = bytes.clone();
            flipped[at] ^= 0x04;
            match Warehouse::from_bytes(&flipped) {
                Err(StoreError::Corrupt { offset, message }) => {
                    assert_eq!(offset, bytes.len() - 8, "flip at {at}");
                    assert!(message.contains("checksum mismatch"), "flip at {at}");
                }
                other => panic!("flip at {at}: want checksum Corrupt, got {other:?}"),
            }
        }
    }

    #[test]
    fn truncation_errors_carry_a_byte_offset() {
        let w = Warehouse::new();
        w.append(&rec("apache", 16));
        let bytes = w.to_bytes();
        // Cut inside the header: decoding stops at the cut.
        match Warehouse::from_bytes(&bytes[..10]).unwrap_err() {
            StoreError::Corrupt { offset, .. } => assert!(offset <= 10),
            other => panic!("want Corrupt, got {other:?}"),
        }
        // Cut mid-body: the checksum trailer reports the tear.
        let cut = bytes.len() - 12;
        match Warehouse::from_bytes(&bytes[..cut]).unwrap_err() {
            StoreError::Corrupt { offset, .. } => assert_eq!(offset, cut - 8),
            other => panic!("want Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn render_names_the_file_and_points_at_the_byte() {
        let w = Warehouse::new();
        w.append(&rec("apache", 16));
        let mut bytes = w.to_bytes();
        let at = bytes.len() / 2;
        bytes[at] ^= 0xFF;
        let err = Warehouse::from_bytes(&bytes).unwrap_err();
        let rendered = err.render(Path::new("bench/warehouse.bin"), &bytes);
        assert!(rendered.starts_with("error: corrupt warehouse file"));
        assert!(rendered.contains("--> bench/warehouse.bin (byte"));
        assert!(rendered.contains("^^"), "caret under the offending byte");
        assert!(rendered.contains("= help:"));
        // Version errors render without a hex window but still name the file.
        let rendered = StoreError::Version(9).render(Path::new("old.bin"), &[]);
        assert!(rendered.contains("error: warehouse format version 9"));
        assert!(rendered.contains("--> old.bin"));
    }

    #[test]
    fn save_is_atomic_and_leaves_no_temp_file() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("rnuca-wh-save-{}.bin", std::process::id()));
        let w = Warehouse::new();
        w.append(&rec("apache", 16));
        w.save(&path).expect("save");
        assert!(!tmp_path(&path).exists(), "temp staging file must be gone");
        let back = Warehouse::open(&path).expect("reopen");
        assert_eq!(back.len(), 1);
        // Overwriting an existing store is just as safe.
        back.append(&rec("oltp", 32));
        back.save(&path).expect("re-save");
        assert_eq!(Warehouse::open(&path).expect("reopen").len(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_opens_empty() {
        let w = Warehouse::open(Path::new("/nonexistent/dir/store.rnwh"));
        assert!(w.expect("missing file is an empty store").is_empty());
    }
}
