//! Resilient recursive-descent parser: token stream to AST.
//!
//! The parser never stops at the first problem. A malformed filter
//! records a diagnostic and skips forward to the next `&` or tail
//! keyword (`sort` / `show` / `top`), so one pass over a broken query
//! reports every independent mistake — the property the CLI relies on to
//! show all diagnostics at once.

use super::lexer::{CmpOp, Token, TokenKind};
use super::{QueryError, Span};

/// A literal as written in the query, before type checking.
#[derive(Debug, Clone, PartialEq)]
pub(super) enum Lit {
    Int(i64),
    Float(f64),
    Str(String),
    Bool(bool),
    Null,
}

impl Lit {
    /// How the literal is described in type-mismatch diagnostics.
    pub(super) fn type_name(&self) -> &'static str {
        match self {
            Lit::Int(_) => "an integer",
            Lit::Float(_) => "a float",
            Lit::Str(_) => "a string",
            Lit::Bool(_) => "a boolean",
            Lit::Null => "null",
        }
    }
}

/// One `column op literal` clause.
#[derive(Debug, Clone, PartialEq)]
pub(super) struct FilterExpr {
    pub(super) column: String,
    pub(super) column_span: Span,
    pub(super) op: CmpOp,
    pub(super) op_span: Span,
    pub(super) value: Lit,
    pub(super) value_span: Span,
}

/// A `sort column [asc|desc]` tail clause.
#[derive(Debug, Clone, PartialEq)]
pub(super) struct SortExpr {
    pub(super) column: String,
    pub(super) column_span: Span,
    pub(super) descending: bool,
}

/// The parsed query, before name resolution.
#[derive(Debug, Clone, Default, PartialEq)]
pub(super) struct Ast {
    pub(super) filters: Vec<FilterExpr>,
    pub(super) sort: Option<SortExpr>,
    pub(super) show: Option<Vec<(String, Span)>>,
    pub(super) top: Option<usize>,
}

/// The tail keywords that end the filter section.
const TAIL_KEYWORDS: [&str; 3] = ["sort", "show", "top"];

fn is_tail_keyword(token: &Token) -> bool {
    matches!(&token.kind, TokenKind::Ident(w) if TAIL_KEYWORDS.contains(&w.as_str()))
}

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
    end: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&'a Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<&'a Token> {
        let t = self.tokens.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// The span just past the last consumed token (for "expected X, found
    /// end of query" diagnostics).
    fn here(&self) -> Span {
        match self.tokens.get(self.pos) {
            Some(t) => t.span,
            None => Span::point(self.end),
        }
    }

    /// Error recovery: skip forward so the next clause parses cleanly.
    fn skip_to_clause_boundary(&mut self) {
        while let Some(t) = self.peek() {
            if matches!(t.kind, TokenKind::Amp) {
                self.pos += 1; // consume the `&`; next clause starts after it
                return;
            }
            if is_tail_keyword(t) {
                return;
            }
            self.pos += 1;
        }
    }
}

/// Parses `tokens` into an [`Ast`], accumulating diagnostics in `errors`.
///
/// `source_len` anchors end-of-query spans. Always returns an AST — on
/// errors it holds whatever clauses did parse, which lets resolution
/// still check their names and report those problems in the same pass.
pub(super) fn parse(tokens: &[Token], source_len: usize, errors: &mut Vec<QueryError>) -> Ast {
    let mut p = Parser {
        tokens,
        pos: 0,
        end: source_len,
    };
    let mut ast = Ast::default();

    // Filter section: clauses separated by `&`, ended by a tail keyword.
    let mut expect_clause = false; // true right after a consumed `&`
    while let Some(t) = p.peek() {
        if is_tail_keyword(t) {
            if expect_clause {
                errors.push(QueryError::new(t.span, "expected a filter after `&`"));
            }
            break;
        }
        match parse_filter(&mut p, errors) {
            Some(filter) => ast.filters.push(filter),
            None => {
                p.skip_to_clause_boundary();
                expect_clause = false;
                continue;
            }
        }
        expect_clause = false;
        match p.peek() {
            Some(t) if matches!(t.kind, TokenKind::Amp) => {
                p.pos += 1;
                expect_clause = true;
            }
            _ => {}
        }
    }
    if expect_clause && p.peek().is_none() {
        errors.push(QueryError::new(p.here(), "expected a filter after `&`"));
    }

    // Tail section: sort / show / top, each at most once, any order.
    while let Some(t) = p.next() {
        let TokenKind::Ident(word) = &t.kind else {
            errors.push(QueryError::new(
                t.span,
                "expected `sort`, `show`, or `top` after the filters",
            ));
            continue;
        };
        match word.as_str() {
            "sort" => {
                let clause = parse_sort(&mut p, errors);
                replace_if_new(&mut ast.sort, clause, t.span, "sort", errors);
            }
            "show" => {
                let clause = parse_show(&mut p, errors);
                replace_if_new(&mut ast.show, clause, t.span, "show", errors);
            }
            "top" => {
                let clause = parse_top(&mut p, errors);
                replace_if_new(&mut ast.top, clause, t.span, "top", errors);
            }
            other => {
                errors.push(
                    QueryError::new(
                        t.span,
                        format!("expected `sort`, `show`, or `top`, found `{other}`"),
                    )
                    .with_help("filters must come before sort/show/top and be joined with `&`"),
                );
            }
        }
    }

    ast
}

/// `Option::replace`, but a duplicate clause is a diagnostic (first one
/// wins), not a silent overwrite.
fn replace_if_new<T>(
    slot: &mut Option<T>,
    value: Option<T>,
    at: Span,
    what: &str,
    errors: &mut Vec<QueryError>,
) {
    if slot.is_some() {
        errors.push(QueryError::new(at, format!("duplicate `{what}` clause")));
    } else if let Some(v) = value {
        *slot = Some(v);
    }
}

fn parse_filter(p: &mut Parser<'_>, errors: &mut Vec<QueryError>) -> Option<FilterExpr> {
    let first = p.next().expect("caller checked peek");
    let TokenKind::Ident(column) = &first.kind else {
        errors.push(QueryError::new(
            first.span,
            "expected a column name to start a filter",
        ));
        return None;
    };

    let op_token = match p.peek() {
        Some(t) => t,
        None => {
            errors.push(QueryError::new(
                Span::point(p.end),
                format!("filter on `{column}` is missing its operator and value"),
            ));
            return None;
        }
    };
    let TokenKind::Op(op) = op_token.kind else {
        errors.push(
            QueryError::new(
                op_token.span,
                format!("expected a comparison operator after `{column}`"),
            )
            .with_help("operators are =, !=, <, <=, >, >="),
        );
        return None;
    };
    let op_span = op_token.span;
    p.pos += 1;

    // Peek before consuming: if the clause just stops (`cores>= &`), the
    // `&` must stay put so recovery resumes at the next clause.
    let value_token = match p.peek() {
        None => {
            errors.push(QueryError::new(
                Span::point(p.end),
                format!("expected a value after `{}`", op.as_str()),
            ));
            return None;
        }
        Some(t) if matches!(t.kind, TokenKind::Amp) || is_tail_keyword(t) => {
            errors.push(QueryError::new(
                t.span,
                format!("expected a value after `{}`", op.as_str()),
            ));
            return None;
        }
        Some(t) => {
            p.pos += 1;
            t
        }
    };
    let value = match &value_token.kind {
        TokenKind::Int(v) => Lit::Int(*v),
        TokenKind::Float(v) => Lit::Float(*v),
        TokenKind::Str(v) => Lit::Str(v.clone()),
        TokenKind::Ident(w) if w == "true" => Lit::Bool(true),
        TokenKind::Ident(w) if w == "false" => Lit::Bool(false),
        TokenKind::Ident(w) if w == "null" => Lit::Null,
        // A bare word is a string literal: design=R.
        TokenKind::Ident(w) => Lit::Str(w.clone()),
        _ => {
            errors.push(QueryError::new(
                value_token.span,
                format!("expected a value after `{}`", op.as_str()),
            ));
            return None;
        }
    };

    Some(FilterExpr {
        column: column.clone(),
        column_span: first.span,
        op,
        op_span,
        value,
        value_span: value_token.span,
    })
}

fn parse_sort(p: &mut Parser<'_>, errors: &mut Vec<QueryError>) -> Option<SortExpr> {
    let token = match p.next() {
        Some(t) => t,
        None => {
            errors.push(QueryError::new(
                p.here(),
                "expected a column name after `sort`",
            ));
            return None;
        }
    };
    let TokenKind::Ident(column) = &token.kind else {
        errors.push(QueryError::new(
            token.span,
            "expected a column name after `sort`",
        ));
        return None;
    };
    let mut descending = false;
    if let Some(t) = p.peek() {
        if let TokenKind::Ident(w) = &t.kind {
            match w.as_str() {
                "asc" => {
                    p.pos += 1;
                }
                "desc" => {
                    descending = true;
                    p.pos += 1;
                }
                _ => {}
            }
        }
    }
    Some(SortExpr {
        column: column.clone(),
        column_span: token.span,
        descending,
    })
}

fn parse_show(p: &mut Parser<'_>, errors: &mut Vec<QueryError>) -> Option<Vec<(String, Span)>> {
    let mut columns = Vec::new();
    loop {
        let token = match p.next() {
            Some(t) => t,
            None => {
                errors.push(QueryError::new(
                    p.here(),
                    "expected a column name in the `show` list",
                ));
                return if columns.is_empty() {
                    None
                } else {
                    Some(columns)
                };
            }
        };
        match &token.kind {
            TokenKind::Ident(name) if !TAIL_KEYWORDS.contains(&name.as_str()) => {
                columns.push((name.clone(), token.span));
            }
            _ => {
                errors.push(QueryError::new(
                    token.span,
                    "expected a column name in the `show` list",
                ));
                return if columns.is_empty() {
                    None
                } else {
                    Some(columns)
                };
            }
        }
        match p.peek() {
            Some(t) if matches!(t.kind, TokenKind::Comma) => {
                p.pos += 1;
            }
            _ => return Some(columns),
        }
    }
}

fn parse_top(p: &mut Parser<'_>, errors: &mut Vec<QueryError>) -> Option<usize> {
    let token = match p.next() {
        Some(t) => t,
        None => {
            errors.push(QueryError::new(
                p.here(),
                "expected a row count after `top`",
            ));
            return None;
        }
    };
    match token.kind {
        TokenKind::Int(n) if n >= 0 => Some(n as usize),
        _ => {
            errors.push(QueryError::new(
                token.span,
                "expected a non-negative row count after `top`",
            ));
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::lexer;
    use super::*;

    fn parse_src(src: &str) -> (Ast, Vec<QueryError>) {
        let mut errors = Vec::new();
        let tokens = lexer::lex(src, &mut errors);
        let ast = parse(&tokens, src.len(), &mut errors);
        (ast, errors)
    }

    #[test]
    fn full_query_parses() {
        let (ast, errors) =
            parse_src("design=R & cores>=32 sort off_chip_rate desc show workload, cores top 5");
        assert!(errors.is_empty(), "{errors:?}");
        assert_eq!(ast.filters.len(), 2);
        assert_eq!(ast.filters[0].column, "design");
        assert_eq!(ast.filters[0].value, Lit::Str("R".into()));
        assert_eq!(ast.filters[1].value, Lit::Int(32));
        let sort = ast.sort.expect("sort clause");
        assert_eq!(sort.column, "off_chip_rate");
        assert!(sort.descending);
        let show = ast.show.expect("show clause");
        let show: Vec<&str> = show.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(show, ["workload", "cores"]);
        assert_eq!(ast.top, Some(5));
    }

    #[test]
    fn empty_query_selects_everything() {
        let (ast, errors) = parse_src("");
        assert!(errors.is_empty());
        assert_eq!(ast, Ast::default());
    }

    #[test]
    fn recovers_past_a_broken_clause() {
        // `cores > >` is broken; `design=R` after the `&` must still parse.
        let (ast, errors) = parse_src("cores> > & design=R");
        assert_eq!(errors.len(), 1, "{errors:?}");
        assert_eq!(ast.filters.len(), 1);
        assert_eq!(ast.filters[0].column, "design");
    }

    #[test]
    fn multiple_errors_in_one_pass() {
        let (_, errors) = parse_src("cores>= & design= & top");
        assert!(
            errors.len() >= 3,
            "want one error per broken clause: {errors:?}"
        );
    }

    #[test]
    fn duplicate_tail_clause_is_an_error() {
        let (ast, errors) = parse_src("sort cores sort total_cpi");
        assert_eq!(errors.len(), 1);
        assert!(errors[0].message.contains("duplicate `sort`"));
        assert_eq!(ast.sort.expect("first sort wins").column, "cores");
    }

    #[test]
    fn null_true_false_literals() {
        let (ast, errors) = parse_src("workload=null & partial=true");
        assert!(errors.is_empty());
        assert_eq!(ast.filters[0].value, Lit::Null);
        assert_eq!(ast.filters[1].value, Lit::Bool(true));
    }
}
