//! Name resolution and type checking against the column catalog.
//!
//! Turns the parsed [`Ast`] into an executable [`Plan`]: every column
//! name becomes a catalog index, every literal is checked against the
//! column's type, and every operator against what the type supports.
//! Unknown names get a did-you-mean suggestion (closest catalog column by
//! edit distance). Like the parser, resolution keeps going after an
//! error, so a query with three bad names reports all three.

use super::lexer::CmpOp;
use super::parser::{Ast, Lit};
use super::QueryError;
use crate::catalog::{column_index, ColumnType, CATALOG};

/// A type-checked literal, ready to compare against cells.
#[derive(Debug, Clone, PartialEq)]
pub(super) enum Operand {
    /// Compare numerically (Int columns promote to f64 when the literal
    /// is a float, and vice versa).
    Number(f64),
    /// Compare exact integer (avoids f64 rounding for i64-range values).
    Int(i64),
    Bool(bool),
    Str(String),
    /// `= null` / `!= null` presence test.
    Null,
}

/// One executable filter.
#[derive(Debug, Clone, PartialEq)]
pub(super) struct Filter {
    pub(super) col: usize,
    pub(super) op: CmpOp,
    pub(super) operand: Operand,
}

/// The executable query.
#[derive(Debug, Clone, Default, PartialEq)]
pub(super) struct Plan {
    pub(super) filters: Vec<Filter>,
    /// `(column, descending)`.
    pub(super) sort: Option<(usize, bool)>,
    /// Projected column indices; empty means "all columns".
    pub(super) show: Vec<usize>,
    pub(super) top: Option<usize>,
}

/// Resolves `ast` against the catalog, accumulating diagnostics.
///
/// Always returns a plan; with a non-empty `errors` it is partial and the
/// caller must not execute it.
pub(super) fn resolve(ast: &Ast, errors: &mut Vec<QueryError>) -> Plan {
    let mut plan = Plan::default();

    for filter in &ast.filters {
        let Some(col) = lookup(&filter.column, filter.column_span, errors) else {
            continue;
        };
        let ty = CATALOG[col].ty;

        // Equality-only types reject ordering operators outright.
        let ordered = matches!(ty, ColumnType::Int | ColumnType::Float);
        if !ordered && !matches!(filter.op, CmpOp::Eq | CmpOp::Ne) {
            errors.push(
                QueryError::new(
                    filter.op_span,
                    format!(
                        "operator `{}` cannot apply to {} column `{}`",
                        filter.op.as_str(),
                        ty.name(),
                        filter.column
                    ),
                )
                .with_help(format!("{} columns support only `=` and `!=`", ty.name())),
            );
            continue;
        }

        let operand = match (&filter.value, ty) {
            (Lit::Null, _) => {
                if matches!(filter.op, CmpOp::Eq | CmpOp::Ne) {
                    Some(Operand::Null)
                } else {
                    errors.push(
                        QueryError::new(
                            filter.op_span,
                            format!("`{}` cannot compare against null", filter.op.as_str()),
                        )
                        .with_help("null supports only the presence tests `=` and `!=`"),
                    );
                    None
                }
            }
            (Lit::Int(v), ColumnType::Int) => Some(Operand::Int(*v)),
            (Lit::Int(v), ColumnType::Float) => Some(Operand::Number(*v as f64)),
            (Lit::Float(v), ColumnType::Int | ColumnType::Float) => Some(Operand::Number(*v)),
            (Lit::Bool(v), ColumnType::Bool) => Some(Operand::Bool(*v)),
            (Lit::Str(v), ColumnType::Str) => Some(Operand::Str(v.clone())),
            (lit, _) => {
                errors.push(
                    QueryError::new(
                        filter.value_span,
                        format!(
                            "type mismatch: column `{}` is {}, but the value is {}",
                            filter.column,
                            ty.name(),
                            lit.type_name()
                        ),
                    )
                    .with_help(literal_hint(ty)),
                );
                None
            }
        };
        if let Some(operand) = operand {
            plan.filters.push(Filter {
                col,
                op: filter.op,
                operand,
            });
        }
    }

    if let Some(sort) = &ast.sort {
        if let Some(col) = lookup(&sort.column, sort.column_span, errors) {
            plan.sort = Some((col, sort.descending));
        }
    }

    if let Some(show) = &ast.show {
        for (name, span) in show {
            if let Some(col) = lookup(name, *span, errors) {
                plan.show.push(col);
            }
        }
    }

    plan.top = ast.top;
    plan
}

fn literal_hint(ty: ColumnType) -> String {
    match ty {
        ColumnType::Int => "write an integer, e.g. `cores>=32`".to_string(),
        ColumnType::Float => "write a number, e.g. `off_chip_rate<0.2`".to_string(),
        ColumnType::Bool => "write `true` or `false`".to_string(),
        ColumnType::Str => "write a bare word or quoted string, e.g. `design=R`".to_string(),
    }
}

fn lookup(name: &str, span: super::Span, errors: &mut Vec<QueryError>) -> Option<usize> {
    if let Some(col) = column_index(name) {
        return Some(col);
    }
    let mut err = QueryError::new(span, format!("unknown column `{name}`"));
    if let Some(suggestion) = closest_column(name) {
        err = err.with_help(format!("did you mean `{suggestion}`?"));
    }
    errors.push(err);
    None
}

/// The catalog column closest to `name`, if it is close enough for the
/// suggestion to be plausible rather than noise.
fn closest_column(name: &str) -> Option<&'static str> {
    let budget = 1 + name.chars().count() / 3;
    CATALOG
        .iter()
        .map(|c| (edit_distance(name, c.name), c.name))
        .filter(|&(d, _)| d <= budget)
        .min_by_key(|&(d, _)| d)
        .map(|(_, n)| n)
}

/// Levenshtein distance over chars (the query language is ASCII in
/// practice; catalog names certainly are).
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::super::{lexer, parser};
    use super::*;

    fn resolve_src(src: &str) -> (Plan, Vec<QueryError>) {
        let mut errors = Vec::new();
        let tokens = lexer::lex(src, &mut errors);
        let ast = parser::parse(&tokens, src.len(), &mut errors);
        let plan = resolve(&ast, &mut errors);
        (plan, errors)
    }

    #[test]
    fn resolves_a_clean_query() {
        let (plan, errors) = resolve_src("design=R & cores>=32 sort off_chip_rate show workload");
        assert!(errors.is_empty(), "{errors:?}");
        assert_eq!(plan.filters.len(), 2);
        assert_eq!(plan.filters[0].operand, Operand::Str("R".into()));
        assert_eq!(plan.filters[1].operand, Operand::Int(32));
        assert!(plan.sort.is_some());
        assert_eq!(plan.show.len(), 1);
    }

    #[test]
    fn unknown_column_suggests_the_closest_name() {
        let (_, errors) = resolve_src("coress>=32");
        assert_eq!(errors.len(), 1);
        assert!(errors[0].message.contains("unknown column `coress`"));
        assert_eq!(errors[0].help.as_deref(), Some("did you mean `cores`?"));
    }

    #[test]
    fn hopeless_names_get_no_suggestion() {
        let (_, errors) = resolve_src("zzzzzzzzz=1");
        assert_eq!(errors.len(), 1);
        assert!(errors[0].help.is_none(), "{errors:?}");
    }

    #[test]
    fn ordering_on_a_string_column_is_a_bad_operator() {
        let (_, errors) = resolve_src("design>=R");
        assert_eq!(errors.len(), 1);
        assert!(errors[0]
            .message
            .contains("operator `>=` cannot apply to str column `design`"));
    }

    #[test]
    fn type_mismatch_names_both_sides() {
        let (_, errors) = resolve_src("cores=apache");
        assert_eq!(errors.len(), 1);
        assert!(errors[0]
            .message
            .contains("column `cores` is int, but the value is a string"));
    }

    #[test]
    fn null_requires_equality() {
        let (plan, errors) = resolve_src("workload!=null");
        assert!(errors.is_empty());
        assert_eq!(plan.filters[0].operand, Operand::Null);
        let (_, errors) = resolve_src("workload>null");
        assert_eq!(errors.len(), 1, "{errors:?}");
    }

    #[test]
    fn all_errors_reported_in_one_pass() {
        let (_, errors) = resolve_src("coress=1 & design>=R & cores=apache");
        assert_eq!(errors.len(), 3, "{errors:?}");
    }
}
