//! Query execution over the columnar store.
//!
//! Filters are conjunctive; comparisons against a null cell are false
//! (except the explicit `= null` / `!= null` presence tests). Sorting is
//! stable with nulls last regardless of direction, so ties and gaps stay
//! deterministic. Projection defaults to every catalog column.

use std::cmp::Ordering;

use super::lexer::CmpOp;
use super::resolve::{Filter, Operand, Plan};
use super::QueryOutput;
use crate::catalog::CATALOG;
use crate::store::{Store, Value};

/// Runs a resolved plan: filter, sort, truncate, project.
pub(super) fn execute(store: &Store, plan: &Plan) -> QueryOutput {
    let mut rows: Vec<usize> = (0..store.row_count())
        .filter(|&row| plan.filters.iter().all(|f| matches(store, row, f)))
        .collect();

    if let Some((col, descending)) = plan.sort {
        let keys: Vec<Value> = rows.iter().map(|&row| store.value(row, col)).collect();
        let mut order: Vec<usize> = (0..rows.len()).collect();
        order.sort_by(|&a, &b| {
            // Nulls sort last in both directions: decide them before the
            // direction flip so `desc` cannot float them to the top.
            match (&keys[a], &keys[b]) {
                (Value::Null, Value::Null) => Ordering::Equal,
                (Value::Null, _) => Ordering::Greater,
                (_, Value::Null) => Ordering::Less,
                (x, y) => {
                    let cmp = cmp_cells(x, y);
                    if descending {
                        cmp.reverse()
                    } else {
                        cmp
                    }
                }
            }
        });
        rows = order.into_iter().map(|i| rows[i]).collect();
    }

    if let Some(top) = plan.top {
        rows.truncate(top);
    }

    let projected: Vec<usize> = if plan.show.is_empty() {
        (0..CATALOG.len()).collect()
    } else {
        plan.show.clone()
    };
    QueryOutput {
        columns: projected.iter().map(|&c| CATALOG[c].name).collect(),
        rows: rows
            .iter()
            .map(|&row| projected.iter().map(|&c| store.value(row, c)).collect())
            .collect(),
    }
}

fn matches(store: &Store, row: usize, filter: &Filter) -> bool {
    let cell = store.value(row, filter.col);
    match (&filter.operand, &cell) {
        // Presence tests are the only filters that see null cells.
        (Operand::Null, _) => {
            let is_null = matches!(cell, Value::Null);
            match filter.op {
                CmpOp::Eq => is_null,
                CmpOp::Ne => !is_null,
                _ => unreachable!("resolution restricts null to =/!="),
            }
        }
        (_, Value::Null) => false,
        (Operand::Str(want), Value::Str(have)) => match filter.op {
            CmpOp::Eq => have == want,
            CmpOp::Ne => have != want,
            _ => unreachable!("resolution restricts str to =/!="),
        },
        (Operand::Bool(want), Value::Bool(have)) => match filter.op {
            CmpOp::Eq => have == want,
            CmpOp::Ne => have != want,
            _ => unreachable!("resolution restricts bool to =/!="),
        },
        // Exact integer comparison when both sides are integers.
        (Operand::Int(want), Value::Int(have)) => apply(filter.op, have.cmp(want)),
        (Operand::Int(want), Value::Float(have)) => {
            apply_partial(filter.op, have.partial_cmp(&(*want as f64)))
        }
        (Operand::Number(want), Value::Int(have)) => {
            apply_partial(filter.op, (*have as f64).partial_cmp(want))
        }
        (Operand::Number(want), Value::Float(have)) => {
            apply_partial(filter.op, have.partial_cmp(want))
        }
        _ => unreachable!("resolution guarantees operand/column agreement"),
    }
}

fn apply(op: CmpOp, ord: Ordering) -> bool {
    match op {
        CmpOp::Eq => ord == Ordering::Equal,
        CmpOp::Ne => ord != Ordering::Equal,
        CmpOp::Lt => ord == Ordering::Less,
        CmpOp::Le => ord != Ordering::Greater,
        CmpOp::Gt => ord == Ordering::Greater,
        CmpOp::Ge => ord != Ordering::Less,
    }
}

/// NaN compares false under every operator, matching SQL-ish semantics.
fn apply_partial(op: CmpOp, ord: Option<Ordering>) -> bool {
    ord.is_some_and(|o| apply(op, o))
}

/// Total order for sort keys: null > everything (nulls last ascending);
/// mixed types cannot occur since a sort key is one column.
fn cmp_cells(a: &Value, b: &Value) -> Ordering {
    match (a, b) {
        (Value::Null, Value::Null) => Ordering::Equal,
        (Value::Null, _) => Ordering::Greater,
        (_, Value::Null) => Ordering::Less,
        (Value::Int(x), Value::Int(y)) => x.cmp(y),
        (Value::Float(x), Value::Float(y)) => x.partial_cmp(y).unwrap_or(Ordering::Equal),
        (Value::Int(x), Value::Float(y)) => (*x as f64).partial_cmp(y).unwrap_or(Ordering::Equal),
        (Value::Float(x), Value::Int(y)) => x.partial_cmp(&(*y as f64)).unwrap_or(Ordering::Equal),
        (Value::Bool(x), Value::Bool(y)) => x.cmp(y),
        (Value::Str(x), Value::Str(y)) => x.cmp(y),
        _ => Ordering::Equal,
    }
}

#[cfg(test)]
mod tests {
    use crate::record::{RowKind, RunRecord};
    use crate::store::Value;
    use crate::Warehouse;

    fn sample() -> Warehouse {
        let w = Warehouse::new();
        let mut records = Vec::new();
        for (workload, design, cores, rate) in [
            ("apache", "R", 16, 0.10),
            ("apache", "R", 32, 0.08),
            ("apache", "P", 32, 0.20),
            ("oltp", "R", 32, 0.05),
            ("oltp", "S", 64, 0.30),
        ] {
            let mut r = RunRecord::new(RowKind::Scenario, 42, 5, "full");
            r.workload = Some(workload.to_string());
            r.design = Some(design.to_string());
            r.cores = Some(cores);
            r.off_chip_rate = Some(rate);
            records.push(r);
        }
        // One totals row: null workload/design/cores.
        let mut t = RunRecord::new(RowKind::Totals, 42, 5, "full");
        t.blocks_per_sec = Some(5.5e6);
        records.push(t);
        w.append_all(&records);
        w
    }

    fn strs(out: &crate::QueryOutput, col: &str) -> Vec<String> {
        let idx = out
            .columns
            .iter()
            .position(|&c| c == col)
            .expect("projected");
        out.rows.iter().map(|r| r[idx].to_string()).collect()
    }

    #[test]
    fn filters_are_conjunctive() {
        let w = sample();
        let out = w
            .query("design=R & cores>=32 show workload, cores")
            .expect("clean query");
        assert_eq!(out.rows.len(), 2);
        assert_eq!(strs(&out, "workload"), ["apache", "oltp"]);
    }

    #[test]
    fn empty_query_returns_every_row_and_column() {
        let w = sample();
        let out = w.query("").expect("clean query");
        assert_eq!(out.rows.len(), 6);
        assert_eq!(out.columns.len(), crate::CATALOG.len());
    }

    #[test]
    fn sort_and_top() {
        let w = sample();
        let out = w
            .query("kind=scenario sort off_chip_rate desc top 2 show workload, off_chip_rate")
            .expect("clean query");
        assert_eq!(strs(&out, "off_chip_rate"), ["0.3", "0.2"]);
    }

    #[test]
    fn null_comparisons_are_false_but_presence_tests_work() {
        let w = sample();
        // The totals row has a null cores cell: excluded by any comparison.
        let ge = w.query("cores>=0").expect("clean query");
        assert_eq!(ge.rows.len(), 5);
        // ...but selected by the presence test.
        let isnull = w.query("cores=null show kind").expect("clean query");
        assert_eq!(strs(&isnull, "kind"), ["totals"]);
        let nonnull = w.query("cores!=null").expect("clean query");
        assert_eq!(nonnull.rows.len(), 5);
    }

    #[test]
    fn sort_places_nulls_last_in_both_directions() {
        let w = sample();
        for dir in ["asc", "desc"] {
            let out = w
                .query(&format!("sort cores {dir} show kind"))
                .expect("clean query");
            assert_eq!(
                out.rows.last().expect("rows")[0],
                Value::Str("totals".to_string()),
                "null cores must sort last with {dir}"
            );
        }
    }

    #[test]
    fn bool_and_string_equality() {
        let w = sample();
        assert_eq!(w.query("partial=false").expect("ok").rows.len(), 6);
        assert_eq!(w.query("partial=true").expect("ok").rows.len(), 0);
        assert_eq!(
            w.query("workload!=apache & kind=scenario")
                .expect("ok")
                .rows
                .len(),
            2
        );
    }

    #[test]
    fn table_and_json_render() {
        let w = sample();
        let out = w
            .query("design=P show workload, design, cores, off_chip_rate")
            .expect("clean query");
        let table = out.render_table();
        assert!(table.starts_with("workload  design  cores  off_chip_rate"));
        assert!(table.contains("apache"));
        let json = out.to_json();
        assert!(json.contains("\"design\": \"P\""));
        assert!(json.contains("\"cores\": 32"));
    }
}
