//! Tokenizer for the query language.
//!
//! Resilient: an unrecognized character or unterminated string is
//! reported with its span and skipped, so the parser still sees every
//! well-formed token after the bad spot and later errors surface in the
//! same pass.

use super::{QueryError, Span};

/// A comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(super) enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    pub(super) fn as_str(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// What a token is.
#[derive(Debug, Clone, PartialEq)]
pub(super) enum TokenKind {
    /// A bare word: column name, keyword, or unquoted string literal.
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A float literal.
    Float(f64),
    /// A quoted string literal.
    Str(String),
    /// A comparison operator.
    Op(CmpOp),
    /// `&` — filter conjunction.
    Amp,
    /// `,` — projection list separator.
    Comma,
}

/// One token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub(super) struct Token {
    pub(super) kind: TokenKind,
    pub(super) span: Span,
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Tokenizes `src`, appending diagnostics for anything unrecognizable.
pub(super) fn lex(src: &str, errors: &mut Vec<QueryError>) -> Vec<Token> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let start = i;
        let c = src[i..].chars().next().expect("in bounds");
        match c {
            c if c.is_whitespace() => {
                i += c.len_utf8();
            }
            '&' => {
                i += 1;
                tokens.push(Token {
                    kind: TokenKind::Amp,
                    span: Span::new(start, i),
                });
            }
            ',' => {
                i += 1;
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    span: Span::new(start, i),
                });
            }
            '=' => {
                i += 1;
                // Accept `==` as a convenience alias for `=`.
                if bytes.get(i) == Some(&b'=') {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Op(CmpOp::Eq),
                    span: Span::new(start, i),
                });
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    tokens.push(Token {
                        kind: TokenKind::Op(CmpOp::Ne),
                        span: Span::new(start, i),
                    });
                } else {
                    i += 1;
                    errors.push(QueryError::new(
                        Span::new(start, i),
                        "stray `!` (the inequality operator is `!=`)",
                    ));
                }
            }
            '<' => {
                let op = if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    CmpOp::Le
                } else {
                    i += 1;
                    CmpOp::Lt
                };
                tokens.push(Token {
                    kind: TokenKind::Op(op),
                    span: Span::new(start, i),
                });
            }
            '>' => {
                let op = if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    CmpOp::Ge
                } else {
                    i += 1;
                    CmpOp::Gt
                };
                tokens.push(Token {
                    kind: TokenKind::Op(op),
                    span: Span::new(start, i),
                });
            }
            '\'' | '"' => {
                let quote = c;
                i += 1;
                let body_start = i;
                while i < bytes.len() && bytes[i] != quote as u8 {
                    i += 1;
                }
                if i == bytes.len() {
                    errors.push(QueryError::new(
                        Span::new(start, i),
                        format!("unterminated string (missing closing `{quote}`)"),
                    ));
                } else {
                    let body = src[body_start..i].to_string();
                    i += 1;
                    tokens.push(Token {
                        kind: TokenKind::Str(body),
                        span: Span::new(start, i),
                    });
                }
            }
            c if c.is_ascii_digit() || c == '-' => {
                i += 1;
                let mut is_float = false;
                while i < bytes.len() {
                    match bytes[i] {
                        b'0'..=b'9' => i += 1,
                        b'.' | b'e' | b'E' => {
                            is_float = true;
                            i += 1;
                            // Exponent sign directly after e/E.
                            if matches!(bytes.get(i), Some(b'+') | Some(b'-')) {
                                i += 1;
                            }
                        }
                        _ => break,
                    }
                }
                let text = &src[start..i];
                let span = Span::new(start, i);
                let kind = if is_float {
                    text.parse::<f64>().map(TokenKind::Float).map_err(|_| ())
                } else {
                    text.parse::<i64>().map(TokenKind::Int).map_err(|_| ())
                };
                match kind {
                    Ok(kind) => tokens.push(Token { kind, span }),
                    Err(_) => errors.push(QueryError::new(
                        span,
                        format!("`{text}` is not a valid number"),
                    )),
                }
            }
            c if is_ident_start(c) => {
                while i < bytes.len()
                    && is_ident_continue(src[i..].chars().next().expect("in bounds"))
                {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(src[start..i].to_string()),
                    span: Span::new(start, i),
                });
            }
            c => {
                i += c.len_utf8();
                errors.push(QueryError::new(
                    Span::new(start, i),
                    format!("unexpected character `{c}`"),
                ));
            }
        }
    }
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> (Vec<TokenKind>, Vec<QueryError>) {
        let mut errors = Vec::new();
        let tokens = lex(src, &mut errors);
        (tokens.into_iter().map(|t| t.kind).collect(), errors)
    }

    #[test]
    fn tokenizes_the_readme_example() {
        let (kinds, errors) = kinds("design=R & cores>=32 sort off_chip_rate");
        assert!(errors.is_empty());
        assert_eq!(
            kinds,
            vec![
                TokenKind::Ident("design".into()),
                TokenKind::Op(CmpOp::Eq),
                TokenKind::Ident("R".into()),
                TokenKind::Amp,
                TokenKind::Ident("cores".into()),
                TokenKind::Op(CmpOp::Ge),
                TokenKind::Int(32),
                TokenKind::Ident("sort".into()),
                TokenKind::Ident("off_chip_rate".into()),
            ]
        );
    }

    #[test]
    fn numbers_strings_and_negatives() {
        let (kinds, errors) = kinds("x=-4 y=2.5e-3 z='hello world' w=\"q\"");
        assert!(errors.is_empty());
        assert!(kinds.contains(&TokenKind::Int(-4)));
        assert!(kinds.contains(&TokenKind::Float(2.5e-3)));
        assert!(kinds.contains(&TokenKind::Str("hello world".into())));
        assert!(kinds.contains(&TokenKind::Str("q".into())));
    }

    #[test]
    fn bad_input_is_reported_and_skipped() {
        let (kinds, errors) = kinds("cores ? 32 & design='R");
        assert_eq!(errors.len(), 2, "{errors:?}");
        assert!(errors[0].message.contains("unexpected character `?`"));
        assert!(errors[1].message.contains("unterminated string"));
        // Tokens around the bad spots still come through.
        assert!(kinds.contains(&TokenKind::Int(32)));
        assert!(kinds.contains(&TokenKind::Amp));
    }
}
