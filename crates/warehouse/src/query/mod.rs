//! The typed query language over the warehouse.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! query  := [filter ('&' filter)*] [sort] [show] [top]
//! filter := column op literal
//! op     := '=' | '!=' | '<' | '<=' | '>' | '>='
//! literal:= integer | float | 'string' | "string" | bare-word
//!         | true | false | null
//! sort   := 'sort' column ['asc' | 'desc']
//! show   := 'show' column (',' column)*
//! top    := 'top' integer
//! ```
//!
//! Filters are conjunctive (`&` is AND). Bare words are string literals,
//! so `design=R` and `design='R'` are the same query. An empty query
//! selects every row. Example:
//!
//! ```text
//! kind=scenario & design=R & cores>=32 sort off_chip_rate desc top 5
//! ```
//!
//! The pipeline — lexer, resilient parser, name resolution against the
//! typed catalog, executor — is
//! deliberately error-accumulating: one pass reports *every* problem in
//! the query, each with a byte span into the source and, for near-miss
//! column names, a did-you-mean suggestion.

mod exec;
mod lexer;
mod parser;
mod resolve;

use crate::store::{Store, Value};
use std::fmt;

/// A half-open byte range into the query source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// First byte of the spanned text.
    pub start: usize,
    /// One past the last byte.
    pub end: usize,
}

impl Span {
    /// The span covering `start..end`.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// A zero-width span at `at` (used for "expected X, found end of query").
    pub fn point(at: usize) -> Self {
        Span { start: at, end: at }
    }
}

/// One diagnostic from the query pipeline, with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryError {
    /// Where in the query text the problem is.
    pub span: Span,
    /// What went wrong.
    pub message: String,
    /// An optional `help:` line (e.g. a did-you-mean suggestion).
    pub help: Option<String>,
}

impl QueryError {
    /// A diagnostic with no help line.
    pub fn new(span: Span, message: impl Into<String>) -> Self {
        QueryError {
            span,
            message: message.into(),
            help: None,
        }
    }

    /// Attaches a `help:` line.
    pub fn with_help(mut self, help: impl Into<String>) -> Self {
        self.help = Some(help.into());
        self
    }

    /// Renders this diagnostic in compiler style against the query text:
    ///
    /// ```text
    /// error: unknown column `coress`
    ///   | design=R & coress>=32
    ///   |            ^^^^^^
    ///   = help: did you mean `cores`?
    /// ```
    pub fn render(&self, source: &str) -> String {
        let mut out = format!("error: {}\n  | {source}\n  | ", self.message);
        let start = self.span.start.min(source.len());
        let end = self.span.end.min(source.len()).max(start);
        // Columns are display positions; count chars, not bytes.
        let lead = source[..start].chars().count();
        let width = source[start..end].chars().count().max(1);
        out.push_str(&" ".repeat(lead));
        out.push_str(&"^".repeat(width));
        if let Some(help) = &self.help {
            out.push_str("\n  = help: ");
            out.push_str(help);
        }
        out
    }
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (bytes {}..{})",
            self.message, self.span.start, self.span.end
        )
    }
}

/// Renders every diagnostic against the query text, newline-separated.
pub fn render_errors(errors: &[QueryError], source: &str) -> String {
    errors
        .iter()
        .map(|e| e.render(source))
        .collect::<Vec<_>>()
        .join("\n")
}

/// The result of a query: projected column names plus materialized rows.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutput {
    /// Projected column names, in output order.
    pub columns: Vec<&'static str>,
    /// One `Vec<Value>` per selected row, parallel to `columns`.
    pub rows: Vec<Vec<Value>>,
}

impl QueryOutput {
    /// Renders an aligned text table (header, rule, rows; nulls as `-`).
    pub fn render_table(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.chars().count()).collect();
        let cells: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|row| row.iter().map(|v| v.to_string()).collect())
            .collect();
        for row in &cells {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let last = self.columns.len().saturating_sub(1);
        for (i, (name, w)) in self.columns.iter().zip(&widths).enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            // The last column stays unpadded: no trailing whitespace.
            if i < last {
                out.push_str(&format!("{name:<w$}"));
            } else {
                out.push_str(name);
            }
        }
        out.push('\n');
        for (i, w) in widths.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(&"-".repeat(*w));
        }
        out.push('\n');
        for row in &cells {
            for (i, (cell, w)) in row.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                if i < last {
                    out.push_str(&format!("{cell:<w$}"));
                } else {
                    out.push_str(cell);
                }
            }
            out.push('\n');
        }
        out
    }

    /// Renders a JSON array of row objects (null cells as `null`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n  {");
            for (j, (name, value)) in self.columns.iter().zip(row).enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("\"{name}\": {}", value.to_json()));
            }
            out.push('}');
        }
        if !self.rows.is_empty() {
            out.push('\n');
        }
        out.push(']');
        out
    }
}

/// Runs `text` against `store`: lex, parse, resolve, execute.
///
/// All diagnostics from every stage come back together; the query only
/// executes when the pipeline is clean.
pub(crate) fn run_query(store: &Store, text: &str) -> Result<QueryOutput, Vec<QueryError>> {
    let mut errors = Vec::new();
    let tokens = lexer::lex(text, &mut errors);
    let ast = parser::parse(&tokens, text.len(), &mut errors);
    let plan = resolve::resolve(&ast, &mut errors);
    if errors.is_empty() {
        Ok(exec::execute(store, &plan))
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_points_at_the_span() {
        let src = "design=R & coress>=32";
        let err = QueryError::new(Span::new(11, 17), "unknown column `coress`")
            .with_help("did you mean `cores`?");
        let rendered = err.render(src);
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines[0], "error: unknown column `coress`");
        assert_eq!(lines[1], "  | design=R & coress>=32");
        assert_eq!(lines[2], "  |            ^^^^^^");
        assert_eq!(lines[3], "  = help: did you mean `cores`?");
    }

    #[test]
    fn point_span_renders_one_caret() {
        let src = "cores>=";
        let err = QueryError::new(Span::point(7), "expected a value");
        assert!(err
            .render(src)
            .lines()
            .nth(2)
            .expect("caret line")
            .ends_with('^'));
    }
}
