//! One measured run as a warehouse row, and its dedup key.
//!
//! A [`RunRecord`] mirrors the column [catalog](crate::catalog::CATALOG)
//! field-for-field (minus `batch`, which the store assigns at append
//! time). Its [`key`](RunRecord::key) is what makes the store idempotent:
//! appending a record whose key is already present is a no-op, so
//! re-ingesting a report or re-running a sweep adds zero rows.

use crate::store::Value;
use rnuca_types::Fnv64;

/// What a row measures, i.e. which subset of columns it populates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowKind {
    /// One perf scenario: per-(workload, design, cores) simulation metrics.
    Scenario,
    /// One fused perf group: wall-clock aggregate over a scenario group.
    Group,
    /// Whole-report totals: throughput over every group in one perf run.
    Totals,
    /// One sweep point from a [`ScenarioMatrix`] evaluation run.
    ///
    /// [`ScenarioMatrix`]: https://example.invalid/rnuca-sim
    Sweep,
    /// One quarantined sweep point: the job was supervised, every attempt
    /// failed, and instead of silently vanishing from results it is stored
    /// with its failure message in the `failure` column (queryable as
    /// `kind=failed`).
    Failed,
}

impl RowKind {
    /// The lowercase string stored in the `kind` column and used in queries.
    pub fn as_str(self) -> &'static str {
        match self {
            RowKind::Scenario => "scenario",
            RowKind::Group => "group",
            RowKind::Totals => "totals",
            RowKind::Sweep => "sweep",
            RowKind::Failed => "failed",
        }
    }
}

/// One run, ready to append into a [`Warehouse`](crate::Warehouse).
///
/// Fields are public by design: producers (the perf harness, the sweep
/// driver, the JSON ingester) construct a skeleton with [`RunRecord::new`]
/// and fill in whichever metric columns the row kind carries. `None`
/// stores as a null cell.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Row kind; stored in the `kind` column.
    pub kind: RowKind,
    /// Workload name (`apache`, `em3d`, ...), when the row is per-workload.
    pub workload: Option<String>,
    /// LLC design letter-name (`R`, `P`, `S`, `A`, `I`), when per-design.
    pub design: Option<String>,
    /// Geometry point letter from the paper's sweep (`a`..`d`).
    pub letter: Option<String>,
    /// Core count of the simulated CMP.
    pub cores: Option<i64>,
    /// LLC slice capacity in KiB.
    pub slice_kb: Option<i64>,
    /// R-NUCA fixed-center cluster size.
    pub cluster: Option<i64>,
    /// Workload fingerprint: FNV-1a of the full workload spec on native
    /// appends, of the workload name on JSON ingests (the JSON report does
    /// not carry the spec). Not a column; folded into the dedup key.
    pub fingerprint: u64,
    /// RNG seed the run used.
    pub seed: i64,
    /// Schema version of the producing pipeline (perf schema for
    /// scenario/group/totals rows, sweep schema for sweep rows).
    pub schema: i64,
    /// Experiment config label: `full`, `quick`, `smoke`, or `custom`.
    pub config: String,
    /// True when the producing run was filtered (`figures perf --filter`)
    /// and therefore does not cover the full scenario set. Gate queries
    /// exclude partial rows explicitly (`partial=false`).
    pub partial: bool,
    /// Scenario group key (`workload/letter/Ncores`), on group rows.
    pub group: Option<String>,
    /// References simulated (warm-up plus measured), where known.
    pub refs: Option<i64>,
    /// Scenario count (totals rows).
    pub scenarios: Option<i64>,
    /// Group count (totals rows).
    pub groups: Option<i64>,
    /// Total cycles-per-instruction.
    pub total_cpi: Option<f64>,
    /// CPI component: busy (compute) cycles.
    pub cpi_busy: Option<f64>,
    /// CPI component: L1-to-L1 transfers.
    pub cpi_l1_to_l1: Option<f64>,
    /// CPI component: L2 (LLC) hits.
    pub cpi_l2: Option<f64>,
    /// CPI component: off-chip accesses.
    pub cpi_off_chip: Option<f64>,
    /// CPI component: everything else.
    pub cpi_other: Option<f64>,
    /// CPI component: R-NUCA reclassification overhead.
    pub cpi_reclass: Option<f64>,
    /// Fraction of accesses that went off-chip.
    pub off_chip_rate: Option<f64>,
    /// Fraction of accesses served by a peer L1.
    pub l1_to_l1_rate: Option<f64>,
    /// Fraction of accesses the classifier initially misclassified.
    pub misclass_rate: Option<f64>,
    /// Count of page reclassification events.
    pub reclassifications: Option<i64>,
    /// Wall-clock nanoseconds spent forking warmed snapshots (group rows).
    pub fork_nanos: Option<i64>,
    /// Wall-clock nanoseconds spent in the measured phase (group rows).
    pub measured_nanos: Option<i64>,
    /// Wall-clock nanoseconds for the whole measurement loop (totals rows).
    pub loop_nanos: Option<i64>,
    /// Measured throughput in cache-block accesses per second.
    pub blocks_per_sec: Option<f64>,
    /// Measured throughput in scenario jobs per second.
    pub jobs_per_sec: Option<f64>,
    /// Failure description (`cause after N attempts: message`), on failed
    /// rows.
    pub failure: Option<String>,
}

impl RunRecord {
    /// A skeleton record with every optional column null.
    pub fn new(kind: RowKind, seed: i64, schema: i64, config: &str) -> Self {
        RunRecord {
            kind,
            workload: None,
            design: None,
            letter: None,
            cores: None,
            slice_kb: None,
            cluster: None,
            fingerprint: 0,
            seed,
            schema,
            config: config.to_string(),
            partial: false,
            group: None,
            refs: None,
            scenarios: None,
            groups: None,
            total_cpi: None,
            cpi_busy: None,
            cpi_l1_to_l1: None,
            cpi_l2: None,
            cpi_off_chip: None,
            cpi_other: None,
            cpi_reclass: None,
            off_chip_rate: None,
            l1_to_l1_rate: None,
            misclass_rate: None,
            reclassifications: None,
            fork_nanos: None,
            measured_nanos: None,
            loop_nanos: None,
            blocks_per_sec: None,
            jobs_per_sec: None,
            failure: None,
        }
    }

    /// The dedup key for this record.
    ///
    /// Deterministic rows (scenario, sweep) are keyed by *identity* — what
    /// was run: workload fingerprint, design, geometry, seed, schema,
    /// config, and the partial flag. Their metrics are a pure function of
    /// that identity, so re-running the same point maps to the same key
    /// and the first row wins — repeated sweeps are incremental.
    ///
    /// Timing rows (group, totals) measure wall-clock, which is *not* a
    /// function of identity, so they are keyed by full content: the same
    /// report re-ingested dedups to zero new rows, while a genuinely new
    /// run of the same configuration appends fresh rows.
    ///
    /// Failed rows are keyed by identity *plus* the failure text: resuming
    /// the same quarantined job dedups to one row, while the same point
    /// failing differently (a new message after a code change) stays
    /// visible as its own row.
    pub fn key(&self) -> u64 {
        let mut h = Fnv64::new();
        self.hash_identity(&mut h);
        match self.kind {
            RowKind::Scenario | RowKind::Sweep => {}
            RowKind::Group | RowKind::Totals => self.hash_metrics(&mut h),
            RowKind::Failed => hash_opt_str(&mut h, self.failure.as_deref()),
        }
        h.finish()
    }

    fn hash_identity(&self, h: &mut Fnv64) {
        h.write_str(self.kind.as_str());
        hash_opt_str(h, self.workload.as_deref());
        hash_opt_str(h, self.design.as_deref());
        hash_opt_str(h, self.letter.as_deref());
        hash_opt_i64(h, self.cores);
        hash_opt_i64(h, self.slice_kb);
        hash_opt_i64(h, self.cluster);
        h.write_u64(self.fingerprint);
        h.write_i64(self.seed);
        h.write_i64(self.schema);
        h.write_str(&self.config);
        h.write_bool(self.partial);
        hash_opt_str(h, self.group.as_deref());
    }

    fn hash_metrics(&self, h: &mut Fnv64) {
        hash_opt_i64(h, self.refs);
        hash_opt_i64(h, self.scenarios);
        hash_opt_i64(h, self.groups);
        hash_opt_f64(h, self.total_cpi);
        hash_opt_f64(h, self.cpi_busy);
        hash_opt_f64(h, self.cpi_l1_to_l1);
        hash_opt_f64(h, self.cpi_l2);
        hash_opt_f64(h, self.cpi_off_chip);
        hash_opt_f64(h, self.cpi_other);
        hash_opt_f64(h, self.cpi_reclass);
        hash_opt_f64(h, self.off_chip_rate);
        hash_opt_f64(h, self.l1_to_l1_rate);
        hash_opt_f64(h, self.misclass_rate);
        hash_opt_i64(h, self.reclassifications);
        hash_opt_i64(h, self.fork_nanos);
        hash_opt_i64(h, self.measured_nanos);
        hash_opt_i64(h, self.loop_nanos);
        hash_opt_f64(h, self.blocks_per_sec);
        hash_opt_f64(h, self.jobs_per_sec);
    }

    /// The cell this record stores under catalog column `name`, with the
    /// store-assigned batch number.
    pub(crate) fn cell(&self, name: &str, batch: u32) -> Value {
        match name {
            "batch" => Value::Int(i64::from(batch)),
            "kind" => Value::Str(self.kind.as_str().to_string()),
            "workload" => opt_str(self.workload.as_deref()),
            "design" => opt_str(self.design.as_deref()),
            "letter" => opt_str(self.letter.as_deref()),
            "cores" => opt_int(self.cores),
            "slice_kb" => opt_int(self.slice_kb),
            "cluster" => opt_int(self.cluster),
            "seed" => Value::Int(self.seed),
            "schema" => Value::Int(self.schema),
            "config" => Value::Str(self.config.clone()),
            "partial" => Value::Bool(self.partial),
            "group" => opt_str(self.group.as_deref()),
            "refs" => opt_int(self.refs),
            "scenarios" => opt_int(self.scenarios),
            "groups" => opt_int(self.groups),
            "total_cpi" => opt_float(self.total_cpi),
            "cpi_busy" => opt_float(self.cpi_busy),
            "cpi_l1_to_l1" => opt_float(self.cpi_l1_to_l1),
            "cpi_l2" => opt_float(self.cpi_l2),
            "cpi_off_chip" => opt_float(self.cpi_off_chip),
            "cpi_other" => opt_float(self.cpi_other),
            "cpi_reclass" => opt_float(self.cpi_reclass),
            "off_chip_rate" => opt_float(self.off_chip_rate),
            "l1_to_l1_rate" => opt_float(self.l1_to_l1_rate),
            "misclass_rate" => opt_float(self.misclass_rate),
            "reclassifications" => opt_int(self.reclassifications),
            "fork_nanos" => opt_int(self.fork_nanos),
            "measured_nanos" => opt_int(self.measured_nanos),
            "loop_nanos" => opt_int(self.loop_nanos),
            "blocks_per_sec" => opt_float(self.blocks_per_sec),
            "jobs_per_sec" => opt_float(self.jobs_per_sec),
            "failure" => opt_str(self.failure.as_deref()),
            other => unreachable!("column {other} is not in the catalog"),
        }
    }
}

fn opt_str(v: Option<&str>) -> Value {
    v.map_or(Value::Null, |s| Value::Str(s.to_string()))
}

fn opt_int(v: Option<i64>) -> Value {
    v.map_or(Value::Null, Value::Int)
}

fn opt_float(v: Option<f64>) -> Value {
    v.map_or(Value::Null, Value::Float)
}

fn hash_opt_str(h: &mut Fnv64, v: Option<&str>) {
    h.write_bool(v.is_some());
    if let Some(s) = v {
        h.write_str(s);
    }
}

fn hash_opt_i64(h: &mut Fnv64, v: Option<i64>) {
    h.write_bool(v.is_some());
    if let Some(x) = v {
        h.write_i64(x);
    }
}

fn hash_opt_f64(h: &mut Fnv64, v: Option<f64>) {
    h.write_bool(v.is_some());
    if let Some(x) = v {
        h.write_f64(x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario() -> RunRecord {
        let mut r = RunRecord::new(RowKind::Scenario, 42, 5, "full");
        r.workload = Some("apache".into());
        r.design = Some("R".into());
        r.letter = Some("b".into());
        r.cores = Some(32);
        r.fingerprint = 0xDEAD_BEEF;
        r.total_cpi = Some(1.25);
        r
    }

    #[test]
    fn deterministic_rows_key_by_identity_not_metrics() {
        let a = scenario();
        let mut b = scenario();
        b.total_cpi = Some(9.99);
        assert_eq!(a.key(), b.key(), "scenario metrics must not affect the key");

        let mut c = scenario();
        c.cores = Some(64);
        assert_ne!(a.key(), c.key(), "geometry is part of the identity");
    }

    #[test]
    fn timing_rows_key_by_content() {
        let mut a = RunRecord::new(RowKind::Totals, 42, 5, "full");
        a.blocks_per_sec = Some(5.5e6);
        let mut b = a.clone();
        assert_eq!(a.key(), b.key());
        b.blocks_per_sec = Some(5.6e6);
        assert_ne!(a.key(), b.key(), "totals metrics are part of the key");
    }

    #[test]
    fn partial_flag_and_kind_separate_keys() {
        let a = scenario();
        let mut b = scenario();
        b.partial = true;
        assert_ne!(a.key(), b.key());

        let mut c = scenario();
        c.kind = RowKind::Sweep;
        assert_ne!(a.key(), c.key());
    }

    #[test]
    fn every_catalog_column_has_a_cell() {
        let r = scenario();
        for col in crate::catalog::CATALOG {
            let _ = r.cell(col.name, 7);
        }
    }

    #[test]
    fn failed_rows_key_by_identity_plus_failure_text() {
        let mut a = scenario();
        a.kind = RowKind::Failed;
        a.failure = Some("panic after 3 attempts: boom".into());
        let b = a.clone();
        assert_eq!(a.key(), b.key(), "resuming the same failure must dedup");

        let mut c = a.clone();
        c.failure = Some("deadline after 1 attempt: too slow".into());
        assert_ne!(a.key(), c.key(), "a different failure is a new row");

        let mut d = a.clone();
        d.kind = RowKind::Sweep;
        d.failure = None;
        assert_ne!(a.key(), d.key(), "failed and sweep rows never collide");
        assert_eq!(a.cell("failure", 0), Value::Str(a.failure.clone().unwrap()));
        assert_eq!(d.cell("failure", 0), Value::Null);
    }
}
