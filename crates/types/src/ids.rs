//! Identifier newtypes for tiles, cores, rotational IDs, and memory controllers.
//!
//! The paper distinguishes between the conventional *core ID* (CID) that the
//! operating system uses for bookkeeping and the *rotational ID* (RID) used by
//! rotational interleaving (Section 4.1). Both are small integers, but mixing
//! them up silently breaks the indexing function, so each gets its own
//! newtype.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a processor core (the paper's CID).
///
/// In the tiled architectures modelled here there is exactly one core per
/// tile, so a `CoreId` and the [`TileId`] of the tile hosting that core share
/// the same index. They remain distinct types because the OS page
/// classification machinery records CIDs while the placement machinery works
/// with tiles.
///
/// # Example
///
/// ```
/// use rnuca_types::ids::{CoreId, TileId};
/// let c = CoreId::new(3);
/// let t: TileId = c.tile();
/// assert_eq!(t.index(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CoreId(u16);

impl CoreId {
    /// Creates a core identifier from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit the 16-bit representation (65536 cores
    /// and up). Truncating silently would alias distinct cores — the trace
    /// codec, for one, stores core indices in exactly these 16 bits.
    pub fn new(index: usize) -> Self {
        assert!(
            index <= u16::MAX as usize,
            "core index {index} exceeds the 16-bit ID space"
        );
        CoreId(index as u16)
    }

    /// Returns the zero-based index of this core.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the tile that hosts this core (same index).
    pub fn tile(self) -> TileId {
        TileId(self.0)
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl From<TileId> for CoreId {
    fn from(t: TileId) -> Self {
        CoreId(t.0)
    }
}

/// Identifier of a tile (core + L1 caches + L2 slice + router).
///
/// Tiles are numbered in row-major order over the 2-D torus: tile `y * width + x`
/// sits at coordinates `(x, y)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TileId(u16);

impl TileId {
    /// Creates a tile identifier from its row-major index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit the 16-bit representation (see [`CoreId::new`]).
    pub fn new(index: usize) -> Self {
        assert!(
            index <= u16::MAX as usize,
            "tile index {index} exceeds the 16-bit ID space"
        );
        TileId(index as u16)
    }

    /// Returns the zero-based row-major index of this tile.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the core hosted on this tile (same index).
    pub fn core(self) -> CoreId {
        CoreId(self.0)
    }

    /// Returns the `(x, y)` coordinates of this tile on a grid of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn coords(self, width: usize) -> (usize, usize) {
        assert!(width > 0, "grid width must be non-zero");
        (self.index() % width, self.index() / width)
    }

    /// Builds a tile identifier from `(x, y)` coordinates on a grid of the given width.
    pub fn from_coords(x: usize, y: usize, width: usize) -> Self {
        TileId::new(y * width + x)
    }
}

impl fmt::Display for TileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl From<CoreId> for TileId {
    fn from(c: CoreId) -> Self {
        TileId(c.0)
    }
}

/// Rotational ID (RID) assigned by the operating system for rotational interleaving.
///
/// RIDs in a size-`n` cluster range over `0..n`. Consecutive tiles in a row
/// receive consecutive RIDs; consecutive tiles in a column receive RIDs that
/// differ by `log2(n)` (Section 4.1 of the paper). RID assignment itself lives
/// in the `rnuca-os` crate; this type only carries the value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RotationalId(u8);

impl RotationalId {
    /// Creates a rotational ID.
    ///
    /// # Panics
    ///
    /// Panics if `value` does not fit in a `u8` (cluster sizes are far smaller).
    pub fn new(value: usize) -> Self {
        assert!(value <= u8::MAX as usize, "RID {value} out of range");
        RotationalId(value as u8)
    }

    /// Returns the RID value.
    pub fn value(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RotationalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RID{}", self.0)
    }
}

/// Identifier of an on-chip memory controller.
///
/// Table 1 provisions one controller per four cores, each co-located with a
/// tile and reached over the on-chip network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MemCtrlId(u16);

impl MemCtrlId {
    /// Creates a memory-controller identifier from its index.
    pub fn new(index: usize) -> Self {
        MemCtrlId(index as u16)
    }

    /// Returns the zero-based index of this controller.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for MemCtrlId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MC{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_and_tile_roundtrip() {
        for i in 0..64 {
            let c = CoreId::new(i);
            assert_eq!(c.index(), i);
            assert_eq!(c.tile().index(), i);
            assert_eq!(CoreId::from(c.tile()), c);
            assert_eq!(TileId::from(c), c.tile());
        }
    }

    #[test]
    fn tile_coords_roundtrip_4x4() {
        let width = 4;
        for i in 0..16 {
            let t = TileId::new(i);
            let (x, y) = t.coords(width);
            assert_eq!(TileId::from_coords(x, y, width), t);
            assert!(x < 4 && y < 4);
        }
    }

    #[test]
    fn tile_coords_roundtrip_4x2() {
        let width = 4;
        for i in 0..8 {
            let t = TileId::new(i);
            let (x, y) = t.coords(width);
            assert_eq!(TileId::from_coords(x, y, width), t);
            assert!(x < 4 && y < 2);
        }
    }

    #[test]
    #[should_panic(expected = "grid width must be non-zero")]
    fn zero_width_panics() {
        TileId::new(0).coords(0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(CoreId::new(7).to_string(), "P7");
        assert_eq!(TileId::new(12).to_string(), "T12");
        assert_eq!(RotationalId::new(3).to_string(), "RID3");
        assert_eq!(MemCtrlId::new(1).to_string(), "MC1");
    }

    #[test]
    #[should_panic(expected = "exceeds the 16-bit ID space")]
    fn oversized_core_index_panics() {
        CoreId::new(65_536);
    }

    #[test]
    #[should_panic(expected = "exceeds the 16-bit ID space")]
    fn oversized_tile_index_panics() {
        TileId::new(1 << 20);
    }

    #[test]
    fn ids_are_ordered() {
        assert!(CoreId::new(1) < CoreId::new(2));
        assert!(TileId::new(0) < TileId::new(15));
        assert!(RotationalId::new(0) < RotationalId::new(3));
    }
}
