//! Error types shared by the configuration and construction paths.

use std::error::Error;
use std::fmt;

/// An invalid system or cache configuration.
///
/// Returned by constructors that validate their arguments (cache geometry,
/// torus dimensions, cluster sizes, ...). The message is lowercase and
/// concise, per Rust API guidelines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    message: String,
}

impl ConfigError {
    /// Creates a configuration error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        ConfigError {
            message: message.into(),
        }
    }

    /// Returns the error message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shows_message() {
        let e = ConfigError::new("cluster size must be a power of two");
        assert_eq!(e.to_string(), "cluster size must be a power of two");
        assert_eq!(e.message(), "cluster size must be a power of two");
    }

    #[test]
    fn is_std_error_send_sync() {
        fn assert_err<T: Error + Send + Sync + 'static>() {}
        assert_err::<ConfigError>();
    }
}
