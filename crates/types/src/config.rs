//! System configuration: the parameters of Table 1 of the paper.
//!
//! Two presets are provided: [`SystemConfig::server_16`] (the 16-core CMP used
//! for server and scientific workloads) and [`SystemConfig::desktop_8`] (the
//! 8-core CMP used for the multi-programmed MIX workload).

use crate::error::ConfigError;
use crate::latency::Cycles;
use serde::{Deserialize, Serialize};

/// Geometry of a single set-associative cache array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub capacity_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Block (line) size in bytes.
    pub block_bytes: usize,
}

impl CacheGeometry {
    /// Creates a cache geometry, validating that it describes a realizable array.
    ///
    /// # Errors
    ///
    /// Returns an error if any parameter is zero, the block size is not a
    /// power of two, the capacity is not a multiple of `ways * block_bytes`,
    /// or the resulting set count is not a power of two.
    pub fn new(
        capacity_bytes: usize,
        ways: usize,
        block_bytes: usize,
    ) -> Result<Self, ConfigError> {
        if capacity_bytes == 0 || ways == 0 || block_bytes == 0 {
            return Err(ConfigError::new(
                "cache geometry parameters must be non-zero",
            ));
        }
        if !block_bytes.is_power_of_two() {
            return Err(ConfigError::new("block size must be a power of two"));
        }
        let way_bytes = ways * block_bytes;
        if !capacity_bytes.is_multiple_of(way_bytes) {
            return Err(ConfigError::new(
                "capacity must be a multiple of ways * block size",
            ));
        }
        let sets = capacity_bytes / way_bytes;
        if !sets.is_power_of_two() {
            return Err(ConfigError::new("number of sets must be a power of two"));
        }
        Ok(CacheGeometry {
            capacity_bytes,
            ways,
            block_bytes,
        })
    }

    /// Number of sets in the array.
    pub fn num_sets(&self) -> usize {
        self.capacity_bytes / (self.ways * self.block_bytes)
    }

    /// Number of blocks the array can hold.
    pub fn num_blocks(&self) -> usize {
        self.capacity_bytes / self.block_bytes
    }
}

/// Configuration of the per-tile L1 caches (split I/D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct L1Config {
    /// Geometry of each of the L1-I and L1-D arrays.
    pub geometry: CacheGeometry,
    /// Load-to-use latency of an L1 hit.
    pub hit_latency: Cycles,
    /// Number of outstanding-miss registers.
    pub mshrs: usize,
    /// Victim-cache entries attached to each L1.
    pub victim_entries: usize,
}

/// Configuration of one L2 NUCA slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct L2SliceConfig {
    /// Geometry of the slice.
    pub geometry: CacheGeometry,
    /// Access latency of a hit in the slice (bank access only, excluding network).
    pub hit_latency: Cycles,
    /// Number of outstanding-miss registers.
    pub mshrs: usize,
    /// Victim-cache entries attached to each slice.
    pub victim_entries: usize,
}

/// Configuration of the on-chip interconnect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NocConfig {
    /// Torus width (tiles per row).
    pub width: usize,
    /// Torus height (tiles per column).
    pub height: usize,
    /// Link traversal latency.
    pub link_latency: Cycles,
    /// Router pipeline latency.
    pub router_latency: Cycles,
    /// Link width in bytes (used for serialization latency of data messages).
    pub link_bytes: usize,
}

impl NocConfig {
    /// Number of tiles on the torus.
    pub fn num_tiles(&self) -> usize {
        self.width * self.height
    }

    /// Latency of a single hop (one link plus one router).
    pub fn hop_latency(&self) -> Cycles {
        self.link_latency + self.router_latency
    }
}

/// Configuration of main memory and the on-chip memory controllers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryConfig {
    /// Total main-memory capacity in bytes.
    pub capacity_bytes: u64,
    /// OS page size in bytes.
    pub page_bytes: usize,
    /// DRAM access latency in core cycles (45 ns at 2 GHz = 90 cycles).
    pub access_latency: Cycles,
    /// Number of cores served by each memory controller.
    pub cores_per_controller: usize,
}

/// Full system configuration (one row of Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Number of processor cores (== number of tiles).
    pub num_cores: usize,
    /// Core clock frequency in Hz (2 GHz in the paper).
    pub clock_hz: u64,
    /// Per-tile L1 configuration.
    pub l1: L1Config,
    /// Per-tile L2 slice configuration.
    pub l2_slice: L2SliceConfig,
    /// Interconnect configuration.
    pub torus: NocConfig,
    /// Memory system configuration.
    pub memory: MemoryConfig,
}

impl SystemConfig {
    /// The 16-core server/scientific configuration of Table 1:
    /// 1 MB 16-way L2 slice per core with a 14-cycle hit, 4×4 folded torus.
    pub fn server_16() -> Self {
        SystemConfig {
            num_cores: 16,
            clock_hz: 2_000_000_000,
            l1: L1Config {
                geometry: CacheGeometry::new(64 * 1024, 2, 64)
                    .expect("L1 geometry from Table 1 is valid"),
                hit_latency: Cycles(2),
                mshrs: 32,
                victim_entries: 16,
            },
            l2_slice: L2SliceConfig {
                geometry: CacheGeometry::new(1024 * 1024, 16, 64)
                    .expect("L2 geometry from Table 1 is valid"),
                hit_latency: Cycles(14),
                mshrs: 32,
                victim_entries: 16,
            },
            torus: NocConfig {
                width: 4,
                height: 4,
                link_latency: Cycles(1),
                router_latency: Cycles(2),
                link_bytes: 32,
            },
            memory: MemoryConfig {
                capacity_bytes: 3 * 1024 * 1024 * 1024,
                page_bytes: 8192,
                access_latency: Cycles(90),
                cores_per_controller: 4,
            },
        }
    }

    /// The 8-core multi-programmed configuration of Table 1:
    /// 3 MB 12-way L2 slice per core with a 25-cycle hit, 4×2 folded torus.
    pub fn desktop_8() -> Self {
        SystemConfig {
            num_cores: 8,
            clock_hz: 2_000_000_000,
            l1: L1Config {
                geometry: CacheGeometry::new(64 * 1024, 2, 64)
                    .expect("L1 geometry from Table 1 is valid"),
                hit_latency: Cycles(2),
                mshrs: 32,
                victim_entries: 16,
            },
            l2_slice: L2SliceConfig {
                geometry: CacheGeometry::new(3 * 1024 * 1024, 12, 64)
                    .expect("L2 geometry from Table 1 is valid"),
                hit_latency: Cycles(25),
                mshrs: 32,
                victim_entries: 16,
            },
            torus: NocConfig {
                width: 4,
                height: 2,
                link_latency: Cycles(1),
                router_latency: Cycles(2),
                link_bytes: 32,
            },
            memory: MemoryConfig {
                capacity_bytes: 3 * 1024 * 1024 * 1024,
                page_bytes: 8192,
                access_latency: Cycles(90),
                cores_per_controller: 4,
            },
        }
    }

    /// Number of tiles (== cores) in the system.
    pub fn num_tiles(&self) -> usize {
        self.num_cores
    }

    /// Returns a copy of this configuration scaled to `num_cores` cores.
    ///
    /// The torus is re-shaped to the squarest `width x height` factorisation
    /// (16 → 4×4, 32 → 8×4, 64 → 8×8) so hop counts grow the way the paper's
    /// scaling argument assumes. All per-tile parameters are kept.
    ///
    /// # Errors
    ///
    /// Returns an error if `num_cores` is zero or not a power of two (the
    /// rotational-interleaving machinery requires power-of-two tile counts).
    pub fn with_core_count(mut self, num_cores: usize) -> Result<Self, ConfigError> {
        if num_cores == 0 || !num_cores.is_power_of_two() {
            return Err(ConfigError::new(format!(
                "core count must be a non-zero power of two, got {num_cores}"
            )));
        }
        let height = 1usize << (num_cores.trailing_zeros() / 2);
        self.num_cores = num_cores;
        self.torus.width = num_cores / height;
        self.torus.height = height;
        self.validate()?;
        Ok(self)
    }

    /// Returns a copy of this configuration with `capacity_bytes` L2 slices.
    ///
    /// The block size is preserved. The associativity starts from the current
    /// value and is reduced (deterministically) until the geometry is
    /// realizable — e.g. shrinking the desktop preset's 12-way 3 MB slice to
    /// 512 KB settles on 8 ways so the set count stays a power of two.
    ///
    /// # Errors
    ///
    /// Returns an error if no associativity in `1..=current` yields a valid
    /// geometry for the requested capacity.
    pub fn with_slice_capacity(mut self, capacity_bytes: usize) -> Result<Self, ConfigError> {
        let block = self.l2_slice.geometry.block_bytes;
        let geometry = (1..=self.l2_slice.geometry.ways)
            .rev()
            .find_map(|ways| CacheGeometry::new(capacity_bytes, ways, block).ok())
            .ok_or_else(|| {
                ConfigError::new(format!(
                    "no valid L2 slice geometry for {capacity_bytes} bytes with {block}-byte blocks"
                ))
            })?;
        self.l2_slice.geometry = geometry;
        Ok(self)
    }

    /// Number of memory controllers in the system.
    pub fn num_mem_controllers(&self) -> usize {
        self.num_cores.div_ceil(self.memory.cores_per_controller)
    }

    /// Aggregate L2 capacity across all slices, in bytes.
    pub fn aggregate_l2_bytes(&self) -> usize {
        self.num_cores * self.l2_slice.geometry.capacity_bytes
    }

    /// Validates internal consistency (torus covers all tiles, geometries valid).
    ///
    /// # Errors
    ///
    /// Returns an error if the torus dimensions do not multiply to the core
    /// count, or either cache geometry fails validation.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.torus.num_tiles() != self.num_cores {
            return Err(ConfigError::new(
                "torus dimensions must cover exactly one tile per core",
            ));
        }
        if self.num_cores == 0 {
            return Err(ConfigError::new("system must have at least one core"));
        }
        if !self.memory.page_bytes.is_power_of_two() {
            return Err(ConfigError::new("page size must be a power of two"));
        }
        CacheGeometry::new(
            self.l1.geometry.capacity_bytes,
            self.l1.geometry.ways,
            self.l1.geometry.block_bytes,
        )?;
        CacheGeometry::new(
            self.l2_slice.geometry.capacity_bytes,
            self.l2_slice.geometry.ways,
            self.l2_slice.geometry.block_bytes,
        )?;
        Ok(())
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig::server_16()
    }
}

/// The subset of a [`SystemConfig`] that determines the *contents* of a
/// workload's reference stream.
///
/// Trace generation depends on the number of issuing cores and on the block
/// and page granularities the address layout is built from — and on nothing
/// else. Slice capacities, associativities, latencies, and topology shape
/// what a stream *costs* to simulate, never which references it contains, so
/// two configurations with equal `TraceGeometry` replay the identical
/// stream. Trace memoization keys on this struct for exactly that reason.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TraceGeometry {
    /// Number of cores issuing references.
    pub num_cores: usize,
    /// Cache-block size in bytes (the granularity references are aligned to).
    pub block_bytes: usize,
    /// OS page size in bytes (the granularity address regions are laid out in).
    pub page_bytes: usize,
}

impl SystemConfig {
    /// The trace-determining subset of this configuration (see [`TraceGeometry`]).
    pub fn trace_geometry(&self) -> TraceGeometry {
        TraceGeometry {
            num_cores: self.num_cores,
            block_bytes: self.l2_slice.geometry.block_bytes,
            page_bytes: self.memory.page_bytes,
        }
    }
}

/// One point of a scenario sweep: a set of overrides applied on top of a
/// workload's baseline [`SystemConfig`].
///
/// `None` fields keep the baseline value, so the all-`None` point is the
/// baseline itself. The first two overrides act on the system configuration
/// via [`ConfigPoint::apply`]; `instr_cluster_size` is carried along for the
/// simulation layer, which realises it by parameterising the R-NUCA design
/// rather than the system configuration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConfigPoint {
    /// Override for the number of cores (and tiles) on the chip.
    pub num_cores: Option<usize>,
    /// Override for the per-tile L2 slice capacity, in KB.
    pub slice_capacity_kb: Option<usize>,
    /// Override for the R-NUCA instruction-cluster size (consumed by the
    /// simulation layer; ignored by [`ConfigPoint::apply`]).
    pub instr_cluster_size: Option<usize>,
}

impl ConfigPoint {
    /// The baseline point: no overrides.
    pub fn baseline() -> Self {
        ConfigPoint::default()
    }

    /// Whether this point overrides nothing.
    pub fn is_baseline(&self) -> bool {
        *self == ConfigPoint::default()
    }

    /// Applies the system-level overrides to `base`.
    ///
    /// # Errors
    ///
    /// Returns an error if an override produces an invalid configuration
    /// (non-power-of-two core count, unrealizable slice geometry).
    pub fn apply(&self, base: &SystemConfig) -> Result<SystemConfig, ConfigError> {
        let mut cfg = *base;
        if let Some(n) = self.num_cores {
            cfg = cfg.with_core_count(n)?;
        }
        if let Some(kb) = self.slice_capacity_kb {
            cfg = cfg.with_slice_capacity(kb * 1024)?;
        }
        cfg.validate()?;
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_server_parameters() {
        let cfg = SystemConfig::server_16();
        assert_eq!(cfg.num_cores, 16);
        assert_eq!(cfg.l2_slice.geometry.capacity_bytes, 1024 * 1024);
        assert_eq!(cfg.l2_slice.geometry.ways, 16);
        assert_eq!(cfg.l2_slice.hit_latency, Cycles(14));
        assert_eq!(cfg.l1.geometry.capacity_bytes, 64 * 1024);
        assert_eq!(cfg.l1.hit_latency, Cycles(2));
        assert_eq!(cfg.torus.width * cfg.torus.height, 16);
        assert_eq!(cfg.memory.access_latency, Cycles(90));
        assert_eq!(cfg.num_mem_controllers(), 4);
        assert_eq!(cfg.aggregate_l2_bytes(), 16 * 1024 * 1024);
        cfg.validate().expect("preset must validate");
    }

    #[test]
    fn table1_desktop_parameters() {
        let cfg = SystemConfig::desktop_8();
        assert_eq!(cfg.num_cores, 8);
        assert_eq!(cfg.l2_slice.geometry.capacity_bytes, 3 * 1024 * 1024);
        assert_eq!(cfg.l2_slice.geometry.ways, 12);
        assert_eq!(cfg.l2_slice.hit_latency, Cycles(25));
        assert_eq!(cfg.torus.width, 4);
        assert_eq!(cfg.torus.height, 2);
        assert_eq!(cfg.num_mem_controllers(), 2);
        cfg.validate().expect("preset must validate");
    }

    #[test]
    fn geometry_validation_rejects_bad_shapes() {
        assert!(CacheGeometry::new(0, 2, 64).is_err());
        assert!(CacheGeometry::new(64 * 1024, 0, 64).is_err());
        assert!(CacheGeometry::new(64 * 1024, 2, 48).is_err());
        assert!(CacheGeometry::new(65 * 1024, 2, 64).is_err());
        // 3 MB 12-way 64 B => 4096 sets, valid.
        assert!(CacheGeometry::new(3 * 1024 * 1024, 12, 64).is_ok());
        // 96 KB 2-way 64 B => 768 sets: not a power of two.
        assert!(CacheGeometry::new(96 * 1024, 2, 64).is_err());
    }

    #[test]
    fn geometry_derived_quantities() {
        let g = CacheGeometry::new(1024 * 1024, 16, 64).unwrap();
        assert_eq!(g.num_sets(), 1024);
        assert_eq!(g.num_blocks(), 16384);
        let l1 = CacheGeometry::new(64 * 1024, 2, 64).unwrap();
        assert_eq!(l1.num_sets(), 512);
    }

    #[test]
    fn hop_latency_is_link_plus_router() {
        let cfg = SystemConfig::server_16();
        assert_eq!(cfg.torus.hop_latency(), Cycles(3));
    }

    #[test]
    fn validate_catches_mismatched_torus() {
        let mut cfg = SystemConfig::server_16();
        cfg.torus.width = 5;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn default_is_server_16() {
        assert_eq!(SystemConfig::default(), SystemConfig::server_16());
    }

    #[test]
    fn with_core_count_reshapes_the_torus() {
        let base = SystemConfig::server_16();
        for (n, w, h) in [(8, 4, 2), (16, 4, 4), (32, 8, 4), (64, 8, 8)] {
            let cfg = base
                .with_core_count(n)
                .expect("power-of-two core counts are valid");
            assert_eq!(cfg.num_cores, n);
            assert_eq!((cfg.torus.width, cfg.torus.height), (w, h));
            cfg.validate().expect("scaled config must validate");
            // Per-tile parameters are untouched.
            assert_eq!(cfg.l2_slice, base.l2_slice);
        }
        assert!(base.with_core_count(0).is_err());
        assert!(base.with_core_count(24).is_err());
    }

    #[test]
    fn with_slice_capacity_keeps_or_reduces_ways() {
        // 512 KB at 16 ways: 512 sets, valid — ways preserved.
        let cfg = SystemConfig::server_16()
            .with_slice_capacity(512 * 1024)
            .unwrap();
        assert_eq!(cfg.l2_slice.geometry.capacity_bytes, 512 * 1024);
        assert_eq!(cfg.l2_slice.geometry.ways, 16);
        // 512 KB at 12 ways is unrealizable; the desktop preset settles on 8.
        let cfg = SystemConfig::desktop_8()
            .with_slice_capacity(512 * 1024)
            .unwrap();
        assert_eq!(cfg.l2_slice.geometry.ways, 8);
        assert_eq!(cfg.l2_slice.geometry.num_sets(), 1024);
        // A capacity smaller than one block is unrealizable at any way count.
        assert!(SystemConfig::server_16().with_slice_capacity(32).is_err());
    }

    #[test]
    fn config_point_baseline_is_identity() {
        let base = SystemConfig::server_16();
        let point = ConfigPoint::baseline();
        assert!(point.is_baseline());
        assert_eq!(point.apply(&base).unwrap(), base);
    }

    #[test]
    fn trace_geometry_ignores_cost_only_parameters() {
        let base = SystemConfig::server_16();
        let g = base.trace_geometry();
        assert_eq!(g.num_cores, 16);
        assert_eq!(g.block_bytes, 64);
        assert_eq!(g.page_bytes, 8192);
        // Slice capacity shapes cost, not stream contents.
        let resized = base.with_slice_capacity(512 * 1024).unwrap();
        assert_eq!(resized.trace_geometry(), g);
        // Core count changes the stream.
        let scaled = base.with_core_count(64).unwrap();
        assert_ne!(scaled.trace_geometry(), g);
        assert_eq!(scaled.trace_geometry().num_cores, 64);
    }

    #[test]
    fn config_point_applies_cores_and_capacity() {
        let base = SystemConfig::server_16();
        let point = ConfigPoint {
            num_cores: Some(64),
            slice_capacity_kb: Some(512),
            instr_cluster_size: Some(8),
        };
        assert!(!point.is_baseline());
        let cfg = point.apply(&base).unwrap();
        assert_eq!(cfg.num_cores, 64);
        assert_eq!(cfg.l2_slice.geometry.capacity_bytes, 512 * 1024);
        // The cluster-size override is carried, not applied here.
        assert_eq!(cfg.torus.num_tiles(), 64);
        let bad = ConfigPoint {
            num_cores: Some(5),
            ..ConfigPoint::default()
        };
        assert!(bad.apply(&base).is_err());
    }
}
