//! The state-snapshot byte codec behind warmed-checkpoint forking.
//!
//! Every simulator structure whose contents accumulate during warm-up
//! implements [`Snap`]: a flat, versionless little-endian encoding into a
//! shared byte buffer, plus the exact inverse. The codec is deliberately
//! *verbatim*: open-addressed maps encode their slot arrays as laid out
//! (probe chains included), LRU slabs encode their intrusive links, cache
//! arrays encode their tag/age/meta slabs and occupancy masks unchanged —
//! so a decoded structure is not merely equal to the original as a mapping,
//! it is the bit-identical object, and a simulator restored from a snapshot
//! continues exactly as the warmed original would have.
//!
//! The format has no headers, tags, or self-description: encoder and
//! decoder are compiled from the same struct definitions, and snapshots
//! never outlive the process (they live in an in-memory
//! `SnapshotArena`), so there is nothing to version against.

/// A reader over an encoded snapshot buffer.
///
/// Tracks a cursor into the byte slice; every decode consumes exactly the
/// bytes its encode produced. Running past the end panics — a snapshot is
/// produced and consumed by the same build, so a short buffer is a bug,
/// not an input error.
#[derive(Debug)]
pub struct SnapReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// A reader positioned at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        SnapReader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Consumes and returns the next `n` bytes.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> &'a [u8] {
        let end = self.pos + n;
        assert!(end <= self.bytes.len(), "snapshot buffer underrun");
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        out
    }

    /// Decodes one value of type `T` at the cursor.
    pub fn get<T: Snap>(&mut self) -> T {
        T::decode(self)
    }
}

/// Byte-exact snapshot encoding for one type.
///
/// `decode(encode(x)) == x` field-for-field; for container types the
/// internal layout (slot order, link order) round-trips too.
pub trait Snap: Sized {
    /// Appends this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Reads one value back from the cursor of `r`.
    fn decode(r: &mut SnapReader<'_>) -> Self;
}

macro_rules! impl_snap_int {
    ($($t:ty),*) => {$(
        impl Snap for $t {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }

            fn decode(r: &mut SnapReader<'_>) -> Self {
                let bytes = r.take(std::mem::size_of::<$t>());
                <$t>::from_le_bytes(bytes.try_into().expect("sized take"))
            }
        }
    )*};
}

impl_snap_int!(u8, u16, u32, u64, i64);

impl Snap for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }

    fn decode(r: &mut SnapReader<'_>) -> Self {
        let v = u64::decode(r);
        usize::try_from(v).expect("snapshot usize fits the host word")
    }
}

impl Snap for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }

    fn decode(r: &mut SnapReader<'_>) -> Self {
        match u8::decode(r) {
            0 => false,
            1 => true,
            b => panic!("snapshot bool byte {b} is neither 0 nor 1"),
        }
    }
}

impl Snap for f64 {
    /// Encoded via [`f64::to_bits`]: restore is bit-identical, NaN payloads
    /// and signed zeros included.
    fn encode(&self, out: &mut Vec<u8>) {
        self.to_bits().encode(out);
    }

    fn decode(r: &mut SnapReader<'_>) -> Self {
        f64::from_bits(u64::decode(r))
    }
}

impl<T: Snap> Snap for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }

    fn decode(r: &mut SnapReader<'_>) -> Self {
        match u8::decode(r) {
            0 => None,
            1 => Some(T::decode(r)),
            b => panic!("snapshot Option tag {b} is neither 0 nor 1"),
        }
    }
}

impl<A: Snap, B: Snap> Snap for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }

    fn decode(r: &mut SnapReader<'_>) -> Self {
        let a = A::decode(r);
        let b = B::decode(r);
        (a, b)
    }
}

impl<T: Snap> Snap for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.len().encode(out);
        for item in self {
            item.encode(out);
        }
    }

    fn decode(r: &mut SnapReader<'_>) -> Self {
        let len = usize::decode(r);
        let mut v = Vec::with_capacity(len);
        for _ in 0..len {
            v.push(T::decode(r));
        }
        v
    }
}

/// Decodes a `Vec<T>` whose backing allocation is hinted for huge pages
/// *before* the elements are written (first touch), matching how the large
/// simulator slabs allocate. Use for the multi-megabyte tag/age/metadata
/// slabs a snapshot restores; plain [`Vec::decode`] is fine elsewhere.
pub fn decode_vec_hinted<T: Snap>(r: &mut SnapReader<'_>) -> Vec<T> {
    let len = usize::decode(r);
    let mut v: Vec<T> = Vec::with_capacity(len);
    crate::os_hint::advise_huge_pages(v.as_ptr(), len * std::mem::size_of::<T>());
    for _ in 0..len {
        v.push(T::decode(r));
    }
    v
}

impl Snap for crate::ids::CoreId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.index().encode(out);
    }

    fn decode(r: &mut SnapReader<'_>) -> Self {
        crate::ids::CoreId::new(usize::decode(r))
    }
}

impl Snap for crate::ids::TileId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.index().encode(out);
    }

    fn decode(r: &mut SnapReader<'_>) -> Self {
        crate::ids::TileId::new(usize::decode(r))
    }
}

impl Snap for crate::latency::Cycles {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }

    fn decode(r: &mut SnapReader<'_>) -> Self {
        crate::latency::Cycles(u64::decode(r))
    }
}

impl Snap for crate::access::AccessClass {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            crate::access::AccessClass::Instruction => 0,
            crate::access::AccessClass::PrivateData => 1,
            crate::access::AccessClass::SharedData => 2,
        });
    }

    fn decode(r: &mut SnapReader<'_>) -> Self {
        match u8::decode(r) {
            0 => crate::access::AccessClass::Instruction,
            1 => crate::access::AccessClass::PrivateData,
            2 => crate::access::AccessClass::SharedData,
            b => panic!("snapshot AccessClass tag {b} is out of range"),
        }
    }
}

impl Snap for crate::config::CacheGeometry {
    fn encode(&self, out: &mut Vec<u8>) {
        self.capacity_bytes.encode(out);
        self.ways.encode(out);
        self.block_bytes.encode(out);
    }

    fn decode(r: &mut SnapReader<'_>) -> Self {
        let capacity_bytes = usize::decode(r);
        let ways = usize::decode(r);
        let block_bytes = usize::decode(r);
        crate::config::CacheGeometry::new(capacity_bytes, ways, block_bytes)
            .expect("snapshot geometry was valid when encoded")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessClass;
    use crate::ids::{CoreId, TileId};
    use crate::latency::Cycles;

    fn roundtrip<T: Snap + PartialEq + std::fmt::Debug>(value: T) {
        let mut buf = Vec::new();
        value.encode(&mut buf);
        let mut r = SnapReader::new(&buf);
        assert_eq!(T::decode(&mut r), value);
        assert_eq!(r.remaining(), 0, "decode must consume the whole encoding");
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u8);
        roundtrip(u8::MAX);
        roundtrip(0xBEEFu16);
        roundtrip(0xDEAD_BEEFu32);
        roundtrip(u64::MAX - 3);
        roundtrip(usize::MAX);
        roundtrip(true);
        roundtrip(false);
        roundtrip(1.25f64);
        roundtrip(-0.0f64);
    }

    #[test]
    fn f64_is_bit_exact() {
        let nan = f64::from_bits(0x7FF8_0000_0000_1234);
        let mut buf = Vec::new();
        nan.encode(&mut buf);
        let decoded = f64::decode(&mut SnapReader::new(&buf));
        assert_eq!(decoded.to_bits(), nan.to_bits());
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(Option::<u64>::None);
        roundtrip(Some(42u64));
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(Vec::<u8>::new());
        roundtrip((7u32, Some(vec![false, true])));
    }

    #[test]
    fn domain_types_roundtrip() {
        roundtrip(CoreId::new(13));
        roundtrip(TileId::new(63));
        roundtrip(Cycles(9000));
        roundtrip(AccessClass::Instruction);
        roundtrip(AccessClass::PrivateData);
        roundtrip(AccessClass::SharedData);
        roundtrip(crate::config::CacheGeometry::new(512 * 1024, 16, 64).expect("valid geometry"));
    }

    #[test]
    #[should_panic(expected = "snapshot buffer underrun")]
    fn underrun_panics() {
        let mut r = SnapReader::new(&[1, 2]);
        let _ = u64::decode(&mut r);
    }
}
