//! Common vocabulary types for the R-NUCA reproduction.
//!
//! This crate defines the identifiers, physical-address helpers, access
//! classification vocabulary, latency accounting types, and the system
//! configuration (the parameters of Table 1 in the paper) that every other
//! crate in the workspace builds on.
//!
//! # Example
//!
//! ```
//! use rnuca_types::config::SystemConfig;
//! use rnuca_types::ids::CoreId;
//!
//! // The 16-core server configuration from Table 1 of the paper.
//! let cfg = SystemConfig::server_16();
//! assert_eq!(cfg.num_tiles(), 16);
//! assert_eq!(cfg.torus.width, 4);
//! assert_eq!(cfg.l2_slice.hit_latency.0, 14);
//!
//! // Tiles are addressed by `TileId`; cores by `CoreId`.
//! let core = CoreId::new(5);
//! assert_eq!(core.index(), 5);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod access;
pub mod addr;
pub mod config;
pub mod error;
pub mod failpoint;
pub mod fingerprint;
pub mod ids;
pub mod index_map;
pub mod latency;
pub mod os_hint;
pub mod retry;
pub mod snap;

pub use access::{AccessClass, AccessKind, MemoryAccess};
pub use addr::{BlockAddr, PageAddr, PhysAddr};
pub use config::{
    CacheGeometry, ConfigPoint, L2SliceConfig, NocConfig, SystemConfig, TraceGeometry,
};
pub use error::ConfigError;
pub use fingerprint::Fnv64;
pub use ids::{CoreId, MemCtrlId, RotationalId, TileId};
pub use index_map::U64Map;
pub use latency::Cycles;
pub use retry::{BackoffConfig, RetryPolicy};
pub use snap::{Snap, SnapReader};
