//! The shared FNV-1a fingerprint hasher behind every memoization and
//! dedup key in the workspace.
//!
//! Three subsystems key their stores by content fingerprints: the trace
//! arena (workload profile → reference stream), the snapshot arena
//! (full workload spec → warmed checkpoint), and the results warehouse
//! (scenario identity → stored row). Before this module each hand-rolled
//! the same FNV-1a loop; [`Fnv64`] centralises the constants and the
//! mixing discipline so a key is always built the same way — and so the
//! warehouse's persisted keys stay stable across builds (FNV-1a is
//! platform-independent and has no per-process randomisation, unlike
//! `DefaultHasher`).

/// An incremental 64-bit FNV-1a hasher.
///
/// Feed it bytes, integers, floats (hashed by bit pattern), or strings in a
/// fixed order; [`Fnv64::finish`] yields the digest. The same input sequence
/// always produces the same digest, on every platform and in every process.
///
/// # Example
///
/// ```
/// use rnuca_types::fingerprint::Fnv64;
///
/// let mut h = Fnv64::new();
/// h.write_str("OLTP DB2").write_u64(16).write_f64(0.5);
/// let a = h.finish();
///
/// let mut h = Fnv64::new();
/// h.write_str("OLTP DB2").write_u64(16).write_f64(0.5);
/// assert_eq!(a, h.finish());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv64 {
    state: u64,
}

/// The FNV-1a 64-bit offset basis.
const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// The FNV-1a 64-bit prime.
const PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fnv64 {
    /// A hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv64 { state: OFFSET }
    }

    /// Mixes raw bytes into the digest.
    pub fn write(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.state = (self.state ^ u64::from(b)).wrapping_mul(PRIME);
        }
        self
    }

    /// Mixes a string's UTF-8 bytes, then a terminator byte that cannot
    /// occur in UTF-8, so adjacent strings cannot alias (`"ab" + "c"` and
    /// `"a" + "bc"` produce different digests).
    pub fn write_str(&mut self, s: &str) -> &mut Self {
        self.write(s.as_bytes());
        self.write(&[0xFF])
    }

    /// Mixes a `u64` as its eight little-endian bytes.
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write(&v.to_le_bytes())
    }

    /// Mixes an `i64` as its eight little-endian bytes.
    pub fn write_i64(&mut self, v: i64) -> &mut Self {
        self.write(&v.to_le_bytes())
    }

    /// Mixes an `f64` by bit pattern (NaN payloads and signed zeros
    /// distinguish, exactly like the snapshot codec's `f64` encoding).
    pub fn write_f64(&mut self, v: f64) -> &mut Self {
        self.write_u64(v.to_bits())
    }

    /// Mixes a bool as one byte.
    pub fn write_bool(&mut self, v: bool) -> &mut Self {
        self.write(&[u8::from(v)])
    }

    /// The digest of everything written so far.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

/// One-shot FNV-1a over a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn incremental_equals_one_shot() {
        let mut h = Fnv64::new();
        h.write(b"foo").write(b"bar");
        assert_eq!(h.finish(), fnv1a(b"foobar"));
    }

    #[test]
    fn string_terminator_prevents_aliasing() {
        let mut a = Fnv64::new();
        a.write_str("ab").write_str("c");
        let mut b = Fnv64::new();
        b.write_str("a").write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn typed_writers_are_order_sensitive() {
        let mut a = Fnv64::new();
        a.write_u64(1).write_u64(2);
        let mut b = Fnv64::new();
        b.write_u64(2).write_u64(1);
        assert_ne!(a.finish(), b.finish());

        let mut neg = Fnv64::new();
        neg.write_i64(-1);
        let mut max = Fnv64::new();
        max.write_u64(u64::MAX);
        // -1i64 and u64::MAX share a bit pattern by design.
        assert_eq!(neg.finish(), max.finish());

        let mut f = Fnv64::new();
        f.write_f64(-0.0);
        let mut g = Fnv64::new();
        g.write_f64(0.0);
        assert_ne!(f.finish(), g.finish(), "signed zeros distinguish");
    }
}
