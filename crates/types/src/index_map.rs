//! An open-addressed hash map keyed by `u64` — the simulator's hot-path map.
//!
//! Every per-access lookup in the simulator is keyed by an address
//! representation that is already a small `u64` (block numbers, page
//! numbers). `std::collections::HashMap` spends most of such a lookup in
//! SipHash and in DoS-resistance machinery that a deterministic simulator
//! does not need. [`U64Map`] replaces it on those paths: Fibonacci
//! multiplicative hashing, linear probing over a power-of-two slot array,
//! and backward-shift deletion (no tombstones), so probe chains stay short
//! for the life of the map.
//!
//! Unlike `HashMap`, iteration order is *deterministic*: it depends only on
//! the sequence of operations performed, never on a per-instance random
//! state, which is the property the engine's reproducibility guarantees
//! lean on.

use std::fmt;

/// The multiplier of Fibonacci hashing: `2^64 / phi`, rounded to odd.
const FIB_MULT: u64 = 0x9E37_79B9_7F4A_7C15;

/// Smallest number of slots a non-empty map allocates.
const MIN_SLOTS: usize = 16;

/// Opaque handle to an occupied slot of a [`U64Map`], returned by
/// [`U64Map::find_slot`]. Valid until the next insertion or removal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Slot(usize);

/// An open-addressed, linear-probing hash map from `u64` keys to `V`.
///
/// # Example
///
/// ```
/// use rnuca_types::index_map::U64Map;
///
/// let mut map: U64Map<&str> = U64Map::new();
/// map.insert(7, "seven");
/// assert_eq!(map.get(7), Some(&"seven"));
/// assert_eq!(map.remove(7), Some("seven"));
/// assert!(map.is_empty());
/// ```
#[derive(Clone)]
pub struct U64Map<V> {
    /// Slot array, always a power of two long (or empty before first insert).
    slots: Vec<Option<(u64, V)>>,
    /// Number of occupied slots.
    len: usize,
}

impl<V> U64Map<V> {
    /// Creates an empty map (no allocation until the first insert).
    pub fn new() -> Self {
        U64Map {
            slots: Vec::new(),
            len: 0,
        }
    }

    /// Creates a map pre-sized to hold `capacity` entries without growing.
    pub fn with_capacity(capacity: usize) -> Self {
        if capacity == 0 {
            return Self::new();
        }
        let slots = slots_for(capacity);
        U64Map {
            slots: new_slot_vec(slots),
            len: 0,
        }
    }

    /// Number of entries in the map.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of slots currently allocated (diagnostics and tests).
    pub fn capacity_slots(&self) -> usize {
        self.slots.len()
    }

    fn mask(&self) -> usize {
        self.slots.len() - 1
    }

    fn home(&self, key: u64) -> usize {
        // Fibonacci hashing: multiply spreads low-entropy keys across the
        // high bits; shift keeps exactly log2(slots) of them.
        let hash = key.wrapping_mul(FIB_MULT);
        (hash >> (64 - self.slots.len().trailing_zeros())) as usize
    }

    /// Hints the CPU to pull the probe chain's first cache line for `key`
    /// into cache. Purely a performance hint — no architectural effect —
    /// used by the simulator's batch drivers, which know the next several
    /// keys in advance and overlap their (otherwise serialized) misses.
    #[inline]
    pub fn prefetch(&self, key: u64) {
        if self.slots.is_empty() {
            return;
        }
        let i = self.home(key);
        prefetch_read(&self.slots[i]);
    }

    /// The slot index holding `key`, if present.
    fn find(&self, key: u64) -> Option<usize> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.mask();
        let mut i = self.home(key);
        loop {
            match &self.slots[i] {
                None => return None,
                Some((k, _)) if *k == key => return Some(i),
                Some(_) => i = (i + 1) & mask,
            }
        }
    }

    /// Looks up a key.
    pub fn get(&self, key: u64) -> Option<&V> {
        self.find(key)
            .map(|i| &self.slots[i].as_ref().expect("found slot is occupied").1)
    }

    /// Locates a key, returning an opaque slot handle that gives the caller
    /// read, write, and remove access without re-probing — the map-level
    /// analogue of the cache array's entry handles. The handle is
    /// invalidated by any subsequent insertion or removal.
    pub fn find_slot(&self, key: u64) -> Option<Slot> {
        self.find(key).map(Slot)
    }

    /// The value of a slot located by [`U64Map::find_slot`].
    pub fn slot_value(&self, slot: Slot) -> &V {
        &self.slots[slot.0]
            .as_ref()
            .expect("slot handle is occupied")
            .1
    }

    /// Mutable access to the value of a slot located by [`U64Map::find_slot`].
    pub fn slot_value_mut(&mut self, slot: Slot) -> &mut V {
        &mut self.slots[slot.0]
            .as_mut()
            .expect("slot handle is occupied")
            .1
    }

    /// Removes the entry in a slot located by [`U64Map::find_slot`],
    /// skipping the probe [`U64Map::remove`] would repeat. Uses the same
    /// backward-shift deletion, so no tombstones accumulate.
    pub fn remove_slot(&mut self, slot: Slot) -> V {
        let (_, value) = self.slots[slot.0].take().expect("slot handle is occupied");
        self.len -= 1;
        self.backward_shift(slot.0);
        value
    }

    /// Looks up a key mutably.
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        let i = self.find(key)?;
        Some(&mut self.slots[i].as_mut().expect("found slot is occupied").1)
    }

    /// Returns `true` if the key is present.
    pub fn contains_key(&self, key: u64) -> bool {
        self.find(key).is_some()
    }

    /// Inserts a key/value pair, returning the previous value if the key was
    /// already present.
    pub fn insert(&mut self, key: u64, value: V) -> Option<V> {
        self.reserve_one();
        let mask = self.mask();
        let mut i = self.home(key);
        loop {
            match &mut self.slots[i] {
                slot @ None => {
                    *slot = Some((key, value));
                    self.len += 1;
                    return None;
                }
                Some((k, v)) if *k == key => {
                    return Some(std::mem::replace(v, value));
                }
                Some(_) => i = (i + 1) & mask,
            }
        }
    }

    /// Returns a mutable reference to the value for `key`, inserting
    /// `default()` first if the key is absent. The flag reports whether the
    /// entry was just created — a single-probe replacement for the
    /// get-then-insert double lookup.
    pub fn get_or_insert_with(&mut self, key: u64, default: impl FnOnce() -> V) -> (&mut V, bool) {
        self.reserve_one();
        let mask = self.mask();
        let mut i = self.home(key);
        let inserted = loop {
            match &self.slots[i] {
                None => {
                    self.slots[i] = Some((key, default()));
                    self.len += 1;
                    break true;
                }
                Some((k, _)) if *k == key => break false,
                Some(_) => i = (i + 1) & mask,
            }
        };
        (
            &mut self.slots[i]
                .as_mut()
                .expect("slot was just filled or matched")
                .1,
            inserted,
        )
    }

    /// Removes a key, returning its value if it was present.
    ///
    /// Uses backward-shift deletion: subsequent entries of the probe chain
    /// are moved up so no tombstones accumulate and lookups never slow down
    /// as the map churns.
    pub fn remove(&mut self, key: u64) -> Option<V> {
        let hole = self.find(key)?;
        let (_, value) = self.slots[hole].take().expect("found slot is occupied");
        self.len -= 1;
        self.backward_shift(hole);
        Some(value)
    }

    /// Closes the probe-chain hole left at `hole` by a removal, moving
    /// subsequent entries of the chain up so no tombstones accumulate.
    fn backward_shift(&mut self, mut hole: usize) {
        let mask = self.mask();
        let mut i = hole;
        loop {
            i = (i + 1) & mask;
            let Some((k, _)) = &self.slots[i] else { break };
            // The entry at `i` may move into the hole only if its home
            // position lies cyclically at or before the hole — i.e. its
            // probe distance reaches past the hole.
            let home = self.home(*k);
            let dist_from_home = i.wrapping_sub(home) & mask;
            let dist_from_hole = i.wrapping_sub(hole) & mask;
            if dist_from_home >= dist_from_hole {
                self.slots[hole] = self.slots[i].take();
                hole = i;
            }
        }
    }

    /// Keeps only the entries for which the predicate returns `true`.
    ///
    /// Rebuilds the table in place (O(slots)); meant for periodic sweeps,
    /// not per-access paths.
    pub fn retain(&mut self, mut pred: impl FnMut(u64, &mut V) -> bool) {
        if self.slots.is_empty() {
            return;
        }
        let slots = self.slots.len();
        let old = std::mem::replace(&mut self.slots, new_slot_vec(slots));
        self.len = 0;
        for (k, mut v) in old.into_iter().flatten() {
            if pred(k, &mut v) {
                self.insert(k, v);
            }
        }
    }

    /// Removes every entry, keeping the allocation.
    pub fn clear(&mut self) {
        for slot in &mut self.slots {
            *slot = None;
        }
        self.len = 0;
    }

    /// Iterates over the entries in slot order (deterministic for a given
    /// operation history).
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> {
        self.slots
            .iter()
            .filter_map(|s| s.as_ref().map(|(k, v)| (*k, v)))
    }

    /// Iterates over the values in slot order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.slots.iter().filter_map(|s| s.as_ref().map(|(_, v)| v))
    }

    /// Grows the slot array if one more insert would push the load factor
    /// past 7/8.
    fn reserve_one(&mut self) {
        if self.slots.is_empty() {
            self.slots = new_slot_vec(MIN_SLOTS);
            return;
        }
        if (self.len + 1) * 8 > self.slots.len() * 7 {
            let doubled = self.slots.len() * 2;
            let old = std::mem::replace(&mut self.slots, new_slot_vec(doubled));
            self.len = 0;
            for (k, v) in old.into_iter().flatten() {
                self.insert(k, v);
            }
        }
    }
}

impl<V> Default for U64Map<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: fmt::Debug> fmt::Debug for U64Map<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

/// Issues a read prefetch for the cache line holding `value` on targets
/// that support it; a no-op elsewhere. Never has an architectural effect.
#[inline]
pub fn prefetch_read<T>(value: &T) {
    #[cfg(target_arch = "x86_64")]
    unsafe {
        // SAFETY: prefetch has no memory effects; any address is allowed.
        std::arch::x86_64::_mm_prefetch(
            std::ptr::from_ref(value).cast::<i8>(),
            std::arch::x86_64::_MM_HINT_T0,
        );
    }
    #[cfg(target_arch = "aarch64")]
    {
        // Stable Rust exposes no aarch64 prefetch intrinsic; reading the
        // reference is not equivalent (it would be an actual load), so this
        // is a deliberate no-op there.
        let _ = value;
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        let _ = value;
    }
}

/// Slot count for a requested entry capacity: next power of two above
/// `capacity * 8/7`, at least [`MIN_SLOTS`].
fn slots_for(capacity: usize) -> usize {
    (capacity * 8 / 7 + 1).next_power_of_two().max(MIN_SLOTS)
}

fn new_slot_vec<V>(slots: usize) -> Vec<Option<(u64, V)>> {
    let mut v: Vec<Option<(u64, V)>> = Vec::with_capacity(slots);
    // Hint huge-page backing before first touch: large maps (directory
    // entry tables, page tables) are probed at random, and 4 KB pages put a
    // dTLB miss on nearly every probe. Advising on the untouched capacity
    // lets the kernel fault the slots in as huge pages as `resize_with`
    // initializes them.
    crate::os_hint::advise_huge_pages(v.as_ptr(), slots * std::mem::size_of::<Option<(u64, V)>>());
    v.resize_with(slots, || None);
    v
}

/// Layout-exact equality: two maps compare equal only when their slot
/// arrays match position-for-position (same probe chains, same tombstone
/// history resolution), which is the property snapshot restoration
/// guarantees. Maps holding equal key→value sets in different slot layouts
/// compare *unequal* — this is deliberate.
impl<V: PartialEq> PartialEq for U64Map<V> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.slots == other.slots
    }
}

impl<V: Eq> Eq for U64Map<V> {}

/// Verbatim slot-array encoding: the probe-chain layout round-trips, so a
/// decoded map is bit-identical to the encoded one, not merely equal as a
/// mapping.
impl<V: crate::snap::Snap> crate::snap::Snap for U64Map<V> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.slots.encode(out);
        self.len.encode(out);
    }

    fn decode(r: &mut crate::snap::SnapReader<'_>) -> Self {
        let slots: Vec<Option<(u64, V)>> = r.get();
        let len: usize = r.get();
        U64Map { slots, len }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::HashMap;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m: U64Map<u32> = U64Map::new();
        assert!(m.is_empty());
        assert_eq!(m.get(1), None);
        assert_eq!(m.insert(1, 10), None);
        assert_eq!(m.insert(2, 20), None);
        assert_eq!(m.insert(1, 11), Some(10));
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(1), Some(&11));
        assert!(m.contains_key(2));
        assert_eq!(m.remove(1), Some(11));
        assert_eq!(m.remove(1), None);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut m: U64Map<u32> = U64Map::new();
        m.insert(9, 1);
        *m.get_mut(9).unwrap() += 5;
        assert_eq!(m.get(9), Some(&6));
        assert_eq!(m.get_mut(10), None);
    }

    #[test]
    fn get_or_insert_with_probes_once() {
        let mut m: U64Map<String> = U64Map::new();
        let (v, inserted) = m.get_or_insert_with(3, || "fresh".to_string());
        assert!(inserted);
        v.push('!');
        let (v, inserted) = m.get_or_insert_with(3, || unreachable!("key exists"));
        assert!(!inserted);
        assert_eq!(v, "fresh!");
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut m: U64Map<usize> = U64Map::with_capacity(4);
        for i in 0..1000u64 {
            m.insert(i * 977, i as usize);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u64 {
            assert_eq!(m.get(i * 977), Some(&(i as usize)));
        }
    }

    #[test]
    fn with_capacity_does_not_grow_within_budget() {
        let mut m: U64Map<u64> = U64Map::with_capacity(100);
        let slots = m.capacity_slots();
        for i in 0..100 {
            m.insert(i, i);
        }
        assert_eq!(
            m.capacity_slots(),
            slots,
            "no growth within the requested capacity"
        );
    }

    #[test]
    fn retain_keeps_matching_entries() {
        let mut m: U64Map<u64> = U64Map::new();
        for i in 0..100 {
            m.insert(i, i);
        }
        m.retain(|k, _| k % 3 == 0);
        assert_eq!(m.len(), 34);
        assert!(m.iter().all(|(k, _)| k % 3 == 0));
        assert_eq!(m.values().copied().max(), Some(99));
    }

    #[test]
    fn clear_keeps_allocation() {
        let mut m: U64Map<u8> = U64Map::with_capacity(50);
        for i in 0..50 {
            m.insert(i, 0);
        }
        let slots = m.capacity_slots();
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.capacity_slots(), slots);
        assert_eq!(m.get(3), None);
    }

    #[test]
    fn zero_key_and_clustered_keys_work() {
        // Block numbers cluster densely at the low end; the map must not
        // degrade or collide them with the empty-slot representation.
        let mut m: U64Map<u64> = U64Map::new();
        for i in 0..512 {
            m.insert(i, i + 1);
        }
        assert_eq!(m.get(0), Some(&1));
        assert_eq!(m.len(), 512);
        for i in 0..512 {
            assert_eq!(m.remove(i), Some(i + 1));
        }
        assert!(m.is_empty());
    }

    #[test]
    fn extreme_keys_are_ordinary_keys() {
        let mut m: U64Map<u8> = U64Map::new();
        m.insert(u64::MAX, 1);
        m.insert(u64::MIN, 2);
        assert_eq!(m.get(u64::MAX), Some(&1));
        assert_eq!(m.remove(u64::MAX), Some(1));
        assert_eq!(m.get(u64::MIN), Some(&2));
    }

    #[test]
    fn slot_handles_read_write_and_remove_without_reprobe() {
        let mut m: U64Map<u32> = U64Map::new();
        for i in 0..64 {
            m.insert(i * 31, i as u32);
        }
        assert!(m.find_slot(999).is_none());
        let slot = m.find_slot(5 * 31).expect("key present");
        assert_eq!(m.slot_value(slot), &5);
        *m.slot_value_mut(slot) = 50;
        assert_eq!(m.get(5 * 31), Some(&50));
        assert_eq!(m.remove_slot(slot), 50);
        assert_eq!(m.get(5 * 31), None);
        assert_eq!(m.len(), 63);
        // Backward-shift after a slot removal keeps every other key reachable.
        for i in 0..64u64 {
            if i != 5 {
                assert!(m.contains_key(i * 31), "key {i} lost after slot removal");
            }
        }
    }

    #[test]
    fn debug_formats_as_a_map() {
        let mut m: U64Map<u8> = U64Map::new();
        m.insert(1, 2);
        assert_eq!(format!("{m:?}"), "{1: 2}");
    }

    /// The load-bearing test: a randomized operation mix (insert, remove,
    /// lookup, occasional retain) must match `std::collections::HashMap`
    /// exactly. This exercises backward-shift deletion across wrap-around
    /// probe chains, which is where open-addressed maps classically go
    /// wrong.
    #[test]
    fn randomized_operations_match_std_hashmap() {
        let mut rng = StdRng::seed_from_u64(0xBEEF);
        let mut ours: U64Map<u64> = U64Map::new();
        let mut reference: HashMap<u64, u64> = HashMap::new();
        for step in 0..60_000u64 {
            // A small key universe forces constant collisions and deletions
            // inside shared probe chains.
            let key = rng.gen_range(0..400u64);
            match rng.gen_range(0..10) {
                0..=4 => {
                    assert_eq!(ours.insert(key, step), reference.insert(key, step));
                }
                5..=7 => {
                    // Alternate between keyed removal and slot-handle removal
                    // so backward-shift is exercised through both entry points.
                    let removed = if step % 2 == 0 {
                        ours.remove(key)
                    } else {
                        ours.find_slot(key).map(|s| ours.remove_slot(s))
                    };
                    assert_eq!(removed, reference.remove(&key));
                }
                8 => {
                    assert_eq!(ours.get(key), reference.get(&key));
                    assert_eq!(ours.contains_key(key), reference.contains_key(&key));
                }
                _ => {
                    let (v, inserted) = ours.get_or_insert_with(key, || step);
                    let prev_len = reference.len();
                    let rv = reference.entry(key).or_insert(step);
                    assert_eq!(*v, *rv);
                    assert_eq!(inserted, reference.len() > prev_len);
                }
            }
            assert_eq!(ours.len(), reference.len());
            if step % 10_000 == 0 {
                ours.retain(|k, _| k % 7 != 3);
                reference.retain(|k, _| k % 7 != 3);
                assert_eq!(ours.len(), reference.len());
            }
        }
        // Final full-content comparison.
        let mut ours_sorted: Vec<(u64, u64)> = ours.iter().map(|(k, v)| (k, *v)).collect();
        ours_sorted.sort_unstable();
        let mut ref_sorted: Vec<(u64, u64)> = reference.iter().map(|(k, v)| (*k, *v)).collect();
        ref_sorted.sort_unstable();
        assert_eq!(ours_sorted, ref_sorted);
    }
}
