//! Cycle-count arithmetic used by the timing model.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub};

/// A number of processor clock cycles.
///
/// A thin newtype over `u64` so that latencies cannot be accidentally mixed
/// with instruction counts or hop counts.
///
/// # Example
///
/// ```
/// use rnuca_types::latency::Cycles;
/// let link = Cycles(1);
/// let router = Cycles(2);
/// let hop = link + router;
/// assert_eq!(hop * 3u32, Cycles(9));
/// ```
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Cycles(pub u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// Returns the raw cycle count.
    pub fn value(self) -> u64 {
        self.0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }

    /// Converts to a floating-point cycle count (for CPI arithmetic).
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

impl Mul<u32> for Cycles {
    type Output = Cycles;
    fn mul(self, rhs: u32) -> Cycles {
        Cycles(self.0 * rhs as u64)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        iter.fold(Cycles::ZERO, Add::add)
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cyc", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        assert_eq!(Cycles(3) + Cycles(4), Cycles(7));
        assert_eq!(Cycles(10) - Cycles(4), Cycles(6));
        assert_eq!(Cycles(3) * 4u64, Cycles(12));
        assert_eq!(Cycles(3) * 4u32, Cycles(12));
        assert_eq!(Cycles(5).saturating_sub(Cycles(9)), Cycles::ZERO);
        let mut c = Cycles(1);
        c += Cycles(2);
        assert_eq!(c, Cycles(3));
    }

    #[test]
    fn sum_of_iterator() {
        let total: Cycles = [Cycles(1), Cycles(2), Cycles(3)].into_iter().sum();
        assert_eq!(total, Cycles(6));
    }

    #[test]
    fn display_and_as_f64() {
        assert_eq!(Cycles(14).to_string(), "14 cyc");
        assert!((Cycles(14).as_f64() - 14.0).abs() < f64::EPSILON);
    }
}
