//! Process-local memory-placement hints for the simulator's large slabs.
//!
//! The randomly-probed structures the hot loop lives in — directory entry
//! tables, open-addressed maps, flat cache slabs — reach tens of megabytes,
//! so with 4 KB pages nearly every probe also misses the host's dTLB (and
//! x86 silently drops software prefetches that miss the dTLB, blunting the
//! batch drivers' lookahead). Backing those allocations with transparent
//! huge pages cuts the dTLB working set by 512× and restores the prefetch
//! path. [`advise_huge_pages`] asks the kernel for exactly that via
//! `madvise(MADV_HUGEPAGE)` — affecting only this process's own mappings.
//!
//! The hint is best-effort by design: the syscall's result is ignored, the
//! function is a no-op off Linux/x86-64, and a kernel with transparent huge
//! pages disabled simply leaves the allocation on 4 KB pages. Nothing about
//! correctness depends on it.

/// Advises the kernel to back the given allocation with transparent huge
/// pages. `len` is in bytes; the range is shrunk inward to page alignment
/// (madvise requires an aligned start). Errors are deliberately ignored —
/// this is a placement hint, not a requirement — and allocations smaller
/// than one huge page are skipped outright.
pub fn advise_huge_pages<T>(ptr: *const T, len_bytes: usize) {
    /// Smallest allocation worth hinting: one 2 MB huge page.
    const HUGE_PAGE: usize = 2 * 1024 * 1024;
    if len_bytes < HUGE_PAGE || ptr.is_null() {
        return;
    }
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    {
        const PAGE: usize = 4096;
        const SYS_MADVISE: usize = 28;
        const MADV_HUGEPAGE: usize = 14;
        let start = ptr as usize;
        let aligned_start = (start + PAGE - 1) & !(PAGE - 1);
        let aligned_end = (start + len_bytes) & !(PAGE - 1);
        if aligned_end <= aligned_start {
            return;
        }
        // SAFETY: madvise(MADV_HUGEPAGE) never alters memory contents or
        // validity; it only sets a VMA flag on pages this process already
        // owns. The asm block clobbers exactly what the Linux x86-64
        // syscall ABI clobbers (rax return, rcx/r11 scratch).
        unsafe {
            let mut _ret: isize;
            std::arch::asm!(
                "syscall",
                inlateout("rax") SYS_MADVISE as isize => _ret,
                in("rdi") aligned_start,
                in("rsi") aligned_end - aligned_start,
                in("rdx") MADV_HUGEPAGE,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack, preserves_flags)
            );
        }
    }
    #[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
    {
        let _ = (ptr, len_bytes);
    }
}

/// [`advise_huge_pages`] over a slice's elements.
pub fn advise_huge_pages_slice<T>(slice: &[T]) {
    advise_huge_pages(slice.as_ptr(), std::mem::size_of_val(slice));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hinting_never_disturbs_contents() {
        // Large enough to clear the huge-page threshold.
        let v = vec![0xA5u8; 4 * 1024 * 1024];
        advise_huge_pages_slice(&v);
        assert!(v.iter().all(|&b| b == 0xA5));
        // Small, empty, and null-ish inputs are no-ops.
        advise_huge_pages_slice(&[0u8; 16]);
        advise_huge_pages_slice::<u64>(&[]);
        advise_huge_pages(std::ptr::null::<u8>(), usize::MAX);
    }
}
