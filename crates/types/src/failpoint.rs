//! Deterministic fault injection: named fail-point sites with seeded or
//! counted triggers.
//!
//! Crash-safety code is only trustworthy if its failure paths are
//! *exercisable*: a torn warehouse save, a panicking sweep job, or a died
//! process at a journal boundary must be reproducible in a test, not wait
//! for a real crash. This module provides that hook. Production code marks
//! interesting failure sites by name:
//!
//! ```text
//! rnuca_types::failpoint::panic_point("sweep::journal::append");
//! rnuca_types::failpoint::io_point("warehouse::save::fsync")?;
//! ```
//!
//! and tests *arm* those sites with a trigger (fire on the Nth hit, on a
//! seeded pseudo-random hit, on a window of hits, or on every hit) and an
//! action (panic, or return an injected [`std::io::Error`]). Everything is
//! deterministic: a seeded trigger resolves to a concrete hit number via
//! SplitMix64 at arm time, so the same seed always kills the same site hit.
//!
//! # Cost
//!
//! The subsystem is compiled to a no-op unless the `failpoints` cargo
//! feature is enabled: without it, [`panic_point`] and [`io_point`] are
//! empty inline functions and [`enabled`] is `const false`, so sites with
//! dynamically built names can be gated as
//! `if failpoint::enabled() { ... }` and fold away entirely. The feature is
//! enabled by the workspace's *dev*-dependencies only — test builds carry
//! live fail points, `cargo build --release` carries none.
//!
//! # Process-wide state
//!
//! Armed fail points are global to the process. [`arm`] therefore takes an
//! exclusive session lock held by the returned [`FailGuard`] — concurrent
//! tests serialize on it instead of corrupting each other's plans — and
//! disarms everything on drop. A process can also arm sites from the
//! environment (`RNUCA_FAILPOINTS=site=panic@3;other=io@1`), which is how
//! the chaos harness kills a real `figures` run at a chosen job boundary.

use std::fmt;

/// What an armed fail point does when its trigger fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailAction {
    /// Panic at the site (the injected panic message names the site).
    Panic,
    /// Return an injected [`std::io::Error`] from [`io_point`] sites.
    /// [`panic_point`] sites treat this as [`FailAction::Panic`].
    Io,
    /// Abort the whole process ([`std::process::abort`]): SIGABRT, no
    /// destructors, no unwinding — the deterministic stand-in for
    /// `kill -9` at a chosen site hit. Any site kind honours it.
    Abort,
}

impl fmt::Display for FailAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailAction::Panic => f.write_str("panic"),
            FailAction::Io => f.write_str("io"),
            FailAction::Abort => f.write_str("abort"),
        }
    }
}

/// One armed fail point: a site name, an action, and the window of hit
/// numbers (1-based, inclusive start) on which it fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailSpec {
    /// The site this spec arms.
    pub site: String,
    /// What happens when the trigger fires.
    pub action: FailAction,
    /// First hit number (1-based) that fires.
    pub from: u64,
    /// Number of consecutive hits that fire (`u64::MAX` = forever).
    pub count: u64,
}

impl FailSpec {
    /// Fires exactly on the `n`-th hit of `site` (1-based).
    pub fn nth(site: &str, action: FailAction, n: u64) -> Self {
        FailSpec {
            site: site.to_string(),
            action,
            from: n.max(1),
            count: 1,
        }
    }

    /// Fires on `count` consecutive hits starting at hit `from` (1-based).
    pub fn window(site: &str, action: FailAction, from: u64, count: u64) -> Self {
        FailSpec {
            site: site.to_string(),
            action,
            from: from.max(1),
            count,
        }
    }

    /// Fires on every hit of `site`.
    pub fn always(site: &str, action: FailAction) -> Self {
        Self::window(site, action, 1, u64::MAX)
    }

    /// Fires on one hit chosen deterministically from `seed` in
    /// `1..=max` — the "kill at a fail-point-chosen boundary" trigger.
    /// The same `(seed, max)` always picks the same hit.
    pub fn seeded(site: &str, action: FailAction, seed: u64, max: u64) -> Self {
        Self::nth(site, action, splitmix64(seed) % max.max(1) + 1)
    }

    /// Parses one `site=action@trigger` spec, the grammar of the
    /// `RNUCA_FAILPOINTS` environment variable:
    ///
    /// ```text
    /// spec    := site '=' action '@' trigger
    /// action  := 'panic' | 'io' | 'abort'
    /// trigger := N | N '+' COUNT | 'seed:' SEED '%' MAX | 'always'
    /// ```
    ///
    /// `N` fires on the Nth hit; `N+COUNT` on COUNT hits starting at N;
    /// `seed:S%M` on one seeded hit in `1..=M`; `always` on every hit.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed part.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let (site, rest) = spec
            .rsplit_once('=')
            .ok_or_else(|| format!("fail-point spec `{spec}` has no `=`"))?;
        let (action, trigger) = rest
            .split_once('@')
            .ok_or_else(|| format!("fail-point spec `{spec}` has no `@trigger`"))?;
        let action = match action {
            "panic" => FailAction::Panic,
            "io" => FailAction::Io,
            "abort" => FailAction::Abort,
            other => return Err(format!("unknown fail-point action `{other}`")),
        };
        if trigger == "always" {
            return Ok(Self::always(site, action));
        }
        if let Some(seeded) = trigger.strip_prefix("seed:") {
            let (seed, max) = seeded
                .split_once('%')
                .ok_or_else(|| format!("seeded trigger `{trigger}` has no `%max`"))?;
            let seed: u64 = seed
                .parse()
                .map_err(|_| format!("bad seed in trigger `{trigger}`"))?;
            let max: u64 = max
                .parse()
                .map_err(|_| format!("bad max in trigger `{trigger}`"))?;
            return Ok(Self::seeded(site, action, seed, max));
        }
        let (from, count) = match trigger.split_once('+') {
            Some((from, count)) => (
                from.parse::<u64>()
                    .map_err(|_| format!("bad hit number in trigger `{trigger}`"))?,
                count
                    .parse::<u64>()
                    .map_err(|_| format!("bad hit count in trigger `{trigger}`"))?,
            ),
            None => (
                trigger
                    .parse::<u64>()
                    .map_err(|_| format!("bad trigger `{trigger}`"))?,
                1,
            ),
        };
        Ok(Self::window(site, action, from, count))
    }

    /// Parses a `;`-separated list of specs (the full environment syntax).
    ///
    /// # Errors
    ///
    /// Returns the first malformed spec's description.
    pub fn parse_list(list: &str) -> Result<Vec<Self>, String> {
        list.split(';')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(Self::parse)
            .collect()
    }
}

/// SplitMix64: the seeded trigger's hit chooser. Deterministic, well mixed,
/// and dependency-free.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Whether fail points are compiled into this build. `const`, so dynamic
/// site-name construction can be gated with `if failpoint::enabled()` and
/// folded away in production builds.
#[cfg(feature = "failpoints")]
pub const fn enabled() -> bool {
    true
}

/// Whether fail points are compiled into this build (`false`: every site
/// is a no-op).
#[cfg(not(feature = "failpoints"))]
pub const fn enabled() -> bool {
    false
}

#[cfg(feature = "failpoints")]
mod active {
    use super::{FailAction, FailSpec};
    use std::collections::HashMap;
    use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

    /// The environment variable arming fail points in a fresh process.
    pub const ENV_VAR: &str = "RNUCA_FAILPOINTS";

    #[derive(Debug)]
    struct Armed {
        action: FailAction,
        from: u64,
        count: u64,
        hits: u64,
    }

    fn registry() -> &'static Mutex<HashMap<String, Armed>> {
        static REGISTRY: OnceLock<Mutex<HashMap<String, Armed>>> = OnceLock::new();
        REGISTRY.get_or_init(|| {
            let mut map = HashMap::new();
            if let Ok(list) = std::env::var(ENV_VAR) {
                let specs = FailSpec::parse_list(&list)
                    .unwrap_or_else(|e| panic!("malformed {ENV_VAR}: {e}"));
                for spec in specs {
                    insert(&mut map, &spec);
                }
            }
            Mutex::new(map)
        })
    }

    fn insert(map: &mut HashMap<String, Armed>, spec: &FailSpec) {
        map.insert(
            spec.site.clone(),
            Armed {
                action: spec.action,
                from: spec.from,
                count: spec.count,
                hits: 0,
            },
        );
    }

    /// Locks ignoring poison: a fail point's whole purpose is to panic, and
    /// a panicked test must not wedge every later test on a poisoned lock.
    fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
        m.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Exclusive use of the process-wide fail-point registry. Armed specs
    /// stay active until the guard drops; dropping disarms every site.
    #[derive(Debug)]
    pub struct FailGuard {
        _session: MutexGuard<'static, ()>,
    }

    impl Drop for FailGuard {
        fn drop(&mut self) {
            lock(registry()).clear();
        }
    }

    /// Arms `specs`, replacing any previously armed plan (including one
    /// loaded from the environment). The returned guard holds an exclusive
    /// process-wide session lock — concurrent tests serialize here — and
    /// disarms everything when dropped.
    pub fn arm(specs: &[FailSpec]) -> FailGuard {
        static SESSION: Mutex<()> = Mutex::new(());
        let session = lock(&SESSION);
        let mut map = lock(registry());
        map.clear();
        for spec in specs {
            insert(&mut map, spec);
        }
        drop(map);
        FailGuard { _session: session }
    }

    /// Records one hit of `site` and returns the action to take if the
    /// site's trigger fires on this hit.
    pub fn fire(site: &str) -> Option<FailAction> {
        let mut map = lock(registry());
        let armed = map.get_mut(site)?;
        armed.hits += 1;
        let in_window = armed.hits >= armed.from && armed.hits - armed.from < armed.count;
        in_window.then_some(armed.action)
    }

    /// Hits recorded for `site` so far (0 when the site is not armed).
    pub fn hits(site: &str) -> u64 {
        lock(registry()).get(site).map_or(0, |a| a.hits)
    }
}

#[cfg(feature = "failpoints")]
pub use active::{arm, fire, hits, FailGuard, ENV_VAR};

#[cfg(not(feature = "failpoints"))]
mod inactive {
    use super::{FailAction, FailSpec};

    /// The environment variable arming fail points (ignored in this build:
    /// the `failpoints` feature is disabled).
    pub const ENV_VAR: &str = "RNUCA_FAILPOINTS";

    /// Disarm-on-drop guard (inert in this build).
    #[derive(Debug)]
    pub struct FailGuard;

    /// Arms nothing: the `failpoints` feature is disabled.
    pub fn arm(_specs: &[FailSpec]) -> FailGuard {
        FailGuard
    }

    /// Always `None`: the `failpoints` feature is disabled.
    #[inline(always)]
    pub fn fire(_site: &str) -> Option<FailAction> {
        None
    }

    /// Always 0: the `failpoints` feature is disabled.
    #[inline(always)]
    pub fn hits(_site: &str) -> u64 {
        0
    }
}

#[cfg(not(feature = "failpoints"))]
pub use inactive::{arm, fire, hits, FailGuard, ENV_VAR};

/// Aborts the process at a fired [`FailAction::Abort`] site, announcing
/// the site on stderr first so the chaos harness can confirm *which*
/// injected kill landed.
fn abort_at(site: &str) -> ! {
    eprintln!("fail point `{site}` triggered (injected abort)");
    std::process::abort()
}

/// A site that can only fail by panicking. Panics with a message naming
/// `site` when the site's armed trigger fires ([`FailAction::Io`] counts
/// as a panic here; [`FailAction::Abort`] aborts the process); a no-op
/// otherwise and in builds without the `failpoints` feature.
#[inline(always)]
pub fn panic_point(site: &str) {
    match fire(site) {
        None => {}
        Some(FailAction::Abort) => abort_at(site),
        Some(_) => panic!("fail point `{site}` triggered (injected)"),
    }
}

/// A site on an I/O path. When the armed trigger fires with
/// [`FailAction::Io`], returns an injected [`std::io::Error`] naming the
/// site; with [`FailAction::Panic`], panics; with [`FailAction::Abort`],
/// aborts the process. A no-op `Ok(())` otherwise and in builds without
/// the `failpoints` feature.
///
/// # Errors
///
/// Only the injected error described above.
#[inline(always)]
pub fn io_point(site: &str) -> std::io::Result<()> {
    match fire(site) {
        None => Ok(()),
        Some(FailAction::Io) => Err(std::io::Error::other(format!(
            "fail point `{site}` triggered (injected i/o error)"
        ))),
        Some(FailAction::Panic) => panic!("fail point `{site}` triggered (injected)"),
        Some(FailAction::Abort) => abort_at(site),
    }
}

/// True when `site`'s armed trigger fires on this hit — for sites whose
/// failure mode is bespoke (e.g. "write only half the bytes"). An armed
/// [`FailAction::Abort`] aborts the process instead of returning. Always
/// false without the `failpoints` feature.
#[inline(always)]
pub fn triggered(site: &str) -> bool {
    match fire(site) {
        None => false,
        Some(FailAction::Abort) => abort_at(site),
        Some(_) => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parsing_covers_the_grammar() {
        assert_eq!(
            FailSpec::parse("a::b=panic@3").unwrap(),
            FailSpec::nth("a::b", FailAction::Panic, 3)
        );
        assert_eq!(
            FailSpec::parse("x=io@2+5").unwrap(),
            FailSpec::window("x", FailAction::Io, 2, 5)
        );
        assert_eq!(
            FailSpec::parse("x=panic@always").unwrap(),
            FailSpec::always("x", FailAction::Panic)
        );
        assert_eq!(
            FailSpec::parse("x=abort@2").unwrap(),
            FailSpec::nth("x", FailAction::Abort, 2)
        );
        assert_eq!(FailAction::Abort.to_string(), "abort");
        let seeded = FailSpec::parse("x=panic@seed:42%10").unwrap();
        assert_eq!(seeded, FailSpec::seeded("x", FailAction::Panic, 42, 10));
        assert!((1..=10).contains(&seeded.from));
        // A site name may itself contain spaces and colons.
        let spec = FailSpec::parse("sim::member::OLTP DB2::shared::16c=panic@1").unwrap();
        assert_eq!(spec.site, "sim::member::OLTP DB2::shared::16c");

        for bad in ["", "x", "x=panic", "x=frob@1", "x=panic@z", "x=io@seed:1"] {
            assert!(FailSpec::parse(bad).is_err(), "`{bad}` must not parse");
        }
        let list = FailSpec::parse_list("a=panic@1; b=io@2;").unwrap();
        assert_eq!(list.len(), 2);
    }

    #[test]
    fn seeded_triggers_are_deterministic_and_in_range() {
        for seed in 0..50 {
            let a = FailSpec::seeded("s", FailAction::Panic, seed, 24);
            let b = FailSpec::seeded("s", FailAction::Panic, seed, 24);
            assert_eq!(a, b, "same seed must choose the same hit");
            assert!((1..=24).contains(&a.from));
        }
        // Different seeds spread over the range rather than collapsing.
        let distinct: std::collections::HashSet<u64> = (0..50)
            .map(|seed| FailSpec::seeded("s", FailAction::Panic, seed, 24).from)
            .collect();
        assert!(distinct.len() > 10, "seeded hits are well spread");
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn armed_sites_fire_on_their_window_and_disarm_on_drop() {
        {
            let _guard = arm(&[
                FailSpec::nth("t::third", FailAction::Panic, 3),
                FailSpec::window("t::pair", FailAction::Io, 2, 2),
            ]);
            assert_eq!(fire("t::third"), None);
            assert_eq!(fire("t::third"), None);
            assert_eq!(fire("t::third"), Some(FailAction::Panic));
            assert_eq!(fire("t::third"), None, "Nth fires exactly once");
            assert_eq!(hits("t::third"), 4);

            assert_eq!(fire("t::pair"), None);
            assert_eq!(fire("t::pair"), Some(FailAction::Io));
            assert_eq!(fire("t::pair"), Some(FailAction::Io));
            assert_eq!(fire("t::pair"), None);

            assert_eq!(fire("t::unarmed"), None);
        }
        assert_eq!(fire("t::third"), None, "dropping the guard disarms");
        assert_eq!(hits("t::third"), 0);
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn io_point_injects_errors_and_panic_point_panics() {
        let _guard = arm(&[
            FailSpec::nth("t::io", FailAction::Io, 1),
            FailSpec::nth("t::boom", FailAction::Panic, 1),
        ]);
        let err = io_point("t::io").expect_err("armed io site must fail");
        assert!(err.to_string().contains("t::io"));
        assert!(io_point("t::io").is_ok(), "one-shot trigger");
        let panic = std::panic::catch_unwind(|| panic_point("t::boom"))
            .expect_err("armed panic site must panic");
        let msg = panic.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("fail point `t::boom` triggered"));
        assert!(!triggered("t::unarmed"));
    }

    #[cfg(not(feature = "failpoints"))]
    #[test]
    fn disabled_build_is_inert() {
        assert!(!enabled());
        let _guard = arm(&[FailSpec::always("t::x", FailAction::Panic)]);
        assert_eq!(fire("t::x"), None);
        panic_point("t::x");
        assert!(io_point("t::x").is_ok());
        assert!(!triggered("t::x"));
    }
}
