//! Memory-access records and the three-way access classification of the paper.
//!
//! Section 3 of the paper classifies L2 references into **instructions**,
//! **private data**, and **shared data**, and shows each class is amenable to
//! a different placement policy. The workload generators emit
//! [`MemoryAccess`] records tagged with the *ground-truth* class; the OS
//! layer independently classifies pages at TLB-miss time, which lets the
//! simulator measure classification accuracy (Section 5.2).

use crate::addr::PhysAddr;
use crate::ids::CoreId;
use crate::latency::Cycles;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The access class a block/page belongs to (ground truth from the workload model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AccessClass {
    /// Instruction fetches: read-only, typically shared by all cores in server
    /// workloads. R-NUCA replicates these at cluster granularity.
    Instruction,
    /// Data accessed by exactly one core (stack, thread-local storage).
    /// R-NUCA places these in the local L2 slice.
    PrivateData,
    /// Data accessed by multiple cores, predominantly read-write.
    /// R-NUCA address-interleaves these across all tiles.
    SharedData,
}

impl AccessClass {
    /// All classes, in the order used by the paper's figures.
    pub const ALL: [AccessClass; 3] = [
        AccessClass::Instruction,
        AccessClass::PrivateData,
        AccessClass::SharedData,
    ];

    /// Short label used in reports ("Instr", "Private", "Shared").
    pub fn label(self) -> &'static str {
        match self {
            AccessClass::Instruction => "Instr",
            AccessClass::PrivateData => "Private",
            AccessClass::SharedData => "Shared",
        }
    }
}

impl fmt::Display for AccessClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Whether an access reads or writes the referenced location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// An instruction fetch (always a read; distinguished so that requests
    /// from the L1-I can be classified immediately, as in Section 4.3).
    InstrFetch,
    /// A data load.
    Read,
    /// A data store.
    Write,
}

impl AccessKind {
    /// Returns `true` for stores.
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }

    /// Returns `true` for instruction fetches.
    pub fn is_instr_fetch(self) -> bool {
        matches!(self, AccessKind::InstrFetch)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AccessKind::InstrFetch => "ifetch",
            AccessKind::Read => "read",
            AccessKind::Write => "write",
        };
        f.write_str(s)
    }
}

/// One memory reference issued by a core.
///
/// This is the unit of work consumed by the trace-driven simulator. The
/// `class` field carries the workload generator's ground truth and is used
/// only for characterization figures and for measuring the OS classifier's
/// accuracy — the placement policies never look at it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryAccess {
    /// The core issuing the reference.
    pub core: CoreId,
    /// The physical address referenced.
    pub addr: PhysAddr,
    /// Fetch / read / write.
    pub kind: AccessKind,
    /// Ground-truth access class from the workload model.
    pub class: AccessClass,
}

impl MemoryAccess {
    /// Convenience constructor.
    pub fn new(core: CoreId, addr: PhysAddr, kind: AccessKind, class: AccessClass) -> Self {
        MemoryAccess {
            core,
            addr,
            kind,
            class,
        }
    }
}

impl fmt::Display for MemoryAccess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {} [{}]",
            self.core, self.kind, self.addr, self.class
        )
    }
}

/// Where an L2-level request was ultimately serviced.
///
/// The CPI model charges a different latency to each outcome; the evaluation
/// figures (7-10) break CPI down along exactly these lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ServiceOutcome {
    /// Hit in the local L1 (no L2 involvement).
    L1Hit,
    /// Serviced by an L2 slice (local or remote) without any coherence indirection.
    L2Hit {
        /// Network hops from the requesting tile to the servicing slice and back.
        round_trip_hops: u32,
    },
    /// Serviced by a remote L1 cache (L1-to-L1 transfer through the directory).
    L1ToL1 {
        /// Total network hops on the critical path.
        round_trip_hops: u32,
        /// Number of L2-slice/directory lookups on the critical path.
        slice_lookups: u32,
    },
    /// Serviced by a remote L2 slice after a coherence indirection
    /// (private/ASR designs only).
    L2CoherenceHit {
        /// Total network hops on the critical path.
        round_trip_hops: u32,
        /// Number of L2-slice/directory lookups on the critical path.
        slice_lookups: u32,
    },
    /// Missed on chip and was serviced by main memory.
    OffChip {
        /// Network hops to reach the memory controller and return.
        round_trip_hops: u32,
    },
}

impl ServiceOutcome {
    /// Returns `true` if the request left the chip.
    pub fn is_off_chip(self) -> bool {
        matches!(self, ServiceOutcome::OffChip { .. })
    }
}

/// The latency components charged to a single L1-miss request.
///
/// Summed over a run and divided by instruction count these produce the CPI
/// breakdowns of Figures 7-10.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessCost {
    /// Cycles spent in on-chip network traversal.
    pub network: Cycles,
    /// Cycles spent accessing L2 slices (including directory lookups embedded in slices).
    pub slice: Cycles,
    /// Cycles spent in off-chip DRAM access (zero for on-chip hits).
    pub off_chip: Cycles,
    /// Cycles of classification / re-classification overhead (R-NUCA poisoned-page stalls).
    pub reclassification: Cycles,
}

impl AccessCost {
    /// Total cycles charged for this access.
    pub fn total(self) -> Cycles {
        self.network + self.slice + self.off_chip + self.reclassification
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::CoreId;

    #[test]
    fn class_labels_and_order() {
        assert_eq!(AccessClass::ALL.len(), 3);
        assert_eq!(AccessClass::Instruction.label(), "Instr");
        assert_eq!(AccessClass::PrivateData.to_string(), "Private");
        assert_eq!(AccessClass::SharedData.to_string(), "Shared");
    }

    #[test]
    fn kind_predicates() {
        assert!(AccessKind::Write.is_write());
        assert!(!AccessKind::Read.is_write());
        assert!(AccessKind::InstrFetch.is_instr_fetch());
        assert!(!AccessKind::Write.is_instr_fetch());
    }

    #[test]
    fn access_display_mentions_all_parts() {
        let a = MemoryAccess::new(
            CoreId::new(2),
            PhysAddr::new(0x1000),
            AccessKind::Read,
            AccessClass::SharedData,
        );
        let s = a.to_string();
        assert!(s.contains("P2"));
        assert!(s.contains("read"));
        assert!(s.contains("Shared"));
    }

    #[test]
    fn outcome_off_chip_predicate() {
        assert!(ServiceOutcome::OffChip { round_trip_hops: 4 }.is_off_chip());
        assert!(!ServiceOutcome::L2Hit { round_trip_hops: 2 }.is_off_chip());
        assert!(!ServiceOutcome::L1Hit.is_off_chip());
    }

    #[test]
    fn access_cost_total_sums_components() {
        let c = AccessCost {
            network: Cycles(6),
            slice: Cycles(14),
            off_chip: Cycles(0),
            reclassification: Cycles(2),
        };
        assert_eq!(c.total(), Cycles(22));
        assert_eq!(AccessCost::default().total(), Cycles(0));
    }
}
