//! Retry policies for supervised experiment execution: deterministic
//! seeded-jitter exponential backoff and per-attempt wall-clock deadlines.
//!
//! The experiment engine's supervised runs retry quarantined jobs; naive
//! immediate retries hammer a transiently-failing resource (a full disk, a
//! contended spool directory) and make failure timelines impossible to
//! reason about. [`BackoffConfig`] computes the pause before each retry as
//! capped exponential growth with *seeded* jitter: the jitter is a pure
//! function of `(seed, job, attempt)`, so a given experiment seed always
//! produces the same delay schedule for a given job — independent of
//! worker count, thread interleaving, or wall-clock time. That keeps the
//! engine's determinism story intact: retries change *when* a job runs,
//! never *what* it computes, and the delays themselves are reproducible in
//! tests down to the microsecond.
//!
//! [`RetryPolicy`] bundles the retry budget, the backoff, and an optional
//! per-attempt wall-clock deadline. The deadline is enforced by the
//! engine's watchdog (see `ExperimentEngine::run_supervised_detached` in
//! `rnuca-sim`): an attempt that exceeds it is abandoned and counted as a
//! failed attempt, exactly like a panic.

use std::time::Duration;

/// Seeded-jitter exponential backoff between supervised retry attempts.
///
/// The delay before retry `n` (1-based: the pause after the `n`-th failed
/// attempt) grows as `base * 2^(n-1)`, capped at `cap`, then jittered
/// uniformly into `[delay/2, delay]` by a SplitMix64 draw over
/// `(seed, job, n)`. Full determinism: same inputs, same delay, on every
/// machine and worker count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffConfig {
    /// Delay before the first retry, in milliseconds.
    pub base_ms: u64,
    /// Upper bound on any single delay, in milliseconds.
    pub cap_ms: u64,
}

impl BackoffConfig {
    /// The service default: 100 ms doubling up to 5 s.
    pub fn default_service() -> Self {
        BackoffConfig {
            base_ms: 100,
            cap_ms: 5_000,
        }
    }

    /// No backoff at all (every delay is zero) — the legacy immediate-retry
    /// behaviour, and the right choice for deterministic unit tests that
    /// must not sleep.
    pub fn none() -> Self {
        BackoffConfig {
            base_ms: 0,
            cap_ms: 0,
        }
    }

    /// The pause before retry `attempt` (1-based) of job `job`, under
    /// `seed`. Pure: depends only on the arguments.
    pub fn delay(&self, seed: u64, job: usize, attempt: u32) -> Duration {
        if self.base_ms == 0 {
            return Duration::ZERO;
        }
        let exp = attempt.saturating_sub(1).min(32);
        let raw = self.base_ms.saturating_mul(1u64 << exp).min(self.cap_ms);
        if raw == 0 {
            return Duration::ZERO;
        }
        // Jitter into [raw/2, raw]: spread concurrent retries apart without
        // ever waiting longer than the capped exponential envelope.
        let mix = splitmix64(
            seed ^ (job as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ u64::from(attempt),
        );
        let half = raw / 2;
        let jitter = if raw - half == 0 {
            0
        } else {
            mix % (raw - half + 1)
        };
        Duration::from_millis(half + jitter)
    }
}

/// How a supervised run treats a failing job: how often to retry, how long
/// to pause between attempts, and how long any single attempt may run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Extra attempts after the first (0 = one attempt, no retry).
    pub retries: u32,
    /// Pause schedule between attempts.
    pub backoff: BackoffConfig,
    /// Wall-clock budget for one attempt. `None` disables the watchdog.
    pub deadline: Option<Duration>,
}

impl RetryPolicy {
    /// `retries` immediate attempts: no backoff, no deadline — the exact
    /// behaviour of the pre-policy `run_supervised` signature.
    pub fn immediate(retries: u32) -> Self {
        RetryPolicy {
            retries,
            backoff: BackoffConfig::none(),
            deadline: None,
        }
    }

    /// The policy with a per-attempt deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// The policy with the given backoff schedule.
    pub fn with_backoff(mut self, backoff: BackoffConfig) -> Self {
        self.backoff = backoff;
        self
    }

    /// Total attempts this policy allows (1 + retries).
    pub fn attempts(&self) -> u32 {
        self.retries.saturating_add(1)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::immediate(0)
    }
}

/// SplitMix64 — the same dependency-free mixer the fail-point subsystem
/// uses for its seeded triggers.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_are_deterministic() {
        let b = BackoffConfig::default_service();
        for seed in [0, 7, 42] {
            for job in [0usize, 3, 117] {
                for attempt in 1..6 {
                    assert_eq!(
                        b.delay(seed, job, attempt),
                        b.delay(seed, job, attempt),
                        "delay must be a pure function of (seed, job, attempt)"
                    );
                }
            }
        }
    }

    #[test]
    fn delays_grow_exponentially_within_the_cap() {
        let b = BackoffConfig {
            base_ms: 100,
            cap_ms: 5_000,
        };
        for attempt in 1..12 {
            let raw = 100u64.saturating_mul(1 << (attempt - 1)).min(5_000);
            let d = b.delay(42, 0, attempt).as_millis() as u64;
            assert!(
                (raw / 2..=raw).contains(&d),
                "attempt {attempt}: delay {d} outside [{}, {raw}]",
                raw / 2
            );
        }
        // Deep attempts stay at the cap instead of overflowing the shift.
        assert!(b.delay(42, 0, 64).as_millis() as u64 <= 5_000);
    }

    #[test]
    fn different_jobs_jitter_apart() {
        let b = BackoffConfig {
            base_ms: 1_000,
            cap_ms: 60_000,
        };
        let distinct: std::collections::HashSet<u128> =
            (0..32).map(|job| b.delay(42, job, 1).as_millis()).collect();
        assert!(
            distinct.len() > 8,
            "jitter must spread concurrent retries apart, got {distinct:?}"
        );
    }

    #[test]
    fn zero_base_means_no_sleep() {
        let b = BackoffConfig::none();
        for attempt in 1..5 {
            assert_eq!(b.delay(1, 2, attempt), Duration::ZERO);
        }
        assert_eq!(RetryPolicy::immediate(3).backoff, BackoffConfig::none());
        assert_eq!(RetryPolicy::immediate(3).attempts(), 4);
        assert_eq!(RetryPolicy::default().attempts(), 1);
    }

    #[test]
    fn policy_builders_compose() {
        let p = RetryPolicy::immediate(2)
            .with_backoff(BackoffConfig::default_service())
            .with_deadline(Duration::from_secs(30));
        assert_eq!(p.retries, 2);
        assert_eq!(p.backoff.base_ms, 100);
        assert_eq!(p.deadline, Some(Duration::from_secs(30)));
    }
}
