//! Physical addresses and the block/page views used throughout the simulator.
//!
//! The paper models a 42-bit physical address space, 64-byte cache blocks and
//! 8 KB pages (Table 1). The helpers here extract block and page numbers and
//! the interleaving bits used by the placement policies: standard address
//! interleaving selects an L2 slice from the bits immediately above the
//! set-index bits, and rotational interleaving uses the same bits combined
//! with the tile's rotational ID (Section 4.1).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Width of the simulated physical address space in bits (Table 1).
pub const PHYS_ADDR_BITS: u32 = 42;

/// A physical byte address.
///
/// # Example
///
/// ```
/// use rnuca_types::addr::PhysAddr;
/// let a = PhysAddr::new(0x1_2345_6789);
/// assert_eq!(a.block(64).block_number(), 0x1_2345_6789 / 64);
/// assert_eq!(a.page(8192).page_number(), 0x1_2345_6789 / 8192);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PhysAddr(u64);

impl PhysAddr {
    /// Creates a physical address, masking it to the modelled address width.
    pub fn new(addr: u64) -> Self {
        PhysAddr(addr & ((1u64 << PHYS_ADDR_BITS) - 1))
    }

    /// Returns the raw address value.
    pub fn value(self) -> u64 {
        self.0
    }

    /// Returns the cache-block view of this address for the given block size.
    ///
    /// # Panics
    ///
    /// Panics if `block_bytes` is not a power of two.
    pub fn block(self, block_bytes: usize) -> BlockAddr {
        assert!(
            block_bytes.is_power_of_two(),
            "block size must be a power of two, got {block_bytes}"
        );
        BlockAddr(self.0 >> block_bytes.trailing_zeros())
    }

    /// Returns the page view of this address for the given page size.
    ///
    /// # Panics
    ///
    /// Panics if `page_bytes` is not a power of two.
    pub fn page(self, page_bytes: usize) -> PageAddr {
        assert!(
            page_bytes.is_power_of_two(),
            "page size must be a power of two, got {page_bytes}"
        );
        PageAddr(self.0 >> page_bytes.trailing_zeros())
    }

    /// Returns the byte offset of this address within its cache block.
    pub fn block_offset(self, block_bytes: usize) -> usize {
        (self.0 as usize) & (block_bytes - 1)
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#012x}", self.0)
    }
}

impl From<u64> for PhysAddr {
    fn from(v: u64) -> Self {
        PhysAddr::new(v)
    }
}

/// A cache-block (line) number: the physical address shifted right by the block-offset bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlockAddr(u64);

impl BlockAddr {
    /// Creates a block address directly from a block number.
    pub fn from_block_number(n: u64) -> Self {
        BlockAddr(n)
    }

    /// Returns the block number.
    pub fn block_number(self) -> u64 {
        self.0
    }

    /// Reconstructs the physical address of the first byte of this block.
    pub fn base_addr(self, block_bytes: usize) -> PhysAddr {
        PhysAddr::new(self.0 << block_bytes.trailing_zeros())
    }

    /// Returns the set index for a cache with `num_sets` sets.
    ///
    /// # Panics
    ///
    /// Panics if `num_sets` is not a power of two.
    pub fn set_index(self, num_sets: usize) -> usize {
        assert!(
            num_sets.is_power_of_two(),
            "set count must be a power of two"
        );
        (self.0 as usize) & (num_sets - 1)
    }

    /// Returns the tag for a cache with `num_sets` sets.
    pub fn tag(self, num_sets: usize) -> u64 {
        assert!(
            num_sets.is_power_of_two(),
            "set count must be a power of two"
        );
        self.0 >> num_sets.trailing_zeros()
    }

    /// Returns the `bits`-wide interleaving field located immediately above the
    /// set-index bits of a cache with `num_sets` sets per slice.
    ///
    /// This is the field the paper calls `Addr[k + log2(n) - 1 : k]` in the
    /// rotational-interleaving indexing function, where `k` is the offset of
    /// the first bit above the set index.
    pub fn interleave_bits(self, num_sets: usize, bits: u32) -> u64 {
        assert!(
            num_sets.is_power_of_two(),
            "set count must be a power of two"
        );
        (self.0 >> num_sets.trailing_zeros()) & ((1u64 << bits) - 1)
    }

    /// Returns the page this block belongs to, given block and page sizes.
    pub fn page(self, block_bytes: usize, page_bytes: usize) -> PageAddr {
        self.base_addr(block_bytes).page(page_bytes)
    }
}

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{:#x}", self.0)
    }
}

/// A page number: the physical address shifted right by the page-offset bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PageAddr(u64);

impl PageAddr {
    /// Creates a page address directly from a page number.
    pub fn from_page_number(n: u64) -> Self {
        PageAddr(n)
    }

    /// Returns the page number.
    pub fn page_number(self) -> u64 {
        self.0
    }

    /// Reconstructs the physical address of the first byte of this page.
    pub fn base_addr(self, page_bytes: usize) -> PhysAddr {
        PhysAddr::new(self.0 << page_bytes.trailing_zeros())
    }

    /// Iterates over the block addresses contained in this page.
    pub fn blocks(self, block_bytes: usize, page_bytes: usize) -> impl Iterator<Item = BlockAddr> {
        let blocks_per_page = (page_bytes / block_bytes) as u64;
        let first = self.0 * blocks_per_page;
        (first..first + blocks_per_page).map(BlockAddr::from_block_number)
    }
}

impl fmt::Display for PageAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Pg{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_is_masked_to_42_bits() {
        let a = PhysAddr::new(u64::MAX);
        assert_eq!(a.value(), (1u64 << 42) - 1);
    }

    #[test]
    fn block_and_page_extraction() {
        let a = PhysAddr::new(0x12345678);
        assert_eq!(a.block(64).block_number(), 0x12345678 >> 6);
        assert_eq!(a.page(8192).page_number(), 0x12345678 >> 13);
        assert_eq!(a.block_offset(64), 0x38);
    }

    #[test]
    fn block_base_addr_roundtrip() {
        let b = BlockAddr::from_block_number(0xABCDE);
        assert_eq!(b.base_addr(64).block(64), b);
    }

    #[test]
    fn set_index_and_tag_partition_the_block_number() {
        let b = BlockAddr::from_block_number(0b1011_0110_1101);
        let sets = 256;
        let set = b.set_index(sets);
        let tag = b.tag(sets);
        assert_eq!((tag << 8) | set as u64, b.block_number());
    }

    #[test]
    fn interleave_bits_sit_above_set_index() {
        // block number = tag | interleave | set-index
        let sets = 16usize; // 4 set-index bits
        let b = BlockAddr::from_block_number(0b1101_1010);
        assert_eq!(b.set_index(sets), 0b1010);
        assert_eq!(b.interleave_bits(sets, 2), 0b01);
        assert_eq!(b.interleave_bits(sets, 4), 0b1101);
    }

    #[test]
    fn page_blocks_iteration() {
        let page = PageAddr::from_page_number(3);
        let blocks: Vec<_> = page.blocks(64, 8192).collect();
        assert_eq!(blocks.len(), 128);
        assert_eq!(blocks[0].block_number(), 3 * 128);
        assert_eq!(blocks[127].block_number(), 3 * 128 + 127);
        // Every block maps back to the same page.
        for b in blocks {
            assert_eq!(b.page(64, 8192), page);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_block_size_panics() {
        PhysAddr::new(0).block(48);
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(PhysAddr::new(0x40).to_string(), "0x0000000040");
        assert_eq!(BlockAddr::from_block_number(0x40).to_string(), "B0x40");
        assert_eq!(PageAddr::from_page_number(0x2).to_string(), "Pg0x2");
    }
}
