//! Figure 7-10 bench: full design comparison (P/A/S/R) for representative workloads.
//!
//! Each iteration simulates one (workload, design) pair end to end with warmed
//! caches; the printed summary reports the CPI breakdown normalised to the
//! private design, i.e. one bar group of Figure 7.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rnuca_sim::{DesignComparison, ExperimentConfig, LlcDesign};
use rnuca_workloads::WorkloadSpec;

fn bench_cpi(c: &mut Criterion) {
    let cfg = ExperimentConfig::quick();
    let mut group = c.benchmark_group("fig07_cpi_total");
    group.sample_size(10);
    for spec in [WorkloadSpec::oltp_db2(), WorkloadSpec::mix()] {
        for design in LlcDesign::evaluation_set() {
            let id = format!("{}/{}", spec.name, design.letter());
            group.bench_with_input(
                BenchmarkId::from_parameter(id),
                &(&spec, design),
                |b, (spec, design)| {
                    b.iter(|| DesignComparison::run_single(spec, *design, &cfg));
                },
            );
        }
        let results = DesignComparison::run_workload(&spec, &cfg);
        let base = results.private_baseline().total_cpi();
        let row: Vec<String> = ["P", "A", "S", "R"]
            .iter()
            .filter_map(|l| results.by_letter(l))
            .map(|r| format!("{}={:.3}", r.design.letter(), r.total_cpi() / base))
            .collect();
        println!(
            "[fig7] {} CPI normalised to private: {}",
            spec.name,
            row.join(" ")
        );
    }
    group.finish();
}

criterion_group!(benches, bench_cpi);
criterion_main!(benches);
