//! Microbench: the rotational-interleaving lookup itself plus an ablation of
//! rotational vs standard (chip-wide) interleaving for instruction placement.
//!
//! The paper's claim is that rotational interleaving matches the speed of
//! address-interleaved lookup (it is a table-free boolean computation) while
//! keeping instruction blocks within one hop. The ablation prints the average
//! hop distance of instruction requests under both schemes.

use criterion::{criterion_group, criterion_main, Criterion};
use rnuca::placement::{PlacementConfig, PlacementEngine};
use rnuca_noc::{Network, Topology};
use rnuca_types::addr::BlockAddr;
use rnuca_types::config::SystemConfig;
use rnuca_types::ids::CoreId;

fn bench_lookup(c: &mut Criterion) {
    let cfg = SystemConfig::server_16();
    let engine = PlacementEngine::new(PlacementConfig::from_system(&cfg));
    let blocks: Vec<BlockAddr> = (0..4096u64)
        .map(|i| BlockAddr::from_block_number(i << 10))
        .collect();

    c.bench_function("rotational_instruction_lookup", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for (i, &blk) in blocks.iter().enumerate() {
                let core = CoreId::new(i % cfg.num_tiles());
                acc += engine.instruction_home(blk, core).index();
            }
            acc
        })
    });

    c.bench_function("standard_shared_lookup", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for &blk in &blocks {
                acc += engine.shared_home(blk).index();
            }
            acc
        })
    });

    // Ablation: average hop distance of instruction requests, rotational
    // (size-4 cluster) vs standard chip-wide interleaving.
    let net = Network::new(Topology::FoldedTorus, cfg.torus);
    let mut rotational_hops = 0u64;
    let mut standard_hops = 0u64;
    // Average over every (core, block) pair: tying the requesting core to the
    // block index would correlate it with the interleaving bits and make
    // chip-wide interleaving look free.
    let num_cores = cfg.num_tiles();
    for &blk in &blocks {
        let shared_home = engine.shared_home(blk);
        for core_idx in 0..num_cores {
            let core = CoreId::new(core_idx);
            rotational_hops += u64::from(net.hops(core.tile(), engine.instruction_home(blk, core)));
            standard_hops += u64::from(net.hops(core.tile(), shared_home));
        }
    }
    let pairs = (blocks.len() * num_cores) as f64;
    println!(
        "[ablation] average instruction hops: rotational size-4 = {:.2}, chip-wide interleaving = {:.2}",
        rotational_hops as f64 / pairs,
        standard_hops as f64 / pairs,
    );
}

criterion_group!(benches, bench_lookup);
criterion_main!(benches);
