//! Figure 4/5 bench: working-set CDFs and reuse histograms.
//!
//! Measures CDF construction over generated traces and prints the footprint
//! needed to capture 90% of each class's references (the knee the paper's
//! Figure 4 shows) plus the reuse fractions of Figure 5.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rnuca_bench::characterize_workload;
use rnuca_workloads::WorkloadSpec;

fn bench_working_sets(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig04_working_sets");
    group.sample_size(10);
    for spec in [WorkloadSpec::apache(), WorkloadSpec::dss_qry6()] {
        group.bench_with_input(BenchmarkId::from_parameter(&spec.name), &spec, |b, spec| {
            b.iter(|| {
                let ch = characterize_workload(spec, 40_000, 1);
                ch.instr_cdf.kb_at_fraction(0.9)
            });
        });
        let ch = characterize_workload(&spec, 40_000, 1);
        println!(
            "[fig4] {}: instr 90% @ {:.0} KB, private 90% @ {:.0} KB, shared 90% @ {:.0} KB",
            spec.name,
            ch.instr_cdf.kb_at_fraction(0.9),
            ch.private_cdf.kb_at_fraction(0.9),
            ch.shared_cdf.kb_at_fraction(0.9),
        );
        println!(
            "[fig5] {}: instruction reuse {:.1}%, shared-data reuse {:.1}%",
            spec.name,
            ch.instr_reuse.reuse_fraction() * 100.0,
            ch.shared_reuse.reuse_fraction() * 100.0,
        );
    }
    group.finish();
}

criterion_group!(benches, bench_working_sets);
criterion_main!(benches);
