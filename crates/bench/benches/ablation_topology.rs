//! Ablation bench: 2-D folded torus vs 2-D mesh interconnect.
//!
//! Section 5.1 argues for a torus because it has no edges and spreads traffic
//! evenly. This bench compares average distance, diameter, and link-load
//! imbalance for a uniform shared-data traffic pattern on both topologies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rnuca_noc::{Message, MessageKind, Network, Topology};
use rnuca_types::addr::BlockAddr;
use rnuca_types::config::SystemConfig;
use rnuca_types::ids::TileId;

fn uniform_traffic(net: &mut Network, messages: usize) {
    let n = net.config().num_tiles();
    for i in 0..messages {
        let src = TileId::new(i % n);
        let dst = TileId::new((i * 7 + 3) % n);
        net.send(
            Message::new(
                src,
                dst,
                MessageKind::DataResponse,
                BlockAddr::from_block_number(i as u64),
            ),
            64,
        );
    }
}

fn bench_topology(c: &mut Criterion) {
    let cfg = SystemConfig::server_16();
    let mut group = c.benchmark_group("ablation_topology");
    group.sample_size(20);
    for topo in [Topology::FoldedTorus, Topology::Mesh] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{topo}")),
            &topo,
            |b, &topo| {
                b.iter(|| {
                    let mut net = Network::new(topo, cfg.torus).with_traffic_recording();
                    uniform_traffic(&mut net, 4096);
                    net.stats().average_hops()
                });
            },
        );
        let mut net = Network::new(topo, cfg.torus).with_traffic_recording();
        uniform_traffic(&mut net, 65_536);
        println!(
            "[ablation] {topo}: avg distance = {:.3}, diameter = {}, avg hops observed = {:.3}, link imbalance = {:.2}",
            topo.average_distance(4, 4),
            topo.diameter(4, 4),
            net.stats().average_hops(),
            net.stats().imbalance().unwrap_or(1.0),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_topology);
criterion_main!(benches);
