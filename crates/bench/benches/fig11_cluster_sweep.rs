//! Figure 11 bench: R-NUCA instruction-cluster size sweep (1, 2, 4, 8, 16).
//!
//! Prints, per cluster size, the total CPI normalised to size-1 clusters plus
//! the instruction-L2 and off-chip components — the trade-off Figure 11 plots
//! (small clusters thrash capacity, large clusters stretch access latency).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rnuca_sim::{DesignComparison, ExperimentConfig, LlcDesign};
use rnuca_workloads::WorkloadSpec;

fn bench_cluster_sweep(c: &mut Criterion) {
    let cfg = ExperimentConfig::quick();
    let spec = WorkloadSpec::apache();
    let mut group = c.benchmark_group("fig11_cluster_sweep");
    group.sample_size(10);
    let mut rows = Vec::new();
    for size in [1usize, 2, 4, 8, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            b.iter(|| {
                DesignComparison::run_single(
                    &spec,
                    LlcDesign::RNuca {
                        instr_cluster_size: size,
                    },
                    &cfg,
                )
            });
        });
        let r = DesignComparison::run_single(
            &spec,
            LlcDesign::RNuca {
                instr_cluster_size: size,
            },
            &cfg,
        );
        rows.push((size, r.run));
    }
    group.finish();
    let base = rows[0].1.total_cpi();
    for (size, run) in rows {
        println!(
            "[fig11] Apache size-{size}: total/size-1 = {:.3}, instr L2 CPI = {:.3}, off-chip CPI = {:.3}",
            run.total_cpi() / base,
            run.cpi.l2_instructions,
            run.cpi.breakdown.off_chip,
        );
    }
}

criterion_group!(benches, bench_cluster_sweep);
criterion_main!(benches);
