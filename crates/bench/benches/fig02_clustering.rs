//! Figure 2/3 bench: trace generation plus L2 reference clustering analysis.
//!
//! Measures the cost of characterizing one workload's L2 reference stream
//! (sharer bubbles, class breakdown, CDFs, reuse histograms) and reports the
//! resulting class mix so the bench output doubles as a figure regeneration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rnuca_bench::characterize_workload;
use rnuca_workloads::WorkloadSpec;

fn bench_clustering(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig02_clustering");
    group.sample_size(10);
    for spec in [
        WorkloadSpec::oltp_db2(),
        WorkloadSpec::em3d(),
        WorkloadSpec::mix(),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(&spec.name), &spec, |b, spec| {
            b.iter(|| characterize_workload(spec, 50_000, 1));
        });
        let ch = characterize_workload(&spec, 50_000, 1);
        println!(
            "[fig2/fig3] {}: instr {:.1}% private {:.1}% shared-RW {:.1}% shared-RO {:.1}%, mean instruction sharers {:.1}",
            spec.name,
            ch.breakdown.instructions * 100.0,
            ch.breakdown.private_data * 100.0,
            ch.breakdown.shared_read_write * 100.0,
            ch.breakdown.shared_read_only * 100.0,
            ch.sharers.mean_sharers(rnuca_types::AccessClass::Instruction),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_clustering);
criterion_main!(benches);
