//! Microbench: fused multi-design stepping vs independent per-design passes.
//!
//! The fused driver's premise is that decoding a trace batch once and
//! stepping N warmed design instances over it beats walking the stream N
//! times. This bench times both executions covering the identical work —
//! five designs over the same batches — plus the single-design batch step
//! as the floor both amortize towards. Run with
//! `cargo bench -p rnuca-bench --bench fused_step`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rnuca_sim::{AsrPolicy, CmpSimulator, FusedDriver, LlcDesign};
use rnuca_workloads::{TraceArena, TraceSource, WorkloadSpec};

/// References per timed pass: a handful of the simulator's 4096-reference
/// batches, so batch-boundary handling is part of the measurement.
const PASS: usize = 4 * 4_096;
/// Warm-up prefix each simulator steps before timing, enough to leave
/// cold-start behind without slowing setup.
const WARMUP: usize = 8_192;
/// Slab length backing the replay cursors.
const SLAB_LEN: usize = 16 * PASS;

fn perf_designs() -> Vec<LlcDesign> {
    vec![
        LlcDesign::Private,
        LlcDesign::Asr {
            policy: AsrPolicy::Adaptive,
        },
        LlcDesign::Shared,
        LlcDesign::rnuca_default(),
        LlcDesign::Ideal,
    ]
}

fn warmed_sims(spec: &WorkloadSpec, arena: &TraceArena) -> Vec<CmpSimulator> {
    perf_designs()
        .into_iter()
        .map(|design| {
            let mut sim = CmpSimulator::with_seed(design, spec, 42);
            let mut slice = arena.slice(spec, 42, SLAB_LEN);
            sim.run_warmup(&mut slice, WARMUP);
            sim
        })
        .collect()
}

fn bench_fused_pass(c: &mut Criterion) {
    let spec = WorkloadSpec::oltp_db2();
    let arena = TraceArena::new();
    arena.populate(&spec, 42, SLAB_LEN);
    let mut sims = warmed_sims(&spec, &arena);
    let mut driver = FusedDriver::new();
    let mut slice = arena.slice(&spec, 42, SLAB_LEN);
    slice.skip(WARMUP);
    c.bench_function("fused_step_five_designs", |bench| {
        bench.iter(|| {
            if slice.remaining() < PASS {
                slice = arena.slice(&spec, 42, SLAB_LEN);
                slice.skip(WARMUP);
            }
            driver.drive(&mut sims, &mut slice, black_box(PASS));
            sims.len()
        })
    });
}

fn bench_independent_passes(c: &mut Criterion) {
    // The work fusion eliminates: the same five designs stepping the same
    // references, but each decoding its own walk of the stream.
    let spec = WorkloadSpec::oltp_db2();
    let arena = TraceArena::new();
    arena.populate(&spec, 42, SLAB_LEN);
    let mut sims = warmed_sims(&spec, &arena);
    let mut cursor = WARMUP;
    c.bench_function("independent_step_five_designs", |bench| {
        bench.iter(|| {
            if cursor + PASS > SLAB_LEN {
                cursor = WARMUP;
            }
            for sim in &mut sims {
                let mut slice = arena.slice(&spec, 42, SLAB_LEN);
                slice.skip(cursor);
                sim.run_warmup(&mut slice, black_box(PASS));
            }
            cursor += PASS;
            sims.len()
        })
    });
}

fn bench_single_design_batch(c: &mut Criterion) {
    // The floor: one design stepping one decoded batch via the interface
    // the fused driver calls per member.
    let spec = WorkloadSpec::oltp_db2();
    let arena = TraceArena::new();
    arena.populate(&spec, 42, SLAB_LEN);
    let mut sim = CmpSimulator::with_seed(LlcDesign::rnuca_default(), &spec, 42);
    let mut slice = arena.slice(&spec, 42, SLAB_LEN);
    sim.run_warmup(&mut slice, WARMUP);
    let mut buf = Vec::new();
    slice.fill_into(4_096, &mut buf);
    c.bench_function("single_design_step_batch", |bench| {
        bench.iter(|| {
            sim.step_batch(black_box(&buf));
            buf.len()
        })
    });
}

criterion_group!(
    benches,
    bench_fused_pass,
    bench_independent_passes,
    bench_single_design_batch
);
criterion_main!(benches);
