//! Microbench: streaming trace generation vs shared-arena replay.
//!
//! The trace arena's premise is that decoding a packed slab is much cheaper
//! than re-drawing the stream from the RNG. This bench times both
//! [`TraceSource`] implementations producing the identical reference batch —
//! `generate` draws every reference through the two-level locality model,
//! `replay` linearly decodes the memoized structure-of-arrays slab — plus
//! the one-time slab materialization the arena amortizes across designs.
//! Run with `cargo bench -p rnuca-bench --bench trace_replay`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rnuca_workloads::{TraceArena, TraceGenerator, TraceSource, WorkloadSpec};

/// References per timed batch: the simulator's `TRACE_BATCH` size.
const BATCH: usize = 4_096;
/// Slab length for the replay benches: enough batches to spoil any
/// first-touch effects without making setup slow.
const SLAB_LEN: usize = 64 * BATCH;

fn bench_streaming_generation(c: &mut Criterion) {
    let spec = WorkloadSpec::oltp_db2();
    let mut gen = TraceGenerator::new(&spec, 42);
    let mut buf = Vec::new();
    c.bench_function("trace_streaming_generate", |bench| {
        bench.iter(|| {
            gen.fill_into(black_box(BATCH), &mut buf);
            buf.len()
        })
    });
}

fn bench_arena_replay(c: &mut Criterion) {
    let spec = WorkloadSpec::oltp_db2();
    let arena = TraceArena::new();
    arena.populate(&spec, 42, SLAB_LEN);
    let mut slice = arena.slice(&spec, 42, SLAB_LEN);
    let mut buf = Vec::new();
    c.bench_function("trace_arena_replay", |bench| {
        bench.iter(|| {
            if slice.remaining() < BATCH {
                slice = arena.slice(&spec, 42, SLAB_LEN);
            }
            slice.fill_into(black_box(BATCH), &mut buf);
            buf.len()
        })
    });
}

fn bench_slab_materialization(c: &mut Criterion) {
    // The cost replay amortizes: materializing one batch worth of stream
    // into a fresh slab (the arena pays this once per unique key).
    let spec = WorkloadSpec::oltp_db2();
    c.bench_function("trace_slab_materialize", |bench| {
        bench.iter(|| rnuca_workloads::TraceSlab::generate(&spec, black_box(42), BATCH).len())
    });
}

criterion_group!(
    benches,
    bench_streaming_generation,
    bench_arena_replay,
    bench_slab_materialization
);
criterion_main!(benches);
