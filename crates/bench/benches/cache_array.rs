//! Microbench: the flat-slab [`CacheArray`] hot paths the simulator leans on.
//!
//! Three mixes mirror the simulator's behaviour per L2 reference:
//! `probe_hit` (steady-state resident working set), `probe_miss_fill` (a
//! streaming scan that misses and fills through the single-probe entry-handle
//! API, evicting on every fill once warm), and `invalidate_page_mix` (fills
//! interleaved with R-NUCA-style page shoot-downs walking a page's block
//! addresses). Run with `cargo bench -p rnuca-bench --bench cache_array`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rnuca_cache::{CacheArray, ProbeEntry};
use rnuca_types::addr::BlockAddr;
use rnuca_types::config::CacheGeometry;

/// The server configuration's L2 slice: 1 MB, 16-way, 64 B blocks.
fn slice_geometry() -> CacheGeometry {
    CacheGeometry::new(1 << 20, 16, 64).unwrap()
}

fn b(n: u64) -> BlockAddr {
    BlockAddr::from_block_number(n)
}

fn bench_probe_hit(c: &mut Criterion) {
    let geometry = slice_geometry();
    let mut cache: CacheArray<u32> = CacheArray::new(geometry);
    // Resident working set: half the sets, half the ways.
    let blocks: Vec<BlockAddr> = (0..(geometry.num_blocks() as u64 / 4))
        .map(|n| b(n * 2))
        .collect();
    for &blk in &blocks {
        cache.insert(blk, 1);
    }
    c.bench_function("cache_array_probe_hit", |bench| {
        bench.iter(|| {
            let mut hits = 0u64;
            for &blk in &blocks {
                hits += u64::from(cache.probe(black_box(blk)).is_some());
            }
            hits
        })
    });
}

fn bench_probe_miss_fill(c: &mut Criterion) {
    let geometry = slice_geometry();
    let mut cache: CacheArray<u32> = CacheArray::new(geometry);
    let mut next = 0u64;
    c.bench_function("cache_array_probe_miss_fill", |bench| {
        bench.iter(|| {
            // A fresh block number every iteration: always a miss, and once
            // the array is warm every fill evicts the set's LRU way.
            let mut evictions = 0u64;
            for _ in 0..4096 {
                let blk = b(next);
                next += 1;
                match cache.probe_entry(black_box(blk)) {
                    ProbeEntry::Hit(_) => unreachable!("stream never repeats"),
                    ProbeEntry::Miss(slot) => {
                        let (_, evicted) = cache.fill_at(slot, blk, 1);
                        evictions += u64::from(evicted.is_some());
                    }
                }
            }
            evictions
        })
    });
}

fn bench_invalidate_page_mix(c: &mut Criterion) {
    let geometry = slice_geometry();
    let blocks_per_page = 8192 / geometry.block_bytes as u64; // 8 KB pages
    let mut cache: CacheArray<u32> = CacheArray::new(geometry);
    let mut next = 0u64;
    c.bench_function("cache_array_invalidate_page_mix", |bench| {
        bench.iter(|| {
            // Fill one page's worth of blocks, then shoot the page down the
            // way an R-NUCA re-classification does: per-block invalidations.
            let page_first = next;
            for _ in 0..blocks_per_page {
                let blk = b(next);
                next += 1;
                if let ProbeEntry::Miss(slot) = cache.probe_entry(blk) {
                    cache.fill_at(slot, blk, 1);
                }
            }
            let mut dropped = 0u64;
            for n in page_first..page_first + blocks_per_page {
                dropped += u64::from(cache.invalidate(black_box(b(n))).is_some());
            }
            dropped
        })
    });
}

criterion_group!(
    benches,
    bench_probe_hit,
    bench_probe_miss_fill,
    bench_invalidate_page_mix
);
criterion_main!(benches);
