//! Figure 12 bench: speedup of every design (including Ideal) over the private design.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rnuca_sim::{DesignComparison, ExperimentConfig};
use rnuca_workloads::WorkloadSpec;

fn bench_speedup(c: &mut Criterion) {
    let cfg = ExperimentConfig::quick();
    let mut group = c.benchmark_group("fig12_speedup");
    group.sample_size(10);
    for spec in [WorkloadSpec::oltp_oracle(), WorkloadSpec::apache()] {
        group.bench_with_input(BenchmarkId::from_parameter(&spec.name), &spec, |b, spec| {
            b.iter(|| DesignComparison::run_workload(spec, &cfg));
        });
        let w = DesignComparison::run_workload(&spec, &cfg);
        let speedups: Vec<String> = w
            .speedups_over_private()
            .iter()
            .map(|(d, s)| format!("{}={:+.1}%", d.letter(), (s - 1.0) * 100.0))
            .collect();
        println!(
            "[fig12] {} speedup over private: {}",
            spec.name,
            speedups.join(" ")
        );
    }
    group.finish();
}

criterion_group!(benches, bench_speedup);
criterion_main!(benches);
