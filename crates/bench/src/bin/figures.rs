//! Regenerates every table and figure of the paper's evaluation as text tables.
//!
//! ```text
//! cargo run --release -p rnuca-bench --bin figures -- all
//! cargo run --release -p rnuca-bench --bin figures -- fig7 fig12
//! cargo run --release -p rnuca-bench --bin figures -- --quick all
//! cargo run --release -p rnuca-bench --bin figures -- --quick --workers=4 sweep
//! ```
//!
//! Supported targets: `table1`, `fig2`..`fig12`, `accuracy`, `all`, `sweep`,
//! `perf`. `--quick` shrinks warm-up and measurement windows for a fast run;
//! `--smoke` shrinks them further for CI smoke tests. `--workers=N` bounds
//! the experiment engine's worker pool (results are identical for every N).
//!
//! `sweep` runs the scenario matrix — core counts 16/32/64, L2 slice
//! capacities 512 KB/1 MB/2 MB, R-NUCA instruction clusters 2/4/8 — and
//! prints JSON to stdout (nothing else, so it can be piped into a file).
//! `sweep` is intentionally not part of `all`, which emits text tables.
//!
//! `perf` runs the timed throughput suite (five designs × three workloads ×
//! 16/32/64 cores) and writes `BENCH_perf.json` (`--out=PATH` overrides the
//! path). With `--baseline=bench/baseline.json` it also evaluates the
//! perf-regression gate and exits non-zero when aggregate blocks/sec drops
//! below the baseline's tolerance — the CI perf gate. The gate is evaluated
//! as a warehouse query (see below): the run's rows are appended to a
//! results store (`--store=PATH` persists it; otherwise in-memory) and the
//! verdict is a query over the latest totals row. Like `sweep`, `perf` is
//! not part of `all`. `--filter=SUBSTRING` keeps only the scenarios whose
//! `workload/letter/design/Ncores` label contains the substring
//! (case-insensitive, e.g. `--filter=em3d` or `--filter=/R/`) for fast local
//! iteration; a filtered run skips the gate, appends its rows with
//! `partial=true` (gate queries exclude them), and writes a report file only
//! when `--out=` is explicit (a partial report must not clobber the
//! checked-in `BENCH_perf.json`). `perf --list` prints the scenario labels
//! and the fused group each belongs to — the trace streams a run would share
//! — without simulating anything; it honours `--filter`.
//!
//! The results-warehouse subcommands operate on the store named by
//! `--store=PATH` (default `bench/warehouse.bin`):
//!
//! * `ingest FILE...` loads benchmark artifacts (`BENCH_perf.json` or sweep
//!   documents) into the store. Appends are idempotent: re-ingesting a file
//!   the store has seen reports `0 new rows`.
//! * `query "QUERY"` runs a typed query (`design=R & cores>=32 sort
//!   off_chip_rate`) and prints an aligned table, or JSON with `--json`.
//!   Malformed queries print compiler-style spanned diagnostics on stderr
//!   and exit 2.
//! * `gate --baseline=bench/baseline.json` evaluates the perf-regression
//!   gate as a query over the store's latest non-partial totals row for the
//!   active config (`full`, or `--quick`/`--smoke`), exiting 1 on failure.
//!
//! `sweep --store=PATH` additionally appends one row per sweep point to the
//! store (the JSON on stdout is unchanged; the append summary goes to
//! stderr).
//!
//! Crash safety: `sweep --journal=PATH` journals every completed job to
//! `PATH` as the sweep runs, so an interrupted sweep can be continued with
//! `--resume` — journaled jobs are replayed, the remainder re-runs, and the
//! result (and any warehouse built from it) is bit-identical to an
//! uninterrupted run. A leftover journal without `--resume` is an error
//! (it means an earlier sweep was interrupted); a completed sweep removes
//! its journal. `journal PATH` prints a journal's header and completion
//! count without running anything.
//!
//! Panic quarantine: `sweep --supervised` composes the journal with per-job
//! supervision — a scenario whose every attempt panics is quarantined (with
//! `--retries=N` solo retries under seeded backoff) instead of killing the
//! sweep, journaled as a typed failure entry (`--resume` skips it rather
//! than re-crashing), recorded as a queryable `kind=failed` warehouse row,
//! and listed in a `"failures"` array in the JSON.
//!
//! The experiment service (`figures serve`) runs sweeps as a resident job
//! server over a Unix socket in `--spool=DIR` (default `bench/spool`);
//! `submit`/`status`/`watch`/`cancel`/`drain` are thin clients for it. A
//! `submit` takes the active `--quick`/`--smoke` config plus
//! `--workloads=`/`--designs=`/`--cores=`/`--slices=`/`--clusters=` axes
//! and `--retries=`/`--deadline-ms=` supervision knobs. See the
//! `rnuca-service` crate docs for the protocol and crash-resume semantics.
//!
//! Exit codes: 0 success, 1 generic failure, 2 malformed query (spanned
//! diagnostics on stderr), 3 corrupt on-disk artifact — a damaged
//! warehouse or journal renders a compiler-style diagnostic naming the
//! file and byte offset, and is never silently recreated or repaired.

use rnuca_bench::{
    characterize_workload, default_perf_scenarios, evaluate_gate_query, filter_scenarios,
    records_from_json, run_perf_scenarios, PerfBaseline, PerfScenario,
};
use rnuca_os::rid_assignment;
use rnuca_service::{Request, ServiceClient, ServiceConfig};
use rnuca_sim::report::{fmt3, fmt_pct};
use rnuca_sim::{
    group_indices, DesignComparison, ExperimentConfig, ExperimentEngine, JournalError,
    JournalReplay, QuarantinedSweep, ScenarioMatrix, ScenarioSweep, SnapshotArena, SweepError,
    TextTable,
};
use rnuca_types::access::AccessClass;
use rnuca_types::config::SystemConfig;
use rnuca_types::ids::TileId;
use rnuca_types::{BackoffConfig, RetryPolicy};
use rnuca_warehouse::{render_errors, Warehouse};
use rnuca_workloads::WorkloadSpec;
use std::path::Path;

const CHARACTERIZATION_REFS: usize = 400_000;
const CHARACTERIZATION_REFS_QUICK: usize = 60_000;
const CHARACTERIZATION_REFS_SMOKE: usize = 10_000;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let smoke = args.iter().any(|a| a == "--smoke");
    let engine = match args.iter().find_map(|a| a.strip_prefix("--workers=")) {
        Some(n) => match n.parse::<usize>() {
            Ok(n) if n > 0 => ExperimentEngine::with_workers(n),
            _ => {
                eprintln!("--workers must be a positive integer, got {n}");
                std::process::exit(2);
            }
        },
        None => ExperimentEngine::new(),
    };
    let perf_out = args
        .iter()
        .find_map(|a| a.strip_prefix("--out="))
        .map(String::from);
    let baseline_path = args
        .iter()
        .find_map(|a| a.strip_prefix("--baseline="))
        .map(String::from);
    let perf_filter = args
        .iter()
        .find_map(|a| a.strip_prefix("--filter="))
        .map(String::from);
    let perf_list = args.iter().any(|a| a == "--list");
    let store_path = args
        .iter()
        .find_map(|a| a.strip_prefix("--store="))
        .map(String::from);
    let journal_arg = args
        .iter()
        .find_map(|a| a.strip_prefix("--journal="))
        .map(String::from);
    let resume = args.iter().any(|a| a == "--resume");
    let json_output = args.iter().any(|a| a == "--json");
    let supervised = args.iter().any(|a| a == "--supervised");
    let retries = match args.iter().find_map(|a| a.strip_prefix("--retries=")) {
        Some(n) => n
            .parse::<u32>()
            .unwrap_or_else(|_| exit_with(&format!("--retries must be a number, got {n}"))),
        None => 1,
    };
    let spool_dir = args
        .iter()
        .find_map(|a| a.strip_prefix("--spool="))
        .unwrap_or("bench/spool")
        .to_string();
    let targets: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .collect();
    let targets = if targets.is_empty() {
        vec!["all".to_string()]
    } else {
        targets
    };

    let (cfg, cfg_label) = if smoke {
        (ExperimentConfig::smoke(), "smoke")
    } else if quick {
        (ExperimentConfig::quick(), "quick")
    } else {
        (ExperimentConfig::full(), "full")
    };
    let char_refs = if smoke {
        CHARACTERIZATION_REFS_SMOKE
    } else if quick {
        CHARACTERIZATION_REFS_QUICK
    } else {
        CHARACTERIZATION_REFS
    };

    // The warehouse and service subcommands consume the remaining
    // positionals (files, query text, submission ids) themselves — they are
    // whole invocations, not targets.
    match targets[0].as_str() {
        "ingest" => return ingest_cmd(store_path.as_deref(), &targets[1..]),
        "query" => return query_cmd(store_path.as_deref(), json_output, &targets[1..]),
        "gate" => return gate_cmd(store_path.as_deref(), baseline_path.as_deref(), cfg_label),
        "journal" => return journal_cmd(&targets[1..]),
        "serve" => {
            return serve_cmd(
                &spool_dir,
                store_path.as_deref().unwrap_or(DEFAULT_STORE),
                &args,
            )
        }
        "submit" => return submit_cmd(&spool_dir, &args, cfg_label, retries, &targets[1..]),
        "status" => return simple_client_cmd(&spool_dir, Request::Status),
        "watch" => return watch_cmd(&spool_dir, &targets[1..]),
        "cancel" => {
            let id = targets
                .get(1)
                .unwrap_or_else(|| exit_with("cancel needs a submission id"));
            return simple_client_cmd(&spool_dir, Request::Cancel(id.clone()));
        }
        "drain" => return simple_client_cmd(&spool_dir, Request::Drain),
        _ => {}
    }
    if resume && journal_arg.is_none() {
        exit_with("--resume needs --journal=PATH (the journal the interrupted sweep wrote)");
    }

    // The evaluation (Figures 7-12) shares one run of every workload x design.
    let needs_eval = targets.iter().any(|t| {
        t == "all"
            || matches!(
                t.as_str(),
                "fig7" | "fig8" | "fig9" | "fig10" | "fig12" | "accuracy"
            )
    });
    let comparison = if needs_eval {
        Some(DesignComparison::run_evaluation_with(&cfg, &engine))
    } else {
        None
    };

    for target in &targets {
        match target.as_str() {
            "table1" => table1(),
            "fig2" => fig2(char_refs),
            "fig3" => fig3(char_refs),
            "fig4" => fig4(char_refs),
            "fig5" => fig5(char_refs),
            "fig6" => fig6(),
            "fig7" => fig7(comparison.as_ref().unwrap()),
            "fig8" => fig8(comparison.as_ref().unwrap()),
            "fig9" => fig9(comparison.as_ref().unwrap()),
            "fig10" => fig10(comparison.as_ref().unwrap()),
            "fig11" => fig11(&cfg, &engine),
            "fig12" => fig12(comparison.as_ref().unwrap()),
            "accuracy" => accuracy(comparison.as_ref().unwrap()),
            "sweep" if supervised => sweep_supervised(
                cfg,
                &engine,
                store_path.as_deref(),
                journal_arg.as_deref(),
                resume,
                retries,
            ),
            "sweep" => sweep(
                cfg,
                &engine,
                store_path.as_deref(),
                journal_arg.as_deref(),
                resume,
            ),
            "perf" if perf_list => perf_list_only(&cfg, perf_filter.as_deref()),
            "perf" => perf(
                &cfg,
                cfg_label,
                &engine,
                perf_out.as_deref(),
                baseline_path.as_deref(),
                perf_filter.as_deref(),
                store_path.as_deref(),
            ),
            "all" => {
                table1();
                fig2(char_refs);
                fig3(char_refs);
                fig4(char_refs);
                fig5(char_refs);
                fig6();
                let c = comparison.as_ref().unwrap();
                accuracy(c);
                fig7(c);
                fig8(c);
                fig9(c);
                fig10(c);
                fig11(&cfg, &engine);
                fig12(c);
            }
            other => eprintln!("unknown target: {other}"),
        }
    }
}

/// The scenario-matrix sweep: every workload at 16/32/64 cores, three slice
/// capacities, under the shared design and R-NUCA at three cluster sizes.
/// Prints the result matrix as JSON on stdout. With `--store=` every sweep
/// point is also appended to the warehouse (the append summary goes to
/// stderr, keeping stdout pipeable). With `--journal=` every completed job
/// is logged as the sweep runs, and `--resume` continues an interrupted
/// sweep from that journal.
fn sweep(
    cfg: ExperimentConfig,
    engine: &ExperimentEngine,
    store_path: Option<&str>,
    journal: Option<&str>,
    resume: bool,
) {
    use rnuca_workloads::TraceArena;
    let matrix = rnuca_bench::default_sweep_matrix(cfg);
    let sweep = match journal {
        Some(jpath) => run_journaled_sweep(&matrix, engine, jpath, resume, store_path),
        None => match store_path {
            Some(path) => {
                let store = open_store(path);
                let (sweep, summary) = matrix
                    .run_forked_into(engine, &TraceArena::new(), &SnapshotArena::new(), &store)
                    .expect("the default sweep axes are valid");
                save_store(&store, path);
                eprintln!(
                    "warehouse: {} new rows ({} deduplicated) -> {path}",
                    summary.added, summary.deduplicated
                );
                sweep
            }
            None => matrix
                .run_with(engine)
                .expect("the default sweep axes are valid"),
        },
    };
    print!("{}", sweep.to_json());
}

/// The journaled (crash-safe) sweep path: refuses to clobber a leftover
/// journal without `--resume`, replays journaled jobs on resume, and
/// removes the journal once the sweep completes.
fn run_journaled_sweep(
    matrix: &ScenarioMatrix,
    engine: &ExperimentEngine,
    jpath: &str,
    resume: bool,
    store_path: Option<&str>,
) -> ScenarioSweep {
    use rnuca_workloads::TraceArena;
    let path = Path::new(jpath);
    if !resume && path.exists() {
        exit_with(&format!(
            "journal {jpath} already exists — an earlier sweep was interrupted; \
             pass --resume to continue it, or delete the journal to start over"
        ));
    }
    if resume && !path.exists() {
        exit_with(&format!(
            "--resume: journal {jpath} does not exist (run once without --resume to create it)"
        ));
    }
    let arena = TraceArena::new();
    let snapshots = SnapshotArena::new();
    let (sweep, resumed) = match store_path {
        Some(spath) => {
            let store = open_store(spath);
            let (sweep, summary, resumed) = matrix
                .run_forked_into_journaled(engine, &arena, &snapshots, path, resume, &store)
                .unwrap_or_else(|e| exit_sweep_error(jpath, e));
            save_store(&store, spath);
            eprintln!(
                "warehouse: {} new rows ({} deduplicated) -> {spath}",
                summary.added, summary.deduplicated
            );
            (sweep, resumed)
        }
        None => matrix
            .run_forked_journaled(engine, &arena, &snapshots, path, resume)
            .unwrap_or_else(|e| exit_sweep_error(jpath, e)),
    };
    eprintln!(
        "journal: replayed {} of {} jobs, ran {} -> {jpath}",
        resumed.replayed,
        resumed.replayed + resumed.ran,
        resumed.ran
    );
    // A journal only matters while its sweep is incomplete; leaving it
    // behind would make the next plain run error out for no reason.
    std::fs::remove_file(path)
        .unwrap_or_else(|e| exit_with(&format!("cannot remove completed journal {jpath}: {e}")));
    eprintln!("journal: sweep complete, removed {jpath}");
    sweep
}

/// `sweep --supervised`: the panic-quarantining sweep. One poisoned
/// scenario gets `--retries` solo retries under seeded backoff and, if it
/// still fails, a typed failure entry — in the JSON's `"failures"` array,
/// in the journal (so `--resume` skips it instead of re-crashing), and as a
/// `kind=failed` warehouse row with the failure text in the `failure`
/// column.
fn sweep_supervised(
    cfg: ExperimentConfig,
    engine: &ExperimentEngine,
    store_path: Option<&str>,
    journal: Option<&str>,
    resume: bool,
    retries: u32,
) {
    use rnuca_workloads::TraceArena;
    let matrix = rnuca_bench::default_sweep_matrix(cfg);
    let policy = RetryPolicy::immediate(retries).with_backoff(BackoffConfig::default_service());
    let arena = TraceArena::new();
    let snapshots = SnapshotArena::new();
    let sweep = match journal {
        Some(jpath) => {
            let path = Path::new(jpath);
            if !resume && path.exists() {
                exit_with(&format!(
                    "journal {jpath} already exists — an earlier sweep was interrupted; \
                     pass --resume to continue it, or delete the journal to start over"
                ));
            }
            if resume && !path.exists() {
                exit_with(&format!(
                    "--resume: journal {jpath} does not exist (run once without --resume to \
                     create it)"
                ));
            }
            let (sweep, resumed) = match store_path {
                Some(spath) => {
                    let store = open_store(spath);
                    let (sweep, summary, resumed) = matrix
                        .run_supervised_into_journaled(
                            engine, &arena, &snapshots, path, resume, &policy, &store,
                        )
                        .unwrap_or_else(|e| exit_sweep_error(jpath, e));
                    save_store(&store, spath);
                    eprintln!(
                        "warehouse: {} new rows ({} deduplicated) -> {spath}",
                        summary.added, summary.deduplicated
                    );
                    (sweep, resumed)
                }
                None => matrix
                    .run_supervised_journaled(engine, &arena, &snapshots, path, resume, &policy)
                    .unwrap_or_else(|e| exit_sweep_error(jpath, e)),
            };
            eprintln!(
                "journal: replayed {} of {} jobs, ran {} -> {jpath}",
                resumed.replayed,
                resumed.replayed + resumed.ran,
                resumed.ran
            );
            // Every job has an outcome (a run or a quarantined failure), so
            // the journal's work is done, exactly like the fail-fast path.
            std::fs::remove_file(path).unwrap_or_else(|e| {
                exit_with(&format!("cannot remove completed journal {jpath}: {e}"))
            });
            eprintln!("journal: sweep complete, removed {jpath}");
            sweep
        }
        None => {
            let sweep = matrix
                .run_supervised_forked(engine, &arena, &snapshots, retries)
                .unwrap_or_else(|e| exit_with(&format!("sweep failed: {e}")));
            if let Some(spath) = store_path {
                let store = open_store(spath);
                let jobs = matrix.jobs().expect("the default sweep axes are valid");
                let records: Vec<_> = jobs
                    .iter()
                    .zip(&sweep.results)
                    .map(|(job, result)| match result {
                        Ok(r) => rnuca_sim::sweep_record(&matrix.cfg, &job.workload, r),
                        Err(f) => rnuca_sim::failed_record(&matrix.cfg, job, f),
                    })
                    .collect();
                let summary = store.append_all(&records);
                save_store(&store, spath);
                eprintln!(
                    "warehouse: {} new rows ({} deduplicated) -> {spath}",
                    summary.added, summary.deduplicated
                );
            }
            sweep
        }
    };
    report_quarantined(&sweep);
    print!("{}", sweep.to_json());
}

/// Makes quarantined jobs loud on stderr (stdout stays pipeable JSON).
fn report_quarantined(sweep: &QuarantinedSweep) {
    let failures = sweep.failures();
    if failures.is_empty() {
        return;
    }
    eprintln!(
        "supervised sweep: {} of {} jobs quarantined:",
        failures.len(),
        sweep.results.len()
    );
    for f in failures {
        eprintln!("  {f}");
    }
}

/// `figures serve`: run the resident experiment service until drained.
fn serve_cmd(spool: &str, store: &str, args: &[String]) {
    let workers = match args.iter().find_map(|a| a.strip_prefix("--workers=")) {
        Some(n) => n
            .parse::<usize>()
            .ok()
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                exit_with(&format!("--workers must be a positive integer, got {n}"))
            }),
        None => std::thread::available_parallelism().map_or(4, |n| n.get()),
    };
    rnuca_service::serve(&ServiceConfig {
        spool: spool.into(),
        store: store.into(),
        workers,
    })
    .unwrap_or_else(|e| exit_with(&format!("service: {e}")));
}

/// Connects to the service socket inside `spool`, failing with a hint when
/// no service is running there.
fn connect_service(spool: &str) -> ServiceClient {
    let socket = Path::new(spool).join("service.sock");
    ServiceClient::connect(&socket).unwrap_or_else(|e| {
        exit_with(&format!(
            "cannot reach the experiment service at {} ({e}); start one with \
             `figures serve --spool={spool}`",
            socket.display()
        ))
    })
}

/// `figures submit`: build a spec from the active config and axis flags (or
/// take a raw `v1|...` spec line as the positional) and queue it.
fn submit_cmd(spool: &str, args: &[String], cfg_label: &str, retries: u32, rest: &[String]) {
    let spec_line = match rest.first() {
        Some(raw) => raw.clone(),
        None => {
            let axis = |prefix: &str| {
                args.iter()
                    .find_map(|a| a.strip_prefix(prefix))
                    .unwrap_or("")
                    .to_string()
            };
            let seed = args
                .iter()
                .find_map(|a| a.strip_prefix("--seed="))
                .unwrap_or("-");
            let deadline_ms = args
                .iter()
                .find_map(|a| a.strip_prefix("--deadline-ms="))
                .unwrap_or("0");
            format!(
                "v1|config={cfg_label}|seed={seed}|workloads={}|designs={}|cores={}|slices={}\
                 |clusters={}|retries={retries}|deadline_ms={deadline_ms}",
                axis("--workloads="),
                axis("--designs="),
                axis("--cores="),
                axis("--slices="),
                axis("--clusters="),
            )
        }
    };
    // Validate locally first: a typo'd flag should fail with the parse
    // error, not a round-trip.
    if let Err(e) = rnuca_service::SubmitSpec::parse(&spec_line) {
        exit_with(&format!("invalid submission: {e}"));
    }
    let mut client = connect_service(spool);
    finish_reply(client.request(&Request::Submit(spec_line)));
}

/// Sends one request (`status`, `cancel`, `drain`) and prints the reply.
fn simple_client_cmd(spool: &str, request: Request) {
    let mut client = connect_service(spool);
    finish_reply(client.request(&request));
}

/// `figures watch ID`: stream a submission's progress events until it
/// reaches a terminal state; exit 1 when that state is a failure.
fn watch_cmd(spool: &str, rest: &[String]) {
    let id = rest
        .first()
        .unwrap_or_else(|| exit_with("watch needs a submission id: figures watch ID"));
    let mut client = connect_service(spool);
    let done = client
        .watch(id, |event| println!("{event}"))
        .unwrap_or_else(|e| exit_with(&format!("watch failed: {e}")));
    println!("{done}");
    // A failed submission renders as `done ID failed: reason` — distinct
    // from the `failed=N` counter a completed one reports.
    if done.starts_with("err ") || done.contains(" failed:") {
        std::process::exit(1);
    }
}

/// Prints an `ok` reply (sans prefix) or exits 1 with the `err` message.
fn finish_reply(reply: std::io::Result<String>) {
    match reply {
        Ok(reply) => match reply.strip_prefix("ok ") {
            Some(body) => println!("{body}"),
            None => exit_with(&reply),
        },
        Err(e) => exit_with(&format!("service request failed: {e}")),
    }
}

/// Renders a journaled-sweep failure and exits: corrupt journals get the
/// byte-offset diagnostic and exit code 3, stale journals an actionable
/// hint, config errors the generic exit.
fn exit_sweep_error(jpath: &str, e: SweepError) -> ! {
    match e {
        SweepError::Journal(JournalError::Corrupt { offset, message }) => {
            eprintln!(
                "error: corrupt sweep journal: {message}\n  --> {jpath} (byte {offset})\n   \
                 = help: delete the journal and re-run the sweep from the start"
            );
            std::process::exit(EXIT_CORRUPT);
        }
        SweepError::Journal(e @ JournalError::FingerprintMismatch { .. }) => exit_with(&format!(
            "{e}\njournal {jpath} belongs to a different sweep (axes, seed, run lengths, or \
             schema changed); delete it to start this sweep from scratch"
        )),
        other => exit_with(&format!("sweep failed: {other}")),
    }
}

/// `figures journal PATH...`: prints each journal's identity and completion
/// count without running anything.
fn journal_cmd(paths: &[String]) {
    if paths.is_empty() {
        exit_with("journal needs at least one path: figures journal PATH...");
    }
    for path in paths {
        match JournalReplay::load(Path::new(path)) {
            Ok(replay) => println!(
                "{path}: sweep {:#018x}, {} of {} jobs journaled{}",
                replay.fingerprint,
                replay.completed(),
                replay.jobs,
                if replay.torn_tail {
                    " (torn tail dropped)"
                } else {
                    ""
                }
            ),
            Err(JournalError::Corrupt { offset, message }) => {
                eprintln!(
                    "error: corrupt sweep journal: {message}\n  --> {path} (byte {offset})\n   \
                     = help: delete the journal and re-run the sweep from the start"
                );
                std::process::exit(EXIT_CORRUPT);
            }
            Err(e) => exit_with(&format!("cannot read journal {path}: {e}")),
        }
    }
}

/// Where the warehouse lives when `--store=` is not given.
const DEFAULT_STORE: &str = "bench/warehouse.bin";

/// Exit code for a corrupt on-disk artifact (store or journal) — distinct
/// from generic failures (1) and malformed queries (2) so CI and scripts
/// can tell "fix your command" from "your data is damaged".
const EXIT_CORRUPT: i32 = 3;

/// Opens (or initializes) the warehouse at `path`, exiting on corruption —
/// a damaged store fails loudly with a diagnostic naming the file and byte
/// offset (exit code 3); it is never silently recreated.
fn open_store(path: &str) -> Warehouse {
    let p = Path::new(path);
    let bytes = match std::fs::read(p) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Warehouse::new(),
        Err(e) => exit_with(&format!("cannot read store {path}: {e}")),
    };
    Warehouse::from_bytes(&bytes).unwrap_or_else(|e| {
        eprintln!("{}", e.render(p, &bytes));
        std::process::exit(EXIT_CORRUPT);
    })
}

fn save_store(store: &Warehouse, path: &str) {
    if let Some(dir) = Path::new(path)
        .parent()
        .filter(|d| !d.as_os_str().is_empty())
    {
        std::fs::create_dir_all(dir)
            .unwrap_or_else(|e| exit_with(&format!("cannot create {}: {e}", dir.display())));
    }
    store
        .save(Path::new(path))
        .unwrap_or_else(|e| exit_with(&format!("cannot write store {path}: {e}")));
}

/// `figures ingest FILE...`: loads benchmark artifacts into the warehouse.
fn ingest_cmd(store_path: Option<&str>, files: &[String]) {
    if files.is_empty() {
        exit_with("ingest needs at least one file: figures ingest [--store=PATH] FILE...");
    }
    let path = store_path.unwrap_or(DEFAULT_STORE);
    let store = open_store(path);
    for file in files {
        let text = std::fs::read_to_string(file)
            .unwrap_or_else(|e| exit_with(&format!("cannot read {file}: {e}")));
        let (records, kind) = records_from_json(&text)
            .unwrap_or_else(|e| exit_with(&format!("cannot ingest {file}: {e}")));
        let summary = store.append_all(&records);
        println!(
            "{file}: {} new rows ({} deduplicated, {})",
            summary.added,
            summary.deduplicated,
            kind.as_str()
        );
    }
    save_store(&store, path);
    println!("store: {} rows -> {path}", store.len());
}

/// `figures query "QUERY"`: runs a typed query against the warehouse and
/// prints a table (or JSON with `--json`). Query errors render with source
/// spans on stderr and exit 2, like a compiler.
fn query_cmd(store_path: Option<&str>, json: bool, query_parts: &[String]) {
    let path = store_path.unwrap_or(DEFAULT_STORE);
    let store = open_store(path);
    let query = query_parts.join(" ");
    match store.query(&query) {
        Ok(out) => {
            if json {
                println!("{}", out.to_json());
            } else {
                print!("{}", out.render_table());
                println!("{} rows", out.rows.len());
            }
        }
        Err(errors) => {
            eprintln!("{}", render_errors(&errors, &query));
            std::process::exit(2);
        }
    }
}

/// `figures gate --baseline=PATH [--config via --quick/--smoke]`: the CI
/// perf-regression gate as a warehouse query, judging the store's latest
/// non-partial totals row for the active config. Exits 1 on failure.
fn gate_cmd(store_path: Option<&str>, baseline: Option<&str>, cfg_label: &str) {
    let baseline_path =
        baseline.unwrap_or_else(|| exit_with("gate needs --baseline=bench/baseline.json"));
    let path = store_path.unwrap_or(DEFAULT_STORE);
    let store = open_store(path);
    let text = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| exit_with(&format!("cannot read baseline {baseline_path}: {e}")));
    let parsed = PerfBaseline::from_json(&text, cfg_label)
        .unwrap_or_else(|e| exit_with(&format!("cannot parse baseline {baseline_path}: {e}")));
    let gate = evaluate_gate_query(&store, &parsed, cfg_label)
        .unwrap_or_else(|e| exit_with(&format!("gate query failed: {e}")));
    report_gate(&gate, cfg_label);
}

/// Prints a gate verdict in the format CI greps for, exiting 1 on failure.
fn report_gate(g: &rnuca_bench::GateOutcome, cfg_label: &str) {
    println!(
        "baseline ({cfg_label}): {:+.1}% vs pre-optimization, {:.2}x gate (tolerance {:.0}%)",
        (g.speedup_vs_pre_optimization - 1.0) * 100.0,
        g.ratio_vs_gate,
        g.baseline.tolerance * 100.0,
    );
    if !g.pass {
        exit_with(&format!(
            "PERF GATE FAILED: throughput is more than {:.0}% below the baseline {:.0}",
            g.baseline.tolerance * 100.0,
            g.baseline.gate_blocks_per_sec,
        ));
    }
    println!("perf gate: PASS");
}

/// The timed throughput suite: writes `BENCH_perf.json` to `out` and, when a
/// baseline is given, evaluates the regression gate (exiting non-zero on
/// failure, which is how CI turns a perf regression into a red build). The
/// run's rows are appended to the results warehouse — persisted when
/// `--store=` names a path, in-memory otherwise — and the gate verdict is a
/// query over that store's latest totals row (see
/// [`rnuca_bench::evaluate_gate_query`]). A `--filter` substring restricts
/// the scenario list for local iteration — and skips the gate, since the
/// baseline numbers describe the full list; filtered rows are appended with
/// `partial=true` so gate queries exclude them. A filtered run also refuses
/// the default output path: its partial report would silently clobber the
/// checked-in full-configuration record, so the report is written only when
/// `--out=` names a destination explicitly.
fn perf(
    cfg: &ExperimentConfig,
    cfg_label: &str,
    engine: &ExperimentEngine,
    out: Option<&str>,
    baseline: Option<&str>,
    filter: Option<&str>,
    store_path: Option<&str>,
) {
    heading("perf: timed end-to-end throughput");
    let scenarios = selected_scenarios(filter);
    let report = run_perf_scenarios(&scenarios, cfg, engine);
    // Every run lands in the warehouse; a filtered run's rows are marked
    // partial so they can never satisfy (or poison) a gate query.
    let store = match store_path {
        Some(path) => open_store(path),
        None => Warehouse::new(),
    };
    let summary = store.append_all(&report.to_records(filter.is_some()));
    if let Some(path) = store_path {
        save_store(&store, path);
        println!(
            "warehouse: {} new rows ({} deduplicated) -> {path}",
            summary.added, summary.deduplicated
        );
    }
    if filter.is_some() && baseline.is_some() {
        println!("note: --filter active, skipping the regression gate (baseline covers the full scenario list)");
    }
    let gate = baseline.filter(|_| filter.is_none()).map(|path| {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| exit_with(&format!("cannot read baseline {path}: {e}")));
        let parsed = PerfBaseline::from_json(&text, cfg_label)
            .unwrap_or_else(|e| exit_with(&format!("cannot parse baseline {path}: {e}")));
        evaluate_gate_query(&store, &parsed, cfg_label)
            .unwrap_or_else(|e| exit_with(&format!("gate query failed: {e}")))
    });
    let json = match &gate {
        Some(g) => report.to_json_with_gate(g),
        None => report.to_json(),
    };
    // A filtered (partial) report must never land on the default path,
    // where it would overwrite the checked-in full-configuration record.
    let destination = match (out, filter) {
        (Some(path), _) => Some(path),
        (None, None) => Some("BENCH_perf.json"),
        (None, Some(_)) => None,
    };
    let written = match destination {
        Some(path) => {
            std::fs::write(path, &json)
                .unwrap_or_else(|e| exit_with(&format!("cannot write {path}: {e}")));
            path
        }
        None => {
            println!("note: --filter active and no --out= given, not writing a report file");
            "(not written)"
        }
    };
    println!(
        "{} scenarios in {} fused groups ({} trace passes eliminated), {} refs, \
         {:.0} blocks/sec (hot path), {:.2} jobs/sec, \
         {:.2}s trace generation (once per unique stream), \
         {:.2}s checkpoint warming (once per unique checkpoint) -> {written}",
        report.totals.scenarios,
        report.totals.groups,
        report.totals.passes_eliminated,
        report.totals.refs,
        report.totals.blocks_per_sec,
        report.totals.jobs_per_sec,
        report.totals.tracegen_nanos as f64 / 1e9,
        report.totals.snapshot_nanos as f64 / 1e9,
    );
    if let Some(g) = gate {
        report_gate(&g, cfg_label);
    }
}

/// Resolves `--filter` against the default perf scenario list, exiting when
/// nothing matches (a typo'd filter should fail loudly, not run zero work).
fn selected_scenarios(filter: Option<&str>) -> Vec<PerfScenario> {
    match filter {
        Some(f) => {
            let kept = filter_scenarios(default_perf_scenarios(), f);
            if kept.is_empty() {
                exit_with(&format!("--filter={f} matches no perf scenario"));
            }
            println!(
                "filter '{f}': {} of {} scenarios",
                kept.len(),
                default_perf_scenarios().len()
            );
            kept
        }
        None => default_perf_scenarios(),
    }
}

/// `perf --list`: prints the scenario labels grouped by the fused trace
/// stream each would share, without generating traces or simulating.
fn perf_list_only(cfg: &ExperimentConfig, filter: Option<&str>) {
    let scenarios = selected_scenarios(filter);
    let groups = group_indices(&scenarios, |s| s.group_key(cfg.seed));
    println!(
        "{} scenarios in {} fused groups (one trace pass per group):",
        scenarios.len(),
        groups.len()
    );
    for (key, indices) in &groups {
        println!("{} ({} scenarios)", key.label(), indices.len());
        for &i in indices {
            println!("  {}", scenarios[i].label());
        }
    }
}

fn exit_with(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(1);
}

fn heading(title: &str) {
    println!("\n==== {title} ====");
}

fn table1() {
    heading("Table 1: system parameters");
    for (label, cfg) in [
        ("16-core (server/scientific)", SystemConfig::server_16()),
        ("8-core (multi-programmed)", SystemConfig::desktop_8()),
    ] {
        println!(
            "{label}: {} cores, {} KB L2/slice {}-way {}-cycle hit, {}x{} folded torus, {}-cycle DRAM, {} memory controllers",
            cfg.num_cores,
            cfg.l2_slice.geometry.capacity_bytes / 1024,
            cfg.l2_slice.geometry.ways,
            cfg.l2_slice.hit_latency.value(),
            cfg.torus.width,
            cfg.torus.height,
            cfg.memory.access_latency.value(),
            cfg.num_mem_controllers(),
        );
    }
}

fn fig2(refs: usize) {
    heading("Figure 2: L2 reference clustering (sharers vs read-write blocks)");
    let mut table = TextTable::new(vec![
        "workload",
        "class",
        "sharers",
        "%accesses",
        "%RW blocks",
    ]);
    for spec in WorkloadSpec::evaluation_suite() {
        let c = characterize_workload(&spec, refs, 1);
        for b in &c.sharers.bubbles {
            if b.access_fraction < 0.005 {
                continue;
            }
            table.add_row(vec![
                spec.name.clone(),
                b.class.label().to_string(),
                b.sharers.to_string(),
                fmt_pct(b.access_fraction),
                fmt_pct(b.read_write_fraction),
            ]);
        }
    }
    println!("{table}");
}

fn fig3(refs: usize) {
    heading("Figure 3: L2 reference breakdown by access class");
    println!("{}", rnuca_bench::figure3_table(refs, 1));
}

fn fig4(refs: usize) {
    heading(
        "Figure 4: working-set CDFs (footprint KB capturing 50% / 90% of each class's references)",
    );
    let mut table = TextTable::new(vec![
        "workload",
        "instr KB@50%",
        "instr KB@90%",
        "private KB@50%",
        "private KB@90%",
        "shared KB@50%",
        "shared KB@90%",
    ]);
    for spec in WorkloadSpec::evaluation_suite() {
        let c = characterize_workload(&spec, refs, 1);
        table.add_row(vec![
            spec.name.clone(),
            fmt3(c.instr_cdf.kb_at_fraction(0.5)),
            fmt3(c.instr_cdf.kb_at_fraction(0.9)),
            fmt3(c.private_cdf.kb_at_fraction(0.5)),
            fmt3(c.private_cdf.kb_at_fraction(0.9)),
            fmt3(c.shared_cdf.kb_at_fraction(0.5)),
            fmt3(c.shared_cdf.kb_at_fraction(0.9)),
        ]);
    }
    println!("{table}");
}

fn fig5(refs: usize) {
    heading("Figure 5: instruction and shared-data reuse by the same core");
    let mut table = TextTable::new(vec![
        "workload", "class", "1st", "2nd", "3rd-4th", "5th-8th", "9+",
    ]);
    for spec in WorkloadSpec::evaluation_suite() {
        let c = characterize_workload(&spec, refs, 1);
        for (label, hist) in [("Instr", c.instr_reuse), ("Shared", c.shared_reuse)] {
            let f = hist.fractions();
            table.add_row(vec![
                spec.name.clone(),
                label.to_string(),
                fmt_pct(f[0]),
                fmt_pct(f[1]),
                fmt_pct(f[2]),
                fmt_pct(f[3]),
                fmt_pct(f[4]),
            ]);
        }
    }
    println!("{table}");
}

fn fig6() {
    heading("Figure 6: rotational-ID assignment and size-4 cluster example (4x4 torus)");
    let rids = rid_assignment(4, 4, 4, 0);
    for y in 0..4 {
        let row: Vec<String> = (0..4)
            .map(|x| format!("{:02b}", rids[y * 4 + x].value()))
            .collect();
        println!("  {}", row.join(" "));
    }
    let engine = rnuca::PlacementEngine::new(rnuca::PlacementConfig::from_system(
        &SystemConfig::server_16(),
    ));
    let cluster = engine.instruction_cluster(rnuca_types::ids::CoreId::new(5));
    let members: Vec<String> = cluster.members().iter().map(TileId::to_string).collect();
    println!(
        "  size-4 fixed-center cluster of tile T5: {{{}}}",
        members.join(", ")
    );
}

fn accuracy(c: &DesignComparison) {
    heading("Section 5.2: page-classification accuracy under R-NUCA");
    let mut table = TextTable::new(vec![
        "workload",
        "misclassified accesses",
        "re-classifications",
    ]);
    for w in &c.workloads {
        if let Some(r) = w.by_letter("R") {
            table.add_row(vec![
                w.workload.clone(),
                fmt_pct(r.run.misclassification_rate),
                r.run.reclassifications.to_string(),
            ]);
        }
    }
    println!("{table}");
}

fn fig7(c: &DesignComparison) {
    heading("Figure 7: total CPI breakdown, normalised to the private design");
    let mut table = TextTable::new(vec![
        "workload", "design", "busy", "L1-to-L1", "L2", "off-chip", "other", "re-class", "total",
    ]);
    for w in &c.workloads {
        let base = w.private_baseline().total_cpi();
        for letter in ["P", "A", "S", "R"] {
            if let Some(r) = w.by_letter(letter) {
                let b = r.run.cpi.breakdown.scaled(base);
                table.add_row(vec![
                    w.workload.clone(),
                    letter.to_string(),
                    fmt3(b.busy),
                    fmt3(b.l1_to_l1),
                    fmt3(b.l2),
                    fmt3(b.off_chip),
                    fmt3(b.other),
                    fmt3(b.reclassification),
                    fmt3(r.total_cpi() / base),
                ]);
            }
        }
    }
    println!("{table}");
}

fn fig8(c: &DesignComparison) {
    heading("Figure 8: CPI of L1-to-L1 and shared-data L2 loads, normalised to the private design's total CPI");
    let mut table = TextTable::new(vec![
        "workload",
        "design",
        "L1-to-L1",
        "L2 shared coherence",
        "L2 shared load",
    ]);
    for w in &c.workloads {
        let base = w.private_baseline().total_cpi();
        for letter in ["P", "A", "S", "R"] {
            if let Some(r) = w.by_letter(letter) {
                table.add_row(vec![
                    w.workload.clone(),
                    letter.to_string(),
                    fmt3(r.run.cpi.breakdown.l1_to_l1 / base),
                    fmt3(r.run.cpi.l2_shared_coherence / base),
                    fmt3(r.run.cpi.l2_shared_load / base),
                ]);
            }
        }
    }
    println!("{table}");
}

fn fig9(c: &DesignComparison) {
    heading("Figure 9: CPI of L2 accesses to private data, normalised to the private design's total CPI");
    per_class_l2_table(c, AccessClass::PrivateData);
}

fn fig10(c: &DesignComparison) {
    heading(
        "Figure 10: CPI of L2 instruction accesses, normalised to the private design's total CPI",
    );
    per_class_l2_table(c, AccessClass::Instruction);
}

fn per_class_l2_table(c: &DesignComparison, class: AccessClass) {
    let mut table = TextTable::new(vec!["workload", "P", "A", "S", "R"]);
    for w in &c.workloads {
        let base = w.private_baseline().total_cpi();
        let mut row = vec![w.workload.clone()];
        for letter in ["P", "A", "S", "R"] {
            let v = w
                .by_letter(letter)
                .map(|r| match class {
                    AccessClass::PrivateData => r.run.cpi.l2_private_data,
                    AccessClass::Instruction => r.run.cpi.l2_instructions,
                    AccessClass::SharedData => {
                        r.run.cpi.l2_shared_load + r.run.cpi.l2_shared_coherence
                    }
                })
                .unwrap_or(f64::NAN);
            row.push(fmt3(v / base));
        }
        table.add_row(row);
    }
    println!("{table}");
}

fn fig11(cfg: &ExperimentConfig, engine: &ExperimentEngine) {
    heading("Figure 11: CPI vs R-NUCA instruction-cluster size, normalised to size-1 clusters");
    let sweep = DesignComparison::run_cluster_sweep_with(cfg, &[1, 2, 4, 8, 16], engine);
    let mut table = TextTable::new(vec![
        "workload",
        "size",
        "total/size-1",
        "L2 instr CPI",
        "off-chip CPI",
    ]);
    for (name, rows) in &sweep {
        let base = rows.first().map(|(_, r)| r.total_cpi()).unwrap_or(1.0);
        for (size, run) in rows {
            table.add_row(vec![
                name.clone(),
                size.to_string(),
                fmt3(run.total_cpi() / base),
                fmt3(run.cpi.l2_instructions),
                fmt3(run.cpi.breakdown.off_chip),
            ]);
        }
    }
    println!("{table}");
}

fn fig12(c: &DesignComparison) {
    heading("Figure 12: speedup over the private design");
    let mut table = TextTable::new(vec!["workload", "bucket", "P", "A", "S", "R", "I"]);
    for w in &c.workloads {
        let mut row = vec![
            w.workload.clone(),
            if w.private_averse {
                "private-averse".into()
            } else {
                "shared-averse".into()
            },
        ];
        let baseline = w.private_baseline();
        for letter in ["P", "A", "S", "R", "I"] {
            let s = w
                .by_letter(letter)
                .map(|r| r.speedup_over(baseline))
                .unwrap_or(f64::NAN);
            row.push(format!("{:+.1}%", (s - 1.0) * 100.0));
        }
        table.add_row(row);
    }
    println!("{table}");
    println!(
        "Average speedup of R-NUCA: {:+.1}% over private, {:+.1}% over shared, {:.1}% below ideal",
        (c.mean_speedup("R", "P") - 1.0) * 100.0,
        (c.mean_speedup("R", "S") - 1.0) * 100.0,
        (1.0 - 1.0 / c.mean_speedup("I", "R")) * 100.0,
    );
}
