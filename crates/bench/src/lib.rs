//! Shared helpers for the benchmark harnesses and the `figures` binary.
//!
//! Everything heavy lives in `rnuca-sim`; this crate only provides small
//! formatting and orchestration helpers so the Criterion benches and the
//! figure-regeneration binary do not duplicate code.

#![warn(missing_docs)]

pub mod ingest;
pub mod json;
pub mod perf;

pub use ingest::{evaluate_gate_query, records_from_json, IngestKind};
pub use json::JsonValue;
pub use perf::{
    default_perf_scenarios, evaluate_gate, filter_scenarios, run_perf, run_perf_scenarios,
    run_perf_scenarios_in, GateOutcome, PerfBaseline, PerfGroup, PerfReport, PerfResult,
    PerfScenario, PerfTotals,
};

use rnuca_sim::report::{fmt3, fmt_pct};
use rnuca_sim::{DesignComparison, ExperimentConfig, ScenarioMatrix, TextTable};
use rnuca_workloads::{TraceCharacterization, TraceGenerator, WorkloadSpec};

/// Generates a trace of `n` references for a workload and characterizes it.
pub fn characterize_workload(spec: &WorkloadSpec, n: usize, seed: u64) -> TraceCharacterization {
    let mut gen = TraceGenerator::new(spec, seed);
    let trace = gen.generate(n);
    TraceCharacterization::analyze(&trace, spec.system_config().l2_slice.geometry.block_bytes)
}

/// Renders Figure 3 (L2 reference breakdown by class) as a text table.
pub fn figure3_table(n: usize, seed: u64) -> TextTable {
    let mut table = TextTable::new(vec![
        "workload",
        "instr",
        "private",
        "shared-RW",
        "shared-RO",
    ]);
    for spec in WorkloadSpec::evaluation_suite() {
        let c = characterize_workload(&spec, n, seed);
        table.add_row(vec![
            spec.name.clone(),
            fmt_pct(c.breakdown.instructions),
            fmt_pct(c.breakdown.private_data),
            fmt_pct(c.breakdown.shared_read_write),
            fmt_pct(c.breakdown.shared_read_only),
        ]);
    }
    table
}

/// Renders Figure 7 (total CPI normalised to the private design) as a text table.
pub fn figure7_table(comparison: &DesignComparison) -> TextTable {
    let mut table = TextTable::new(vec!["workload", "P", "A", "S", "R"]);
    for w in &comparison.workloads {
        let base = w.private_baseline().total_cpi();
        let mut row = vec![w.workload.clone()];
        for letter in ["P", "A", "S", "R"] {
            let cpi = w
                .by_letter(letter)
                .map(|r| r.total_cpi() / base)
                .unwrap_or(f64::NAN);
            row.push(fmt3(cpi));
        }
        table.add_row(row);
    }
    table
}

/// Runs the full evaluation once with the given configuration.
pub fn run_evaluation(cfg: &ExperimentConfig) -> DesignComparison {
    DesignComparison::run_evaluation(cfg)
}

/// The scenario matrix behind the `figures sweep` subcommand: the full
/// workload suite at 16/32/64 cores, 512 KB/1 MB/2 MB L2 slices, under the
/// shared design and R-NUCA with size-2/4/8 instruction clusters.
pub fn default_sweep_matrix(cfg: ExperimentConfig) -> ScenarioMatrix {
    let mut matrix = ScenarioMatrix::paper_evaluation(cfg);
    matrix.core_counts = vec![16, 32, 64];
    matrix.slice_capacities_kb = vec![512, 1024, 2048];
    matrix.cluster_sizes = vec![2, 4, 8];
    matrix
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn characterization_helper_produces_data() {
        let c = characterize_workload(&WorkloadSpec::em3d(), 5_000, 1);
        assert_eq!(c.accesses, 5_000);
        assert!(c.breakdown.private_data > 0.5);
    }

    #[test]
    fn figure3_table_has_all_workloads() {
        let t = figure3_table(2_000, 1);
        assert_eq!(t.len(), 8);
    }

    #[test]
    fn default_sweep_matrix_flattens() {
        let matrix = default_sweep_matrix(ExperimentConfig::smoke());
        let jobs = matrix.jobs().expect("default axes are valid");
        // 8 workloads x 3 core counts x 3 capacities x (shared + 3 clusters).
        assert_eq!(jobs.len(), 8 * 3 * 3 * 4);
    }
}
