//! A minimal JSON reader for the benchmark artifacts.
//!
//! The workspace vendors no JSON library, yet the perf subsystem must *read*
//! JSON back: the CI regression gate loads the checked-in
//! `bench/baseline.json`, and the schema tests parse the emitted
//! `BENCH_perf.json` to prove it is well-formed. This module is a small
//! recursive-descent parser covering exactly the JSON the workspace writes
//! (objects, arrays, strings with the escapes [`crate`]'s emitters produce,
//! numbers, booleans, null), plus [`json_string`], the one string escaper
//! the crate's hand-rolled emitters share. Emission otherwise stays
//! hand-rolled at the call sites so field order remains deterministic.

use std::fmt;

/// Quotes and escapes a string for embedding in an emitted JSON document
/// (quotes, backslashes, control characters — the same convention the
/// scenario sweep emitter uses).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`, which covers every value the
    /// benchmark artifacts emit).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, with its fields in document order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses a complete JSON document, rejecting trailing garbage.
    ///
    /// # Errors
    ///
    /// Returns a message naming the byte offset of the first syntax error.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Looks up a field of an object (`None` for missing fields or non-objects).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The field names of an object, in document order (empty otherwise).
    pub fn keys(&self) -> Vec<&str> {
        match self {
            JsonValue::Object(fields) => fields.iter().map(|(k, _)| k.as_str()).collect(),
            _ => Vec::new(),
        }
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => f.write_str("null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::Number(n) => write!(f, "{n}"),
            JsonValue::String(s) => write!(f, "{s:?}"),
            JsonValue::Array(items) => write!(f, "[..{} items..]", items.len()),
            JsonValue::Object(fields) => write!(f, "{{..{} fields..}}", fields.len()),
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("expected '{word}' at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("invalid \\u escape '{hex}'"))?;
                            // The emitters only escape control characters, all
                            // of which sit in the Basic Multilingual Plane.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("invalid code point {code:#x}"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (the input is a &str, so
                    // boundaries are valid by construction).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8".to_string())?;
                    let c = rest.chars().next().expect("peek saw a byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(JsonValue::parse("false").unwrap(), JsonValue::Bool(false));
        assert_eq!(
            JsonValue::parse("-3.5e2").unwrap(),
            JsonValue::Number(-350.0)
        );
        assert_eq!(
            JsonValue::parse("\"a\\\"b\\u000a\"").unwrap(),
            JsonValue::String("a\"b\n".to_string())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let doc = r#"{"a": [1, 2, {"b": "x"}], "c": {"d": null}}"#;
        let v = JsonValue::parse(doc).unwrap();
        assert_eq!(v.keys(), vec!["a", "c"]);
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a[2].get("b").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("c").unwrap().get("d"), Some(&JsonValue::Null));
    }

    #[test]
    fn accessors_return_none_on_type_mismatch() {
        let v = JsonValue::parse("{\"n\": 1}").unwrap();
        assert_eq!(v.get("n").unwrap().as_f64(), Some(1.0));
        assert_eq!(v.get("n").unwrap().as_str(), None);
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.as_f64(), None);
        assert!(JsonValue::Null.keys().is_empty());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "1 2",
            "\"open",
            "nul",
            "{\"a\":}",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn roundtrips_the_sweep_emitter_escapes() {
        // The hand-rolled emitters escape quotes, backslashes, and control
        // characters; everything else passes through verbatim.
        let doc = "{\"s\": \"x\\u000ay \\\\ \\\" z\"}";
        let v = JsonValue::parse(doc).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("x\ny \\ \" z"));
    }

    #[test]
    fn json_string_escapes_and_roundtrips_through_the_parser() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("x\ny"), "\"x\\u000ay\"");
        let original = "mixed \"quotes\" \\ and\ncontrol\tchars";
        let parsed = JsonValue::parse(&json_string(original)).unwrap();
        assert_eq!(parsed.as_str(), Some(original));
    }
}
