//! A minimal JSON reader for the benchmark artifacts.
//!
//! The workspace vendors no JSON library, yet the perf subsystem must *read*
//! JSON back: the CI regression gate loads the checked-in
//! `bench/baseline.json`, the warehouse ingester loads `BENCH_perf.json` and
//! sweep documents, and the schema tests parse the emitted artifacts to
//! prove they are well-formed. This module is a small recursive-descent
//! parser covering exactly the JSON the workspace writes (objects, arrays,
//! strings with the escapes [`crate`]'s emitters produce, numbers, booleans,
//! null), plus [`json_string`], the one string escaper the crate's
//! hand-rolled emitters share. Emission otherwise stays hand-rolled at the
//! call sites so field order remains deterministic.
//!
//! Because ingested files can be stale, hand-edited, or truncated by a
//! broken CI upload, the parser is strict and every failure is a
//! [`JsonError`] carrying the line, column, and byte offset of the problem:
//! duplicate object keys are rejected (silently keeping one of two
//! conflicting `blocks_per_sec` fields could flip a gate verdict), nesting
//! is capped so garbage like a megabyte of `[` cannot overflow the stack,
//! and numbers that overflow `f64` (`1e999`) are errors rather than
//! infinities leaking into rate math.

use std::fmt;

/// How deep objects/arrays may nest. The artifacts use at most five
/// levels; the cap exists so malformed input fails cleanly instead of
/// overflowing the parser's recursion.
pub const MAX_JSON_DEPTH: usize = 128;

/// Quotes and escapes a string for embedding in an emitted JSON document
/// (quotes, backslashes, control characters — the same convention the
/// scenario sweep emitter uses).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A JSON syntax error, positioned in the source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the problem.
    pub offset: usize,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column (in characters) within that line.
    pub column: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} at line {}, column {} (byte {})",
            self.message, self.line, self.column, self.offset
        )
    }
}

impl std::error::Error for JsonError {}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`, which covers every value the
    /// benchmark artifacts emit).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, with its fields in document order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses a complete JSON document, rejecting trailing garbage,
    /// duplicate object keys, nesting beyond [`MAX_JSON_DEPTH`], and
    /// numbers that overflow `f64`.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] locating the first problem by line, column,
    /// and byte offset.
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err_at(p.pos, "trailing data after the document"));
        }
        Ok(value)
    }

    /// Looks up a field of an object (`None` for missing fields or non-objects).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The field names of an object, in document order (empty otherwise).
    pub fn keys(&self) -> Vec<&str> {
        match self {
            JsonValue::Object(fields) => fields.iter().map(|(k, _)| k.as_str()).collect(),
            _ => Vec::new(),
        }
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => f.write_str("null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::Number(n) => write!(f, "{n}"),
            JsonValue::String(s) => write!(f, "{s:?}"),
            JsonValue::Array(items) => write!(f, "[..{} items..]", items.len()),
            JsonValue::Object(fields) => write!(f, "{{..{} fields..}}", fields.len()),
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    /// An error at byte `offset`, with the line/column computed from the
    /// source (errors are rare, so the scan only happens on failure).
    fn err_at(&self, offset: usize, message: impl Into<String>) -> JsonError {
        let offset = offset.min(self.bytes.len());
        let before = &self.bytes[..offset];
        let line = 1 + before.iter().filter(|&&b| b == b'\n').count();
        let line_start = before
            .iter()
            .rposition(|&b| b == b'\n')
            .map_or(0, |p| p + 1);
        // Columns count characters; continuation bytes don't advance.
        let column = 1 + before[line_start..]
            .iter()
            .filter(|&&b| (b & 0xC0) != 0x80)
            .count();
        JsonError {
            offset,
            line,
            column,
            message: message.into(),
        }
    }

    fn err(&self, message: impl Into<String>) -> JsonError {
        self.err_at(self.pos, message)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else if self.pos == self.bytes.len() {
            Err(self.err(format!("expected '{}', found end of input", b as char)))
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        if depth > MAX_JSON_DEPTH {
            return Err(self.err(format!(
                "structure nests deeper than {MAX_JSON_DEPTH} levels"
            )));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            None => Err(self.err("expected a value, found end of input")),
            Some(c) => Err(self.err(format!("expected a value, found '{}'", c as char))),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        let n = text
            .parse::<f64>()
            .map_err(|_| self.err_at(start, format!("invalid number '{text}'")))?;
        if !n.is_finite() {
            // `1e999` parses to infinity; letting it through would poison
            // every downstream rate computation, so it is a syntax error.
            return Err(self.err_at(start, format!("number '{text}' overflows f64")));
        }
        Ok(JsonValue::Number(n))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        let start = self.pos;
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err_at(start, "unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err(format!("invalid \\u escape '{hex}'")))?;
                            // The emitters only escape control characters, all
                            // of which sit in the Basic Multilingual Plane.
                            out.push(char::from_u32(code).ok_or_else(|| {
                                self.err(format!("invalid code point {code:#x}"))
                            })?);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (the input is a &str, so
                    // boundaries are valid by construction).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("peek saw a byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                None => return Err(self.err("expected ',' or ']', found end of input")),
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut fields: Vec<(String, JsonValue)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key_offset = self.pos;
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                // Keeping either copy would silently drop data (or worse,
                // let a second `blocks_per_sec` shadow the first), so a
                // duplicate key is an error at the repeated key.
                return Err(self.err_at(key_offset, format!("duplicate object key \"{key}\"")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                None => return Err(self.err("expected ',' or '}', found end of input")),
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(JsonValue::parse("false").unwrap(), JsonValue::Bool(false));
        assert_eq!(
            JsonValue::parse("-3.5e2").unwrap(),
            JsonValue::Number(-350.0)
        );
        assert_eq!(
            JsonValue::parse("\"a\\\"b\\u000a\"").unwrap(),
            JsonValue::String("a\"b\n".to_string())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let doc = r#"{"a": [1, 2, {"b": "x"}], "c": {"d": null}}"#;
        let v = JsonValue::parse(doc).unwrap();
        assert_eq!(v.keys(), vec!["a", "c"]);
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a[2].get("b").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("c").unwrap().get("d"), Some(&JsonValue::Null));
    }

    #[test]
    fn accessors_return_none_on_type_mismatch() {
        let v = JsonValue::parse("{\"n\": 1}").unwrap();
        assert_eq!(v.get("n").unwrap().as_f64(), Some(1.0));
        assert_eq!(v.get("n").unwrap().as_str(), None);
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.as_f64(), None);
        assert!(JsonValue::Null.keys().is_empty());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "1 2",
            "\"open",
            "nul",
            "{\"a\":}",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn truncated_documents_fail_at_every_cut() {
        // A realistic artifact fragment cut anywhere before the end must
        // error (never panic, never "succeed" on half a document).
        let doc = r#"{"schema": 5, "rows": [{"w": "apache", "r": 0.5}], "ok": true}"#;
        assert!(JsonValue::parse(doc).is_ok());
        for cut in 0..doc.len() {
            let prefix = &doc[..cut];
            assert!(
                JsonValue::parse(prefix).is_err(),
                "truncated doc {prefix:?} parsed successfully"
            );
        }
    }

    #[test]
    fn duplicate_keys_are_rejected_with_position() {
        let doc = "{\"a\": 1,\n \"a\": 2}";
        let err = JsonValue::parse(doc).expect_err("duplicate key");
        assert_eq!(err.message, "duplicate object key \"a\"");
        assert_eq!((err.line, err.column), (2, 2), "{err}");
        // Same key at different nesting levels is fine.
        assert!(JsonValue::parse("{\"a\": {\"a\": 1}}").is_ok());
        // Duplicates deeper in the tree are still caught.
        assert!(JsonValue::parse("{\"x\": [{\"b\": 1, \"b\": 2}]}").is_err());
    }

    #[test]
    fn pathological_nesting_is_capped_not_a_stack_overflow() {
        let deep_ok = format!(
            "{}1{}",
            "[".repeat(MAX_JSON_DEPTH),
            "]".repeat(MAX_JSON_DEPTH)
        );
        assert!(JsonValue::parse(&deep_ok).is_ok());
        let too_deep = format!(
            "{}1{}",
            "[".repeat(MAX_JSON_DEPTH + 1),
            "]".repeat(MAX_JSON_DEPTH + 1)
        );
        let err = JsonValue::parse(&too_deep).expect_err("over the cap");
        assert!(err.message.contains("nests deeper"), "{err}");
        // Way past the cap (would smash the stack without the check).
        let absurd = "[".repeat(1_000_000);
        assert!(JsonValue::parse(&absurd).is_err());
    }

    #[test]
    fn non_finite_numbers_are_rejected() {
        for bad in ["1e999", "-1e999", "[1, 2, 1e999]"] {
            let err = JsonValue::parse(bad).expect_err("overflow must not parse");
            assert!(err.message.contains("overflows f64"), "{bad}: {err}");
        }
        // Values near the edge still parse.
        assert!(JsonValue::parse("1.7e308").is_ok());
    }

    #[test]
    fn errors_carry_line_and_column() {
        let doc = "{\n  \"a\": 1,\n  \"b\": nope\n}";
        let err = JsonValue::parse(doc).expect_err("bad literal");
        assert_eq!((err.line, err.column), (3, 8), "{err}");
        assert_eq!(err.offset, 19);
        assert!(err.to_string().contains("line 3, column 8"));
    }

    #[test]
    fn roundtrips_the_sweep_emitter_escapes() {
        // The hand-rolled emitters escape quotes, backslashes, and control
        // characters; everything else passes through verbatim.
        let doc = "{\"s\": \"x\\u000ay \\\\ \\\" z\"}";
        let v = JsonValue::parse(doc).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("x\ny \\ \" z"));
    }

    #[test]
    fn json_string_escapes_and_roundtrips_through_the_parser() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("x\ny"), "\"x\\u000ay\"");
        let original = "mixed \"quotes\" \\ and\ncontrol\tchars";
        let parsed = JsonValue::parse(&json_string(original)).unwrap();
        assert_eq!(parsed.as_str(), Some(original));
    }
}
