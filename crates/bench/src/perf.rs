//! The throughput benchmark subsystem behind `figures perf` and the CI
//! perf-regression gate.
//!
//! The ROADMAP's north star is a system that runs "as fast as the hardware
//! allows" — which is unfalsifiable without a recorded performance
//! trajectory. This module makes throughput a first-class, controlled
//! artifact rather than an ad-hoc script: [`run_perf`] executes timed
//! end-to-end simulations (the five LLC designs × representative workloads ×
//! 16/32/64 cores) on the deterministic [`ExperimentEngine`], and
//! [`PerfReport::to_json`] emits the `BENCH_perf.json` document the CI gate
//! and the repo's performance history consume.
//!
//! Two throughput figures matter:
//!
//! * **blocks/sec** — simulated L2 block references covered per second of
//!   *loop time*. Since schema v5 execution is *fused* (see
//!   [`rnuca_sim::fused`]): scenarios sharing a reference stream form one
//!   group that forks every member's warmed checkpoint from a shared
//!   [`SnapshotArena`] and then steps all members per shared 4096-reference
//!   batch in a single pass over the stream — the 45-scenario default runs
//!   9 passes instead of 45 (`passes_eliminated` in the totals). A
//!   scenario's `refs` still counts warm-up plus measured references — the
//!   simulation work the scenario *covers* — so the aggregate counts
//!   references-consumed × designs-stepped, and blocks/sec measures how
//!   fast the system delivers warmed per-design results, amortization
//!   included. Loop time is summed across groups (measured passes) and
//!   scenarios (forks), so the aggregate is largely independent of the
//!   worker-pool size.
//! * **jobs/sec** — scenarios completed per second of wall-clock time for
//!   the whole run. This one *does* scale with workers, construction, and
//!   generation cost; it is the end-to-end figure.
//!
//! Everything except the timing fields is a pure function of the scenario
//! list and the [`ExperimentConfig`]: [`PerfReport::to_canonical_json`]
//! (timing zeroed) is byte-identical for every `--workers` value, which is
//! the schema-stability property the tests pin down.

use crate::json::{json_string, JsonValue};
use rnuca_sim::{
    group_indices, AsrPolicy, ExperimentConfig, ExperimentEngine, FusedDriver, FusedGroupKey,
    LlcDesign, MeasuredRun, SnapshotArena, SnapshotKey,
};
use rnuca_types::config::ConfigPoint;
use rnuca_workloads::{TraceArena, TraceKey, WorkloadSpec};
use std::collections::HashSet;
use std::time::Instant;

/// One timed simulation: a workload pinned to a core count, under one design.
#[derive(Debug, Clone)]
pub struct PerfScenario {
    /// The workload, already pinned to the scenario's core count.
    pub workload: WorkloadSpec,
    /// The design to simulate.
    pub design: LlcDesign,
    /// The resolved core count (recorded for labelling).
    pub cores: usize,
}

impl PerfScenario {
    /// The scenario's rendered label: `workload/letter/design/Ncores` — the
    /// string `figures perf --filter=<substring>` matches against.
    pub fn label(&self) -> String {
        format!(
            "{}/{}/{}/{}c",
            self.workload.name,
            self.design.letter(),
            self.design,
            self.cores
        )
    }

    /// The fused group this scenario joins under `seed`: scenarios sharing
    /// a reference stream run as one pass. Derived from the workload spec —
    /// never from the display label — so label casing cannot affect
    /// grouping.
    pub fn group_key(&self, seed: u64) -> FusedGroupKey {
        FusedGroupKey::of(&self.workload, seed)
    }
}

/// Keeps the scenarios whose [`PerfScenario::label`] contains `filter`
/// (case-insensitive) — the engine behind `figures perf --filter=`, for
/// fast local perf iteration on a scenario subset. The comparison is
/// ASCII-case-insensitive and allocation-free: labels are matched in place
/// instead of lowercasing every label (and the needle) per call.
pub fn filter_scenarios(scenarios: Vec<PerfScenario>, filter: &str) -> Vec<PerfScenario> {
    scenarios
        .into_iter()
        .filter(|s| contains_ignore_ascii_case(s.label().as_bytes(), filter.as_bytes()))
        .collect()
}

/// `haystack.contains(needle)` under ASCII case folding, without allocating
/// lowercased copies. An empty needle matches everything, mirroring
/// `str::contains`.
fn contains_ignore_ascii_case(haystack: &[u8], needle: &[u8]) -> bool {
    if needle.is_empty() {
        return true;
    }
    if needle.len() > haystack.len() {
        return false;
    }
    haystack
        .windows(needle.len())
        .any(|window| window.eq_ignore_ascii_case(needle))
}

/// The timing and deterministic results of one scenario.
///
/// Since schema v5 a scenario's measured window runs inside its fused
/// group's shared pass, so per-scenario timing is the fork phase alone; the
/// measured-loop timing lives on the group ([`PerfGroup`]), which a
/// scenario references by `group` label.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfResult {
    /// Workload name.
    pub workload: String,
    /// Design letter ("P", "A", "S", "R", "I").
    pub letter: &'static str,
    /// Human-readable design name.
    pub design: String,
    /// Core count the scenario ran with.
    pub cores: usize,
    /// Label of the fused group whose shared pass measured this scenario.
    pub group: String,
    /// Block references the scenario covers (warm-up + measured).
    pub refs: u64,
    /// Total CPI of the measured window — a deterministic digest of the
    /// simulation outcome, used to detect result drift across worker counts.
    pub total_cpi: f64,
    /// Off-chip rate of the measured window (deterministic).
    pub off_chip_rate: f64,
    /// Wall-clock nanoseconds spent forking the warmed checkpoint: decoding
    /// the snapshot into this scenario's fresh simulator instance.
    pub fork_nanos: u64,
}

/// The timing of one fused group: the scenarios sharing one reference
/// stream, measured in a single shared pass.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfGroup {
    /// Group label (workload @ cores # seed), shared with
    /// [`PerfResult::group`].
    pub label: String,
    /// Number of member scenarios stepped by the group's pass.
    pub scenarios: usize,
    /// Block references the group covers: references-consumed ×
    /// designs-stepped (each member counts warm-up + measured).
    pub refs: u64,
    /// Summed checkpoint-fork time across the group's members.
    pub fork_nanos: u64,
    /// Wall-clock nanoseconds of the group's shared measured pass: seating
    /// the shared replay cursor past the warm-up prefix, then stepping
    /// every member per batch.
    pub measured_nanos: u64,
    /// Group throughput: `refs / (fork_nanos + measured_nanos)`.
    pub blocks_per_sec: f64,
}

/// Aggregates over all scenarios of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfTotals {
    /// Number of scenarios executed.
    pub scenarios: usize,
    /// Number of fused groups — measured passes over unique streams.
    pub groups: usize,
    /// Stream passes fusion removed: `scenarios - groups`. Independent
    /// execution walks each stream once per scenario; fused execution walks
    /// it once per group.
    pub passes_eliminated: usize,
    /// Total block references covered (all scenarios, warm-up + measured —
    /// references-consumed × designs-stepped).
    pub refs: u64,
    /// Wall-clock nanoseconds spent materializing the unique reference
    /// streams into the trace arena, before any scenario loop ran. Schema
    /// v3 reports this separately from simulation time: generation happens
    /// once per unique `(workload, cores, seed)` stream, not once per
    /// scenario, and is excluded from `loop_nanos`.
    pub tracegen_nanos: u64,
    /// Wall-clock nanoseconds spent warming the unique checkpoints into the
    /// snapshot arena, before any scenario loop ran. Schema v4 reports this
    /// separately from simulation time for the same reason as
    /// `tracegen_nanos`: warm-up happens once per unique
    /// `(workload, warm-up class, seed, warm-up length)` checkpoint, not
    /// once per scenario, and is excluded from `loop_nanos`.
    pub snapshot_nanos: u64,
    /// Summed checkpoint-fork time across scenarios, in nanoseconds.
    pub fork_nanos: u64,
    /// Summed shared-pass time across groups, in nanoseconds.
    pub measured_nanos: u64,
    /// Total loop time: `fork_nanos + measured_nanos`.
    pub loop_nanos: u64,
    /// Wall-clock nanoseconds for the whole run (construction and trace
    /// generation included).
    pub elapsed_nanos: u64,
    /// Aggregate hot-path throughput: `refs / loop_nanos`.
    pub blocks_per_sec: f64,
    /// End-to-end scenario throughput: `scenarios / elapsed_nanos`.
    pub jobs_per_sec: f64,
}

/// A complete perf run: configuration, per-scenario results, per-group
/// timing, aggregates.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfReport {
    /// Run lengths and seed shared by every scenario.
    pub cfg: ExperimentConfig,
    /// One result per scenario, in scenario-list order (deterministic).
    pub results: Vec<PerfResult>,
    /// One entry per fused group, in first-seen scenario order.
    pub groups: Vec<PerfGroup>,
    /// Aggregates over the whole run.
    pub totals: PerfTotals,
}

/// The version stamped into `BENCH_perf.json`; bump when the schema changes.
/// Version 2 added the per-phase counters (`warmup_nanos`/`measured_nanos`
/// per scenario and in the totals). Version 3 moved trace generation out of
/// the timed loops and into the totals' own `tracegen_nanos` field: streams
/// are materialized once per unique `(workload, cores, seed)` key in a
/// shared trace arena and replayed by every scenario, so `loop_nanos` (and
/// therefore `blocks_per_sec`) now measures simulation alone while the
/// one-time generation cost stays attributable. Version 4 did the same to
/// warm-up: scenarios fork warmed checkpoints out of a shared
/// [`SnapshotArena`] instead of re-driving the warm-up prefix, the
/// one-time warming cost moved into the totals' `snapshot_nanos`, and the
/// per-scenario `warmup_nanos` became `fork_nanos` (checkpoint restore +
/// replay-cursor seek). Version 5 fused execution: scenarios sharing a
/// stream are measured in one shared pass, so scenario rows dropped
/// `measured_nanos`/`loop_nanos`/`blocks_per_sec` in favour of a `group`
/// label, a top-level `groups` array carries the per-pass timing, and the
/// totals gained `groups` and `passes_eliminated`.
pub const PERF_SCHEMA_VERSION: u64 = 5;

/// The representative workloads the perf suite times: a sharing-heavy server
/// workload (OLTP DB2), a nearest-neighbour scientific code (em3d), and a
/// streaming scan with capacity pressure (DSS Qry6). Together they exercise
/// every step path: L1-to-L1 forwarding, re-classification, and off-chip.
pub fn perf_workloads() -> Vec<WorkloadSpec> {
    vec![
        WorkloadSpec::oltp_db2(),
        WorkloadSpec::em3d(),
        WorkloadSpec::dss_qry6(),
    ]
}

/// The five designs of the paper's evaluation, in P/A/S/R/I order.
pub fn perf_designs() -> Vec<LlcDesign> {
    vec![
        LlcDesign::Private,
        LlcDesign::Asr {
            policy: AsrPolicy::Adaptive,
        },
        LlcDesign::Shared,
        LlcDesign::rnuca_default(),
        LlcDesign::Ideal,
    ]
}

/// Core counts swept by the perf suite.
pub const PERF_CORE_COUNTS: [usize; 3] = [16, 32, 64];

/// The default scenario list: every perf workload × 16/32/64 cores × the
/// five designs — 45 scenarios, in a deterministic order.
///
/// # Panics
///
/// Panics if a preset workload rejects one of the standard core counts,
/// which would be a bug in the presets.
pub fn default_perf_scenarios() -> Vec<PerfScenario> {
    let mut scenarios = Vec::new();
    for spec in perf_workloads() {
        for &cores in &PERF_CORE_COUNTS {
            let point = ConfigPoint {
                num_cores: Some(cores),
                ..ConfigPoint::default()
            };
            let workload = spec
                .at_config_point(&point)
                .expect("standard core counts are valid for every preset");
            for design in perf_designs() {
                scenarios.push(PerfScenario {
                    workload: workload.clone(),
                    design,
                    cores,
                });
            }
        }
    }
    scenarios
}

/// Runs the default scenario list. See [`run_perf_scenarios`].
pub fn run_perf(cfg: &ExperimentConfig, engine: &ExperimentEngine) -> PerfReport {
    run_perf_scenarios(&default_perf_scenarios(), cfg, engine)
}

/// Runs `scenarios` on `engine` with fresh arenas. See
/// [`run_perf_scenarios_in`].
pub fn run_perf_scenarios(
    scenarios: &[PerfScenario],
    cfg: &ExperimentConfig,
    engine: &ExperimentEngine,
) -> PerfReport {
    run_perf_scenarios_in(
        scenarios,
        cfg,
        engine,
        &TraceArena::new(),
        &SnapshotArena::new(),
    )
}

/// Runs `scenarios` on `engine`, timing each fused group's shared pass and
/// each scenario's checkpoint fork. The arenas are explicit so callers can
/// share streams and checkpoints across runs and inspect deduplication.
///
/// Before any group runs, two shared pools are filled in parallel: the
/// unique reference streams behind the list (one per `(workload, cores,
/// seed)` — the 45-scenario default needs only 9) are materialized into the
/// [`TraceArena`] (reported as `tracegen_nanos`), then the unique warmed
/// checkpoints (one per `(workload, cores, warm-up class, seed)` — the
/// default needs 45 because no two of the five designs share a warm-up
/// class, but an ASR sweep would collapse onto one) are warmed into the
/// [`SnapshotArena`] (reported as `snapshot_nanos`). The scenarios then
/// execute as fused groups — one per unique stream: every member forks its
/// checkpoint (timed per scenario) and the group steps all members per
/// shared batch in a single measured pass (timed per group), so each unique
/// stream is walked once instead of once per scenario.
///
/// The deterministic fields of the report (scenario identity, grouping,
/// reference counts, CPI digests) are identical for every worker count;
/// only the timing fields vary run to run.
pub fn run_perf_scenarios_in(
    scenarios: &[PerfScenario],
    cfg: &ExperimentConfig,
    engine: &ExperimentEngine,
    arena: &TraceArena,
    snapshots: &SnapshotArena,
) -> PerfReport {
    let start = Instant::now();
    let mut seen = HashSet::new();
    let unique: Vec<&PerfScenario> = scenarios
        .iter()
        .filter(|s| seen.insert(TraceKey::new(&s.workload, cfg.seed)))
        .collect();
    let t = Instant::now();
    engine.run(&unique, |_, s| {
        arena.populate(&s.workload, cfg.seed, cfg.total_refs())
    });
    let tracegen_nanos = saturating_nanos(t.elapsed().as_nanos());
    let mut seen = HashSet::new();
    let warm: Vec<&PerfScenario> = scenarios
        .iter()
        .filter(|s| {
            seen.insert(SnapshotKey::new(
                s.design,
                &s.workload,
                cfg.seed,
                cfg.warmup_refs,
            ))
        })
        .collect();
    let t = Instant::now();
    engine.run(&warm, |_, s| {
        snapshots.populate(
            arena,
            s.design,
            &s.workload,
            cfg.seed,
            cfg.warmup_refs,
            cfg.total_refs(),
        )
    });
    let snapshot_nanos = saturating_nanos(t.elapsed().as_nanos());
    let grouped = group_indices(scenarios, |s| s.group_key(cfg.seed));
    let group_outcomes = engine.run(&grouped, |_, (_, indices)| {
        time_group(indices, scenarios, cfg, arena, snapshots)
    });
    let elapsed_nanos = saturating_nanos(start.elapsed().as_nanos());

    let mut results: Vec<Option<PerfResult>> = scenarios.iter().map(|_| None).collect();
    let mut groups = Vec::with_capacity(grouped.len());
    for ((key, indices), (members, group_measured)) in grouped.iter().zip(group_outcomes) {
        let label = key.label();
        let mut group_refs = 0u64;
        let mut group_fork = 0u64;
        for (&i, (run, fork_nanos)) in indices.iter().zip(members) {
            let s = &scenarios[i];
            let refs = cfg.total_refs() as u64;
            group_refs += refs;
            group_fork += fork_nanos;
            results[i] = Some(PerfResult {
                workload: s.workload.name.clone(),
                letter: s.design.letter(),
                design: s.design.to_string(),
                cores: s.cores,
                group: label.clone(),
                refs,
                total_cpi: run.total_cpi(),
                off_chip_rate: run.off_chip_rate,
                fork_nanos,
            });
        }
        groups.push(PerfGroup {
            label,
            scenarios: indices.len(),
            refs: group_refs,
            fork_nanos: group_fork,
            measured_nanos: group_measured,
            blocks_per_sec: per_sec(group_refs, group_fork + group_measured),
        });
    }
    let results: Vec<PerfResult> = results
        .into_iter()
        .map(|r| r.expect("every scenario belongs to exactly one fused group"))
        .collect();
    let refs: u64 = results.iter().map(|r| r.refs).sum();
    let fork_nanos: u64 = results.iter().map(|r| r.fork_nanos).sum();
    let measured_nanos: u64 = groups.iter().map(|g| g.measured_nanos).sum();
    let loop_nanos = fork_nanos + measured_nanos;
    let totals = PerfTotals {
        scenarios: results.len(),
        groups: groups.len(),
        passes_eliminated: results.len() - groups.len(),
        refs,
        tracegen_nanos,
        snapshot_nanos,
        fork_nanos,
        measured_nanos,
        loop_nanos,
        elapsed_nanos,
        blocks_per_sec: per_sec(refs, loop_nanos),
        jobs_per_sec: per_sec(results.len() as u64, elapsed_nanos),
    };
    PerfReport {
        cfg: *cfg,
        results,
        groups,
        totals,
    }
}

/// Forks and measures one fused group over its pre-warmed checkpoints and
/// pre-materialized arena stream (construction, trace generation and
/// checkpoint warming excluded — the loop is the hot path the regression
/// gate guards). Returns each member's measured run paired with its fork
/// time, in `indices` order, plus the group's shared-pass time. The fork
/// phase is dominated by snapshot decoding, the measured phase by the
/// replay-cursor seek and steady-state stepping of every member; recording
/// both makes phase-specific regressions visible instead of averaged away.
fn time_group(
    indices: &[usize],
    scenarios: &[PerfScenario],
    cfg: &ExperimentConfig,
    arena: &TraceArena,
    snapshots: &SnapshotArena,
) -> (Vec<(MeasuredRun, u64)>, u64) {
    let mut sims = Vec::with_capacity(indices.len());
    let mut fork_times = Vec::with_capacity(indices.len());
    for &i in indices {
        let s = &scenarios[i];
        let snap = snapshots.snapshot(
            arena,
            s.design,
            &s.workload,
            cfg.seed,
            cfg.warmup_refs,
            cfg.total_refs(),
        );
        let t = Instant::now();
        sims.push(snap.fork(s.design, &s.workload));
        fork_times.push(saturating_nanos(t.elapsed().as_nanos()));
    }
    let first = &scenarios[indices[0]];
    let t = Instant::now();
    let mut slice = arena.slice(&first.workload, cfg.seed, cfg.total_refs());
    slice.skip(cfg.warmup_refs);
    let runs = FusedDriver::new().run_measured(&mut sims, &mut slice, cfg.measured_refs);
    let measured_nanos = saturating_nanos(t.elapsed().as_nanos());
    (runs.into_iter().zip(fork_times).collect(), measured_nanos)
}

fn per_sec(count: u64, nanos: u64) -> f64 {
    if nanos == 0 {
        return 0.0;
    }
    count as f64 * 1e9 / nanos as f64
}

fn saturating_nanos(n: u128) -> u64 {
    n.min(u64::MAX as u128) as u64
}

impl PerfReport {
    /// The full document, timing included, without a baseline block.
    pub fn to_json(&self) -> String {
        self.render(true, None)
    }

    /// The full document with the regression-gate verdict attached.
    pub fn to_json_with_gate(&self, gate: &GateOutcome) -> String {
        self.render(true, Some(gate))
    }

    /// The canonical document: every timing field zeroed, no baseline block.
    ///
    /// This is a pure function of the scenario list and the configuration —
    /// byte-identical for every `--workers` value and across runs.
    pub fn to_canonical_json(&self) -> String {
        self.render(false, None)
    }

    fn render(&self, timing: bool, gate: Option<&GateOutcome>) -> String {
        let t = |v: f64| if timing { v } else { 0.0 };
        let tn = |v: u64| if timing { v } else { 0 };
        let mut out = String::with_capacity(512 + self.results.len() * 256);
        out.push_str("{\n");
        out.push_str(&format!("  \"schema_version\": {PERF_SCHEMA_VERSION},\n"));
        out.push_str(&format!(
            "  \"config\": {{\"warmup_refs\": {}, \"measured_refs\": {}, \"seed\": {}}},\n",
            self.cfg.warmup_refs, self.cfg.measured_refs, self.cfg.seed
        ));
        out.push_str("  \"scenarios\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"workload\": {}, \"design\": {}, \"letter\": \"{}\", \
                 \"cores\": {}, \"group\": {}, \"refs\": {}, \"total_cpi\": {}, \
                 \"off_chip_rate\": {}, \"fork_nanos\": {}}}",
                json_string(&r.workload),
                json_string(&r.design),
                r.letter,
                r.cores,
                json_string(&r.group),
                r.refs,
                r.total_cpi,
                r.off_chip_rate,
                tn(r.fork_nanos),
            ));
            out.push_str(if i + 1 < self.results.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n");
        out.push_str("  \"groups\": [\n");
        for (i, g) in self.groups.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"label\": {}, \"scenarios\": {}, \"refs\": {}, \
                 \"fork_nanos\": {}, \"measured_nanos\": {}, \"blocks_per_sec\": {}}}",
                json_string(&g.label),
                g.scenarios,
                g.refs,
                tn(g.fork_nanos),
                tn(g.measured_nanos),
                t(g.blocks_per_sec),
            ));
            out.push_str(if i + 1 < self.groups.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"totals\": {{\"scenarios\": {}, \"groups\": {}, \
             \"passes_eliminated\": {}, \"refs\": {}, \
             \"tracegen_nanos\": {}, \"snapshot_nanos\": {}, \
             \"fork_nanos\": {}, \"measured_nanos\": {}, \"loop_nanos\": {}, \
             \"elapsed_nanos\": {}, \"blocks_per_sec\": {}, \"jobs_per_sec\": {}}}",
            self.totals.scenarios,
            self.totals.groups,
            self.totals.passes_eliminated,
            self.totals.refs,
            tn(self.totals.tracegen_nanos),
            tn(self.totals.snapshot_nanos),
            tn(self.totals.fork_nanos),
            tn(self.totals.measured_nanos),
            tn(self.totals.loop_nanos),
            tn(self.totals.elapsed_nanos),
            t(self.totals.blocks_per_sec),
            t(self.totals.jobs_per_sec),
        ));
        if let Some(g) = gate {
            out.push_str(",\n");
            out.push_str(&format!(
                "  \"baseline\": {{\"pre_optimization_blocks_per_sec\": {}, \
                 \"gate_blocks_per_sec\": {}, \"tolerance\": {}, \
                 \"speedup_vs_pre_optimization\": {}, \"ratio_vs_gate\": {}, \
                 \"gate_pass\": {}}}",
                g.baseline.pre_optimization_blocks_per_sec,
                g.baseline.gate_blocks_per_sec,
                g.baseline.tolerance,
                g.speedup_vs_pre_optimization,
                g.ratio_vs_gate,
                g.pass,
            ));
        }
        out.push_str("\n}\n");
        out
    }
}

// ----- the regression gate ---------------------------------------------------

/// The checked-in reference numbers the CI gate compares against
/// (`bench/baseline.json`).
///
/// The baseline document keeps one section per run configuration (`smoke`,
/// `quick`, `full`) because their throughput profiles differ by multiples:
/// smoke runs are construction-dominated while the longer configurations
/// expose the steady-state hot path. Each section carries two reference
/// points: `pre_optimization` is the hot-path throughput measured *before*
/// the open-addressed-map optimization landed (the "before" of the
/// before/after record), and `gate` is the post-optimization number new
/// runs must not regress below. Both are machine-dependent; see the README
/// for how to re-record them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfBaseline {
    /// Aggregate blocks/sec before the hot-path optimization.
    pub pre_optimization_blocks_per_sec: f64,
    /// Aggregate blocks/sec the gate compares against.
    pub gate_blocks_per_sec: f64,
    /// Allowed fractional drop below the gate number (0.25 = 25%).
    pub tolerance: f64,
}

impl PerfBaseline {
    /// Parses the section for `config` ("smoke", "quick", or "full") out of
    /// a `bench/baseline.json` document.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or malformed field.
    pub fn from_json(text: &str, config: &str) -> Result<Self, String> {
        let doc = JsonValue::parse(text).map_err(|e| e.to_string())?;
        let section = doc
            .get("configs")
            .and_then(|c| c.get(config))
            .ok_or_else(|| format!("baseline has no section for config '{config}'"))?;
        let field = |path: &[&str]| -> Result<f64, String> {
            let mut v = section;
            for key in path {
                v = v.get(key).ok_or_else(|| {
                    format!("baseline section '{config}' is missing {}", path.join("."))
                })?;
            }
            v.as_f64().ok_or_else(|| {
                format!("baseline field {config}.{} is not a number", path.join("."))
            })
        };
        Ok(PerfBaseline {
            pre_optimization_blocks_per_sec: field(&["pre_optimization", "blocks_per_sec"])?,
            gate_blocks_per_sec: field(&["gate", "blocks_per_sec"])?,
            tolerance: field(&["gate", "tolerance"])?,
        })
    }
}

/// The verdict of comparing a run against the checked-in baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateOutcome {
    /// The baseline compared against.
    pub baseline: PerfBaseline,
    /// `run blocks/sec ÷ pre-optimization blocks/sec` — the before/after
    /// speedup this run demonstrates.
    pub speedup_vs_pre_optimization: f64,
    /// `run blocks/sec ÷ gate blocks/sec`.
    pub ratio_vs_gate: f64,
    /// `true` when the run is within tolerance of the gate number.
    pub pass: bool,
}

/// Compares a run's aggregate blocks/sec against the baseline: the gate
/// fails when throughput drops more than `tolerance` below the gate number.
pub fn evaluate_gate(report: &PerfReport, baseline: &PerfBaseline) -> GateOutcome {
    let got = report.totals.blocks_per_sec;
    let ratio = |b: f64| if b > 0.0 { got / b } else { 0.0 };
    GateOutcome {
        baseline: *baseline,
        speedup_vs_pre_optimization: ratio(baseline.pre_optimization_blocks_per_sec),
        ratio_vs_gate: ratio(baseline.gate_blocks_per_sec),
        pass: got >= baseline.gate_blocks_per_sec * (1.0 - baseline.tolerance),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ExperimentConfig {
        let mut cfg = ExperimentConfig::smoke();
        cfg.warmup_refs = 600;
        cfg.measured_refs = 400;
        cfg
    }

    fn tiny_scenarios() -> Vec<PerfScenario> {
        let spec = WorkloadSpec::oltp_db2();
        vec![
            PerfScenario {
                workload: spec.clone(),
                design: LlcDesign::Shared,
                cores: 16,
            },
            PerfScenario {
                workload: spec,
                design: LlcDesign::rnuca_default(),
                cores: 16,
            },
        ]
    }

    #[test]
    fn default_scenarios_cover_designs_workloads_and_core_counts() {
        let scenarios = default_perf_scenarios();
        assert_eq!(scenarios.len(), 3 * 3 * 5);
        assert!(scenarios.iter().any(|s| s.cores == 64));
        let letters: std::collections::HashSet<&str> =
            scenarios.iter().map(|s| s.design.letter()).collect();
        assert_eq!(letters.len(), 5, "all five designs present");
        // Workloads really are pinned to the scenario core count.
        for s in &scenarios {
            assert_eq!(s.workload.num_cores(), s.cores);
        }
    }

    #[test]
    fn report_totals_are_consistent_with_scenarios() {
        let cfg = tiny_cfg();
        let report =
            run_perf_scenarios(&tiny_scenarios(), &cfg, &ExperimentEngine::with_workers(1));
        assert_eq!(report.totals.scenarios, 2);
        assert_eq!(report.totals.refs, 2 * 1000);
        assert!(
            report.totals.tracegen_nanos > 0,
            "materializing the shared stream takes measurable time"
        );
        assert!(
            report.totals.snapshot_nanos > 0,
            "warming the shared checkpoints takes measurable time"
        );
        // Both tiny scenarios share one stream, so they fuse into one group
        // whose single pass eliminates one of the two walks.
        assert_eq!(report.groups.len(), 1);
        assert_eq!(report.totals.groups, 1);
        assert_eq!(report.totals.passes_eliminated, 1);
        let group = &report.groups[0];
        assert_eq!(group.scenarios, 2);
        assert_eq!(group.refs, report.totals.refs);
        assert!(group.measured_nanos > 0, "the pass takes measurable time");
        assert!(group.blocks_per_sec > 0.0);
        assert_eq!(
            report.totals.fork_nanos,
            report.results.iter().map(|r| r.fork_nanos).sum::<u64>()
        );
        assert_eq!(
            report.totals.measured_nanos,
            report.groups.iter().map(|g| g.measured_nanos).sum::<u64>()
        );
        assert_eq!(
            report.totals.loop_nanos,
            report.totals.fork_nanos + report.totals.measured_nanos
        );
        for r in &report.results {
            assert!(r.total_cpi > 0.0);
            assert_eq!(r.group, group.label, "both scenarios name their group");
        }
        assert!(report.totals.blocks_per_sec > 0.0);
        assert!(report.totals.jobs_per_sec > 0.0);
    }

    #[test]
    fn default_perf_run_generates_exactly_nine_streams() {
        // The fused default run still resolves onto 9 unique streams (3
        // workloads x 3 core counts), each generated exactly once — and now
        // each walked in exactly one fused pass: 45 scenarios, 9 groups.
        let cfg = tiny_cfg();
        let arena = TraceArena::new();
        let snapshots = SnapshotArena::new();
        let report = run_perf_scenarios_in(
            &default_perf_scenarios(),
            &cfg,
            &ExperimentEngine::with_workers(2),
            &arena,
            &snapshots,
        );
        assert_eq!(report.totals.scenarios, 45);
        assert_eq!(arena.len(), 9, "one stream per (workload, cores)");
        assert_eq!(arena.generations(), 9, "each generated exactly once");
        assert_eq!(report.groups.len(), 9, "one fused pass per stream");
        assert_eq!(report.totals.passes_eliminated, 45 - 9);
        for g in &report.groups {
            assert_eq!(g.scenarios, 5, "all five designs fused per stream");
        }
    }

    #[test]
    fn canonical_json_is_identical_across_worker_counts() {
        let cfg = tiny_cfg();
        let scenarios = tiny_scenarios();
        let serial = run_perf_scenarios(&scenarios, &cfg, &ExperimentEngine::with_workers(1));
        let pooled = run_perf_scenarios(&scenarios, &cfg, &ExperimentEngine::with_workers(4));
        assert_eq!(serial.to_canonical_json(), pooled.to_canonical_json());
        // The deterministic fields agree even in the timed documents.
        for (a, b) in serial.results.iter().zip(&pooled.results) {
            assert_eq!(a.total_cpi, b.total_cpi);
            assert_eq!(a.off_chip_rate, b.off_chip_rate);
        }
    }

    #[test]
    fn emitted_json_parses_and_has_the_documented_schema() {
        let cfg = tiny_cfg();
        let report =
            run_perf_scenarios(&tiny_scenarios(), &cfg, &ExperimentEngine::with_workers(2));
        let doc = JsonValue::parse(&report.to_json()).expect("BENCH_perf.json must parse");
        assert_eq!(
            doc.keys(),
            vec!["schema_version", "config", "scenarios", "groups", "totals"]
        );
        assert_eq!(doc.get("schema_version").unwrap().as_f64(), Some(5.0));
        let scenarios = doc.get("scenarios").unwrap().as_array().unwrap();
        assert_eq!(scenarios.len(), 2);
        for s in scenarios {
            assert_eq!(
                s.keys(),
                vec![
                    "workload",
                    "design",
                    "letter",
                    "cores",
                    "group",
                    "refs",
                    "total_cpi",
                    "off_chip_rate",
                    "fork_nanos"
                ]
            );
        }
        let groups = doc.get("groups").unwrap().as_array().unwrap();
        assert_eq!(groups.len(), 1);
        for g in groups {
            assert_eq!(
                g.keys(),
                vec![
                    "label",
                    "scenarios",
                    "refs",
                    "fork_nanos",
                    "measured_nanos",
                    "blocks_per_sec"
                ]
            );
        }
        let totals = doc.get("totals").unwrap();
        for key in [
            "scenarios",
            "groups",
            "passes_eliminated",
            "refs",
            "tracegen_nanos",
            "snapshot_nanos",
            "fork_nanos",
            "measured_nanos",
            "loop_nanos",
            "elapsed_nanos",
            "blocks_per_sec",
            "jobs_per_sec",
        ] {
            assert!(totals.get(key).is_some(), "totals must carry {key}");
        }
    }

    #[test]
    fn scenario_labels_render_and_filter() {
        let scenarios = default_perf_scenarios();
        let label = scenarios[0].label();
        assert_eq!(label, "OLTP DB2/P/private/16c");

        // Filtering by workload keeps that workload's 15 scenarios.
        let em3d = filter_scenarios(default_perf_scenarios(), "em3d");
        assert_eq!(em3d.len(), 15);
        assert!(em3d.iter().all(|s| s.workload.name == "em3d"));

        // By design letter (the "/R/" segment), across workloads and cores.
        let rnuca = filter_scenarios(default_perf_scenarios(), "/R/");
        assert_eq!(rnuca.len(), 9);
        assert!(rnuca.iter().all(|s| s.design.letter() == "R"));

        // By core count, case-insensitively; unmatched filters yield nothing.
        let big = filter_scenarios(default_perf_scenarios(), "/64C");
        assert_eq!(big.len(), 15);
        assert!(big.iter().all(|s| s.cores == 64));
        assert!(filter_scenarios(default_perf_scenarios(), "nope").is_empty());
    }

    #[test]
    fn filter_casing_never_affects_selection_or_grouping() {
        // The allocation-free matcher folds ASCII case exactly like the old
        // lowercase-both-sides comparison: every casing of a filter selects
        // the same scenarios...
        let labels = |filter: &str| -> Vec<String> {
            filter_scenarios(default_perf_scenarios(), filter)
                .iter()
                .map(PerfScenario::label)
                .collect()
        };
        assert_eq!(labels("em3d"), labels("EM3D"));
        assert_eq!(labels("em3d"), labels("eM3d"));
        assert_eq!(labels("oltp db2"), labels("OLTP DB2"));
        assert!(!labels("EM3D").is_empty());
        // ...and group keys derive from the spec, not from label strings,
        // so the selected scenarios land in identical fused groups no
        // matter how the filter (or any display label) is cased.
        let group_keys = |filter: &str| -> Vec<FusedGroupKey> {
            filter_scenarios(default_perf_scenarios(), filter)
                .iter()
                .map(|s| s.group_key(42))
                .collect()
        };
        assert_eq!(group_keys("em3d"), group_keys("EM3D"));
        assert_eq!(group_keys("/r/"), group_keys("/R/"));
    }

    #[test]
    fn contains_ignore_ascii_case_matches_lowercase_contains() {
        let cases = [
            ("OLTP DB2/P/private/16c", "oltp"),
            ("OLTP DB2/P/private/16c", "DB2/p/PRIV"),
            ("OLTP DB2/P/private/16c", ""),
            ("OLTP DB2/P/private/16c", "16C"),
            ("OLTP DB2/P/private/16c", "xyz"),
            ("short", "much longer than the haystack"),
        ];
        for (haystack, needle) in cases {
            assert_eq!(
                contains_ignore_ascii_case(haystack.as_bytes(), needle.as_bytes()),
                haystack.to_lowercase().contains(&needle.to_lowercase()),
                "mismatch for ({haystack:?}, {needle:?})"
            );
        }
    }

    #[test]
    fn scenarios_sharing_a_stream_report_identical_results() {
        // Two designs over one workload share an arena slab; their
        // deterministic digests must come out as if each streamed privately.
        let cfg = tiny_cfg();
        let report =
            run_perf_scenarios(&tiny_scenarios(), &cfg, &ExperimentEngine::with_workers(2));
        for (s, r) in tiny_scenarios().iter().zip(&report.results) {
            let single = rnuca_sim::DesignComparison::run_single(&s.workload, s.design, &cfg);
            assert_eq!(r.total_cpi, single.run.total_cpi());
            assert_eq!(r.off_chip_rate, single.run.off_chip_rate);
        }
    }

    #[test]
    fn baseline_roundtrip_and_gate_verdicts() {
        let baseline_json = r#"{
            "schema_version": 1,
            "configs": {
                "smoke": {
                    "pre_optimization": {"blocks_per_sec": 1000000.0},
                    "gate": {"blocks_per_sec": 2000000.0, "tolerance": 0.25}
                }
            }
        }"#;
        let baseline = PerfBaseline::from_json(baseline_json, "smoke").unwrap();
        assert_eq!(baseline.pre_optimization_blocks_per_sec, 1e6);
        assert_eq!(baseline.gate_blocks_per_sec, 2e6);
        assert_eq!(baseline.tolerance, 0.25);

        let cfg = tiny_cfg();
        let mut report =
            run_perf_scenarios(&tiny_scenarios(), &cfg, &ExperimentEngine::with_workers(1));
        // Pin the aggregate so the verdict is deterministic.
        report.totals.blocks_per_sec = 1.6e6;
        let gate = evaluate_gate(&report, &baseline);
        assert!(gate.pass, "1.6M >= 2M * 0.75");
        assert!((gate.speedup_vs_pre_optimization - 1.6).abs() < 1e-12);
        assert!((gate.ratio_vs_gate - 0.8).abs() < 1e-12);

        report.totals.blocks_per_sec = 1.4e6;
        assert!(!evaluate_gate(&report, &baseline).pass, "1.4M < 2M * 0.75");

        // The gate verdict lands in the emitted document and still parses.
        let doc = JsonValue::parse(&report.to_json_with_gate(&gate)).unwrap();
        let b = doc
            .get("baseline")
            .expect("gated document has a baseline block");
        assert_eq!(b.get("gate_pass").unwrap().as_bool(), Some(true));
        assert_eq!(
            b.get("pre_optimization_blocks_per_sec").unwrap().as_f64(),
            Some(1e6)
        );
    }

    #[test]
    fn malformed_baselines_are_rejected_with_field_names() {
        let err = PerfBaseline::from_json("{}", "smoke").unwrap_err();
        assert!(
            err.contains("no section"),
            "error names the gap, got: {err}"
        );
        let err = PerfBaseline::from_json(
            r#"{"configs": {"smoke": {"pre_optimization": {}}}}"#,
            "smoke",
        )
        .unwrap_err();
        assert!(
            err.contains("pre_optimization"),
            "error names the field, got: {err}"
        );
        let err = PerfBaseline::from_json(
            r#"{"configs": {"smoke": {
                "pre_optimization": {"blocks_per_sec": "fast"},
                "gate": {"blocks_per_sec": 1, "tolerance": 0.1}}}}"#,
            "smoke",
        )
        .unwrap_err();
        assert!(err.contains("not a number"), "got: {err}");
        assert!(PerfBaseline::from_json("not json", "smoke").is_err());
        // A recorded file may still lack the requested config's section.
        let err = PerfBaseline::from_json(r#"{"configs": {"smoke": {}}}"#, "full").unwrap_err();
        assert!(err.contains("'full'"), "got: {err}");
    }
}
