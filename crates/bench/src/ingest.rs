//! JSON → warehouse ingestion, and the perf-regression gate as a query.
//!
//! The warehouse ([`rnuca_warehouse`]) is the system of record for measured
//! runs; the JSON artifacts (`BENCH_perf.json`, sweep documents) are views
//! derived from it. This module closes the loop in both directions:
//!
//! * [`PerfReport::to_records`] converts a freshly measured report into
//!   warehouse rows natively, and [`records_from_json`] converts a
//!   checked-in artifact back into the *same* rows — the emitters use
//!   shortest-roundtrip float formatting, so a report that goes out through
//!   `to_json` and comes back through the ingester produces bit-identical
//!   cells. Re-ingesting a file the store has already seen therefore adds
//!   zero rows.
//! * [`evaluate_gate_query`] reimplements the CI perf-regression gate as a
//!   warehouse query: probe the latest non-partial totals row for the run
//!   configuration, then ask the query engine whether that row clears the
//!   baseline threshold. The verdict is definitionally the legacy
//!   [`evaluate_gate`](crate::perf::evaluate_gate)'s comparison, evaluated
//!   by the same engine that serves `figures query` — the tests pin the
//!   equivalence on passing and regressed reports.
//!
//! Rows ingested from a filtered run (`figures perf --filter=`) carry
//! `partial=true`; gate queries exclude them explicitly (`partial=false`),
//! so a partial report can never satisfy — or poison — the gate.

use crate::json::JsonValue;
use crate::perf::{
    default_perf_scenarios, GateOutcome, PerfBaseline, PerfReport, PERF_SCHEMA_VERSION,
};
use rnuca_sim::{ExperimentConfig, SWEEP_SCHEMA_VERSION};
use rnuca_types::Fnv64;
use rnuca_warehouse::{RowKind, RunRecord, Value, Warehouse};
use std::collections::HashSet;

/// What kind of document an ingested file turned out to be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestKind {
    /// A `BENCH_perf.json` throughput report (perf schema).
    PerfReport,
    /// A `figures sweep` scenario-matrix document.
    Sweep,
}

impl IngestKind {
    /// Human-readable label for CLI output.
    pub fn as_str(self) -> &'static str {
        match self {
            IngestKind::PerfReport => "perf report",
            IngestKind::Sweep => "sweep",
        }
    }
}

/// The workload fingerprint JSON ingests use: FNV-1a over the workload
/// *name*. A JSON artifact does not carry the full workload spec, so the
/// name is the strongest identity both sides of a round-trip can agree on;
/// [`PerfReport::to_records`] uses the same function so native rows and
/// re-ingested rows collide (dedup) instead of duplicating.
fn name_fingerprint(name: &str) -> u64 {
    let mut h = Fnv64::new();
    h.write_str(name);
    h.finish()
}

/// Maps `(warmup_refs, measured_refs)` onto the preset config labels the
/// baseline document is keyed by (`full` / `quick` / `smoke`), or `custom`.
fn config_label(warmup_refs: usize, measured_refs: usize) -> &'static str {
    let mut cfg = ExperimentConfig::smoke();
    cfg.warmup_refs = warmup_refs;
    cfg.measured_refs = measured_refs;
    cfg.label()
}

impl PerfReport {
    /// This report as warehouse rows: one `scenario` row per result, one
    /// `group` row per fused group, one `totals` row. `partial` marks rows
    /// from a filtered run so gate queries can exclude them.
    ///
    /// The `design` column stores the design *letter* (`P`/`A`/`S`/`R`/`I`),
    /// matching the sweep rows, so `design=R` selects R-NUCA across every
    /// row kind.
    pub fn to_records(&self, partial: bool) -> Vec<RunRecord> {
        let label = self.cfg.label();
        let seed = self.cfg.seed as i64;
        let schema = PERF_SCHEMA_VERSION as i64;
        let mut records = Vec::with_capacity(self.results.len() + self.groups.len() + 1);
        for res in &self.results {
            let mut r = RunRecord::new(RowKind::Scenario, seed, schema, label);
            r.partial = partial;
            r.fingerprint = name_fingerprint(&res.workload);
            r.workload = Some(res.workload.clone());
            r.design = Some(res.letter.to_string());
            r.letter = Some(res.letter.to_string());
            r.cores = Some(res.cores as i64);
            r.group = Some(res.group.clone());
            r.refs = Some(res.refs as i64);
            r.total_cpi = Some(res.total_cpi);
            r.off_chip_rate = Some(res.off_chip_rate);
            r.fork_nanos = Some(res.fork_nanos as i64);
            records.push(r);
        }
        for g in &self.groups {
            let mut r = RunRecord::new(RowKind::Group, seed, schema, label);
            r.partial = partial;
            r.group = Some(g.label.clone());
            r.scenarios = Some(g.scenarios as i64);
            r.refs = Some(g.refs as i64);
            r.fork_nanos = Some(g.fork_nanos as i64);
            r.measured_nanos = Some(g.measured_nanos as i64);
            r.blocks_per_sec = Some(g.blocks_per_sec);
            records.push(r);
        }
        let t = &self.totals;
        let mut r = RunRecord::new(RowKind::Totals, seed, schema, label);
        r.partial = partial;
        r.scenarios = Some(t.scenarios as i64);
        r.groups = Some(t.groups as i64);
        r.refs = Some(t.refs as i64);
        r.fork_nanos = Some(t.fork_nanos as i64);
        r.measured_nanos = Some(t.measured_nanos as i64);
        r.loop_nanos = Some(t.loop_nanos as i64);
        r.blocks_per_sec = Some(t.blocks_per_sec);
        r.jobs_per_sec = Some(t.jobs_per_sec);
        records.push(r);
        records
    }
}

/// Parses a benchmark artifact into warehouse rows, detecting whether it is
/// a perf report (has `schema_version` and `scenarios`) or a sweep document
/// (has `results`).
///
/// Perf reports are checked against [`default_perf_scenarios`]: a report
/// that does not cover the full default scenario set came from a filtered
/// run, and its rows are marked `partial=true` so gate queries skip them.
///
/// # Errors
///
/// Returns a message locating the problem: JSON syntax errors carry line
/// and column, structural errors name the missing or mistyped field.
pub fn records_from_json(text: &str) -> Result<(Vec<RunRecord>, IngestKind), String> {
    let doc = JsonValue::parse(text).map_err(|e| e.to_string())?;
    if doc.get("schema_version").is_some() && doc.get("scenarios").is_some() {
        Ok((perf_records(&doc)?, IngestKind::PerfReport))
    } else if doc.get("results").is_some() {
        Ok((sweep_records(&doc)?, IngestKind::Sweep))
    } else {
        Err(
            "unrecognized document: expected a perf report (schema_version + scenarios) \
             or a sweep (results)"
                .to_string(),
        )
    }
}

fn perf_records(doc: &JsonValue) -> Result<Vec<RunRecord>, String> {
    let schema = num(doc, "schema_version", "report")? as i64;
    let config = doc
        .get("config")
        .ok_or_else(|| "report: missing 'config' object".to_string())?;
    let warmup = num(config, "warmup_refs", "config")? as usize;
    let measured = num(config, "measured_refs", "config")? as usize;
    let seed = num(config, "seed", "config")? as i64;
    let label = config_label(warmup, measured);

    let scenarios = array(doc, "scenarios", "report")?;
    let groups = array(doc, "groups", "report")?;
    let totals = doc
        .get("totals")
        .ok_or_else(|| "report: missing 'totals' object".to_string())?;

    // A report that does not cover the full default scenario set came from
    // a filtered run: mark every row partial so the gate ignores it.
    let full: HashSet<(String, String, i64)> = default_perf_scenarios()
        .iter()
        .map(|s| {
            (
                s.workload.name.clone(),
                s.design.letter().to_string(),
                s.cores as i64,
            )
        })
        .collect();
    let mut have = HashSet::new();
    for (i, s) in scenarios.iter().enumerate() {
        let ctx = format!("scenarios[{i}]");
        have.insert((
            string(s, "workload", &ctx)?,
            string(s, "letter", &ctx)?,
            num(s, "cores", &ctx)? as i64,
        ));
    }
    let partial = !full.is_subset(&have);

    let mut records = Vec::with_capacity(scenarios.len() + groups.len() + 1);
    for (i, s) in scenarios.iter().enumerate() {
        let ctx = format!("scenarios[{i}]");
        let workload = string(s, "workload", &ctx)?;
        let letter = string(s, "letter", &ctx)?;
        let mut r = RunRecord::new(RowKind::Scenario, seed, schema, label);
        r.partial = partial;
        r.fingerprint = name_fingerprint(&workload);
        r.workload = Some(workload);
        r.design = Some(letter.clone());
        r.letter = Some(letter);
        r.cores = Some(num(s, "cores", &ctx)? as i64);
        r.group = Some(string(s, "group", &ctx)?);
        r.refs = Some(num(s, "refs", &ctx)? as i64);
        r.total_cpi = Some(num(s, "total_cpi", &ctx)?);
        r.off_chip_rate = Some(num(s, "off_chip_rate", &ctx)?);
        r.fork_nanos = Some(num(s, "fork_nanos", &ctx)? as i64);
        records.push(r);
    }
    for (i, g) in groups.iter().enumerate() {
        let ctx = format!("groups[{i}]");
        let mut r = RunRecord::new(RowKind::Group, seed, schema, label);
        r.partial = partial;
        r.group = Some(string(g, "label", &ctx)?);
        r.scenarios = Some(num(g, "scenarios", &ctx)? as i64);
        r.refs = Some(num(g, "refs", &ctx)? as i64);
        r.fork_nanos = Some(num(g, "fork_nanos", &ctx)? as i64);
        r.measured_nanos = Some(num(g, "measured_nanos", &ctx)? as i64);
        r.blocks_per_sec = Some(num(g, "blocks_per_sec", &ctx)?);
        records.push(r);
    }
    let mut r = RunRecord::new(RowKind::Totals, seed, schema, label);
    r.partial = partial;
    r.scenarios = Some(num(totals, "scenarios", "totals")? as i64);
    r.groups = Some(num(totals, "groups", "totals")? as i64);
    r.refs = Some(num(totals, "refs", "totals")? as i64);
    r.fork_nanos = Some(num(totals, "fork_nanos", "totals")? as i64);
    r.measured_nanos = Some(num(totals, "measured_nanos", "totals")? as i64);
    r.loop_nanos = Some(num(totals, "loop_nanos", "totals")? as i64);
    r.blocks_per_sec = Some(num(totals, "blocks_per_sec", "totals")?);
    r.jobs_per_sec = Some(num(totals, "jobs_per_sec", "totals")?);
    records.push(r);
    Ok(records)
}

fn sweep_records(doc: &JsonValue) -> Result<Vec<RunRecord>, String> {
    let config = doc
        .get("config")
        .ok_or_else(|| "sweep: missing 'config' object".to_string())?;
    let warmup = num(config, "warmup_refs", "config")? as usize;
    let measured = num(config, "measured_refs", "config")? as usize;
    let seed = num(config, "seed", "config")? as i64;
    let label = config_label(warmup, measured);
    let results = array(doc, "results", "sweep")?;

    let mut records = Vec::with_capacity(results.len());
    for (i, res) in results.iter().enumerate() {
        let ctx = format!("results[{i}]");
        let workload = string(res, "workload", &ctx)?;
        let letter = string(res, "letter", &ctx)?;
        let cpi = res
            .get("cpi")
            .ok_or_else(|| format!("{ctx}: missing 'cpi' object"))?;
        let mut r = RunRecord::new(RowKind::Sweep, seed, SWEEP_SCHEMA_VERSION as i64, label);
        r.fingerprint = name_fingerprint(&workload);
        r.workload = Some(workload);
        r.design = Some(letter.clone());
        r.letter = Some(letter);
        r.cores = Some(num(res, "cores", &ctx)? as i64);
        r.slice_kb = Some(num(res, "slice_kb", &ctx)? as i64);
        r.cluster = res
            .get("cluster")
            .and_then(JsonValue::as_f64)
            .map(|c| c as i64);
        r.refs = Some((warmup + measured) as i64);
        r.total_cpi = Some(num(res, "total_cpi", &ctx)?);
        r.cpi_busy = Some(num(cpi, "busy", &ctx)?);
        r.cpi_l1_to_l1 = Some(num(cpi, "l1_to_l1", &ctx)?);
        r.cpi_l2 = Some(num(cpi, "l2", &ctx)?);
        r.cpi_off_chip = Some(num(cpi, "off_chip", &ctx)?);
        r.cpi_other = Some(num(cpi, "other", &ctx)?);
        r.cpi_reclass = Some(num(cpi, "reclassification", &ctx)?);
        r.off_chip_rate = Some(num(res, "off_chip_rate", &ctx)?);
        r.l1_to_l1_rate = Some(num(res, "l1_to_l1_rate", &ctx)?);
        records.push(r);
    }
    Ok(records)
}

fn num(v: &JsonValue, key: &str, ctx: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| format!("{ctx}: missing or non-numeric field '{key}'"))
}

fn string(v: &JsonValue, key: &str, ctx: &str) -> Result<String, String> {
    v.get(key)
        .and_then(JsonValue::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("{ctx}: missing or non-string field '{key}'"))
}

fn array<'a>(v: &'a JsonValue, key: &str, ctx: &str) -> Result<&'a [JsonValue], String> {
    v.get(key)
        .and_then(JsonValue::as_array)
        .ok_or_else(|| format!("{ctx}: missing or non-array field '{key}'"))
}

/// The perf-regression gate, reimplemented as a warehouse query.
///
/// Two queries decide the verdict:
///
/// 1. A probe finds the run under test — the *latest* non-partial totals
///    row for `config`:
///    `kind=totals & config='<config>' & partial=false sort batch desc top 1`.
/// 2. The verdict re-selects that row with the threshold as one more
///    filter: `... & batch=<B> & blocks_per_sec>=<threshold>` where
///    `<threshold>` is `gate_blocks_per_sec * (1 - tolerance)` — the gate
///    passes iff the row survives.
///
/// Thresholds round-trip exactly: Rust formats the `f64` with
/// shortest-roundtrip notation and the query lexer parses it back to the
/// same bits, so the verdict is bit-for-bit the comparison the legacy
/// [`evaluate_gate`](crate::perf::evaluate_gate) computes.
///
/// # Errors
///
/// Returns a message when the store holds no eligible totals row for
/// `config`, or when a query fails (which would be a bug, as both queries
/// are generated).
pub fn evaluate_gate_query(
    store: &Warehouse,
    baseline: &PerfBaseline,
    config: &str,
) -> Result<GateOutcome, String> {
    let probe = format!(
        "kind=totals & config='{config}' & partial=false \
         sort batch desc top 1 show batch, blocks_per_sec"
    );
    let out = store
        .query(&probe)
        .map_err(|errs| format!("gate probe query failed:\n{}", join_errors(&errs, &probe)))?;
    let row = out.rows.first().ok_or_else(|| {
        format!("the store holds no non-partial totals row for config '{config}'")
    })?;
    let (batch, got) = match (&row[0], &row[1]) {
        (Value::Int(b), Value::Float(v)) => (*b, *v),
        _ => return Err("gate probe returned unexpected cell types".to_string()),
    };
    let threshold = baseline.gate_blocks_per_sec * (1.0 - baseline.tolerance);
    let verdict = format!(
        "kind=totals & config='{config}' & partial=false \
         & batch={batch} & blocks_per_sec>={threshold}"
    );
    let pass = store
        .query(&verdict)
        .map_err(|errs| {
            format!(
                "gate verdict query failed:\n{}",
                join_errors(&errs, &verdict)
            )
        })?
        .rows
        .len()
        == 1;
    let ratio = |b: f64| if b > 0.0 { got / b } else { 0.0 };
    Ok(GateOutcome {
        baseline: *baseline,
        speedup_vs_pre_optimization: ratio(baseline.pre_optimization_blocks_per_sec),
        ratio_vs_gate: ratio(baseline.gate_blocks_per_sec),
        pass,
    })
}

fn join_errors(errors: &[rnuca_warehouse::QueryError], source: &str) -> String {
    rnuca_warehouse::render_errors(errors, source)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perf::{evaluate_gate, run_perf_scenarios, PerfScenario};
    use rnuca_sim::{ExperimentEngine, LlcDesign};
    use rnuca_workloads::WorkloadSpec;

    fn tiny_report() -> PerfReport {
        let mut cfg = ExperimentConfig::smoke();
        cfg.warmup_refs = 600;
        cfg.measured_refs = 400;
        let spec = WorkloadSpec::oltp_db2();
        let scenarios = vec![
            PerfScenario {
                workload: spec.clone(),
                design: LlcDesign::Shared,
                cores: 16,
            },
            PerfScenario {
                workload: spec,
                design: LlcDesign::rnuca_default(),
                cores: 16,
            },
        ];
        run_perf_scenarios(&scenarios, &cfg, &ExperimentEngine::with_workers(1))
    }

    fn baseline() -> PerfBaseline {
        PerfBaseline {
            pre_optimization_blocks_per_sec: 1e6,
            gate_blocks_per_sec: 2e6,
            tolerance: 0.25,
        }
    }

    #[test]
    fn ingesting_the_emitted_report_reproduces_the_native_records() {
        // The emitters use shortest-roundtrip float formatting, so the JSON
        // round-trip must reproduce the native records *exactly* — field for
        // field, bit for bit. This is what makes "ingest after perf" a
        // no-op: the keys collide and dedup wins.
        let report = tiny_report();
        let native = report.to_records(true); // 2 scenarios ⊂ 45: partial.
        let (ingested, kind) = records_from_json(&report.to_json()).expect("parses");
        assert_eq!(kind, IngestKind::PerfReport);
        assert_eq!(native, ingested);

        let store = Warehouse::new();
        let first = store.append_all(&native);
        assert_eq!(first.added, native.len());
        let second = store.append_all(&ingested);
        assert_eq!(second.added, 0, "re-ingest adds zero rows");
        assert_eq!(second.deduplicated, ingested.len());
    }

    #[test]
    fn full_scenario_coverage_is_not_partial() {
        // A report covering every default scenario is a full run; the
        // ingester must not mark it partial. Fabricate one from the default
        // list without simulating (the metrics don't matter for the flag).
        let labels: Vec<String> = default_perf_scenarios()
            .iter()
            .map(|s| {
                format!(
                    r#"{{"workload": "{}", "design": "x", "letter": "{}", "cores": {},
                        "group": "g", "refs": 1, "total_cpi": 1.0,
                        "off_chip_rate": 0.1, "fork_nanos": 1}}"#,
                    s.workload.name,
                    s.design.letter(),
                    s.cores
                )
            })
            .collect();
        let doc = format!(
            r#"{{"schema_version": 5,
                 "config": {{"warmup_refs": 600000, "measured_refs": 300000, "seed": 42}},
                 "scenarios": [{}],
                 "groups": [],
                 "totals": {{"scenarios": 45, "groups": 9, "refs": 45,
                             "fork_nanos": 1, "measured_nanos": 1, "loop_nanos": 2,
                             "blocks_per_sec": 5.0, "jobs_per_sec": 1.0}}}}"#,
            labels.join(",")
        );
        let (records, _) = records_from_json(&doc).expect("parses");
        assert!(records.iter().all(|r| !r.partial));
        assert_eq!(records.last().unwrap().config, "full", "600k/300k is full");
    }

    #[test]
    fn sweep_documents_ingest_and_dedup() {
        let mut cfg = ExperimentConfig::smoke();
        cfg.warmup_refs = 1_500;
        cfg.measured_refs = 1_000;
        let mut m = rnuca_sim::ScenarioMatrix::new(cfg);
        m.workloads = vec![WorkloadSpec::oltp_db2()];
        m.designs = vec![LlcDesign::Shared, LlcDesign::rnuca_default()];
        let sweep = m.run_with(&ExperimentEngine::with_workers(1)).unwrap();

        let (records, kind) = records_from_json(&sweep.to_json()).expect("parses");
        assert_eq!(kind, IngestKind::Sweep);
        assert_eq!(records.len(), sweep.results.len());
        assert!(records.iter().all(|r| r.kind == RowKind::Sweep));
        assert!(records.iter().all(|r| r.config == "custom"));

        let store = Warehouse::new();
        assert_eq!(store.append_all(&records).added, records.len());
        assert_eq!(store.append_all(&records).added, 0);
        let out = store
            .query("design=R show cluster, total_cpi")
            .expect("clean query");
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.rows[0][0].to_string(), "4");
    }

    #[test]
    fn unrecognized_documents_are_rejected_with_context() {
        assert!(records_from_json("not json").unwrap_err().contains("line"));
        let err = records_from_json(r#"{"something": 1}"#).unwrap_err();
        assert!(err.contains("perf report"), "got: {err}");
        assert!(err.contains("sweep"), "got: {err}");
        // Structural problems name the field and its position.
        let err = records_from_json(
            r#"{"schema_version": 5, "config": {"warmup_refs": 1, "measured_refs": 1, "seed": 1},
                "scenarios": [{"workload": 7}], "groups": [], "totals": {}}"#,
        )
        .unwrap_err();
        assert!(err.contains("scenarios[0]"), "got: {err}");
        assert!(err.contains("workload"), "got: {err}");
    }

    #[test]
    fn gate_query_matches_the_legacy_verdict_on_pass_and_regression() {
        let mut report = tiny_report();
        report.totals.blocks_per_sec = 1.6e6; // above 2M * 0.75: pass
        let store = Warehouse::new();
        store.append_all(&report.to_records(false));

        let legacy = evaluate_gate(&report, &baseline());
        let query = evaluate_gate_query(&store, &baseline(), report.cfg.label()).unwrap();
        assert!(legacy.pass);
        assert_eq!(query.pass, legacy.pass);
        assert_eq!(query.ratio_vs_gate, legacy.ratio_vs_gate);
        assert_eq!(
            query.speedup_vs_pre_optimization,
            legacy.speedup_vs_pre_optimization
        );

        // A synthetically regressed run lands in a later batch; the probe's
        // `sort batch desc top 1` must judge it, not the older passing row.
        let mut regressed = report.clone();
        regressed.totals.blocks_per_sec = 1.4e6; // below 2M * 0.75: fail
        store.append_all(&regressed.to_records(false));
        let legacy = evaluate_gate(&regressed, &baseline());
        let query = evaluate_gate_query(&store, &baseline(), regressed.cfg.label()).unwrap();
        assert!(!legacy.pass);
        assert_eq!(query.pass, legacy.pass);
        assert_eq!(query.ratio_vs_gate, legacy.ratio_vs_gate);
    }

    #[test]
    fn gate_verdict_is_exact_at_the_threshold_boundary() {
        // The threshold travels through the query as text; shortest-
        // roundtrip formatting must keep the >= comparison bit-exact even
        // when the run sits precisely on the boundary.
        let b = baseline();
        let exact = b.gate_blocks_per_sec * (1.0 - b.tolerance);
        for (bps, want) in [
            (exact, true),
            (f64::from_bits(exact.to_bits() - 1), false),
            (f64::from_bits(exact.to_bits() + 1), true),
        ] {
            let mut report = tiny_report();
            report.totals.blocks_per_sec = bps;
            let store = Warehouse::new();
            store.append_all(&report.to_records(false));
            let legacy = evaluate_gate(&report, &b);
            let query = evaluate_gate_query(&store, &b, report.cfg.label()).unwrap();
            assert_eq!(query.pass, want, "query verdict at bps={bps:?}");
            assert_eq!(legacy.pass, want, "legacy verdict at bps={bps:?}");
        }
    }

    #[test]
    fn partial_rows_never_satisfy_the_gate() {
        // A filtered run with absurdly high throughput lands after a failing
        // full run; the gate must still fail because partial rows are
        // excluded — and an all-partial store has no eligible row at all.
        let mut failing = tiny_report();
        failing.totals.blocks_per_sec = 1.0; // hopeless
        let mut flattering = tiny_report();
        flattering.totals.blocks_per_sec = 1e12;

        let store = Warehouse::new();
        store.append_all(&failing.to_records(false));
        store.append_all(&flattering.to_records(true)); // partial
        let query = evaluate_gate_query(&store, &baseline(), failing.cfg.label()).unwrap();
        assert!(!query.pass, "a partial run cannot rescue the gate");

        let only_partial = Warehouse::new();
        only_partial.append_all(&flattering.to_records(true));
        let err = evaluate_gate_query(&only_partial, &baseline(), "custom").unwrap_err();
        assert!(err.contains("no non-partial totals row"), "got: {err}");
    }
}
