//! End-to-end service chaos smoke: a real `figures serve` process is
//! SIGABRT-killed mid-sweep at a fail-point-chosen journal append, restarted
//! on the same spool, and must auto-resume to a warehouse byte-identical to
//! one built by a service that was never interrupted.
//!
//! Ignored by default — each leg runs a `--smoke` sweep through a spawned
//! service process, so CI runs this in release mode (the `service-smoke`
//! step, `cargo test --release -p rnuca-bench --test cli_service --
//! --include-ignored`). The kill travels to the service via
//! `RNUCA_FAILPOINTS`; the test profile compiles the binary with live fail
//! points (dev-dependency feature unification), release-profile
//! `cargo build` does not.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

/// The matrix both legs submit: oltp-db2 x {S, R} x {16, 32} cores — four
/// jobs, so the sweep spans several journal appends the fail point can
/// land between.
const SPEC: &str = "v1|config=smoke|workloads=oltp-db2|designs=S,R|cores=16,32";

fn temp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("rnuca-service-cli-{}-{name}", std::process::id()))
}

fn figures(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_figures"))
        .args(args)
        .env_remove("RNUCA_FAILPOINTS")
        .output()
        .expect("the figures binary runs")
}

/// A spawned `figures serve` process, killed on drop so a failed assert
/// does not leak a resident service into the test machine.
struct ServiceGuard(Child);

impl Drop for ServiceGuard {
    fn drop(&mut self) {
        self.0.kill().ok();
        self.0.wait().ok();
    }
}

fn spawn_service(spool: &Path, store: &Path, failpoints: Option<&str>) -> ServiceGuard {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_figures"));
    cmd.arg("serve")
        .arg(format!("--spool={}", spool.display()))
        .arg(format!("--store={}", store.display()))
        .arg("--workers=2")
        .env_remove("RNUCA_FAILPOINTS")
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    if let Some(plan) = failpoints {
        cmd.env("RNUCA_FAILPOINTS", plan);
    }
    let child = cmd.spawn().expect("the service spawns");
    // The socket appears once the spool is scanned and the listener bound;
    // from then on client verbs connect.
    let socket = spool.join("service.sock");
    let deadline = Instant::now() + Duration::from_secs(30);
    while !socket.exists() {
        assert!(Instant::now() < deadline, "service never bound its socket");
        std::thread::sleep(Duration::from_millis(25));
    }
    ServiceGuard(child)
}

/// Submits [`SPEC`] to the service on `spool` and returns the submission id
/// the service assigned.
fn submit(spool: &Path) -> String {
    let spool_arg = format!("--spool={}", spool.display());
    let out = figures(&["submit", &spool_arg, SPEC]);
    assert!(
        out.status.success(),
        "submit failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    stdout
        .split_whitespace()
        .next()
        .unwrap_or_else(|| panic!("submit printed no id: {stdout}"))
        .to_string()
}

/// Waits (via `figures watch`) until `id` reaches a terminal state and
/// returns the `done` line.
fn watch(spool: &Path, id: &str) -> String {
    let spool_arg = format!("--spool={}", spool.display());
    let out = figures(&["watch", &spool_arg, id]);
    assert!(
        out.status.success(),
        "watch failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout)
        .lines()
        .last()
        .expect("watch prints a done line")
        .to_string()
}

/// Drains the service on `spool` and waits for the process to exit cleanly.
fn drain(spool: &Path, mut service: ServiceGuard) {
    let spool_arg = format!("--spool={}", spool.display());
    let out = figures(&["drain", &spool_arg]);
    assert!(
        out.status.success(),
        "drain failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let status = wait_for_exit(&mut service.0, Duration::from_secs(120));
    assert!(status.success(), "a drained service exits cleanly");
}

fn wait_for_exit(child: &mut Child, timeout: Duration) -> std::process::ExitStatus {
    let deadline = Instant::now() + timeout;
    loop {
        if let Some(status) = child.try_wait().expect("try_wait works") {
            return status;
        }
        assert!(Instant::now() < deadline, "service did not exit in time");
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
#[ignore = "spawns service processes running --smoke sweeps; CI's service-smoke step runs it in release"]
fn killed_service_resumes_to_a_byte_identical_warehouse() {
    let ref_spool = temp("ref-spool");
    let ref_store = temp("ref-store.bin");
    let chaos_spool = temp("chaos-spool");
    let chaos_store = temp("chaos-store.bin");
    for dir in [&ref_spool, &chaos_spool] {
        std::fs::remove_dir_all(dir).ok();
    }
    for file in [&ref_store, &chaos_store] {
        std::fs::remove_file(file).ok();
    }

    // Leg 1 — ground truth: an uninterrupted service run.
    let service = spawn_service(&ref_spool, &ref_store, None);
    let id = submit(&ref_spool);
    let done = watch(&ref_spool, &id);
    assert_eq!(done, format!("done {id} completed ok=4 failed=0"));
    drain(&ref_spool, service);
    let reference_bytes = std::fs::read(&ref_store).expect("reference store exists");
    assert!(
        !ref_spool.join(&id).exists(),
        "a completed submission leaves no spool entry"
    );

    // Leg 2 — chaos: the second journal append aborts the whole process
    // (SIGABRT, no unwinding, no destructors — kill -9 at a chosen instant),
    // so the service dies mid-sweep with one job journaled and three not.
    let mut service = spawn_service(
        &chaos_spool,
        &chaos_store,
        Some("sweep::journal::append=abort@2"),
    );
    let chaos_id = submit(&chaos_spool);
    assert_eq!(chaos_id, id, "identical specs share an id across services");
    let status = wait_for_exit(&mut service.0, Duration::from_secs(120));
    assert!(
        !status.success(),
        "the injected abort must kill the service"
    );
    drop(service);
    assert!(
        chaos_spool.join(&id).join("journal.bin").exists(),
        "the journal survives the kill"
    );
    assert!(
        !chaos_store.exists(),
        "a killed sweep must not have written a store"
    );

    // Leg 3 — restart on the same spool: the startup scan finds the
    // submission, replays its journal, runs the remaining jobs, and lands
    // the exact bytes the uninterrupted service produced.
    let service = spawn_service(&chaos_spool, &chaos_store, None);
    let done = watch(&chaos_spool, &id);
    assert_eq!(done, format!("done {id} completed ok=4 failed=0"));
    drain(&chaos_spool, service);
    let resumed_bytes = std::fs::read(&chaos_store).expect("resumed store exists");
    assert_eq!(
        resumed_bytes, reference_bytes,
        "the resumed warehouse is not byte-identical to the uninterrupted run's"
    );
    assert!(
        !chaos_spool.join(&id).exists(),
        "the resumed submission retired its spool entry"
    );

    for dir in [&ref_spool, &chaos_spool] {
        std::fs::remove_dir_all(dir).ok();
    }
    for file in [&ref_store, &chaos_store] {
        std::fs::remove_file(file).ok();
    }
}
