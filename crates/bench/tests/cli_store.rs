//! The figures CLI against damaged on-disk artifacts: a corrupt or
//! truncated warehouse must fail `ingest` and `query` with exit code 3 and
//! a diagnostic naming the file and byte offset — distinct from exit 2
//! (malformed query) and exit 1 (generic errors) — and the `journal`
//! subcommand must report journal health the same way.

use rnuca_sim::SweepJournal;
use rnuca_warehouse::{RowKind, RunRecord, Warehouse};
use std::path::PathBuf;
use std::process::{Command, Output};

fn figures(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_figures"))
        .args(args)
        // Hermetic: the test-profile binary has live fail points, so an
        // inherited plan must not leak into these runs.
        .env_remove("RNUCA_FAILPOINTS")
        .output()
        .expect("the figures binary runs")
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn temp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("rnuca-cli-{}-{name}", std::process::id()))
}

/// A small valid store on disk, returning its path and saved bytes.
fn valid_store(name: &str) -> (PathBuf, Vec<u8>) {
    let store = Warehouse::new();
    let mut r = RunRecord::new(RowKind::Sweep, 42, 5, "smoke");
    r.workload = Some("oltp".into());
    r.cores = Some(16);
    r.total_cpi = Some(1.25);
    store.append(&r);
    let path = temp(name);
    store.save(&path).expect("saving a small store succeeds");
    let bytes = std::fs::read(&path).expect("saved store exists");
    (path, bytes)
}

#[test]
fn query_on_a_bit_flipped_store_exits_3_naming_file_and_offset() {
    let (path, mut bytes) = valid_store("flip.bin");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();
    let out = figures(&[
        "query",
        &format!("--store={}", path.display()),
        "kind=sweep",
    ]);
    assert_eq!(out.status.code(), Some(3), "stderr: {}", stderr_of(&out));
    let err = stderr_of(&out);
    assert!(
        err.contains("checksum"),
        "diagnostic names the cause: {err}"
    );
    assert!(
        err.contains(&path.display().to_string()),
        "diagnostic names the file: {err}"
    );
    assert!(err.contains("byte"), "diagnostic carries an offset: {err}");
    assert!(err.contains("help:"), "diagnostic suggests a fix: {err}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn ingest_into_a_truncated_store_exits_3() {
    let (path, bytes) = valid_store("trunc.bin");
    std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
    let artifact = temp("ingest-input.json");
    std::fs::write(&artifact, "{}").unwrap();
    let out = figures(&[
        "ingest",
        &format!("--store={}", path.display()),
        artifact.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(3), "stderr: {}", stderr_of(&out));
    let err = stderr_of(&out);
    assert!(
        err.contains(&path.display().to_string()) && err.contains("byte"),
        "diagnostic names the file and offset: {err}"
    );
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&artifact).ok();
}

#[test]
fn exit_codes_distinguish_bad_queries_from_bad_stores() {
    // A malformed query against a healthy (missing -> empty) store is the
    // caller's fault: exit 2 with spanned diagnostics, not 3.
    let missing = temp("missing.bin");
    std::fs::remove_file(&missing).ok();
    let out = figures(&[
        "query",
        &format!("--store={}", missing.display()),
        "bogus !! query",
    ]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr_of(&out));
    // And a clean query on the same empty store succeeds.
    let out = figures(&[
        "query",
        &format!("--store={}", missing.display()),
        "kind=sweep",
    ]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr_of(&out));
    assert!(stdout_of(&out).contains("0 rows"));
}

#[test]
fn journal_subcommand_reports_completion_and_corruption() {
    // A fresh header-only journal: identity printed, zero jobs completed.
    let path = temp("inspect.journal");
    SweepJournal::create(&path, 0xfeed_beef_dead_cafe, 7).expect("journal create");
    let out = figures(&["journal", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr_of(&out));
    let text = stdout_of(&out);
    assert!(
        text.contains("0 of 7 jobs journaled") && text.contains("0xfeedbeefdeadcafe"),
        "journal report: {text}"
    );
    // Damage the magic: exit 3 with the offending offset.
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[0] ^= 0xff;
    std::fs::write(&path, &bytes).unwrap();
    let out = figures(&["journal", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(3), "stderr: {}", stderr_of(&out));
    let err = stderr_of(&out);
    assert!(
        err.contains("byte 0") && err.contains(path.to_str().unwrap()),
        "corrupt-journal diagnostic: {err}"
    );
    // A missing journal is a usage error, not corruption.
    std::fs::remove_file(&path).ok();
    let out = figures(&["journal", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr_of(&out));
}

#[test]
fn resume_without_a_journal_is_refused_up_front() {
    let out = figures(&["--smoke", "sweep", "--resume"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr_of(&out).contains("--journal"), "{}", stderr_of(&out));
    let out = figures(&[
        "--smoke",
        "sweep",
        "--resume",
        "--journal=/nonexistent/rnuca.journal",
    ]);
    assert_eq!(out.status.code(), Some(1));
    assert!(
        stderr_of(&out).contains("does not exist"),
        "{}",
        stderr_of(&out)
    );
}
