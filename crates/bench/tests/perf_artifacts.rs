//! Keeps the checked-in perf artifacts honest: `bench/baseline.json` must
//! parse for every run configuration, and the recorded `BENCH_perf.json`
//! must carry the documented schema, a passing gate, and the hot-path
//! speedup this optimization round claims.

use rnuca_bench::{JsonValue, PerfBaseline};
use std::path::PathBuf;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn read(name: &str) -> String {
    let path = repo_root().join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

#[test]
fn checked_in_baseline_has_a_section_per_config() {
    let text = read("bench/baseline.json");
    for config in ["smoke", "quick", "full"] {
        let b = PerfBaseline::from_json(&text, config)
            .unwrap_or_else(|e| panic!("baseline section {config}: {e}"));
        assert!(
            b.pre_optimization_blocks_per_sec > 0.0,
            "{config}: pre-opt must be positive"
        );
        assert!(
            b.gate_blocks_per_sec > 0.0,
            "{config}: gate must be positive"
        );
        assert!(
            (0.0..1.0).contains(&b.tolerance),
            "{config}: tolerance must be a fraction, got {}",
            b.tolerance
        );
    }
    // The longer configurations must record a real before/after gap: the
    // gate (post-optimization) number sits above the pre-optimization one.
    for config in ["quick", "full"] {
        let b = PerfBaseline::from_json(&text, config).unwrap();
        assert!(
            b.gate_blocks_per_sec > b.pre_optimization_blocks_per_sec,
            "{config}: the optimization must have moved the gate above the pre-opt number"
        );
    }
}

#[test]
fn recorded_bench_perf_json_parses_with_schema_and_speedup() {
    let doc = JsonValue::parse(&read("BENCH_perf.json")).expect("BENCH_perf.json must parse");
    assert_eq!(
        doc.get("schema_version").and_then(JsonValue::as_f64),
        Some(4.0)
    );
    let scenarios = doc
        .get("scenarios")
        .and_then(JsonValue::as_array)
        .expect("scenarios array");
    assert_eq!(
        scenarios.len(),
        45,
        "5 designs x 3 workloads x 3 core counts"
    );
    for s in scenarios {
        for key in [
            "workload",
            "design",
            "letter",
            "cores",
            "refs",
            "total_cpi",
            "fork_nanos",
            "measured_nanos",
            "blocks_per_sec",
        ] {
            assert!(s.get(key).is_some(), "scenario record must carry {key}");
        }
    }
    let totals = doc.get("totals").expect("totals object");
    assert!(
        totals
            .get("blocks_per_sec")
            .and_then(JsonValue::as_f64)
            .unwrap()
            > 0.0
    );

    // The recorded run carries the regression-gate verdict...
    let baseline = doc
        .get("baseline")
        .expect("recorded run must include the baseline block");
    assert_eq!(
        baseline.get("gate_pass").and_then(JsonValue::as_bool),
        Some(true)
    );
    let speedup = baseline
        .get("speedup_vs_pre_optimization")
        .and_then(JsonValue::as_f64)
        .unwrap();
    assert!(
        speedup > 1.0,
        "recorded run must be faster than pre-optimization"
    );

    // ...and when it was recorded at the full configuration (the checked-in
    // record always is), it must document the >=2x hot-path improvement the
    // warmed-checkpoint arena achieved over the streaming round it ratcheted
    // from (warm-up now runs once per unique checkpoint, outside the timed
    // loops, and every scenario forks the snapshot instead).
    let warmup = doc
        .get("config")
        .and_then(|c| c.get("warmup_refs"))
        .and_then(JsonValue::as_f64);
    if warmup == Some(600_000.0) {
        assert!(
            speedup >= 2.0,
            "full-config record must show at least 2x over pre-optimization, got {speedup:.2}"
        );
    }

    // The per-phase counters of schema v4 are present and consistent.
    let totals_fork = totals
        .get("fork_nanos")
        .and_then(JsonValue::as_f64)
        .expect("totals carry fork_nanos");
    let totals_measured = totals
        .get("measured_nanos")
        .and_then(JsonValue::as_f64)
        .expect("totals carry measured_nanos");
    let totals_loop = totals
        .get("loop_nanos")
        .and_then(JsonValue::as_f64)
        .unwrap();
    assert_eq!(totals_fork + totals_measured, totals_loop);

    // Schemas v3/v4: trace generation and checkpoint warming are reported
    // separately from simulation, and neither inflates the gated loop time.
    let tracegen = totals
        .get("tracegen_nanos")
        .and_then(JsonValue::as_f64)
        .expect("schema v3 totals carry tracegen_nanos");
    assert!(tracegen > 0.0, "recorded run materialized streams");
    let snapshot = totals
        .get("snapshot_nanos")
        .and_then(JsonValue::as_f64)
        .expect("schema v4 totals carry snapshot_nanos");
    assert!(snapshot > 0.0, "recorded run warmed checkpoints");
    let elapsed = totals
        .get("elapsed_nanos")
        .and_then(JsonValue::as_f64)
        .unwrap();
    assert!(
        tracegen + snapshot < elapsed,
        "generation and warming are phases of the run, not the whole of it"
    );
}
