//! Keeps the checked-in perf artifacts honest: `bench/baseline.json` must
//! parse for every run configuration, and the recorded `BENCH_perf.json`
//! must carry the documented schema, a passing gate, and the hot-path
//! speedup this optimization round claims.

use rnuca_bench::{JsonValue, PerfBaseline};
use std::path::PathBuf;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn read(name: &str) -> String {
    let path = repo_root().join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

#[test]
fn checked_in_baseline_has_a_section_per_config() {
    let text = read("bench/baseline.json");
    for config in ["smoke", "quick", "full"] {
        let b = PerfBaseline::from_json(&text, config)
            .unwrap_or_else(|e| panic!("baseline section {config}: {e}"));
        assert!(
            b.pre_optimization_blocks_per_sec > 0.0,
            "{config}: pre-opt must be positive"
        );
        assert!(
            b.gate_blocks_per_sec > 0.0,
            "{config}: gate must be positive"
        );
        assert!(
            (0.0..1.0).contains(&b.tolerance),
            "{config}: tolerance must be a fraction, got {}",
            b.tolerance
        );
    }
    // The full configuration must record a real before/after gap: the gate
    // (post-optimization) number sits above the pre-optimization one. Smoke
    // and quick are fork-dominated since the fused-stepping round shrank
    // measured time ~5x, so their gates are tripwires below pre-opt.
    let b = PerfBaseline::from_json(&text, "full").unwrap();
    assert!(
        b.gate_blocks_per_sec > b.pre_optimization_blocks_per_sec,
        "full: the optimization must have moved the gate above the pre-opt number"
    );
}

#[test]
fn recorded_bench_perf_json_parses_with_schema_and_speedup() {
    let doc = JsonValue::parse(&read("BENCH_perf.json")).expect("BENCH_perf.json must parse");
    assert_eq!(
        doc.get("schema_version").and_then(JsonValue::as_f64),
        Some(5.0)
    );
    let scenarios = doc
        .get("scenarios")
        .and_then(JsonValue::as_array)
        .expect("scenarios array");
    assert_eq!(
        scenarios.len(),
        45,
        "5 designs x 3 workloads x 3 core counts"
    );
    for s in scenarios {
        for key in [
            "workload",
            "design",
            "letter",
            "cores",
            "group",
            "refs",
            "total_cpi",
            "off_chip_rate",
            "fork_nanos",
        ] {
            assert!(s.get(key).is_some(), "scenario record must carry {key}");
        }
    }

    // Schema v5: the measured hot loop runs once per fused group, so the
    // timing rows live in a `groups` array; every scenario names its group.
    let groups = doc
        .get("groups")
        .and_then(JsonValue::as_array)
        .expect("schema v5 carries a groups array");
    assert_eq!(groups.len(), 9, "3 workloads x 3 core counts");
    let mut grouped_scenarios = 0.0;
    let mut grouped_refs = 0.0;
    for g in groups {
        for key in [
            "label",
            "scenarios",
            "refs",
            "fork_nanos",
            "measured_nanos",
            "blocks_per_sec",
        ] {
            assert!(g.get(key).is_some(), "group record must carry {key}");
        }
        grouped_scenarios += g.get("scenarios").and_then(JsonValue::as_f64).unwrap();
        grouped_refs += g.get("refs").and_then(JsonValue::as_f64).unwrap();
        assert!(
            g.get("blocks_per_sec").and_then(JsonValue::as_f64).unwrap() > 0.0,
            "every group ran its fused pass"
        );
        let label = g.get("label").and_then(JsonValue::as_str).unwrap();
        assert!(
            scenarios
                .iter()
                .any(|s| s.get("group").and_then(JsonValue::as_str) == Some(label)),
            "group {label} must own at least one scenario row"
        );
    }
    assert_eq!(grouped_scenarios, 45.0, "every scenario sits in a group");

    let totals = doc.get("totals").expect("totals object");
    assert!(
        totals
            .get("blocks_per_sec")
            .and_then(JsonValue::as_f64)
            .unwrap()
            > 0.0
    );
    assert_eq!(totals.get("groups").and_then(JsonValue::as_f64), Some(9.0));
    assert_eq!(
        totals.get("passes_eliminated").and_then(JsonValue::as_f64),
        Some(36.0),
        "45 scenarios over 9 fused passes eliminate 36 trace walks"
    );
    assert_eq!(
        totals.get("refs").and_then(JsonValue::as_f64),
        Some(grouped_refs),
        "fused throughput counts refs consumed x designs stepped"
    );

    // The recorded run carries the regression-gate verdict...
    let baseline = doc
        .get("baseline")
        .expect("recorded run must include the baseline block");
    assert_eq!(
        baseline.get("gate_pass").and_then(JsonValue::as_bool),
        Some(true)
    );
    let speedup = baseline
        .get("speedup_vs_pre_optimization")
        .and_then(JsonValue::as_f64)
        .unwrap();
    assert!(
        speedup > 1.0,
        "recorded run must be faster than pre-optimization"
    );

    // ...and when it was recorded at the full configuration (the checked-in
    // record always is), it must document the hot-path improvement fused
    // stepping achieved over the independent-pass loop it ratcheted from
    // (each unique stream is now walked once per comparison instead of once
    // per design, so decode and host-cache traffic amortize over the five
    // designs riding the pass).
    let warmup = doc
        .get("config")
        .and_then(|c| c.get("warmup_refs"))
        .and_then(JsonValue::as_f64);
    if warmup == Some(600_000.0) {
        assert!(
            speedup >= 1.2,
            "full-config record must show at least 1.2x over pre-optimization, got {speedup:.2}"
        );
    }

    // The per-phase counters are present and consistent: the gated loop is
    // fork time plus the fused measured passes, nothing else.
    let totals_fork = totals
        .get("fork_nanos")
        .and_then(JsonValue::as_f64)
        .expect("totals carry fork_nanos");
    let totals_measured = totals
        .get("measured_nanos")
        .and_then(JsonValue::as_f64)
        .expect("totals carry measured_nanos");
    let totals_loop = totals
        .get("loop_nanos")
        .and_then(JsonValue::as_f64)
        .unwrap();
    assert_eq!(totals_fork + totals_measured, totals_loop);

    // Schemas v3/v4: trace generation and checkpoint warming are reported
    // separately from simulation, and neither inflates the gated loop time.
    let tracegen = totals
        .get("tracegen_nanos")
        .and_then(JsonValue::as_f64)
        .expect("schema v3 totals carry tracegen_nanos");
    assert!(tracegen > 0.0, "recorded run materialized streams");
    let snapshot = totals
        .get("snapshot_nanos")
        .and_then(JsonValue::as_f64)
        .expect("schema v4 totals carry snapshot_nanos");
    assert!(snapshot > 0.0, "recorded run warmed checkpoints");
    let elapsed = totals
        .get("elapsed_nanos")
        .and_then(JsonValue::as_f64)
        .unwrap();
    assert!(
        tracegen + snapshot < elapsed,
        "generation and warming are phases of the run, not the whole of it"
    );
}
