//! Keeps the checked-in perf artifacts honest: `bench/baseline.json` must
//! parse for every run configuration, and the recorded `BENCH_perf.json`
//! must carry the documented schema, a passing gate, and the hot-path
//! speedup this optimization round claims.

use rnuca_bench::{JsonValue, PerfBaseline};
use std::path::PathBuf;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn read(name: &str) -> String {
    let path = repo_root().join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

#[test]
fn checked_in_baseline_has_a_section_per_config() {
    let text = read("bench/baseline.json");
    for config in ["smoke", "quick", "full"] {
        let b = PerfBaseline::from_json(&text, config)
            .unwrap_or_else(|e| panic!("baseline section {config}: {e}"));
        assert!(
            b.pre_optimization_blocks_per_sec > 0.0,
            "{config}: pre-opt must be positive"
        );
        assert!(
            b.gate_blocks_per_sec > 0.0,
            "{config}: gate must be positive"
        );
        assert!(
            (0.0..1.0).contains(&b.tolerance),
            "{config}: tolerance must be a fraction, got {}",
            b.tolerance
        );
    }
    // The longer configurations must record a real before/after gap: the
    // gate (post-optimization) number sits above the pre-optimization one.
    for config in ["quick", "full"] {
        let b = PerfBaseline::from_json(&text, config).unwrap();
        assert!(
            b.gate_blocks_per_sec > b.pre_optimization_blocks_per_sec,
            "{config}: the optimization must have moved the gate above the pre-opt number"
        );
    }
}

#[test]
fn recorded_bench_perf_json_parses_with_schema_and_speedup() {
    let doc = JsonValue::parse(&read("BENCH_perf.json")).expect("BENCH_perf.json must parse");
    assert_eq!(
        doc.get("schema_version").and_then(JsonValue::as_f64),
        Some(3.0)
    );
    let scenarios = doc
        .get("scenarios")
        .and_then(JsonValue::as_array)
        .expect("scenarios array");
    assert_eq!(
        scenarios.len(),
        45,
        "5 designs x 3 workloads x 3 core counts"
    );
    for s in scenarios {
        for key in [
            "workload",
            "design",
            "letter",
            "cores",
            "refs",
            "total_cpi",
            "warmup_nanos",
            "measured_nanos",
            "blocks_per_sec",
        ] {
            assert!(s.get(key).is_some(), "scenario record must carry {key}");
        }
    }
    let totals = doc.get("totals").expect("totals object");
    assert!(
        totals
            .get("blocks_per_sec")
            .and_then(JsonValue::as_f64)
            .unwrap()
            > 0.0
    );

    // The recorded run carries the regression-gate verdict...
    let baseline = doc
        .get("baseline")
        .expect("recorded run must include the baseline block");
    assert_eq!(
        baseline.get("gate_pass").and_then(JsonValue::as_bool),
        Some(true)
    );
    let speedup = baseline
        .get("speedup_vs_pre_optimization")
        .and_then(JsonValue::as_f64)
        .unwrap();
    assert!(
        speedup > 1.0,
        "recorded run must be faster than pre-optimization"
    );

    // ...and when it was recorded at the full configuration (the checked-in
    // record always is), it must document the >=1.3x hot-path improvement
    // the shared trace arena achieved over the flat-slab round it ratcheted
    // from (generation now happens once per unique stream, outside the
    // timed loops).
    let warmup = doc
        .get("config")
        .and_then(|c| c.get("warmup_refs"))
        .and_then(JsonValue::as_f64);
    if warmup == Some(600_000.0) {
        assert!(
            speedup >= 1.3,
            "full-config record must show at least 1.3x over pre-optimization, got {speedup:.2}"
        );
    }

    // The per-phase counters of schema v2 are present and consistent.
    let totals_warmup = totals
        .get("warmup_nanos")
        .and_then(JsonValue::as_f64)
        .expect("totals carry warmup_nanos");
    let totals_measured = totals
        .get("measured_nanos")
        .and_then(JsonValue::as_f64)
        .expect("totals carry measured_nanos");
    let totals_loop = totals
        .get("loop_nanos")
        .and_then(JsonValue::as_f64)
        .unwrap();
    assert_eq!(totals_warmup + totals_measured, totals_loop);

    // Schema v3: trace generation is reported separately from simulation,
    // and it no longer inflates the gated loop time.
    let tracegen = totals
        .get("tracegen_nanos")
        .and_then(JsonValue::as_f64)
        .expect("schema v3 totals carry tracegen_nanos");
    assert!(tracegen > 0.0, "recorded run materialized streams");
    let elapsed = totals
        .get("elapsed_nanos")
        .and_then(JsonValue::as_f64)
        .unwrap();
    assert!(
        tracegen < elapsed,
        "generation is one phase of the run, not the whole of it"
    );
}
