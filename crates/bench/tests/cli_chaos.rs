//! End-to-end chaos smoke: kill the real `figures` binary at a fail-point-
//! chosen job boundary mid-sweep, resume it from its journal, and prove the
//! resumed warehouse is byte-identical to one built by a run that was never
//! interrupted.
//!
//! Ignored by default — each leg runs a full `--smoke` sweep, so CI runs
//! this in release mode (`cargo test --release -p rnuca-bench --test
//! cli_chaos -- --include-ignored`, the `chaos-smoke` step). The fail-point
//! plan travels to the child process via `RNUCA_FAILPOINTS`; the test
//! profile compiles the binary with live fail points (dev-dependency
//! feature unification), release-profile `cargo build` does not.

use std::path::PathBuf;
use std::process::{Command, Output};

fn temp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("rnuca-chaos-cli-{}-{name}", std::process::id()))
}

fn figures(args: &[&str], failpoints: Option<&str>) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_figures"));
    cmd.args(args).env_remove("RNUCA_FAILPOINTS");
    if let Some(plan) = failpoints {
        cmd.env("RNUCA_FAILPOINTS", plan);
    }
    cmd.output().expect("the figures binary runs")
}

#[test]
#[ignore = "runs three --smoke sweeps; CI's chaos-smoke step runs it in release"]
fn killed_and_resumed_sweep_builds_a_byte_identical_warehouse() {
    let baseline_store = temp("baseline.bin");
    let baseline_journal = temp("baseline.journal");
    let chaos_store = temp("chaos.bin");
    let chaos_journal = temp("chaos.journal");
    for p in [
        &baseline_store,
        &baseline_journal,
        &chaos_store,
        &chaos_journal,
    ] {
        std::fs::remove_file(p).ok();
    }
    let store_arg = |p: &PathBuf| format!("--store={}", p.display());
    let journal_arg = |p: &PathBuf| format!("--journal={}", p.display());

    // Leg 1 — ground truth: an uninterrupted journaled sweep.
    let out = figures(
        &[
            "--smoke",
            "--workers=2",
            "sweep",
            &store_arg(&baseline_store),
            &journal_arg(&baseline_journal),
        ],
        None,
    );
    assert!(
        out.status.success(),
        "baseline sweep failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let baseline_bytes = std::fs::read(&baseline_store).expect("baseline store exists");
    let baseline_json = out.stdout.clone();
    assert!(
        !baseline_journal.exists(),
        "a completed sweep removes its journal"
    );

    // Leg 2 — chaos: a fixed-seed fail point injects an i/o error into one
    // of the first 10 journal appends, killing the run at a job boundary.
    let out = figures(
        &[
            "--smoke",
            "--workers=2",
            "sweep",
            &store_arg(&chaos_store),
            &journal_arg(&chaos_journal),
        ],
        Some("sweep::journal::append=io@seed:7%10"),
    );
    assert!(
        !out.status.success(),
        "the injected fault must kill the sweep"
    );
    assert!(chaos_journal.exists(), "the journal survives the crash");
    assert!(
        !chaos_store.exists(),
        "a killed sweep must not have written a store"
    );

    // The journal subcommand can inspect the wreckage without running.
    let out = figures(&["journal", chaos_journal.to_str().unwrap()], None);
    assert!(out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("jobs journaled"),
        "journal inspection: {}",
        String::from_utf8_lossy(&out.stdout)
    );

    // A rerun without --resume refuses to clobber the leftover journal.
    let out = figures(
        &[
            "--smoke",
            "--workers=2",
            "sweep",
            &store_arg(&chaos_store),
            &journal_arg(&chaos_journal),
        ],
        None,
    );
    assert_eq!(out.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--resume"),
        "the error must point at --resume: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Leg 3 — resume: replay the journaled jobs, run the rest, and land the
    // exact bytes (and the exact JSON) the uninterrupted run produced.
    let out = figures(
        &[
            "--smoke",
            "--workers=2",
            "sweep",
            "--resume",
            &store_arg(&chaos_store),
            &journal_arg(&chaos_journal),
        ],
        None,
    );
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(out.status.success(), "resume failed: {stderr}");
    assert!(stderr.contains("replayed"), "resume summary: {stderr}");
    assert_eq!(out.stdout, baseline_json, "resumed sweep JSON differs");
    let resumed_bytes = std::fs::read(&chaos_store).expect("resumed store exists");
    assert_eq!(
        resumed_bytes, baseline_bytes,
        "resumed warehouse is not byte-identical to the uninterrupted run"
    );
    assert!(
        !chaos_journal.exists(),
        "a completed resume removes its journal"
    );

    for p in [&baseline_store, &chaos_store] {
        std::fs::remove_file(p).ok();
    }
}
