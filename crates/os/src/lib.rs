//! Operating-system cooperation layer for R-NUCA.
//!
//! R-NUCA relies on the OS rather than on hardware heuristics (Section 4.3 of
//! the paper): memory accesses are classified **at page granularity at
//! TLB-miss time**. The OS page table carries, per page, a Private bit, the
//! core ID (CID) of the last accessor, and a Poisoned bit used while a page is
//! being re-classified from private to shared. The OS also assigns each tile a
//! rotational ID (RID) used by rotational interleaving (Section 4.1).
//!
//! This crate provides that machinery:
//!
//! * [`PageTable`] / [`PageInfo`] — per-page classification state,
//! * [`Tlb`] — a per-core TLB caching classifications,
//! * [`OsClassifier`] — the TLB-miss state machine that decides when a page
//!   stays private, is re-classified as shared, or merely follows a migrated
//!   thread, and reports which tile must be shot down,
//! * [`rid_assignment`] — the rotational-ID assignment of Section 4.1.
//!
//! # Example
//!
//! ```
//! use rnuca_os::{OsClassifier, PageClass, ClassificationEvent};
//! use rnuca_types::addr::PageAddr;
//! use rnuca_types::ids::CoreId;
//!
//! let mut os = OsClassifier::new(16, 64);
//! let page = PageAddr::from_page_number(10);
//! // First touch: the page becomes private to core 0.
//! let e0 = os.access(page, CoreId::new(0), false);
//! assert_eq!(e0.class, PageClass::Private);
//! // A second core touches the same page: re-classification to shared,
//! // with a shoot-down of core 0's cached copies.
//! let e1 = os.access(page, CoreId::new(3), false);
//! assert_eq!(e1.class, PageClass::Shared);
//! assert_eq!(e1.event, ClassificationEvent::Reclassified { previous_owner: CoreId::new(0) });
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod classifier;
pub mod page_table;
pub mod rid;
pub mod tlb;

pub use classifier::{ClassificationEvent, ClassificationOutcome, OsClassifier, OsStats};
pub use page_table::{PageClass, PageInfo, PageTable, PageUpdate};
pub use rid::{rid_assignment, rid_for_tile};
pub use tlb::Tlb;
