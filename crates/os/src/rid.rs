//! Rotational-ID (RID) assignment (Section 4.1 of the paper).
//!
//! RIDs are assigned by the operating system. In a size-`n` cluster RIDs
//! range over `0..n`: the OS gives some starting tile RID 0, consecutive tiles
//! in a row receive consecutive RIDs, and consecutive tiles in a column
//! receive RIDs that differ by `log2(n)`, all modulo `n`.
//!
//! The resulting pattern guarantees the key rotational-interleaving invariant
//! (verified by the `rnuca` crate's property tests): every tile stores exactly
//! the same `1/n`-th of the address space on behalf of *any* size-`n`
//! fixed-center cluster it participates in, so replication across clusters
//! never increases per-slice capacity pressure.

use rnuca_types::ids::{RotationalId, TileId};

/// Computes the RID of a single tile for size-`n` clusters on a `width`-tile-wide grid.
///
/// `start` rotates the whole assignment (the OS "assigns RID 0 to a random
/// tile"); the placement properties are independent of it.
///
/// # Panics
///
/// Panics if `n` is not a power of two or `width` is zero.
pub fn rid_for_tile(tile: TileId, n: usize, width: usize, start: usize) -> RotationalId {
    assert!(
        n.is_power_of_two(),
        "cluster size must be a power of two, got {n}"
    );
    assert!(width > 0, "grid width must be non-zero");
    if n == 1 {
        return RotationalId::new(0);
    }
    let (x, y) = tile.coords(width);
    let step_per_row = n.trailing_zeros() as usize; // log2(n)
    let rid = (start + x + step_per_row * y) % n;
    RotationalId::new(rid)
}

/// Computes the RID of every tile of a `width x height` grid, in row-major tile order.
///
/// # Panics
///
/// Panics if `n` is not a power of two or either dimension is zero.
pub fn rid_assignment(n: usize, width: usize, height: usize, start: usize) -> Vec<RotationalId> {
    assert!(height > 0, "grid height must be non-zero");
    (0..width * height)
        .map(|i| rid_for_tile(TileId::new(i), n, width, start))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_four_assignment_on_4x4() {
        // rid(x, y) = (x + 2y) mod 4 with start 0.
        let rids = rid_assignment(4, 4, 4, 0);
        let values: Vec<usize> = rids.iter().map(|r| r.value()).collect();
        assert_eq!(
            values,
            vec![
                0, 1, 2, 3, // row 0
                2, 3, 0, 1, // row 1
                0, 1, 2, 3, // row 2
                2, 3, 0, 1, // row 3
            ]
        );
    }

    #[test]
    fn rows_are_consecutive_and_columns_differ_by_log2n() {
        let n = 4;
        let width = 4;
        for y in 0..4usize {
            for x in 0..3usize {
                let a = rid_for_tile(TileId::from_coords(x, y, width), n, width, 0).value();
                let b = rid_for_tile(TileId::from_coords(x + 1, y, width), n, width, 0).value();
                assert_eq!((a + 1) % n, b, "row neighbours must have consecutive RIDs");
            }
        }
        for x in 0..4usize {
            for y in 0..3usize {
                let a = rid_for_tile(TileId::from_coords(x, y, width), n, width, 0).value();
                let b = rid_for_tile(TileId::from_coords(x, y + 1, width), n, width, 0).value();
                assert_eq!((a + 2) % n, b, "column neighbours must differ by log2(n)");
            }
        }
    }

    #[test]
    fn each_rid_appears_equally_often_on_4x4_for_size_4() {
        let rids = rid_assignment(4, 4, 4, 0);
        let mut counts = [0usize; 4];
        for r in rids {
            counts[r.value()] += 1;
        }
        assert_eq!(counts, [4, 4, 4, 4]);
    }

    #[test]
    fn start_offset_rotates_the_assignment() {
        let base = rid_assignment(4, 4, 4, 0);
        let shifted = rid_assignment(4, 4, 4, 1);
        for (b, s) in base.iter().zip(&shifted) {
            assert_eq!((b.value() + 1) % 4, s.value());
        }
    }

    #[test]
    fn size_one_clusters_have_rid_zero_everywhere() {
        assert!(rid_assignment(1, 4, 4, 3).iter().all(|r| r.value() == 0));
    }

    #[test]
    fn size_two_assignment_is_a_checkerboard() {
        let rids = rid_assignment(2, 4, 4, 0);
        for (i, rid) in rids.iter().enumerate() {
            let (x, y) = TileId::new(i).coords(4);
            assert_eq!(rid.value(), (x + y) % 2);
        }
    }

    #[test]
    fn size_sixteen_covers_all_rids_on_4x4() {
        let rids = rid_assignment(16, 4, 4, 0);
        // rid(x, y) = (x + 4y) mod 16 == tile index: a bijection.
        let mut seen = [false; 16];
        for r in rids {
            seen[r.value()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_cluster_size_panics() {
        rid_for_tile(TileId::new(0), 3, 4, 0);
    }
}
