//! The TLB-miss classification state machine of Section 4.3.
//!
//! Every data access consults the requesting core's TLB. On a miss the OS is
//! invoked: a first touch marks the page private to the accessor; a later
//! touch by a different core either follows a migrated thread (the page stays
//! private, ownership moves) or re-classifies the page as shared, poisoning
//! the page while the previous owner's TLB entry and cached blocks are shot
//! down. Instruction fetches are classified immediately as instructions.

use crate::page_table::{PageClass, PageTable, PageUpdate};
use crate::tlb::Tlb;
use rnuca_types::addr::PageAddr;
use rnuca_types::ids::CoreId;
use rnuca_types::{Snap, SnapReader};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// What happened on an access, from the OS's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClassificationEvent {
    /// The core's TLB already had the classification; no OS involvement.
    TlbHit,
    /// First touch of the page; it becomes private to the accessor
    /// (or an instruction page for instruction fetches).
    FirstTouch,
    /// TLB miss, but the page table entry was already consistent with the
    /// accessor (same owner, or an already-shared/instruction page).
    PageTableHit,
    /// The page was private to another core and is now re-classified as
    /// shared. The previous owner's TLB entry and cached blocks must be shot
    /// down (the page is poisoned for the duration).
    Reclassified {
        /// The core that previously owned the page.
        previous_owner: CoreId,
    },
    /// The page was private to another core, but the OS determined the owning
    /// thread migrated; the page stays private and ownership moves. The
    /// previous core's cached blocks must still be invalidated.
    OwnerMigrated {
        /// The core that previously owned the page.
        previous_owner: CoreId,
    },
}

/// The classification returned to the requesting core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassificationOutcome {
    /// The page's classification after this access.
    pub class: PageClass,
    /// What the OS had to do to produce it.
    pub event: ClassificationEvent,
}

/// Counters accumulated by the OS layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OsStats {
    /// Accesses satisfied by the requesting core's TLB.
    pub tlb_hits: u64,
    /// Accesses that trapped to the OS.
    pub tlb_misses: u64,
    /// Pages touched for the first time.
    pub first_touches: u64,
    /// Private-to-shared re-classifications performed.
    pub reclassifications: u64,
    /// Private-page ownership migrations performed.
    pub owner_migrations: u64,
    /// TLB shoot-downs issued to previous owners.
    pub shootdowns: u64,
}

/// The OS classification machinery: a page table plus one TLB per core.
#[derive(Debug, Clone, PartialEq)]
pub struct OsClassifier {
    page_table: PageTable,
    tlbs: Vec<Tlb>,
    /// Thread migrations the scheduler has told us about: `(from, to)` pairs.
    /// A private-page owner mismatch matching one of these is treated as a
    /// migration rather than as sharing.
    pending_migrations: HashSet<(CoreId, CoreId)>,
    stats: OsStats,
}

impl OsClassifier {
    /// Creates the classifier for `num_cores` cores with `tlb_entries`-entry TLBs.
    ///
    /// # Panics
    ///
    /// Panics if `num_cores` is zero or `tlb_entries` is zero.
    pub fn new(num_cores: usize, tlb_entries: usize) -> Self {
        assert!(num_cores > 0, "need at least one core");
        OsClassifier {
            page_table: PageTable::new(),
            tlbs: (0..num_cores).map(|_| Tlb::new(tlb_entries)).collect(),
            pending_migrations: HashSet::new(),
            stats: OsStats::default(),
        }
    }

    /// Number of cores (and TLBs).
    pub fn num_cores(&self) -> usize {
        self.tlbs.len()
    }

    /// Read access to the page table (for accuracy measurements and reports).
    pub fn page_table(&self) -> &PageTable {
        &self.page_table
    }

    /// Read access to a core's TLB.
    pub fn tlb(&self, core: CoreId) -> &Tlb {
        &self.tlbs[core.index()]
    }

    /// Accumulated OS counters.
    pub fn stats(&self) -> &OsStats {
        &self.stats
    }

    /// Tells the classifier that the scheduler moved a thread from one core to
    /// another. Subsequent private-page owner mismatches matching this pair
    /// are treated as migrations (the page stays private).
    pub fn note_thread_migration(&mut self, from: CoreId, to: CoreId) {
        self.pending_migrations.insert((from, to));
    }

    /// Current classification of a page, if it has ever been touched.
    pub fn classification_of(&self, page: PageAddr) -> Option<PageClass> {
        self.page_table.get(page).map(|i| i.class)
    }

    /// Hints the CPU to pull the state an [`OsClassifier::access`] for
    /// `page` will touch — the page-table entry — into cache. Performance
    /// hint only; the simulator's batch drivers call it for upcoming
    /// references.
    #[inline]
    pub fn prefetch(&self, page: PageAddr) {
        self.page_table.prefetch(page);
    }

    /// Read-only peek at the class an [`OsClassifier::access`] by `core`
    /// would see: the core's TLB first (small and hot), the page table on a
    /// TLB miss. No state transition, fill, or statistic is touched, so the
    /// answer can be stale with respect to the access that eventually runs —
    /// callers use it speculatively (prefetch hints computing a likely home
    /// slice). The page-table probe a TLB miss performs here touches the
    /// same entry the later trap would, absorbing its cache miss early.
    pub fn peek_class(&self, page: PageAddr, core: CoreId) -> Option<PageClass> {
        self.tlbs[core.index()]
            .peek(page)
            .or_else(|| self.page_table.get(page).map(|i| i.class))
    }

    /// Classifies an access by `core` to `page`.
    ///
    /// `is_instruction` marks requests originating from the L1 instruction
    /// cache, which Section 4.3 classifies immediately as instruction
    /// accesses.
    pub fn access(
        &mut self,
        page: PageAddr,
        core: CoreId,
        is_instruction: bool,
    ) -> ClassificationOutcome {
        assert!(core.index() < self.tlbs.len(), "core {core} out of range");

        // 1. TLB lookup.
        if let Some(class) = self.tlbs[core.index()].lookup(page) {
            self.stats.tlb_hits += 1;
            return ClassificationOutcome {
                class,
                event: ClassificationEvent::TlbHit,
            };
        }
        self.stats.tlb_misses += 1;

        // 2. Trap to the OS: one page-table probe performs the whole
        // touch/classify/update transition (the poison window of Section 4.3
        // opens and closes inside it — the trace-driven model completes the
        // shoot-down atomically within the access).
        let migrations = &self.pending_migrations;
        let update = self
            .page_table
            .classify_and_update(page, core, is_instruction, |prev| {
                migrations.contains(&(prev, core))
            });
        let (outcome, shootdown_target) = match update {
            PageUpdate::FirstTouch(info) => {
                self.stats.first_touches += 1;
                let outcome = ClassificationOutcome {
                    class: info.class,
                    event: ClassificationEvent::FirstTouch,
                };
                (outcome, None)
            }
            PageUpdate::Consistent(info) => {
                let outcome = ClassificationOutcome {
                    class: info.class,
                    event: ClassificationEvent::PageTableHit,
                };
                (outcome, None)
            }
            PageUpdate::OwnerMigrated {
                previous_owner,
                info,
            } => {
                // Thread migration: the page stays private, ownership moves.
                self.stats.owner_migrations += 1;
                let outcome = ClassificationOutcome {
                    class: info.class,
                    event: ClassificationEvent::OwnerMigrated { previous_owner },
                };
                (outcome, Some(previous_owner))
            }
            PageUpdate::Reclassified {
                previous_owner,
                info,
            } => {
                // Genuine sharing: re-classified as shared.
                self.stats.reclassifications += 1;
                let outcome = ClassificationOutcome {
                    class: info.class,
                    event: ClassificationEvent::Reclassified { previous_owner },
                };
                (outcome, Some(previous_owner))
            }
        };
        if let Some(previous_owner) = shootdown_target {
            if self.tlbs[previous_owner.index()].shootdown(page) {
                self.stats.shootdowns += 1;
            }
        }
        self.tlbs[core.index()].fill(page, outcome.class);
        outcome
    }
}

impl Snap for OsStats {
    fn encode(&self, out: &mut Vec<u8>) {
        self.tlb_hits.encode(out);
        self.tlb_misses.encode(out);
        self.first_touches.encode(out);
        self.reclassifications.encode(out);
        self.owner_migrations.encode(out);
        self.shootdowns.encode(out);
    }

    fn decode(r: &mut SnapReader<'_>) -> Self {
        OsStats {
            tlb_hits: r.get(),
            tlb_misses: r.get(),
            first_touches: r.get(),
            reclassifications: r.get(),
            owner_migrations: r.get(),
            shootdowns: r.get(),
        }
    }
}

impl Snap for OsClassifier {
    /// The migration set is encoded in sorted order so equal classifiers
    /// produce byte-identical encodings regardless of `HashSet` iteration
    /// order (membership is all the simulator ever queries, so restoring
    /// into a freshly built set preserves behaviour exactly).
    fn encode(&self, out: &mut Vec<u8>) {
        self.page_table.encode(out);
        self.tlbs.encode(out);
        let mut migrations: Vec<(CoreId, CoreId)> =
            self.pending_migrations.iter().copied().collect();
        migrations.sort_unstable();
        migrations.encode(out);
        self.stats.encode(out);
    }

    fn decode(r: &mut SnapReader<'_>) -> Self {
        let page_table = r.get();
        let tlbs = r.get();
        let migrations: Vec<(CoreId, CoreId)> = r.get();
        OsClassifier {
            page_table,
            tlbs,
            pending_migrations: migrations.into_iter().collect(),
            stats: r.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(n: u64) -> PageAddr {
        PageAddr::from_page_number(n)
    }

    fn c(i: usize) -> CoreId {
        CoreId::new(i)
    }

    #[test]
    fn first_touch_makes_page_private() {
        let mut os = OsClassifier::new(4, 16);
        let out = os.access(p(1), c(0), false);
        assert_eq!(out.class, PageClass::Private);
        assert_eq!(out.event, ClassificationEvent::FirstTouch);
        assert_eq!(os.stats().first_touches, 1);
    }

    #[test]
    fn repeated_access_by_owner_hits_tlb() {
        let mut os = OsClassifier::new(4, 16);
        os.access(p(1), c(0), false);
        let out = os.access(p(1), c(0), false);
        assert_eq!(out.event, ClassificationEvent::TlbHit);
        assert_eq!(out.class, PageClass::Private);
        assert_eq!(os.stats().tlb_hits, 1);
    }

    #[test]
    fn second_core_triggers_reclassification() {
        let mut os = OsClassifier::new(4, 16);
        os.access(p(1), c(0), false);
        let out = os.access(p(1), c(2), false);
        assert_eq!(out.class, PageClass::Shared);
        assert_eq!(
            out.event,
            ClassificationEvent::Reclassified {
                previous_owner: c(0)
            }
        );
        assert_eq!(os.stats().reclassifications, 1);
        assert_eq!(os.stats().shootdowns, 1);
        // Page table now says shared for everyone, including the original owner.
        assert_eq!(os.classification_of(p(1)), Some(PageClass::Shared));
        // The previous owner's next access misses its TLB (it was shot down)
        // but the page table says shared.
        let again = os.access(p(1), c(0), false);
        assert_eq!(again.class, PageClass::Shared);
        assert_eq!(again.event, ClassificationEvent::PageTableHit);
    }

    #[test]
    fn third_core_sees_shared_without_further_reclassification() {
        let mut os = OsClassifier::new(4, 16);
        os.access(p(1), c(0), false);
        os.access(p(1), c(1), false);
        let out = os.access(p(1), c(3), false);
        assert_eq!(out.class, PageClass::Shared);
        assert_eq!(out.event, ClassificationEvent::PageTableHit);
        assert_eq!(os.stats().reclassifications, 1);
    }

    #[test]
    fn instruction_fetch_classifies_page_as_instruction() {
        let mut os = OsClassifier::new(4, 16);
        let out = os.access(p(9), c(1), true);
        assert_eq!(out.class, PageClass::Instruction);
        // Other cores see the same classification.
        let out2 = os.access(p(9), c(2), true);
        assert_eq!(out2.class, PageClass::Instruction);
        assert_eq!(out2.event, ClassificationEvent::PageTableHit);
    }

    #[test]
    fn thread_migration_keeps_page_private() {
        let mut os = OsClassifier::new(4, 16);
        os.access(p(5), c(0), false);
        os.note_thread_migration(c(0), c(3));
        let out = os.access(p(5), c(3), false);
        assert_eq!(out.class, PageClass::Private);
        assert_eq!(
            out.event,
            ClassificationEvent::OwnerMigrated {
                previous_owner: c(0)
            }
        );
        assert_eq!(os.stats().owner_migrations, 1);
        assert_eq!(os.stats().reclassifications, 0);
        // The new owner now hits in its TLB.
        assert_eq!(
            os.access(p(5), c(3), false).event,
            ClassificationEvent::TlbHit
        );
    }

    #[test]
    fn migration_of_unrelated_core_still_reclassifies() {
        let mut os = OsClassifier::new(4, 16);
        os.access(p(5), c(0), false);
        os.note_thread_migration(c(1), c(2));
        let out = os.access(p(5), c(2), false);
        assert_eq!(out.class, PageClass::Shared);
    }

    #[test]
    fn stats_track_tlb_misses() {
        let mut os = OsClassifier::new(2, 4);
        os.access(p(1), c(0), false);
        os.access(p(2), c(0), false);
        os.access(p(1), c(0), false);
        assert_eq!(os.stats().tlb_misses, 2);
        assert_eq!(os.stats().tlb_hits, 1);
        assert_eq!(os.page_table().len(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_core_panics() {
        OsClassifier::new(2, 4).access(p(0), c(5), false);
    }
}
