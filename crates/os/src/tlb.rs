//! Per-core TLB model.
//!
//! The TLB caches the page classification communicated by the OS ("the
//! accessor receives a TLB fill with an additional Private bit set",
//! Section 4.3). A TLB hit means the core can index the L2 without OS
//! involvement; a TLB miss traps to the [`crate::OsClassifier`]. Shoot-downs
//! remove a page's entry from every core's TLB during re-classification.

use crate::page_table::PageClass;
use rnuca_types::addr::PageAddr;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Statistics accumulated by a [`Tlb`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbStats {
    /// Lookups that found a valid entry.
    pub hits: u64,
    /// Lookups that missed and trapped to the OS.
    pub misses: u64,
    /// Entries removed by shoot-downs.
    pub shootdowns: u64,
    /// Entries displaced by capacity.
    pub evictions: u64,
}

/// A fully-associative, LRU translation lookaside buffer caching page classifications.
#[derive(Debug, Clone)]
pub struct Tlb {
    capacity: usize,
    entries: HashMap<PageAddr, (PageClass, u64)>,
    clock: u64,
    stats: TlbStats,
}

impl Tlb {
    /// Creates a TLB with room for `capacity` page entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a TLB needs at least one entry");
        Tlb { capacity, entries: HashMap::new(), clock: 0, stats: TlbStats::default() }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of valid entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the TLB holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &TlbStats {
        &self.stats
    }

    /// Looks up a page, returning its cached classification on a hit.
    pub fn lookup(&mut self, page: PageAddr) -> Option<PageClass> {
        self.clock += 1;
        let clock = self.clock;
        match self.entries.get_mut(&page) {
            Some((class, last_use)) => {
                *last_use = clock;
                self.stats.hits += 1;
                Some(*class)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Fills the TLB with a classification after an OS trap.
    pub fn fill(&mut self, page: PageAddr, class: PageClass) {
        self.clock += 1;
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&page) {
            // Evict the least recently used entry.
            if let Some((&victim, _)) = self.entries.iter().min_by_key(|(_, (_, t))| *t) {
                self.entries.remove(&victim);
                self.stats.evictions += 1;
            }
        }
        self.entries.insert(page, (class, self.clock));
    }

    /// Removes a page's entry (OS shoot-down). Returns `true` if it was present.
    pub fn shootdown(&mut self, page: PageAddr) -> bool {
        let present = self.entries.remove(&page).is_some();
        if present {
            self.stats.shootdowns += 1;
        }
        present
    }

    /// Checks residency without updating LRU or statistics.
    pub fn peek(&self, page: PageAddr) -> Option<PageClass> {
        self.entries.get(&page).map(|(c, _)| *c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(n: u64) -> PageAddr {
        PageAddr::from_page_number(n)
    }

    #[test]
    fn miss_fill_hit() {
        let mut tlb = Tlb::new(4);
        assert_eq!(tlb.lookup(p(1)), None);
        tlb.fill(p(1), PageClass::Private);
        assert_eq!(tlb.lookup(p(1)), Some(PageClass::Private));
        assert_eq!(tlb.stats().hits, 1);
        assert_eq!(tlb.stats().misses, 1);
    }

    #[test]
    fn capacity_eviction_is_lru() {
        let mut tlb = Tlb::new(2);
        tlb.fill(p(1), PageClass::Private);
        tlb.fill(p(2), PageClass::Shared);
        // Touch page 1 so page 2 is LRU.
        tlb.lookup(p(1));
        tlb.fill(p(3), PageClass::Private);
        assert_eq!(tlb.peek(p(2)), None, "LRU entry should be evicted");
        assert_eq!(tlb.peek(p(1)), Some(PageClass::Private));
        assert_eq!(tlb.stats().evictions, 1);
        assert_eq!(tlb.len(), 2);
    }

    #[test]
    fn refilling_existing_page_updates_class_without_eviction() {
        let mut tlb = Tlb::new(1);
        tlb.fill(p(1), PageClass::Private);
        tlb.fill(p(1), PageClass::Shared);
        assert_eq!(tlb.peek(p(1)), Some(PageClass::Shared));
        assert_eq!(tlb.stats().evictions, 0);
    }

    #[test]
    fn shootdown_removes_entry() {
        let mut tlb = Tlb::new(4);
        tlb.fill(p(7), PageClass::Private);
        assert!(tlb.shootdown(p(7)));
        assert!(!tlb.shootdown(p(7)));
        assert_eq!(tlb.stats().shootdowns, 1);
        assert!(tlb.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_panics() {
        Tlb::new(0);
    }
}
