//! Per-core TLB model.
//!
//! The TLB caches the page classification communicated by the OS ("the
//! accessor receives a TLB fill with an additional Private bit set",
//! Section 4.3). A TLB hit means the core can index the L2 without OS
//! involvement; a TLB miss traps to the [`crate::OsClassifier`]. Shoot-downs
//! remove a page's entry from every core's TLB during re-classification.
//!
//! The TLB sits on the simulator's per-access critical path, and streaming
//! workloads miss it on nearly every reference, so both halves are O(1): an
//! open-addressed [`U64Map`] keyed by page number finds entries, and an
//! intrusive doubly-linked list over a fixed slab keeps exact LRU order —
//! eviction pops the tail instead of scanning every entry for the oldest
//! stamp the way the `HashMap`-backed version did.

use crate::page_table::PageClass;
use rnuca_types::addr::PageAddr;
use rnuca_types::index_map::U64Map;
use rnuca_types::{Snap, SnapReader};
use serde::{Deserialize, Serialize};

/// Statistics accumulated by a [`Tlb`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbStats {
    /// Lookups that found a valid entry.
    pub hits: u64,
    /// Lookups that missed and trapped to the OS.
    pub misses: u64,
    /// Entries removed by shoot-downs.
    pub shootdowns: u64,
    /// Entries displaced by capacity.
    pub evictions: u64,
}

/// Sentinel slot index marking "no node" in the LRU list.
const NIL: u32 = u32::MAX;

/// One slab entry of the LRU list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Node {
    page: u64,
    class: PageClass,
    prev: u32,
    next: u32,
}

/// A fully-associative, LRU translation lookaside buffer caching page classifications.
#[derive(Debug, Clone, PartialEq)]
pub struct Tlb {
    capacity: usize,
    /// Page number → slab slot of its node.
    map: U64Map<u32>,
    /// Node slab; never exceeds `capacity` live + freed entries.
    nodes: Vec<Node>,
    /// Slots returned by shoot-downs, reused before the slab grows.
    free: Vec<u32>,
    /// Most-recently-used node, or [`NIL`].
    head: u32,
    /// Least-recently-used node, or [`NIL`].
    tail: u32,
    stats: TlbStats,
}

impl Tlb {
    /// Creates a TLB with room for `capacity` page entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a TLB needs at least one entry");
        Tlb {
            capacity,
            map: U64Map::with_capacity(capacity),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            stats: TlbStats::default(),
        }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of valid entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` if the TLB holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &TlbStats {
        &self.stats
    }

    /// Unlinks a node from the LRU list (it remains in the slab).
    fn unlink(&mut self, idx: u32) {
        let Node { prev, next, .. } = self.nodes[idx as usize];
        if prev == NIL {
            self.head = next;
        } else {
            self.nodes[prev as usize].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.nodes[next as usize].prev = prev;
        }
    }

    /// Links a node at the head (most-recently-used position).
    fn link_front(&mut self, idx: u32) {
        self.nodes[idx as usize].prev = NIL;
        self.nodes[idx as usize].next = self.head;
        if self.head != NIL {
            self.nodes[self.head as usize].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Looks up a page, returning its cached classification on a hit.
    pub fn lookup(&mut self, page: PageAddr) -> Option<PageClass> {
        match self.map.get(page.page_number()).copied() {
            Some(idx) => {
                self.stats.hits += 1;
                if self.head != idx {
                    self.unlink(idx);
                    self.link_front(idx);
                }
                Some(self.nodes[idx as usize].class)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Fills the TLB with a classification after an OS trap, evicting the
    /// least-recently-used entry if the TLB is full.
    pub fn fill(&mut self, page: PageAddr, class: PageClass) {
        let key = page.page_number();
        if let Some(&idx) = self.map.get(key) {
            // Refresh in place: update the class and promote to MRU.
            self.nodes[idx as usize].class = class;
            if self.head != idx {
                self.unlink(idx);
                self.link_front(idx);
            }
            return;
        }
        let idx = if self.map.len() >= self.capacity {
            // Evict the LRU tail and reuse its slot.
            let victim = self.tail;
            self.unlink(victim);
            self.map.remove(self.nodes[victim as usize].page);
            self.stats.evictions += 1;
            victim
        } else if let Some(freed) = self.free.pop() {
            freed
        } else {
            self.nodes.push(Node {
                page: 0,
                class,
                prev: NIL,
                next: NIL,
            });
            (self.nodes.len() - 1) as u32
        };
        self.nodes[idx as usize].page = key;
        self.nodes[idx as usize].class = class;
        self.link_front(idx);
        self.map.insert(key, idx);
    }

    /// Removes a page's entry (OS shoot-down). Returns `true` if it was present.
    pub fn shootdown(&mut self, page: PageAddr) -> bool {
        match self.map.remove(page.page_number()) {
            Some(idx) => {
                self.unlink(idx);
                self.free.push(idx);
                self.stats.shootdowns += 1;
                true
            }
            None => false,
        }
    }

    /// Checks residency without updating LRU or statistics.
    pub fn peek(&self, page: PageAddr) -> Option<PageClass> {
        self.map
            .get(page.page_number())
            .map(|&idx| self.nodes[idx as usize].class)
    }
}

impl Snap for TlbStats {
    fn encode(&self, out: &mut Vec<u8>) {
        self.hits.encode(out);
        self.misses.encode(out);
        self.shootdowns.encode(out);
        self.evictions.encode(out);
    }

    fn decode(r: &mut SnapReader<'_>) -> Self {
        TlbStats {
            hits: r.get(),
            misses: r.get(),
            shootdowns: r.get(),
            evictions: r.get(),
        }
    }
}

impl Snap for Node {
    fn encode(&self, out: &mut Vec<u8>) {
        self.page.encode(out);
        self.class.encode(out);
        self.prev.encode(out);
        self.next.encode(out);
    }

    fn decode(r: &mut SnapReader<'_>) -> Self {
        Node {
            page: r.get(),
            class: r.get(),
            prev: r.get(),
            next: r.get(),
        }
    }
}

impl Snap for Tlb {
    /// Encodes the node slab, free list, and LRU links verbatim, so the
    /// decoded TLB evicts in exactly the order the original would.
    fn encode(&self, out: &mut Vec<u8>) {
        self.capacity.encode(out);
        self.map.encode(out);
        self.nodes.encode(out);
        self.free.encode(out);
        self.head.encode(out);
        self.tail.encode(out);
        self.stats.encode(out);
    }

    fn decode(r: &mut SnapReader<'_>) -> Self {
        Tlb {
            capacity: r.get(),
            map: r.get(),
            nodes: r.get(),
            free: r.get(),
            head: r.get(),
            tail: r.get(),
            stats: r.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(n: u64) -> PageAddr {
        PageAddr::from_page_number(n)
    }

    #[test]
    fn miss_fill_hit() {
        let mut tlb = Tlb::new(4);
        assert_eq!(tlb.lookup(p(1)), None);
        tlb.fill(p(1), PageClass::Private);
        assert_eq!(tlb.lookup(p(1)), Some(PageClass::Private));
        assert_eq!(tlb.stats().hits, 1);
        assert_eq!(tlb.stats().misses, 1);
    }

    #[test]
    fn capacity_eviction_is_lru() {
        let mut tlb = Tlb::new(2);
        tlb.fill(p(1), PageClass::Private);
        tlb.fill(p(2), PageClass::Shared);
        // Touch page 1 so page 2 is LRU.
        tlb.lookup(p(1));
        tlb.fill(p(3), PageClass::Private);
        assert_eq!(tlb.peek(p(2)), None, "LRU entry should be evicted");
        assert_eq!(tlb.peek(p(1)), Some(PageClass::Private));
        assert_eq!(tlb.stats().evictions, 1);
        assert_eq!(tlb.len(), 2);
    }

    #[test]
    fn refilling_existing_page_updates_class_without_eviction() {
        let mut tlb = Tlb::new(1);
        tlb.fill(p(1), PageClass::Private);
        tlb.fill(p(1), PageClass::Shared);
        assert_eq!(tlb.peek(p(1)), Some(PageClass::Shared));
        assert_eq!(tlb.stats().evictions, 0);
    }

    #[test]
    fn shootdown_removes_entry() {
        let mut tlb = Tlb::new(4);
        tlb.fill(p(7), PageClass::Private);
        assert!(tlb.shootdown(p(7)));
        assert!(!tlb.shootdown(p(7)));
        assert_eq!(tlb.stats().shootdowns, 1);
        assert!(tlb.is_empty());
    }

    #[test]
    fn shootdown_slots_are_reused_and_order_survives() {
        let mut tlb = Tlb::new(3);
        tlb.fill(p(1), PageClass::Private);
        tlb.fill(p(2), PageClass::Shared);
        tlb.fill(p(3), PageClass::Private);
        // Shoot down the middle of the LRU list, then refill to capacity.
        assert!(tlb.shootdown(p(2)));
        tlb.fill(p(4), PageClass::Instruction);
        assert_eq!(tlb.len(), 3);
        // LRU order is now 1 < 3 < 4; filling a fifth page evicts page 1.
        tlb.fill(p(5), PageClass::Shared);
        assert_eq!(tlb.peek(p(1)), None);
        assert_eq!(tlb.peek(p(3)), Some(PageClass::Private));
        assert_eq!(tlb.peek(p(4)), Some(PageClass::Instruction));
        assert_eq!(tlb.peek(p(5)), Some(PageClass::Shared));
    }

    #[test]
    fn streaming_past_capacity_keeps_exactly_the_newest_pages() {
        let mut tlb = Tlb::new(8);
        for n in 0..100 {
            tlb.fill(p(n), PageClass::Private);
        }
        assert_eq!(tlb.len(), 8);
        assert_eq!(tlb.stats().evictions, 92);
        for n in 92..100 {
            assert_eq!(
                tlb.peek(p(n)),
                Some(PageClass::Private),
                "page {n} must survive"
            );
        }
        assert_eq!(tlb.peek(p(91)), None);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_panics() {
        Tlb::new(0);
    }
}
