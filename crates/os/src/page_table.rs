//! The OS page table extended with R-NUCA classification state.
//!
//! Section 4.3: "the operating system extends the page table entries with a
//! bit that denotes the current classification, and a field to record the CID
//! of the last core to access the page", plus a Poisoned state used during
//! private-to-shared re-classification.
//!
//! The table is consulted on every TLB miss, which makes it part of the
//! simulator's critical path: entries live in an open-addressed
//! [`U64Map`] keyed by the page number, and the whole
//! touch-classify-update transition of an access is a single probe
//! ([`PageTable::classify_and_update`]) instead of the get-then-insert
//! double lookup the `HashMap`-backed version performed.

use rnuca_types::addr::PageAddr;
use rnuca_types::ids::CoreId;
use rnuca_types::index_map::U64Map;
use rnuca_types::{Snap, SnapReader};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Pages the table pre-sizes for; past this it grows by doubling.
const INITIAL_PAGE_CAPACITY: usize = 4_096;

/// The classification recorded for a data page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PageClass {
    /// Accessed by a single core; placed in that core's local L2 slice.
    Private,
    /// Accessed by multiple cores; address-interleaved across all tiles.
    Shared,
    /// An instruction page; placed with rotational interleaving over a
    /// fixed-center cluster. Instruction requests are classified immediately
    /// from the requesting L1-I, but the page table still records the class so
    /// that characterization and accuracy measurements can see it.
    Instruction,
}

impl fmt::Display for PageClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PageClass::Private => "private",
            PageClass::Shared => "shared",
            PageClass::Instruction => "instruction",
        };
        f.write_str(s)
    }
}

/// Per-page state kept by the OS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageInfo {
    /// Current classification.
    pub class: PageClass,
    /// The CID of the last core to access the page (meaningful for private pages).
    pub owner: CoreId,
    /// Set while a re-classification is in flight; TLB misses to a poisoned
    /// page stall until it clears.
    pub poisoned: bool,
}

/// The page-table transition performed by one access, reported by
/// [`PageTable::classify_and_update`]. Each variant carries the entry's
/// state *after* the transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageUpdate {
    /// First touch: the entry was created (private to the accessor, or an
    /// instruction page for instruction fetches).
    FirstTouch(PageInfo),
    /// The entry was already consistent with the accessor: a shared or
    /// instruction page, or a private page owned by the accessor.
    Consistent(PageInfo),
    /// A private page whose owning thread migrated: ownership moved to the
    /// accessor, the class stays private.
    OwnerMigrated {
        /// The core that previously owned the page.
        previous_owner: CoreId,
        /// The entry after the migration.
        info: PageInfo,
    },
    /// A private page touched by a genuinely different thread: re-classified
    /// as shared (the poison window opens and closes within the access).
    Reclassified {
        /// The core that previously owned the page.
        previous_owner: CoreId,
        /// The entry after the re-classification.
        info: PageInfo,
    },
}

/// The page table: a map from page number to classification state.
#[derive(Debug, Clone, PartialEq)]
pub struct PageTable {
    entries: U64Map<PageInfo>,
}

impl Default for PageTable {
    fn default() -> Self {
        PageTable {
            entries: U64Map::with_capacity(INITIAL_PAGE_CAPACITY),
        }
    }
}

impl PageTable {
    /// Creates an empty page table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pages with an entry.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no pages have been touched.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a page.
    pub fn get(&self, page: PageAddr) -> Option<&PageInfo> {
        self.entries.get(page.page_number())
    }

    /// Hints the CPU to pull the page's entry into cache ahead of a lookup
    /// (see [`U64Map::prefetch`]). Performance hint only.
    #[inline]
    pub fn prefetch(&self, page: PageAddr) {
        self.entries.prefetch(page.page_number());
    }

    /// Looks up a page mutably.
    pub fn get_mut(&mut self, page: PageAddr) -> Option<&mut PageInfo> {
        self.entries.get_mut(page.page_number())
    }

    /// Inserts or replaces the entry for a page.
    pub fn insert(&mut self, page: PageAddr, info: PageInfo) {
        self.entries.insert(page.page_number(), info);
    }

    /// Records a first touch: the page becomes private to `owner`
    /// (or an instruction page if `instruction` is set).
    pub fn first_touch(&mut self, page: PageAddr, owner: CoreId, instruction: bool) -> PageInfo {
        let info = PageInfo {
            class: if instruction {
                PageClass::Instruction
            } else {
                PageClass::Private
            },
            owner,
            poisoned: false,
        };
        self.entries.insert(page.page_number(), info);
        info
    }

    /// Performs the whole classification transition of one access in a
    /// single probe: first touch, consistency check, thread migration, or
    /// private-to-shared re-classification.
    ///
    /// `thread_migrated` is consulted only when a private page is touched by
    /// a non-owner; it decides (from the scheduler's migration notices)
    /// whether ownership follows the thread or the page becomes shared. The
    /// poison bit of Section 4.3 opens and closes within the access — the
    /// trace-driven model completes the shoot-down atomically — so the
    /// returned entry is never poisoned.
    pub fn classify_and_update(
        &mut self,
        page: PageAddr,
        accessor: CoreId,
        instruction: bool,
        thread_migrated: impl FnOnce(CoreId) -> bool,
    ) -> PageUpdate {
        let (info, inserted) = self
            .entries
            .get_or_insert_with(page.page_number(), || PageInfo {
                class: if instruction {
                    PageClass::Instruction
                } else {
                    PageClass::Private
                },
                owner: accessor,
                poisoned: false,
            });
        if inserted {
            return PageUpdate::FirstTouch(*info);
        }
        match info.class {
            PageClass::Shared | PageClass::Instruction => PageUpdate::Consistent(*info),
            PageClass::Private if info.owner == accessor => PageUpdate::Consistent(*info),
            PageClass::Private => {
                let previous_owner = info.owner;
                if thread_migrated(previous_owner) {
                    info.owner = accessor;
                    info.poisoned = false;
                    PageUpdate::OwnerMigrated {
                        previous_owner,
                        info: *info,
                    }
                } else {
                    info.class = PageClass::Shared;
                    info.poisoned = false;
                    PageUpdate::Reclassified {
                        previous_owner,
                        info: *info,
                    }
                }
            }
        }
    }

    /// Marks a page poisoned (re-classification in flight).
    ///
    /// # Panics
    ///
    /// Panics if the page has no entry.
    pub fn poison(&mut self, page: PageAddr) {
        self.entries
            .get_mut(page.page_number())
            .expect("cannot poison a page that has never been touched")
            .poisoned = true;
    }

    /// Completes a re-classification: clears the poison bit and sets the class to shared.
    ///
    /// # Panics
    ///
    /// Panics if the page has no entry.
    pub fn complete_reclassification(&mut self, page: PageAddr) {
        let info = self
            .entries
            .get_mut(page.page_number())
            .expect("cannot complete re-classification of an untouched page");
        info.class = PageClass::Shared;
        info.poisoned = false;
    }

    /// Transfers private ownership of a page to a new core (thread migration, Section 4.3).
    ///
    /// # Panics
    ///
    /// Panics if the page has no entry.
    pub fn migrate_owner(&mut self, page: PageAddr, new_owner: CoreId) {
        let info = self
            .entries
            .get_mut(page.page_number())
            .expect("cannot migrate an untouched page");
        info.owner = new_owner;
        info.poisoned = false;
    }

    /// Iterates over all entries (slot order — deterministic for a given
    /// operation history, but not sorted).
    pub fn iter(&self) -> impl Iterator<Item = (PageAddr, &PageInfo)> {
        self.entries
            .iter()
            .map(|(page_number, info)| (PageAddr::from_page_number(page_number), info))
    }

    /// Counts pages per class.
    pub fn class_histogram(&self) -> (usize, usize, usize) {
        let mut private = 0;
        let mut shared = 0;
        let mut instr = 0;
        for info in self.entries.values() {
            match info.class {
                PageClass::Private => private += 1,
                PageClass::Shared => shared += 1,
                PageClass::Instruction => instr += 1,
            }
        }
        (private, shared, instr)
    }
}

impl Snap for PageClass {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            PageClass::Private => 0,
            PageClass::Shared => 1,
            PageClass::Instruction => 2,
        });
    }

    fn decode(r: &mut SnapReader<'_>) -> Self {
        match r.get::<u8>() {
            0 => PageClass::Private,
            1 => PageClass::Shared,
            2 => PageClass::Instruction,
            b => panic!("snapshot PageClass tag {b} is out of range"),
        }
    }
}

impl Snap for PageInfo {
    fn encode(&self, out: &mut Vec<u8>) {
        self.class.encode(out);
        self.owner.encode(out);
        self.poisoned.encode(out);
    }

    fn decode(r: &mut SnapReader<'_>) -> Self {
        PageInfo {
            class: r.get(),
            owner: r.get(),
            poisoned: r.get(),
        }
    }
}

impl Snap for PageTable {
    fn encode(&self, out: &mut Vec<u8>) {
        self.entries.encode(out);
    }

    fn decode(r: &mut SnapReader<'_>) -> Self {
        PageTable { entries: r.get() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(n: u64) -> PageAddr {
        PageAddr::from_page_number(n)
    }

    #[test]
    fn first_touch_creates_private_entry() {
        let mut pt = PageTable::new();
        assert!(pt.is_empty());
        let info = pt.first_touch(p(1), CoreId::new(4), false);
        assert_eq!(info.class, PageClass::Private);
        assert_eq!(info.owner, CoreId::new(4));
        assert!(!info.poisoned);
        assert_eq!(pt.len(), 1);
        assert_eq!(pt.get(p(1)), Some(&info));
    }

    #[test]
    fn first_touch_instruction_page() {
        let mut pt = PageTable::new();
        let info = pt.first_touch(p(2), CoreId::new(0), true);
        assert_eq!(info.class, PageClass::Instruction);
    }

    #[test]
    fn poison_then_reclassify() {
        let mut pt = PageTable::new();
        pt.first_touch(p(3), CoreId::new(1), false);
        pt.poison(p(3));
        assert!(pt.get(p(3)).unwrap().poisoned);
        pt.complete_reclassification(p(3));
        let info = pt.get(p(3)).unwrap();
        assert_eq!(info.class, PageClass::Shared);
        assert!(!info.poisoned);
    }

    #[test]
    fn migrate_owner_keeps_private_class() {
        let mut pt = PageTable::new();
        pt.first_touch(p(4), CoreId::new(1), false);
        pt.migrate_owner(p(4), CoreId::new(9));
        let info = pt.get(p(4)).unwrap();
        assert_eq!(info.class, PageClass::Private);
        assert_eq!(info.owner, CoreId::new(9));
    }

    #[test]
    fn class_histogram_counts() {
        let mut pt = PageTable::new();
        pt.first_touch(p(1), CoreId::new(0), false);
        pt.first_touch(p(2), CoreId::new(0), true);
        pt.first_touch(p(3), CoreId::new(0), false);
        pt.poison(p(3));
        pt.complete_reclassification(p(3));
        assert_eq!(pt.class_histogram(), (1, 1, 1));
    }

    #[test]
    #[should_panic(expected = "never been touched")]
    fn poisoning_unknown_page_panics() {
        PageTable::new().poison(p(99));
    }

    #[test]
    fn page_class_display() {
        assert_eq!(PageClass::Private.to_string(), "private");
        assert_eq!(PageClass::Shared.to_string(), "shared");
        assert_eq!(PageClass::Instruction.to_string(), "instruction");
    }

    #[test]
    fn classify_and_update_first_touch_then_consistent() {
        let mut pt = PageTable::new();
        let up = pt.classify_and_update(p(1), CoreId::new(2), false, |_| false);
        let PageUpdate::FirstTouch(info) = up else {
            panic!("expected first touch, got {up:?}")
        };
        assert_eq!(info.class, PageClass::Private);
        assert_eq!(info.owner, CoreId::new(2));
        let up = pt.classify_and_update(p(1), CoreId::new(2), false, |_| false);
        assert!(matches!(up, PageUpdate::Consistent(i) if i.class == PageClass::Private));
        assert_eq!(pt.len(), 1);
    }

    #[test]
    fn classify_and_update_reclassifies_on_second_core() {
        let mut pt = PageTable::new();
        pt.classify_and_update(p(5), CoreId::new(0), false, |_| false);
        let up = pt.classify_and_update(p(5), CoreId::new(3), false, |_| false);
        let PageUpdate::Reclassified {
            previous_owner,
            info,
        } = up
        else {
            panic!("expected reclassification, got {up:?}")
        };
        assert_eq!(previous_owner, CoreId::new(0));
        assert_eq!(info.class, PageClass::Shared);
        assert!(!info.poisoned);
        // A third core sees a consistent shared page.
        let up = pt.classify_and_update(p(5), CoreId::new(7), false, |_| false);
        assert!(matches!(up, PageUpdate::Consistent(i) if i.class == PageClass::Shared));
    }

    #[test]
    fn classify_and_update_honours_thread_migration() {
        let mut pt = PageTable::new();
        pt.classify_and_update(p(6), CoreId::new(0), false, |_| false);
        let up = pt.classify_and_update(p(6), CoreId::new(4), false, |prev| {
            assert_eq!(prev, CoreId::new(0));
            true
        });
        let PageUpdate::OwnerMigrated {
            previous_owner,
            info,
        } = up
        else {
            panic!("expected migration, got {up:?}")
        };
        assert_eq!(previous_owner, CoreId::new(0));
        assert_eq!(info.class, PageClass::Private);
        assert_eq!(info.owner, CoreId::new(4));
    }

    #[test]
    fn classify_and_update_instruction_pages() {
        let mut pt = PageTable::new();
        let up = pt.classify_and_update(p(9), CoreId::new(1), true, |_| false);
        assert!(matches!(up, PageUpdate::FirstTouch(i) if i.class == PageClass::Instruction));
        // Another core: instruction pages are consistent for everyone, the
        // migration predicate must not even be consulted.
        let up = pt.classify_and_update(p(9), CoreId::new(2), true, |_| {
            panic!("instruction pages never consult the migration predicate")
        });
        assert!(matches!(up, PageUpdate::Consistent(i) if i.class == PageClass::Instruction));
    }

    #[test]
    fn iter_yields_every_touched_page() {
        let mut pt = PageTable::new();
        for n in 0..50 {
            pt.first_touch(p(n), CoreId::new(0), n % 2 == 0);
        }
        let mut pages: Vec<u64> = pt.iter().map(|(page, _)| page.page_number()).collect();
        pages.sort_unstable();
        assert_eq!(pages, (0..50).collect::<Vec<u64>>());
    }
}
