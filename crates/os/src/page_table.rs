//! The OS page table extended with R-NUCA classification state.
//!
//! Section 4.3: "the operating system extends the page table entries with a
//! bit that denotes the current classification, and a field to record the CID
//! of the last core to access the page", plus a Poisoned state used during
//! private-to-shared re-classification.

use rnuca_types::addr::PageAddr;
use rnuca_types::ids::CoreId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// The classification recorded for a data page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PageClass {
    /// Accessed by a single core; placed in that core's local L2 slice.
    Private,
    /// Accessed by multiple cores; address-interleaved across all tiles.
    Shared,
    /// An instruction page; placed with rotational interleaving over a
    /// fixed-center cluster. Instruction requests are classified immediately
    /// from the requesting L1-I, but the page table still records the class so
    /// that characterization and accuracy measurements can see it.
    Instruction,
}

impl fmt::Display for PageClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PageClass::Private => "private",
            PageClass::Shared => "shared",
            PageClass::Instruction => "instruction",
        };
        f.write_str(s)
    }
}

/// Per-page state kept by the OS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageInfo {
    /// Current classification.
    pub class: PageClass,
    /// The CID of the last core to access the page (meaningful for private pages).
    pub owner: CoreId,
    /// Set while a re-classification is in flight; TLB misses to a poisoned
    /// page stall until it clears.
    pub poisoned: bool,
}

/// The page table: a map from page number to classification state.
#[derive(Debug, Clone, Default)]
pub struct PageTable {
    entries: HashMap<PageAddr, PageInfo>,
}

impl PageTable {
    /// Creates an empty page table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pages with an entry.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no pages have been touched.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a page.
    pub fn get(&self, page: PageAddr) -> Option<&PageInfo> {
        self.entries.get(&page)
    }

    /// Looks up a page mutably.
    pub fn get_mut(&mut self, page: PageAddr) -> Option<&mut PageInfo> {
        self.entries.get_mut(&page)
    }

    /// Inserts or replaces the entry for a page.
    pub fn insert(&mut self, page: PageAddr, info: PageInfo) {
        self.entries.insert(page, info);
    }

    /// Records a first touch: the page becomes private to `owner`
    /// (or an instruction page if `instruction` is set).
    pub fn first_touch(&mut self, page: PageAddr, owner: CoreId, instruction: bool) -> PageInfo {
        let info = PageInfo {
            class: if instruction { PageClass::Instruction } else { PageClass::Private },
            owner,
            poisoned: false,
        };
        self.entries.insert(page, info);
        info
    }

    /// Marks a page poisoned (re-classification in flight).
    ///
    /// # Panics
    ///
    /// Panics if the page has no entry.
    pub fn poison(&mut self, page: PageAddr) {
        self.entries
            .get_mut(&page)
            .expect("cannot poison a page that has never been touched")
            .poisoned = true;
    }

    /// Completes a re-classification: clears the poison bit and sets the class to shared.
    ///
    /// # Panics
    ///
    /// Panics if the page has no entry.
    pub fn complete_reclassification(&mut self, page: PageAddr) {
        let info = self
            .entries
            .get_mut(&page)
            .expect("cannot complete re-classification of an untouched page");
        info.class = PageClass::Shared;
        info.poisoned = false;
    }

    /// Transfers private ownership of a page to a new core (thread migration, Section 4.3).
    ///
    /// # Panics
    ///
    /// Panics if the page has no entry.
    pub fn migrate_owner(&mut self, page: PageAddr, new_owner: CoreId) {
        let info = self
            .entries
            .get_mut(&page)
            .expect("cannot migrate an untouched page");
        info.owner = new_owner;
        info.poisoned = false;
    }

    /// Iterates over all entries.
    pub fn iter(&self) -> impl Iterator<Item = (&PageAddr, &PageInfo)> {
        self.entries.iter()
    }

    /// Counts pages per class.
    pub fn class_histogram(&self) -> (usize, usize, usize) {
        let mut private = 0;
        let mut shared = 0;
        let mut instr = 0;
        for info in self.entries.values() {
            match info.class {
                PageClass::Private => private += 1,
                PageClass::Shared => shared += 1,
                PageClass::Instruction => instr += 1,
            }
        }
        (private, shared, instr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(n: u64) -> PageAddr {
        PageAddr::from_page_number(n)
    }

    #[test]
    fn first_touch_creates_private_entry() {
        let mut pt = PageTable::new();
        assert!(pt.is_empty());
        let info = pt.first_touch(p(1), CoreId::new(4), false);
        assert_eq!(info.class, PageClass::Private);
        assert_eq!(info.owner, CoreId::new(4));
        assert!(!info.poisoned);
        assert_eq!(pt.len(), 1);
        assert_eq!(pt.get(p(1)), Some(&info));
    }

    #[test]
    fn first_touch_instruction_page() {
        let mut pt = PageTable::new();
        let info = pt.first_touch(p(2), CoreId::new(0), true);
        assert_eq!(info.class, PageClass::Instruction);
    }

    #[test]
    fn poison_then_reclassify() {
        let mut pt = PageTable::new();
        pt.first_touch(p(3), CoreId::new(1), false);
        pt.poison(p(3));
        assert!(pt.get(p(3)).unwrap().poisoned);
        pt.complete_reclassification(p(3));
        let info = pt.get(p(3)).unwrap();
        assert_eq!(info.class, PageClass::Shared);
        assert!(!info.poisoned);
    }

    #[test]
    fn migrate_owner_keeps_private_class() {
        let mut pt = PageTable::new();
        pt.first_touch(p(4), CoreId::new(1), false);
        pt.migrate_owner(p(4), CoreId::new(9));
        let info = pt.get(p(4)).unwrap();
        assert_eq!(info.class, PageClass::Private);
        assert_eq!(info.owner, CoreId::new(9));
    }

    #[test]
    fn class_histogram_counts() {
        let mut pt = PageTable::new();
        pt.first_touch(p(1), CoreId::new(0), false);
        pt.first_touch(p(2), CoreId::new(0), true);
        pt.first_touch(p(3), CoreId::new(0), false);
        pt.poison(p(3));
        pt.complete_reclassification(p(3));
        assert_eq!(pt.class_histogram(), (1, 1, 1));
    }

    #[test]
    #[should_panic(expected = "never been touched")]
    fn poisoning_unknown_page_panics() {
        PageTable::new().poison(p(99));
    }

    #[test]
    fn page_class_display() {
        assert_eq!(PageClass::Private.to_string(), "private");
        assert_eq!(PageClass::Shared.to_string(), "shared");
        assert_eq!(PageClass::Instruction.to_string(), "instruction");
    }
}
