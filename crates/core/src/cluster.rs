//! Cluster geometry: the groups of L2 slices R-NUCA places data into.
//!
//! R-NUCA conceptually operates on overlapping clusters of tiles (Section 4).
//! Our configuration uses three of them — size-1 (the local slice), size-4
//! fixed-center (instructions), and size-16 (the whole chip, for shared data)
//! — but the mechanism generalises to any power-of-two size and to
//! fixed-boundary (rectangular, non-overlapping) clusters, which Section 4.4
//! suggests for partitioning a CMP into virtual domains.

use crate::rotational::RotationalMap;
use rnuca_types::ids::TileId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The two cluster shapes described in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ClusterKind {
    /// A cluster logically surrounding a centre core; every core defines its
    /// own (overlapping) cluster. Used for instruction replication.
    FixedCenter,
    /// A rectangular cluster with a fixed boundary; all cores inside share the
    /// same data. Suitable for partitioning the chip into disjoint domains.
    FixedBoundary,
}

impl fmt::Display for ClusterKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterKind::FixedCenter => f.write_str("fixed-center"),
            ClusterKind::FixedBoundary => f.write_str("fixed-boundary"),
        }
    }
}

/// A concrete cluster: a set of member tiles plus the kind it was built as.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cluster {
    kind: ClusterKind,
    /// The centre (fixed-center) or anchor corner (fixed-boundary) tile.
    anchor: TileId,
    members: Vec<TileId>,
}

impl Cluster {
    /// Builds the size-`n` fixed-center cluster around `center`: the slices
    /// that service the centre core's accesses under rotational interleaving.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two or exceeds the tile count.
    pub fn fixed_center(center: TileId, n: usize, width: usize, height: usize) -> Self {
        let map = RotationalMap::new(n, width, height, 0);
        Cluster {
            kind: ClusterKind::FixedCenter,
            anchor: center,
            members: map.cluster_members(center),
        }
    }

    /// Builds the size-`n` fixed-center cluster from an existing [`RotationalMap`]
    /// (avoids recomputing the map when building clusters for every core).
    pub fn fixed_center_from_map(center: TileId, map: &RotationalMap) -> Self {
        Cluster {
            kind: ClusterKind::FixedCenter,
            anchor: center,
            members: map.cluster_members(center),
        }
    }

    /// Builds a fixed-boundary cluster covering the rectangle with corner
    /// `(x0, y0)` and dimensions `w x h` on a `width`-wide grid.
    ///
    /// # Panics
    ///
    /// Panics if the rectangle is empty or does not fit on the grid.
    pub fn fixed_boundary(
        x0: usize,
        y0: usize,
        w: usize,
        h: usize,
        width: usize,
        height: usize,
    ) -> Self {
        assert!(w > 0 && h > 0, "fixed-boundary cluster must be non-empty");
        assert!(
            x0 + w <= width && y0 + h <= height,
            "fixed-boundary cluster must fit on the grid"
        );
        let mut members = Vec::with_capacity(w * h);
        for y in y0..y0 + h {
            for x in x0..x0 + w {
                members.push(TileId::from_coords(x, y, width));
            }
        }
        Cluster {
            kind: ClusterKind::FixedBoundary,
            anchor: TileId::from_coords(x0, y0, width),
            members,
        }
    }

    /// The cluster kind.
    pub fn kind(&self) -> ClusterKind {
        self.kind
    }

    /// The centre (or anchor corner) tile.
    pub fn anchor(&self) -> TileId {
        self.anchor
    }

    /// The member tiles, sorted for fixed-center clusters and in row-major
    /// order for fixed-boundary clusters.
    pub fn members(&self) -> &[TileId] {
        &self.members
    }

    /// Number of member tiles.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Returns `true` if the cluster has no members (never the case for valid clusters).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Returns `true` if `tile` belongs to this cluster.
    pub fn contains(&self, tile: TileId) -> bool {
        self.members.contains(&tile)
    }

    /// Returns `true` if this cluster shares at least one tile with `other`.
    pub fn overlaps(&self, other: &Cluster) -> bool {
        self.members.iter().any(|t| other.contains(*t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size4_fixed_center_cluster_members() {
        let c = Cluster::fixed_center(TileId::new(5), 4, 4, 4);
        assert_eq!(c.kind(), ClusterKind::FixedCenter);
        assert_eq!(c.anchor(), TileId::new(5));
        assert_eq!(c.len(), 4);
        assert!(c.contains(TileId::new(5)), "centre is always a member");
        assert!(!c.is_empty());
    }

    #[test]
    fn size1_cluster_is_just_the_center() {
        let c = Cluster::fixed_center(TileId::new(7), 1, 4, 4);
        assert_eq!(c.members(), &[TileId::new(7)]);
    }

    #[test]
    fn size16_cluster_covers_the_chip() {
        let c = Cluster::fixed_center(TileId::new(3), 16, 4, 4);
        assert_eq!(c.len(), 16);
        for t in 0..16 {
            assert!(c.contains(TileId::new(t)));
        }
    }

    #[test]
    fn neighbouring_fixed_center_clusters_overlap() {
        let a = Cluster::fixed_center(TileId::new(5), 4, 4, 4);
        let b = Cluster::fixed_center(TileId::new(6), 4, 4, 4);
        assert!(
            a.overlaps(&b),
            "adjacent size-4 clusters share slices (Figure 6)"
        );
    }

    #[test]
    fn fixed_boundary_cluster_is_a_rectangle() {
        let c = Cluster::fixed_boundary(0, 0, 2, 2, 4, 4);
        assert_eq!(c.kind(), ClusterKind::FixedBoundary);
        assert_eq!(c.len(), 4);
        assert_eq!(
            c.members(),
            &[
                TileId::new(0),
                TileId::new(1),
                TileId::new(4),
                TileId::new(5)
            ]
        );
        let d = Cluster::fixed_boundary(2, 2, 2, 2, 4, 4);
        assert!(!c.overlaps(&d), "disjoint rectangles must not overlap");
    }

    #[test]
    fn fixed_boundary_partition_covers_chip_without_overlap() {
        // Partition the 4x4 chip into four 2x2 quadrants (Section 4.4 / virtual domains).
        let quadrants = [
            Cluster::fixed_boundary(0, 0, 2, 2, 4, 4),
            Cluster::fixed_boundary(2, 0, 2, 2, 4, 4),
            Cluster::fixed_boundary(0, 2, 2, 2, 4, 4),
            Cluster::fixed_boundary(2, 2, 2, 2, 4, 4),
        ];
        let total: usize = quadrants.iter().map(Cluster::len).sum();
        assert_eq!(total, 16);
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    assert!(!quadrants[i].overlaps(&quadrants[j]));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "must fit on the grid")]
    fn oversized_fixed_boundary_panics() {
        Cluster::fixed_boundary(3, 3, 2, 2, 4, 4);
    }

    #[test]
    fn kind_display() {
        assert_eq!(ClusterKind::FixedCenter.to_string(), "fixed-center");
        assert_eq!(ClusterKind::FixedBoundary.to_string(), "fixed-boundary");
    }
}
