//! Reactive NUCA (R-NUCA) block placement.
//!
//! This crate implements the paper's primary contribution: a placement policy
//! for distributed last-level caches that reacts to the class of each access
//! (Section 4).
//!
//! * **Private data** is placed in the size-1 cluster — the local L2 slice of
//!   the accessing core — for minimum latency, with no coherence needed.
//! * **Instructions** are placed with **rotational interleaving** over size-4
//!   fixed-center clusters: each core's cluster consists of the tiles
//!   logically surrounding it, each slice stores exactly `1/n` of the
//!   instruction working set regardless of how many clusters it belongs to,
//!   and every instruction block is at most one hop from the requesting core.
//! * **Shared data** is placed with standard address interleaving over the
//!   size-16 cluster (the whole chip), which keeps exactly one copy per block
//!   and thus obviates L2 coherence.
//!
//! The three pieces exposed here are [`rotational`] (the indexing function and
//! RID machinery), [`cluster`] (fixed-center / fixed-boundary cluster
//! geometry), and [`placement`] (the [`PlacementEngine`] that the simulator
//! queries on every L1 miss).
//!
//! # Example
//!
//! ```
//! use rnuca::placement::{PlacementEngine, PlacementConfig};
//! use rnuca_os::PageClass;
//! use rnuca_types::addr::BlockAddr;
//! use rnuca_types::config::SystemConfig;
//! use rnuca_types::ids::CoreId;
//!
//! let cfg = SystemConfig::server_16();
//! let engine = PlacementEngine::new(PlacementConfig::from_system(&cfg));
//! let core = CoreId::new(5);
//! let block = BlockAddr::from_block_number(0x1234);
//!
//! // Private data lives in the local slice.
//! assert_eq!(engine.place(PageClass::Private, block, core), core.tile());
//! // Instructions live within one hop of the requesting core.
//! let instr_home = engine.place(PageClass::Instruction, block, core);
//! // Shared data has a single, core-independent home.
//! let shared_home = engine.place(PageClass::Shared, block, core);
//! assert_eq!(shared_home, engine.place(PageClass::Shared, block, CoreId::new(11)));
//! # let _ = instr_home;
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cluster;
pub mod placement;
pub mod rotational;

pub use cluster::{Cluster, ClusterKind};
pub use placement::{PlacementConfig, PlacementEngine};
pub use rotational::{rotational_index, RotationalMap};
