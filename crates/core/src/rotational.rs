//! Rotational interleaving (Section 4.1 of the paper).
//!
//! Rotational interleaving lets neighbouring cores *share* instruction blocks
//! while distant cores *replicate* them, without ever storing more than `1/n`
//! of the working set in any one slice and without any search: the servicing
//! slice is computed from the block address and the requesting tile's
//! rotational ID (RID) by a trivial boolean function.
//!
//! The paper's indexing function for size-`n` clusters, with the
//! address-interleaving bits starting at offset `k`, is
//!
//! ```text
//! R = (Addr[k + log2(n) - 1 : k] + RID + 1) & (n - 1)
//! ```
//!
//! and for size-4 clusters the 2-bit result selects the local slice or the
//! slice to the right, above, or to the left of the requesting tile (for
//! results 0, 1, 2 and 3 respectively).
//!
//! [`RotationalMap`] precomputes, for a given cluster size and grid, the RID
//! of every tile and the servicing tile of every `(requesting tile, address
//! residue)` pair, and exposes the invariant checks used in tests: the
//! servicing tile is always within one "cluster radius" of the requester, and
//! the set of residues stored by a slice is the same regardless of which
//! cluster is asking (so replication never inflates capacity pressure).

use rnuca_os::rid::rid_for_tile;
use rnuca_types::addr::BlockAddr;
use rnuca_types::ids::{RotationalId, TileId};

/// The paper's boolean indexing function: `R = (addr_bits + rid + 1) & (n - 1)`.
///
/// `addr_bits` are the `log2(n)` address bits immediately above the set-index
/// bits; `rid` is the requesting tile's rotational ID.
///
/// # Panics
///
/// Panics if `n` is not a power of two.
pub fn rotational_index(addr_bits: u64, rid: RotationalId, n: usize) -> usize {
    assert!(
        n.is_power_of_two(),
        "cluster size must be a power of two, got {n}"
    );
    ((addr_bits as usize) + rid.value() + 1) & (n - 1)
}

/// Relative direction selected by the size-4 indexing function (Figure 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Size4Direction {
    /// Result `<0,0>`: the block lives in the requesting tile's own slice.
    Local,
    /// Result `<0,1>`: the slice to the right of the requesting tile.
    Right,
    /// Result `<1,0>`: the slice above the requesting tile.
    Above,
    /// Result `<1,1>`: the slice to the left of the requesting tile.
    Left,
}

impl Size4Direction {
    /// Decodes the 2-bit result of [`rotational_index`] for size-4 clusters.
    ///
    /// # Panics
    ///
    /// Panics if `r >= 4`.
    pub fn from_index(r: usize) -> Self {
        match r {
            0 => Size4Direction::Local,
            1 => Size4Direction::Right,
            2 => Size4Direction::Above,
            3 => Size4Direction::Left,
            _ => panic!("size-4 rotational index must be in 0..4, got {r}"),
        }
    }

    /// The tile in this direction from `tile` on a `width x height` torus.
    ///
    /// "Right" decreases x and "left" increases x in this implementation's
    /// coordinate system; the naming follows the paper's figure, and only the
    /// *consistency* between RID assignment and direction decoding matters for
    /// the capacity invariant (see the crate tests).
    pub fn apply(self, tile: TileId, width: usize, height: usize) -> TileId {
        let (x, y) = tile.coords(width);
        let (nx, ny) = match self {
            Size4Direction::Local => (x, y),
            Size4Direction::Right => ((x + width - 1) % width, y),
            Size4Direction::Above => (x, (y + height - 1) % height),
            Size4Direction::Left => ((x + 1) % width, y),
        };
        TileId::from_coords(nx, ny, width)
    }
}

/// Precomputed rotational-interleaving state for one cluster size on one grid.
#[derive(Debug, Clone)]
pub struct RotationalMap {
    n: usize,
    width: usize,
    height: usize,
    rid_start: usize,
    /// Label ("generalised RID") of every tile, row-major.
    labels: Vec<usize>,
    /// `home[tile * n + residue]` = servicing tile for address residue `residue`
    /// when requested from `tile`.
    home: Vec<TileId>,
}

impl RotationalMap {
    /// Builds the map for size-`n` clusters on a `width x height` grid.
    ///
    /// For cluster sizes that fit within one row (`n <= width`) the labels are
    /// the paper's RIDs; for larger clusters that do not tile a single row the
    /// labels generalise to a balanced block pattern spanning `n / width`
    /// rows, preserving the capacity invariant. Size `width * height` clusters
    /// degenerate to standard address interleaving over the whole chip.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two, exceeds the tile count, or the
    /// grid is degenerate.
    pub fn new(n: usize, width: usize, height: usize, rid_start: usize) -> Self {
        assert!(
            n.is_power_of_two(),
            "cluster size must be a power of two, got {n}"
        );
        assert!(width > 0 && height > 0, "grid dimensions must be non-zero");
        let tiles = width * height;
        assert!(n <= tiles, "cluster size {n} exceeds tile count {tiles}");

        let labels: Vec<usize> = (0..tiles)
            .map(|i| Self::label_of(TileId::new(i), n, width, rid_start))
            .collect();

        // Precompute, for every (tile, residue), the servicing slice. Size-4
        // clusters follow the paper's formula-plus-direction construction
        // exactly; other sizes use the nearest slice storing the residue,
        // which preserves the same invariants.
        let mut home = Vec::with_capacity(tiles * n);
        for t in 0..tiles {
            let from = TileId::new(t);
            for residue in 0..n {
                let slice = if n == 1 {
                    from
                } else if n == 4 && width >= 2 && height >= 2 {
                    let rid = RotationalId::new(labels[t]);
                    let r = rotational_index(residue as u64, rid, 4);
                    Size4Direction::from_index(r).apply(from, width, height)
                } else {
                    // The slice storing residue `a` is the one labelled (n-1-a).
                    let needed_label = (n - 1 - residue) % n;
                    Self::nearest_with_label(from, needed_label, &labels, width, height)
                };
                home.push(slice);
            }
        }
        RotationalMap {
            n,
            width,
            height,
            rid_start,
            labels,
            home,
        }
    }

    /// The cluster size this map was built for.
    pub fn cluster_size(&self) -> usize {
        self.n
    }

    /// The label (generalised RID) of a tile.
    pub fn label(&self, tile: TileId) -> usize {
        self.labels[tile.index()]
    }

    /// The RID of a tile, for cluster sizes where the paper's RID assignment applies.
    pub fn rid(&self, tile: TileId) -> RotationalId {
        RotationalId::new(self.label(tile))
    }

    /// The address residue class a block falls in: the `log2(n)` interleaving
    /// bits of the block address, reduced modulo the cluster size.
    pub fn residue(&self, block: BlockAddr, sets_per_slice: usize) -> usize {
        if self.n == 1 {
            return 0;
        }
        let bits = self.n.trailing_zeros();
        (block.interleave_bits(sets_per_slice, bits) as usize) & (self.n - 1)
    }

    /// The slice that services `block` when requested from `tile`.
    pub fn home_for(&self, tile: TileId, block: BlockAddr, sets_per_slice: usize) -> TileId {
        let residue = self.residue(block, sets_per_slice);
        self.home_for_residue(tile, residue)
    }

    /// The slice that services any block of address residue `residue` when requested from `tile`.
    pub fn home_for_residue(&self, tile: TileId, residue: usize) -> TileId {
        debug_assert!(residue < self.n);
        self.home[tile.index() * self.n + residue]
    }

    /// The members of the fixed-center cluster of `tile`: the servicing slices
    /// of all `n` residues, i.e. the slices this core ever reads instructions from.
    pub fn cluster_members(&self, tile: TileId) -> Vec<TileId> {
        let mut members: Vec<TileId> = (0..self.n)
            .map(|r| self.home_for_residue(tile, r))
            .collect();
        members.sort();
        members.dedup();
        members
    }

    /// The address residue stored by a slice (the complement of [`Self::label`]
    /// under the paper's indexing function). Every cluster asks this slice
    /// only for blocks of this residue — the capacity invariant.
    pub fn stored_residue(&self, slice: TileId) -> usize {
        if self.n == 1 {
            0
        } else {
            (self.n - 1 - self.label(slice)) % self.n
        }
    }

    fn label_of(tile: TileId, n: usize, width: usize, rid_start: usize) -> usize {
        if n == 1 {
            return 0;
        }
        if n <= width {
            // The paper's RID assignment: consecutive along rows, +log2(n) along columns.
            rid_for_tile(tile, n, width, rid_start).value()
        } else {
            // Generalised balanced labelling over an (width x n/width) block of rows.
            let rows = n / width;
            let (x, y) = tile.coords(width);
            (x % width) + width * (y % rows)
        }
    }

    fn nearest_with_label(
        from: TileId,
        label: usize,
        labels: &[usize],
        width: usize,
        height: usize,
    ) -> TileId {
        let torus_dist = |a: TileId, b: TileId| -> usize {
            let (ax, ay) = a.coords(width);
            let (bx, by) = b.coords(width);
            let dx = ax.abs_diff(bx);
            let dy = ay.abs_diff(by);
            dx.min(width - dx) + dy.min(height - dy)
        };
        (0..labels.len())
            .filter(|&i| labels[i] == label)
            .map(TileId::new)
            .min_by_key(|&t| (torus_dist(from, t), t.index()))
            .expect("balanced labelling guarantees every label exists")
    }

    /// The starting RID offset the map was built with.
    pub fn rid_start(&self) -> usize {
        self.rid_start
    }

    /// Grid width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Grid height.
    pub fn height(&self) -> usize {
        self.height
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(n: u64) -> BlockAddr {
        BlockAddr::from_block_number(n)
    }

    const SETS: usize = 1024; // 1 MB, 16-way, 64 B blocks

    #[test]
    fn indexing_function_matches_paper_formula() {
        // R = (addr + rid + 1) & (n-1)
        assert_eq!(rotational_index(0, RotationalId::new(0), 4), 1);
        assert_eq!(rotational_index(1, RotationalId::new(1), 4), 3);
        assert_eq!(rotational_index(3, RotationalId::new(3), 4), 3);
        assert_eq!(rotational_index(2, RotationalId::new(1), 4), 0);
        assert_eq!(rotational_index(7, RotationalId::new(5), 8), 5);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn indexing_rejects_non_power_of_two() {
        rotational_index(0, RotationalId::new(0), 6);
    }

    #[test]
    fn size4_direction_decoding() {
        assert_eq!(Size4Direction::from_index(0), Size4Direction::Local);
        assert_eq!(Size4Direction::from_index(1), Size4Direction::Right);
        assert_eq!(Size4Direction::from_index(2), Size4Direction::Above);
        assert_eq!(Size4Direction::from_index(3), Size4Direction::Left);
    }

    #[test]
    fn size4_map_matches_explicit_formula_plus_directions() {
        // The generic nearest-with-label lookup must agree with the paper's
        // "formula + neighbour direction" procedure for size-4 clusters.
        let map = RotationalMap::new(4, 4, 4, 0);
        for t in 0..16 {
            let tile = TileId::new(t);
            let rid = map.rid(tile);
            for addr_bits in 0..4u64 {
                let r = rotational_index(addr_bits, rid, 4);
                let dir = Size4Direction::from_index(r);
                let expected = dir.apply(tile, 4, 4);
                // Build a block whose interleave bits equal addr_bits.
                let block = b(addr_bits << SETS.trailing_zeros());
                assert_eq!(
                    map.home_for(tile, block, SETS),
                    expected,
                    "tile {tile} addr bits {addr_bits}"
                );
            }
        }
    }

    #[test]
    fn size4_homes_are_at_most_one_hop_away() {
        let map = RotationalMap::new(4, 4, 4, 0);
        for t in 0..16 {
            let tile = TileId::new(t);
            let members = map.cluster_members(tile);
            assert_eq!(members.len(), 4, "size-4 cluster has 4 distinct members");
            for r in 0..4 {
                let home = map.home_for_residue(tile, r);
                let (x, y) = tile.coords(4);
                let (hx, hy) = home.coords(4);
                let dx = x.abs_diff(hx).min(4 - x.abs_diff(hx));
                let dy = y.abs_diff(hy).min(4 - y.abs_diff(hy));
                assert!(dx + dy <= 1, "home must be within one hop");
            }
        }
    }

    #[test]
    fn capacity_invariant_each_slice_stores_one_residue() {
        // For every cluster size, a slice is only ever asked for a single
        // address residue, no matter which tile is requesting.
        for &n in &[1usize, 2, 4, 8, 16] {
            let map = RotationalMap::new(n, 4, 4, 0);
            for t in 0..16 {
                let tile = TileId::new(t);
                for residue in 0..n {
                    let home = map.home_for_residue(tile, residue);
                    assert_eq!(
                        map.stored_residue(home),
                        residue,
                        "size {n}: tile {t} residue {residue} must land on a slice storing it"
                    );
                }
            }
        }
    }

    #[test]
    fn residue_extraction_uses_bits_above_set_index() {
        let map = RotationalMap::new(4, 4, 4, 0);
        // Block number = residue << log2(sets) | set bits.
        let block = b((3 << SETS.trailing_zeros()) | 17);
        assert_eq!(map.residue(block, SETS), 3);
        let map1 = RotationalMap::new(1, 4, 4, 0);
        assert_eq!(map1.residue(block, SETS), 0);
    }

    #[test]
    fn size16_degenerates_to_full_chip_interleaving() {
        let map = RotationalMap::new(16, 4, 4, 0);
        for t in 0..16 {
            let tile = TileId::new(t);
            let members = map.cluster_members(tile);
            assert_eq!(members.len(), 16);
        }
        // Each residue has exactly one home chip-wide.
        for residue in 0..16 {
            let homes: std::collections::HashSet<_> = (0..16)
                .map(|t| map.home_for_residue(TileId::new(t), residue))
                .collect();
            assert_eq!(
                homes.len(),
                1,
                "residue {residue} must have a unique chip-wide home"
            );
        }
    }

    #[test]
    fn size1_always_stays_local() {
        let map = RotationalMap::new(1, 4, 4, 0);
        for t in 0..16 {
            let tile = TileId::new(t);
            assert_eq!(map.home_for(tile, b(0xABC), SETS), tile);
            assert_eq!(map.cluster_members(tile), vec![tile]);
        }
    }

    #[test]
    fn size8_clusters_are_balanced_and_nearby() {
        let map = RotationalMap::new(8, 4, 4, 0);
        // Labels are balanced: each of the 8 labels appears exactly twice.
        let mut counts = [0usize; 8];
        for t in 0..16 {
            counts[map.label(TileId::new(t))] += 1;
        }
        assert!(counts.iter().all(|&c| c == 2));
        // Every cluster has 8 distinct members.
        for t in 0..16 {
            assert_eq!(map.cluster_members(TileId::new(t)).len(), 8);
        }
    }

    #[test]
    fn rid_start_rotates_labels_but_preserves_invariants() {
        let map = RotationalMap::new(4, 4, 4, 2);
        assert_eq!(map.rid_start(), 2);
        for t in 0..16 {
            let tile = TileId::new(t);
            for r in 0..4 {
                let home = map.home_for_residue(tile, r);
                assert_eq!(map.stored_residue(home), r);
            }
        }
    }

    #[test]
    fn desktop_4x2_grid_supports_size4() {
        let map = RotationalMap::new(4, 4, 2, 0);
        for t in 0..8 {
            let members = map.cluster_members(TileId::new(t));
            assert_eq!(members.len(), 4);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds tile count")]
    fn oversized_cluster_panics() {
        RotationalMap::new(32, 4, 4, 0);
    }
}
