//! The R-NUCA placement engine (Section 4.2 of the paper).
//!
//! Given the classification of an access — produced by the OS layer at page
//! granularity — the engine answers the only question the hardware needs:
//! *which L2 slice services this block for this core?*
//!
//! * Private data → the size-1 cluster: the requesting core's own slice.
//! * Shared data → the size-16 cluster (all tiles), standard address
//!   interleaving, so every core agrees on a single location and no L2
//!   coherence is needed.
//! * Instructions → the size-`n` fixed-center cluster around the requesting
//!   core (`n = 4` in the paper's configuration), rotational interleaving.
//!
//! The engine performs exactly one lookup per request — there is never a
//! second probe or a directory indirection — which is the property the paper
//! leans on for its latency advantage.

use crate::cluster::Cluster;
use crate::rotational::RotationalMap;
use rnuca_os::PageClass;
use rnuca_types::addr::BlockAddr;
use rnuca_types::config::SystemConfig;
use rnuca_types::ids::{CoreId, TileId};
use serde::{Deserialize, Serialize};

/// Configuration of a [`PlacementEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlacementConfig {
    /// Torus width in tiles.
    pub width: usize,
    /// Torus height in tiles.
    pub height: usize,
    /// Number of sets in each L2 slice (determines where the interleaving bits sit).
    pub sets_per_slice: usize,
    /// Size of the fixed-center cluster used for instructions (4 in the paper).
    pub instr_cluster_size: usize,
    /// Size of the fixed-center cluster used for private data (1 in the
    /// paper's configuration; larger sizes implement the Section 4.4
    /// "spilling" extension for heterogeneous workloads whose per-thread
    /// private working sets do not fit the local slice).
    pub private_cluster_size: usize,
    /// Starting RID offset chosen by the OS.
    pub rid_start: usize,
}

impl PlacementConfig {
    /// Derives the placement configuration from a full system configuration,
    /// using the paper's defaults (size-4 instruction clusters).
    pub fn from_system(cfg: &SystemConfig) -> Self {
        PlacementConfig {
            width: cfg.torus.width,
            height: cfg.torus.height,
            sets_per_slice: cfg.l2_slice.geometry.num_sets(),
            instr_cluster_size: 4.min(cfg.num_tiles()),
            private_cluster_size: 1,
            rid_start: 0,
        }
    }

    /// Overrides the instruction-cluster size (the Figure 11 sweep).
    pub fn with_instr_cluster_size(mut self, n: usize) -> Self {
        self.instr_cluster_size = n;
        self
    }

    /// Overrides the private-data cluster size (the Section 4.4 spilling extension).
    pub fn with_private_cluster_size(mut self, n: usize) -> Self {
        self.private_cluster_size = n;
        self
    }

    /// Number of tiles on the chip.
    pub fn num_tiles(&self) -> usize {
        self.width * self.height
    }
}

/// The R-NUCA placement engine.
///
/// Construction precomputes the rotational-interleaving map for the configured
/// instruction-cluster size; every placement query afterwards is a table
/// lookup plus a few bit operations, mirroring the "simple boolean logic"
/// hardware cost the paper claims.
#[derive(Debug, Clone)]
pub struct PlacementEngine {
    config: PlacementConfig,
    instr_map: RotationalMap,
    private_map: RotationalMap,
}

impl PlacementEngine {
    /// Builds an engine for the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if either cluster size is not a power of two or exceeds the tile count.
    pub fn new(config: PlacementConfig) -> Self {
        let instr_map = RotationalMap::new(
            config.instr_cluster_size,
            config.width,
            config.height,
            config.rid_start,
        );
        let private_map = RotationalMap::new(
            config.private_cluster_size,
            config.width,
            config.height,
            config.rid_start,
        );
        PlacementEngine {
            config,
            instr_map,
            private_map,
        }
    }

    /// The configuration this engine was built with.
    pub fn config(&self) -> &PlacementConfig {
        &self.config
    }

    /// The rotational map used for instruction placement.
    pub fn instruction_map(&self) -> &RotationalMap {
        &self.instr_map
    }

    /// The slice holding private data of `core` for the given block.
    ///
    /// With the default size-1 private cluster this is always the local slice;
    /// with a larger private cluster (the spilling extension of Section 4.4)
    /// the core's private blocks are interleaved over its fixed-center cluster.
    pub fn private_home(&self, block: BlockAddr, core: CoreId) -> TileId {
        if self.config.private_cluster_size == 1 {
            core.tile()
        } else {
            self.private_map
                .home_for(core.tile(), block, self.config.sets_per_slice)
        }
    }

    /// The chip-wide home slice of a shared-data block (standard address
    /// interleaving over the size-16 cluster).
    pub fn shared_home(&self, block: BlockAddr) -> TileId {
        let tiles = self.config.num_tiles();
        let bits = (tiles as u64).trailing_zeros();
        let idx = if tiles.is_power_of_two() {
            block.interleave_bits(self.config.sets_per_slice, bits) as usize
        } else {
            (block.interleave_bits(self.config.sets_per_slice, 16) as usize) % tiles
        };
        TileId::new(idx)
    }

    /// The slice servicing an instruction block for `core` under rotational
    /// interleaving over the core's fixed-center cluster.
    pub fn instruction_home(&self, block: BlockAddr, core: CoreId) -> TileId {
        self.instr_map
            .home_for(core.tile(), block, self.config.sets_per_slice)
    }

    /// Dispatches on the page classification (the single lookup the L1 miss path performs).
    pub fn place(&self, class: PageClass, block: BlockAddr, core: CoreId) -> TileId {
        match class {
            PageClass::Private => self.private_home(block, core),
            PageClass::Shared => self.shared_home(block),
            PageClass::Instruction => self.instruction_home(block, core),
        }
    }

    /// The fixed-center instruction cluster of `core` (the slices it ever
    /// fetches instructions from).
    pub fn instruction_cluster(&self, core: CoreId) -> Cluster {
        Cluster::fixed_center_from_map(core.tile(), &self.instr_map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn engine() -> PlacementEngine {
        PlacementEngine::new(PlacementConfig::from_system(&SystemConfig::server_16()))
    }

    fn b(n: u64) -> BlockAddr {
        BlockAddr::from_block_number(n)
    }

    #[test]
    fn from_system_uses_paper_defaults() {
        let cfg = PlacementConfig::from_system(&SystemConfig::server_16());
        assert_eq!(cfg.width, 4);
        assert_eq!(cfg.height, 4);
        assert_eq!(cfg.instr_cluster_size, 4);
        assert_eq!(cfg.sets_per_slice, 1024);
        assert_eq!(cfg.num_tiles(), 16);
    }

    #[test]
    fn private_data_is_always_local() {
        let e = engine();
        for c in 0..16 {
            let core = CoreId::new(c);
            assert_eq!(e.place(PageClass::Private, b(0xDEAD), core), core.tile());
        }
    }

    #[test]
    fn shared_home_is_core_independent_and_uniform() {
        let e = engine();
        let mut counts: HashMap<TileId, usize> = HashMap::new();
        for n in 0..4096u64 {
            // Spread blocks across the interleave bits (above the 10 set-index bits).
            let block = b(n << 10);
            let home = e.place(PageClass::Shared, block, CoreId::new(0));
            let home2 = e.place(PageClass::Shared, block, CoreId::new(9));
            assert_eq!(home, home2, "shared home must not depend on the requester");
            *counts.entry(home).or_insert(0) += 1;
        }
        assert_eq!(counts.len(), 16, "all slices must be used");
        for (&tile, &count) in &counts {
            assert_eq!(count, 256, "tile {tile} should receive an equal share");
        }
    }

    #[test]
    fn instruction_home_is_within_the_cluster() {
        let e = engine();
        for c in 0..16 {
            let core = CoreId::new(c);
            let cluster = e.instruction_cluster(core);
            for n in 0..64u64 {
                let home = e.place(PageClass::Instruction, b(n << 10), core);
                assert!(
                    cluster.contains(home),
                    "instruction home must stay in the cluster"
                );
            }
        }
    }

    #[test]
    fn instruction_blocks_spread_evenly_within_a_cluster() {
        let e = engine();
        let core = CoreId::new(6);
        let mut counts: HashMap<TileId, usize> = HashMap::new();
        for n in 0..1024u64 {
            let home = e.instruction_home(b(n << 10), core);
            *counts.entry(home).or_insert(0) += 1;
        }
        assert_eq!(counts.len(), 4);
        for &count in counts.values() {
            assert_eq!(count, 256);
        }
    }

    #[test]
    fn cluster_size_one_keeps_instructions_local() {
        let cfg =
            PlacementConfig::from_system(&SystemConfig::server_16()).with_instr_cluster_size(1);
        let e = PlacementEngine::new(cfg);
        for c in 0..16 {
            let core = CoreId::new(c);
            assert_eq!(e.instruction_home(b(123 << 10), core), core.tile());
        }
    }

    #[test]
    fn cluster_size_sixteen_matches_chip_wide_interleaving_capacity() {
        let cfg =
            PlacementConfig::from_system(&SystemConfig::server_16()).with_instr_cluster_size(16);
        let e = PlacementEngine::new(cfg);
        // Every block has a single chip-wide home, like shared data.
        for n in 0..64u64 {
            let block = b(n << 10);
            let homes: std::collections::HashSet<_> = (0..16)
                .map(|c| e.instruction_home(block, CoreId::new(c)))
                .collect();
            assert_eq!(homes.len(), 1);
        }
    }

    #[test]
    fn private_spill_cluster_spreads_private_data_over_neighbours() {
        // Section 4.4: heterogeneous workloads may use a fixed-center cluster
        // for private data, spilling blocks to neighbouring slices.
        let cfg =
            PlacementConfig::from_system(&SystemConfig::server_16()).with_private_cluster_size(4);
        let e = PlacementEngine::new(cfg);
        let core = CoreId::new(5);
        let mut homes = std::collections::HashSet::new();
        for n in 0..256u64 {
            homes.insert(e.private_home(b(n << 10), core));
        }
        assert_eq!(
            homes.len(),
            4,
            "private data should spill over the size-4 cluster"
        );
        assert!(
            homes.contains(&core.tile()),
            "the local slice stays in the cluster"
        );
        // The default configuration keeps private data strictly local.
        let default_engine = engine();
        for n in 0..64u64 {
            assert_eq!(default_engine.private_home(b(n << 10), core), core.tile());
        }
    }

    #[test]
    fn desktop_config_works() {
        let e = PlacementEngine::new(PlacementConfig::from_system(&SystemConfig::desktop_8()));
        assert_eq!(e.config().num_tiles(), 8);
        let home = e.place(PageClass::Shared, b(3 << 12), CoreId::new(1));
        assert!(home.index() < 8);
    }
}
