//! Synthetic workload models for the R-NUCA reproduction.
//!
//! The paper evaluates R-NUCA on commercial server workloads (TPC-C on DB2
//! and Oracle, SPECweb on Apache, TPC-H decision-support queries), one
//! scientific code (em3d) and a multi-programmed SPEC CPU2000 mix, all run
//! under full-system simulation. Those binaries, datasets, and the Flexus
//! toolchain are not available here, so this crate substitutes **statistical
//! workload models**: each [`WorkloadSpec`] captures the published
//! characterization of one workload — the L2 access-class mix (Figure 3), the
//! per-class working-set footprints (Figure 4), the sharing patterns and
//! read-write behaviour (Figure 2), and per-class locality — and a
//! [`TraceGenerator`] turns it into a reproducible stream of L2 references
//! (the unit of analysis used throughout the paper).
//!
//! The [`arena`] module memoizes generated streams: a [`TraceArena`]
//! materializes each unique `(workload, geometry, seed)` stream exactly once
//! into a packed [`TraceSlab`] and replays it through [`TraceSlice`] cursors,
//! so experiments that run many designs over one stream generate it once.
//!
//! The [`characterize`] module recomputes the paper's characterization figures
//! from generated traces, closing the loop: the traces we feed the simulator
//! demonstrably exhibit the class mix, footprints, sharing, and reuse the
//! paper reports.
//!
//! # Example
//!
//! ```
//! use rnuca_workloads::{TraceGenerator, WorkloadSpec};
//!
//! let spec = WorkloadSpec::oltp_db2();
//! let mut gen = TraceGenerator::new(&spec, 42);
//! let trace: Vec<_> = gen.by_ref().take(10_000).collect();
//! assert_eq!(trace.len(), 10_000);
//! // Every access carries its ground-truth class for characterization.
//! assert!(trace.iter().any(|a| a.class == rnuca_types::AccessClass::Instruction));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arena;
pub mod characterize;
pub mod generator;
pub mod regions;
pub mod spec;
pub mod trace_io;

pub use arena::{TraceArena, TraceKey, TraceSlab, TraceSlice, TraceSource};
pub use characterize::{
    ClassBreakdown, ReuseHistogram, SharerProfile, TraceCharacterization, WorkingSetCdf,
};
pub use generator::TraceGenerator;
pub use regions::AddressLayout;
pub use spec::{CmpPreset, SharingPattern, WorkloadSpec};
pub use trace_io::{decode_trace, encode_trace, TraceDecodeError, TraceEncodeError};
