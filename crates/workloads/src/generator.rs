//! The synthetic trace generator: turns a [`WorkloadSpec`] into a stream of L2 references.
//!
//! Cores issue references round-robin (the paper's server and scientific
//! workloads run one similar thread per core, so per-core reference rates are
//! balanced). Each reference picks an access class according to the spec's
//! class mix, then a block within the class's region using a two-level
//! hot/cold locality model, and finally a read/write kind according to the
//! class's write fraction.

use crate::regions::AddressLayout;
use crate::spec::{SharingPattern, WorkloadSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rnuca_types::access::{AccessClass, AccessKind, MemoryAccess};
use rnuca_types::addr::BlockAddr;
use rnuca_types::ids::CoreId;

/// A reproducible, infinite generator of L2 references for one workload.
///
/// The per-region hot-set sizes are precomputed at construction, so drawing
/// a reference costs only the RNG calls and a few integer operations — the
/// generator allocates nothing per access (and, via
/// [`TraceGenerator::generate_into`], nothing per batch either).
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    name: String,
    layout: AddressLayout,
    num_cores: usize,
    instr_fraction: f64,
    private_fraction: f64,
    shared_write_fraction: f64,
    private_write_fraction: f64,
    hot_access_fraction: f64,
    sharing: SharingPattern,
    /// Hot-set size of the instruction region, in blocks.
    instr_hot_blocks: u64,
    /// Hot-set size of one core's private region, in blocks.
    private_hot_blocks: u64,
    /// Hot-set size of the shared region, in blocks.
    shared_hot_blocks: u64,
    /// Shared blocks per sharing group (1 when the pattern is universal).
    shared_blocks_per_group: u64,
    /// Hot-set size within one sharing group, in blocks.
    group_hot_blocks: u64,
    /// Number of sharing groups (1 when the pattern is universal).
    num_groups: u64,
    rng: StdRng,
    next_core: usize,
}

impl TraceGenerator {
    /// Creates a generator for `spec`, seeded deterministically.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails validation.
    pub fn new(spec: &WorkloadSpec, seed: u64) -> Self {
        spec.validate().expect("workload spec must be valid");
        let cfg = spec.system_config();
        let layout = AddressLayout::new(
            cfg.l2_slice.geometry.block_bytes,
            cfg.memory.page_bytes,
            spec.num_cores(),
            spec.instr_footprint_kb,
            spec.shared_footprint_kb,
            spec.private_footprint_kb_per_core,
        );
        let hot_blocks = |footprint: u64| -> u64 {
            ((footprint as f64 * spec.hot_footprint_fraction) as u64).max(1)
        };
        let group_degree = match spec.sharing {
            SharingPattern::Universal => 0,
            SharingPattern::NearestNeighbor { degree } => degree.max(2),
            SharingPattern::ProducerConsumer => 2,
        };
        let num_groups = if group_degree == 0 {
            1
        } else {
            spec.num_cores().div_ceil(group_degree).max(1) as u64
        };
        let shared_blocks_per_group = (layout.shared_blocks() / num_groups).max(1);
        TraceGenerator {
            name: spec.name.clone(),
            layout,
            num_cores: spec.num_cores(),
            instr_fraction: spec.instr_fraction,
            private_fraction: spec.private_fraction,
            shared_write_fraction: spec.shared_write_fraction,
            private_write_fraction: spec.private_write_fraction,
            hot_access_fraction: spec.hot_access_fraction,
            sharing: spec.sharing,
            instr_hot_blocks: hot_blocks(layout.instr_blocks()),
            private_hot_blocks: hot_blocks(layout.private_blocks_per_core()),
            shared_hot_blocks: hot_blocks(layout.shared_blocks()),
            shared_blocks_per_group,
            group_hot_blocks: hot_blocks(shared_blocks_per_group),
            num_groups,
            rng: StdRng::seed_from_u64(seed),
            next_core: 0,
        }
    }

    /// The workload name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The address-space layout used by this generator.
    pub fn layout(&self) -> &AddressLayout {
        &self.layout
    }

    /// Number of cores issuing references.
    pub fn num_cores(&self) -> usize {
        self.num_cores
    }

    /// Generates a batch of `n` references.
    pub fn generate(&mut self, n: usize) -> Vec<MemoryAccess> {
        let mut buf = Vec::new();
        self.generate_into(n, &mut buf);
        buf
    }

    /// Generates a batch of `n` references into `buf`, clearing it first.
    ///
    /// Reusing one buffer across batches keeps the simulator's run loop free
    /// of per-batch allocations; the produced sequence is identical to `n`
    /// calls of [`TraceGenerator::next_access`].
    pub fn generate_into(&mut self, n: usize, buf: &mut Vec<MemoryAccess>) {
        buf.clear();
        buf.reserve(n);
        for _ in 0..n {
            buf.push(self.next_access());
        }
    }

    /// Generates the next reference.
    pub fn next_access(&mut self) -> MemoryAccess {
        let core = CoreId::new(self.next_core);
        self.next_core = (self.next_core + 1) % self.num_cores;

        let class_roll: f64 = self.rng.gen();
        if class_roll < self.instr_fraction {
            self.instruction_access(core)
        } else if class_roll < self.instr_fraction + self.private_fraction {
            self.private_access(core)
        } else {
            self.shared_access(core)
        }
    }

    /// Picks an index within `footprint` using the two-level hot/cold model.
    /// `hot_blocks` is the region's precomputed hot-set size.
    fn pick_index(&mut self, footprint: u64, hot_blocks: u64) -> u64 {
        if footprint <= 1 {
            return 0;
        }
        if self.rng.gen_bool(self.hot_access_fraction.clamp(0.0, 1.0)) {
            self.rng.gen_range(0..hot_blocks)
        } else {
            self.rng.gen_range(0..footprint)
        }
    }

    fn instruction_access(&mut self, core: CoreId) -> MemoryAccess {
        let idx = self.pick_index(self.layout.instr_blocks(), self.instr_hot_blocks);
        let block = self.layout.instr_block(idx);
        MemoryAccess::new(
            core,
            block.base_addr(self.layout.block_bytes()),
            AccessKind::InstrFetch,
            AccessClass::Instruction,
        )
    }

    fn private_access(&mut self, core: CoreId) -> MemoryAccess {
        let idx = self.pick_index(
            self.layout.private_blocks_per_core(),
            self.private_hot_blocks,
        );
        let block = self.layout.private_block(core, idx);
        let kind = if self
            .rng
            .gen_bool(self.private_write_fraction.clamp(0.0, 1.0))
        {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        MemoryAccess::new(
            core,
            block.base_addr(self.layout.block_bytes()),
            kind,
            AccessClass::PrivateData,
        )
    }

    fn shared_access(&mut self, core: CoreId) -> MemoryAccess {
        let block = self.pick_shared_block(core);
        let kind = if self
            .rng
            .gen_bool(self.shared_write_fraction.clamp(0.0, 1.0))
        {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        MemoryAccess::new(
            core,
            block.base_addr(self.layout.block_bytes()),
            kind,
            AccessClass::SharedData,
        )
    }

    /// Picks a shared block respecting the spec's sharing pattern.
    fn pick_shared_block(&mut self, core: CoreId) -> BlockAddr {
        let footprint = self.layout.shared_blocks();
        match self.sharing {
            SharingPattern::Universal => {
                let idx = self.pick_index(footprint, self.shared_hot_blocks);
                self.layout.shared_block(idx)
            }
            SharingPattern::NearestNeighbor { degree } => {
                self.grouped_shared_block(core, degree.max(2), footprint)
            }
            SharingPattern::ProducerConsumer => self.grouped_shared_block(core, 2, footprint),
        }
    }

    /// Shared blocks are partitioned among groups of `degree` neighbouring
    /// cores; a core only touches blocks belonging to its group.
    fn grouped_shared_block(&mut self, core: CoreId, degree: usize, footprint: u64) -> BlockAddr {
        let group = (core.index() / degree) as u64;
        let within = self.pick_index(self.shared_blocks_per_group, self.group_hot_blocks);
        // Interleave groups across the region so every group sees a spread of sets.
        let idx = within * self.num_groups + group;
        self.layout.shared_block(idx % footprint)
    }
}

impl Iterator for TraceGenerator {
    type Item = MemoryAccess;

    fn next(&mut self) -> Option<MemoryAccess> {
        Some(self.next_access())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WorkloadSpec;
    use std::collections::{HashMap, HashSet};

    fn trace(spec: &WorkloadSpec, n: usize, seed: u64) -> Vec<MemoryAccess> {
        TraceGenerator::new(spec, seed).generate(n)
    }

    #[test]
    fn class_mix_matches_spec_fractions() {
        let spec = WorkloadSpec::oltp_db2();
        let t = trace(&spec, 50_000, 1);
        let instr = t
            .iter()
            .filter(|a| a.class == AccessClass::Instruction)
            .count() as f64;
        let private = t
            .iter()
            .filter(|a| a.class == AccessClass::PrivateData)
            .count() as f64;
        let shared = t
            .iter()
            .filter(|a| a.class == AccessClass::SharedData)
            .count() as f64;
        let n = t.len() as f64;
        assert!((instr / n - spec.instr_fraction).abs() < 0.02);
        assert!((private / n - spec.private_fraction).abs() < 0.02);
        assert!((shared / n - spec.shared_fraction).abs() < 0.02);
    }

    #[test]
    fn ground_truth_classes_match_the_layout() {
        let spec = WorkloadSpec::apache();
        let gen = TraceGenerator::new(&spec, 7);
        let layout = *gen.layout();
        for a in trace(&spec, 5_000, 7) {
            assert_eq!(
                layout.class_of(a.addr),
                Some(a.class),
                "layout and tag must agree"
            );
        }
    }

    #[test]
    fn private_accesses_stay_in_the_owners_region() {
        let spec = WorkloadSpec::dss_qry6();
        let gen = TraceGenerator::new(&spec, 3);
        let layout = *gen.layout();
        for a in trace(&spec, 20_000, 3) {
            if a.class == AccessClass::PrivateData {
                assert_eq!(layout.private_owner(a.addr), Some(a.core));
            }
        }
    }

    #[test]
    fn instruction_accesses_are_fetches_and_shared_by_all_cores() {
        let spec = WorkloadSpec::oltp_db2();
        let t = trace(&spec, 50_000, 11);
        let mut sharers: HashMap<u64, HashSet<usize>> = HashMap::new();
        for a in &t {
            if a.class == AccessClass::Instruction {
                assert!(a.kind.is_instr_fetch());
                sharers
                    .entry(a.addr.block(64).block_number())
                    .or_default()
                    .insert(a.core.index());
            }
        }
        // Hot instruction blocks end up shared by (nearly) all 16 cores.
        let max_sharers = sharers.values().map(HashSet::len).max().unwrap();
        assert!(
            max_sharers >= 14,
            "hot instruction blocks should be near-universally shared"
        );
    }

    #[test]
    fn nearest_neighbor_sharing_limits_sharers_per_block() {
        let spec = WorkloadSpec::em3d();
        let t = trace(&spec, 100_000, 5);
        let mut sharers: HashMap<u64, HashSet<usize>> = HashMap::new();
        for a in &t {
            if a.class == AccessClass::SharedData {
                sharers
                    .entry(a.addr.block(64).block_number())
                    .or_default()
                    .insert(a.core.index());
            }
        }
        let max_sharers = sharers.values().map(HashSet::len).max().unwrap();
        assert!(
            max_sharers <= 4,
            "em3d shared blocks are shared by at most the group degree, got {max_sharers}"
        );
    }

    #[test]
    fn same_seed_reproduces_the_trace() {
        let spec = WorkloadSpec::mix();
        assert_eq!(trace(&spec, 1_000, 99), trace(&spec, 1_000, 99));
    }

    #[test]
    fn different_seeds_differ() {
        let spec = WorkloadSpec::mix();
        assert_ne!(trace(&spec, 1_000, 1), trace(&spec, 1_000, 2));
    }

    #[test]
    fn cores_issue_round_robin() {
        let spec = WorkloadSpec::oltp_db2();
        let t = trace(&spec, 64, 0);
        for (i, a) in t.iter().enumerate() {
            assert_eq!(a.core.index(), i % 16);
        }
    }

    #[test]
    fn write_fractions_are_respected() {
        let spec = WorkloadSpec::oltp_db2();
        let t = trace(&spec, 80_000, 21);
        let shared: Vec<_> = t
            .iter()
            .filter(|a| a.class == AccessClass::SharedData)
            .collect();
        let writes = shared.iter().filter(|a| a.kind.is_write()).count() as f64;
        assert!((writes / shared.len() as f64 - spec.shared_write_fraction).abs() < 0.03);
        // Instruction fetches are never writes.
        assert!(t
            .iter()
            .filter(|a| a.class == AccessClass::Instruction)
            .all(|a| !a.kind.is_write()));
    }

    #[test]
    fn iterator_interface_yields_accesses() {
        let spec = WorkloadSpec::em3d();
        let gen = TraceGenerator::new(&spec, 4);
        let collected: Vec<_> = gen.take(100).collect();
        assert_eq!(collected.len(), 100);
    }
}
