//! The shared trace arena: generate each reference stream once, replay it
//! everywhere.
//!
//! The paper's headline experiments sweep five LLC designs over the *same*
//! workload reference streams — the comparison is only meaningful because
//! every design sees identical references. Yet generating a stream is
//! expensive (several RNG draws per reference), and a naive per-job runner
//! regenerates it once per design, once per ASR variant, once per timed
//! scenario. [`TraceArena`] removes that redundancy: each unique
//! `(workload profile, trace geometry, seed)` stream is materialized exactly
//! once into a compact structure-of-arrays [`TraceSlab`], and every job that
//! needs the stream replays it through a zero-copy [`TraceSlice`] cursor.
//!
//! Determinism guarantee: a slab holds exactly the sequence
//! [`TraceGenerator::next_access`] produces for the same spec and seed, so
//! replay is bit-identical to streaming generation — the arena changes how
//! fast experiments run, never what they compute. The randomized
//! differential tests below and the golden-result tests in `rnuca-sim` pin
//! this down.
//!
//! Memory footprint: a slab stores 11 bytes per reference (8-byte physical
//! address, 2-byte core index, 1-byte class+kind tag) — about 9.5 MiB for
//! the full configuration's 900 000 references, versus ~24 bytes per
//! [`MemoryAccess`] for an unpacked trace.

use crate::generator::TraceGenerator;
use crate::spec::{SharingPattern, WorkloadSpec};
use rnuca_types::access::{AccessClass, AccessKind, MemoryAccess};
use rnuca_types::addr::PhysAddr;
use rnuca_types::config::TraceGeometry;
use rnuca_types::ids::CoreId;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// A source of L2 references the simulator can drive.
///
/// Implemented by the streaming [`TraceGenerator`] (draws each reference
/// from its RNG) and by [`TraceSlice`] (replays a memoized [`TraceSlab`]).
/// Both yield the identical sequence for the same workload and seed, so a
/// simulator driven by either produces bit-identical results.
pub trait TraceSource {
    /// Fills `buf` with the next `n` references, clearing it first.
    fn fill_into(&mut self, n: usize, buf: &mut Vec<MemoryAccess>);
}

impl TraceSource for TraceGenerator {
    fn fill_into(&mut self, n: usize, buf: &mut Vec<MemoryAccess>) {
        self.generate_into(n, buf);
    }
}

/// The memoization key of one reference stream.
///
/// Two jobs share a slab exactly when their streams are guaranteed equal:
/// same workload name, same *profile fingerprint* (every spec field the
/// generator reads, hashed, so a mutated spec reusing a preset's name cannot
/// alias its stream), same [`TraceGeometry`] (the configuration subset that
/// shapes stream contents — core count and block/page sizes; slice capacity
/// and latencies deliberately excluded), and same seed.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TraceKey {
    workload: String,
    geometry: TraceGeometry,
    profile: u64,
    seed: u64,
}

impl TraceKey {
    /// The key of `spec`'s stream under `seed`.
    pub fn new(spec: &WorkloadSpec, seed: u64) -> Self {
        TraceKey {
            workload: spec.name.clone(),
            geometry: spec.system_config().trace_geometry(),
            profile: profile_fingerprint(spec),
            seed,
        }
    }

    /// The workload name this key belongs to.
    pub fn workload(&self) -> &str {
        &self.workload
    }

    /// The seed this key's stream was generated with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The trace geometry (core count, block and page sizes) that shaped
    /// this key's stream contents. Fused-execution groups are keyed by
    /// shared trace, so this is what a group label reports alongside the
    /// workload name and seed.
    pub fn geometry(&self) -> TraceGeometry {
        self.geometry
    }
}

/// FNV-1a over every spec field the generator's output depends on. The
/// fields that only shape simulation cost (busy CPI, reference rate) are
/// deliberately excluded so cost-model tweaks keep sharing slabs.
fn profile_fingerprint(spec: &WorkloadSpec) -> u64 {
    let sharing = match spec.sharing {
        SharingPattern::Universal => 0,
        SharingPattern::NearestNeighbor { degree } => 1 | ((degree as u64) << 8),
        SharingPattern::ProducerConsumer => 2,
    };
    let mut h = rnuca_types::Fnv64::new();
    for v in [
        spec.instr_fraction.to_bits(),
        spec.private_fraction.to_bits(),
        spec.shared_fraction.to_bits(),
        spec.instr_footprint_kb,
        spec.private_footprint_kb_per_core,
        spec.shared_footprint_kb,
        spec.shared_write_fraction.to_bits(),
        spec.private_write_fraction.to_bits(),
        sharing,
        spec.hot_access_fraction.to_bits(),
        spec.hot_footprint_fraction.to_bits(),
    ] {
        h.write_u64(v);
    }
    h.finish()
}

/// Bits 0-1 of a slab tag: the access class.
const TAG_CLASS_MASK: u8 = 0b0011;
/// Bits 2-3 of a slab tag: the access kind.
const TAG_KIND_SHIFT: u8 = 2;

fn encode_tag(class: AccessClass, kind: AccessKind) -> u8 {
    let c = match class {
        AccessClass::Instruction => 0u8,
        AccessClass::PrivateData => 1,
        AccessClass::SharedData => 2,
    };
    let k = match kind {
        AccessKind::InstrFetch => 0u8,
        AccessKind::Read => 1,
        AccessKind::Write => 2,
    };
    c | (k << TAG_KIND_SHIFT)
}

fn decode_tag(tag: u8) -> (AccessClass, AccessKind) {
    let class = match tag & TAG_CLASS_MASK {
        0 => AccessClass::Instruction,
        1 => AccessClass::PrivateData,
        2 => AccessClass::SharedData,
        other => unreachable!("invalid class bits {other} in trace slab tag"),
    };
    let kind = match tag >> TAG_KIND_SHIFT {
        0 => AccessKind::InstrFetch,
        1 => AccessKind::Read,
        2 => AccessKind::Write,
        other => unreachable!("invalid kind bits {other} in trace slab tag"),
    };
    (class, kind)
}

/// One materialized reference stream in structure-of-arrays form.
///
/// Three parallel slabs — physical addresses, issuing-core indices, and
/// packed class+kind tags — hold the whole stream contiguously, so replay is
/// a linear walk decoding a handful of integer fields per reference instead
/// of the RNG draws and region arithmetic generation performs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSlab {
    addrs: Vec<u64>,
    cores: Vec<u16>,
    tags: Vec<u8>,
}

impl TraceSlab {
    /// Materializes the first `len` references of `spec`'s stream under `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails validation (as [`TraceGenerator::new`] does).
    pub fn generate(spec: &WorkloadSpec, seed: u64, len: usize) -> Self {
        let mut gen = TraceGenerator::new(spec, seed);
        let mut slab = TraceSlab {
            addrs: Vec::with_capacity(len),
            cores: Vec::with_capacity(len),
            tags: Vec::with_capacity(len),
        };
        for _ in 0..len {
            let a = gen.next_access();
            slab.addrs.push(a.addr.value());
            slab.cores.push(a.core.index() as u16);
            slab.tags.push(encode_tag(a.class, a.kind));
        }
        slab
    }

    /// Number of references held.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// Whether the slab holds no references.
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// Heap bytes the packed stream occupies (11 bytes per reference).
    pub fn packed_bytes(&self) -> usize {
        self.addrs.len() * (std::mem::size_of::<u64>() + std::mem::size_of::<u16>() + 1)
    }

    /// Decodes reference `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn get(&self, i: usize) -> MemoryAccess {
        let (class, kind) = decode_tag(self.tags[i]);
        MemoryAccess::new(
            CoreId::new(self.cores[i] as usize),
            PhysAddr::new(self.addrs[i]),
            kind,
            class,
        )
    }
}

/// A zero-copy replay cursor over a shared [`TraceSlab`].
///
/// Slices are cheap to create (an `Arc` clone plus a position) and
/// independent: every job gets its own cursor over the one shared slab.
#[derive(Debug, Clone)]
pub struct TraceSlice {
    slab: Arc<TraceSlab>,
    pos: usize,
}

impl TraceSlice {
    /// A cursor at the start of `slab`.
    pub fn new(slab: Arc<TraceSlab>) -> Self {
        TraceSlice { slab, pos: 0 }
    }

    /// References not yet replayed.
    pub fn remaining(&self) -> usize {
        self.slab.len() - self.pos
    }

    /// The current replay position.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// The slab this cursor replays.
    pub fn slab(&self) -> &Arc<TraceSlab> {
        &self.slab
    }

    /// Advances the cursor past `n` references without decoding them.
    ///
    /// Snapshot forks use this to seat a measured-phase cursor directly
    /// after the warmup prefix a restored checkpoint already consumed.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` references remain.
    pub fn skip(&mut self, n: usize) {
        assert!(
            n <= self.remaining(),
            "trace slab exhausted: cannot skip {n} of {} remaining references",
            self.remaining()
        );
        self.pos += n;
    }
}

impl TraceSource for TraceSlice {
    /// Decodes the next `n` references into `buf`, clearing it first. The
    /// produced sequence is identical to `n` calls of
    /// [`TraceGenerator::next_access`] on a generator at the same position.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` references remain — the arena sizes slabs to
    /// a run's full length up front, so exhaustion is a caller bug, and a
    /// silent short batch would corrupt the replayed stream.
    fn fill_into(&mut self, n: usize, buf: &mut Vec<MemoryAccess>) {
        assert!(
            n <= self.remaining(),
            "trace slab exhausted: {n} references requested, {} remain of {}",
            self.remaining(),
            self.slab.len()
        );
        buf.clear();
        buf.reserve(n);
        for i in self.pos..self.pos + n {
            buf.push(self.slab.get(i));
        }
        self.pos += n;
    }
}

/// Per-key slot: its own lock, so generating one stream never blocks
/// requests for a different one.
#[derive(Debug, Default)]
struct Cell {
    slab: Mutex<Option<Arc<TraceSlab>>>,
}

/// A thread-safe, memoizing store of materialized reference streams.
///
/// The arena guarantees each unique [`TraceKey`] is generated exactly once,
/// even under concurrent requests: the key map hands out per-key cells, and
/// generation happens under the cell's own lock (so two workers asking for
/// the *same* stream serialize on it and the second finds it filled, while
/// workers asking for *different* streams proceed in parallel).
///
/// Experiment layers pre-populate the unique keys of a job list in parallel
/// (see [`TraceArena::populate`]) and then resolve every job through
/// [`TraceArena::slice`], which is a lock-and-clone once the slab exists.
#[derive(Debug, Default)]
pub struct TraceArena {
    cells: Mutex<HashMap<TraceKey, Arc<Cell>>>,
    generations: AtomicUsize,
}

impl TraceArena {
    /// An empty arena.
    pub fn new() -> Self {
        TraceArena::default()
    }

    /// Number of distinct streams held.
    pub fn len(&self) -> usize {
        self.cells.lock().expect("arena key map poisoned").len()
    }

    /// Whether the arena holds no streams.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many times a stream was actually generated (diagnostics: equals
    /// [`TraceArena::len`] when every request was deduplicated, i.e. no
    /// stream was regenerated at a longer length).
    pub fn generations(&self) -> usize {
        self.generations.load(Ordering::Relaxed)
    }

    /// Total heap bytes of all packed streams currently held.
    pub fn packed_bytes(&self) -> usize {
        let cells: Vec<Arc<Cell>> = self
            .cells
            .lock()
            .expect("arena key map poisoned")
            .values()
            .cloned()
            .collect();
        cells
            .iter()
            .filter_map(|c| {
                c.slab
                    .lock()
                    .expect("arena cell poisoned")
                    .as_ref()
                    .map(|s| s.packed_bytes())
            })
            .sum()
    }

    /// The shared slab for `spec`'s stream under `seed`, holding at least
    /// `min_len` references — generated on first request, memoized after.
    ///
    /// If an earlier request materialized a shorter slab, the stream is
    /// regenerated at `min_len` and the result replaces it; determinism
    /// makes the old slab a strict prefix of the new one, so cursors already
    /// replaying the old `Arc` are unaffected.
    pub fn slab(&self, spec: &WorkloadSpec, seed: u64, min_len: usize) -> Arc<TraceSlab> {
        let cell = {
            let mut cells = self.cells.lock().expect("arena key map poisoned");
            Arc::clone(cells.entry(TraceKey::new(spec, seed)).or_default())
        };
        let mut slot = cell.slab.lock().expect("arena cell poisoned");
        if let Some(slab) = slot.as_ref() {
            if slab.len() >= min_len {
                return Arc::clone(slab);
            }
        }
        let slab = Arc::new(TraceSlab::generate(spec, seed, min_len));
        self.generations.fetch_add(1, Ordering::Relaxed);
        *slot = Some(Arc::clone(&slab));
        slab
    }

    /// A fresh replay cursor over the (possibly just materialized) stream.
    pub fn slice(&self, spec: &WorkloadSpec, seed: u64, min_len: usize) -> TraceSlice {
        TraceSlice::new(self.slab(spec, seed, min_len))
    }

    /// Ensures the stream is materialized at `min_len` references, without
    /// returning it — the parallel pre-population entry point.
    pub fn populate(&self, spec: &WorkloadSpec, seed: u64, min_len: usize) {
        self.slab(spec, seed, min_len);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn replayed(slice: &mut TraceSlice, n: usize, batch: usize) -> Vec<MemoryAccess> {
        let mut out = Vec::new();
        let mut buf = Vec::new();
        let mut left = n;
        while left > 0 {
            let take = left.min(batch);
            slice.fill_into(take, &mut buf);
            out.extend_from_slice(&buf);
            left -= take;
        }
        out
    }

    #[test]
    fn replay_is_identical_to_streaming_generation() {
        // Randomized differential test: across workloads, seeds, lengths,
        // and batch sizes, slab replay must yield the byte-identical access
        // sequence that streaming `next_access` calls produce.
        let mut rng = StdRng::seed_from_u64(0xA4E4A);
        let suite = WorkloadSpec::evaluation_suite();
        for trial in 0..12 {
            let spec = &suite[rng.gen_range(0..suite.len())];
            let seed: u64 = rng.gen_range(0..1_000_000);
            let len = rng.gen_range(1usize..5_000);
            let batch = rng.gen_range(1usize..700);

            let streamed: Vec<MemoryAccess> = TraceGenerator::new(spec, seed).take(len).collect();
            let slab = Arc::new(TraceSlab::generate(spec, seed, len));
            let decoded = replayed(&mut TraceSlice::new(Arc::clone(&slab)), len, batch);
            assert_eq!(
                streamed, decoded,
                "trial {trial}: {} seed {seed} len {len} batch {batch}",
                spec.name
            );
            // The Debug rendering (what golden digests pin) agrees too.
            assert_eq!(format!("{streamed:?}"), format!("{decoded:?}"));
        }
    }

    #[test]
    fn slab_packs_eleven_bytes_per_reference() {
        let spec = WorkloadSpec::oltp_db2();
        let slab = TraceSlab::generate(&spec, 1, 1_000);
        assert_eq!(slab.len(), 1_000);
        assert!(!slab.is_empty());
        assert_eq!(slab.packed_bytes(), 11 * 1_000);
    }

    #[test]
    fn tag_codec_round_trips_every_combination() {
        for class in AccessClass::ALL {
            for kind in [AccessKind::InstrFetch, AccessKind::Read, AccessKind::Write] {
                assert_eq!(decode_tag(encode_tag(class, kind)), (class, kind));
            }
        }
    }

    #[test]
    fn arena_generates_each_unique_key_exactly_once() {
        let arena = TraceArena::new();
        let spec = WorkloadSpec::em3d();
        let a = arena.slab(&spec, 7, 2_000);
        let b = arena.slab(&spec, 7, 2_000);
        let c = arena.slab(&spec, 7, 500); // shorter request: served by the same slab
        assert!(Arc::ptr_eq(&a, &b) && Arc::ptr_eq(&b, &c));
        assert_eq!(arena.len(), 1);
        assert_eq!(arena.generations(), 1);
        assert_eq!(arena.packed_bytes(), 11 * 2_000);

        // A different seed is a different stream.
        arena.populate(&spec, 8, 2_000);
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.generations(), 2);
    }

    #[test]
    fn concurrent_requests_for_one_key_share_a_single_generation() {
        let arena = TraceArena::new();
        let spec = WorkloadSpec::oltp_db2();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| arena.populate(&spec, 3, 3_000));
            }
        });
        assert_eq!(arena.len(), 1);
        assert_eq!(arena.generations(), 1);
    }

    #[test]
    fn growing_a_slab_keeps_the_old_stream_as_a_prefix() {
        let arena = TraceArena::new();
        let spec = WorkloadSpec::mix();
        let short = arena.slab(&spec, 5, 300);
        let long = arena.slab(&spec, 5, 900);
        assert_eq!(arena.len(), 1, "one key, regenerated longer");
        assert_eq!(arena.generations(), 2);
        assert_eq!(long.len(), 900);
        for i in 0..short.len() {
            assert_eq!(short.get(i), long.get(i));
        }
    }

    #[test]
    fn keys_separate_profiles_geometries_and_seeds() {
        let spec = WorkloadSpec::oltp_db2();
        let base = TraceKey::new(&spec, 42);
        assert_eq!(base, TraceKey::new(&WorkloadSpec::oltp_db2(), 42));
        assert_eq!(base.workload(), "OLTP DB2");
        assert_eq!(base.seed(), 42);
        assert_ne!(base, TraceKey::new(&spec, 43), "seed separates");
        assert_ne!(
            base,
            TraceKey::new(&WorkloadSpec::apache(), 42),
            "workload separates"
        );

        // Same name, mutated profile: the fingerprint separates them.
        let mut tweaked = WorkloadSpec::oltp_db2();
        tweaked.hot_access_fraction = 0.5;
        assert_ne!(base, TraceKey::new(&tweaked, 42));

        // Cost-only fields share the key (and therefore the slab).
        let mut cost_only = WorkloadSpec::oltp_db2();
        cost_only.busy_cpi = 2.0;
        cost_only.l2_refs_per_kilo_instr = 10.0;
        assert_eq!(base, TraceKey::new(&cost_only, 42));

        // Slice capacity is cost-only; core count is not.
        let point_cap = rnuca_types::config::ConfigPoint {
            slice_capacity_kb: Some(512),
            ..Default::default()
        };
        assert_eq!(
            base,
            TraceKey::new(&spec.at_config_point(&point_cap).unwrap(), 42)
        );
        let point_cores = rnuca_types::config::ConfigPoint {
            num_cores: Some(64),
            ..Default::default()
        };
        assert_ne!(
            base,
            TraceKey::new(&spec.at_config_point(&point_cores).unwrap(), 42)
        );
    }

    #[test]
    #[should_panic(expected = "trace slab exhausted")]
    fn exhausting_a_slice_panics_instead_of_short_reading() {
        let spec = WorkloadSpec::em3d();
        let slab = Arc::new(TraceSlab::generate(&spec, 1, 100));
        let mut slice = TraceSlice::new(slab);
        let mut buf = Vec::new();
        slice.fill_into(80, &mut buf);
        assert_eq!(slice.remaining(), 20);
        assert_eq!(slice.position(), 80);
        slice.fill_into(21, &mut buf);
    }

    #[test]
    fn generator_and_slice_share_the_trace_source_interface() {
        let spec = WorkloadSpec::apache();
        let mut buf_gen = Vec::new();
        let mut buf_slice = Vec::new();
        TraceGenerator::new(&spec, 9).fill_into(256, &mut buf_gen);
        TraceArena::new()
            .slice(&spec, 9, 256)
            .fill_into(256, &mut buf_slice);
        assert_eq!(buf_gen, buf_slice);
    }
}
