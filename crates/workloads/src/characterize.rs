//! Trace characterization: recomputes the paper's Figures 2-5 from a trace.
//!
//! * [`ClassBreakdown`] — Figure 3: distribution of L2 references over
//!   instructions, private data, shared read-write data and shared read-only
//!   data.
//! * [`SharerProfile`] — Figure 2: for each (class, number-of-sharers) bubble,
//!   the fraction of L2 accesses it represents and the fraction of its blocks
//!   that are read-write.
//! * [`WorkingSetCdf`] — Figure 4: cumulative fraction of references captured
//!   by a given per-class footprint.
//! * [`ReuseHistogram`] — Figure 5: how many consecutive times one core
//!   re-uses an instruction (resp. shared-data) block before another core
//!   intervenes (resp. writes).

use rnuca_types::access::{AccessClass, MemoryAccess};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Figure 3: breakdown of L2 references by access class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ClassBreakdown {
    /// Fraction of references that are instruction fetches.
    pub instructions: f64,
    /// Fraction of references to private data.
    pub private_data: f64,
    /// Fraction of references to shared blocks that see at least one write.
    pub shared_read_write: f64,
    /// Fraction of references to shared blocks that are never written.
    pub shared_read_only: f64,
}

impl ClassBreakdown {
    /// Sum of the four fractions (should be ~1 for a non-empty trace).
    pub fn total(&self) -> f64 {
        self.instructions + self.private_data + self.shared_read_write + self.shared_read_only
    }
}

/// One bubble of Figure 2: blocks of a class with a given number of sharers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SharerBubble {
    /// Access class of the bubble.
    pub class: AccessClass,
    /// Number of distinct cores that touched the blocks in this bubble.
    pub sharers: usize,
    /// Fraction of all L2 accesses going to blocks in this bubble (bubble diameter).
    pub access_fraction: f64,
    /// Fraction of the bubble's blocks that saw at least one write (y-axis).
    pub read_write_fraction: f64,
    /// Number of distinct blocks in the bubble.
    pub blocks: usize,
}

/// Figure 2: the full set of sharer bubbles for a trace.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SharerProfile {
    /// All non-empty bubbles, ordered by class then sharer count.
    pub bubbles: Vec<SharerBubble>,
}

impl SharerProfile {
    /// The bubble for a given class and sharer count, if present.
    pub fn bubble(&self, class: AccessClass, sharers: usize) -> Option<&SharerBubble> {
        self.bubbles
            .iter()
            .find(|b| b.class == class && b.sharers == sharers)
    }

    /// Access-weighted average sharer count for a class.
    pub fn mean_sharers(&self, class: AccessClass) -> f64 {
        let mut weight = 0.0;
        let mut total = 0.0;
        for b in self.bubbles.iter().filter(|b| b.class == class) {
            weight += b.access_fraction * b.sharers as f64;
            total += b.access_fraction;
        }
        if total == 0.0 {
            0.0
        } else {
            weight / total
        }
    }
}

/// Figure 4: cumulative distribution of references over a class's footprint.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WorkingSetCdf {
    /// `(footprint_kb, cumulative_fraction)` points, sorted by footprint, for
    /// blocks ordered from most- to least-referenced.
    pub points: Vec<(f64, f64)>,
}

impl WorkingSetCdf {
    /// The cumulative fraction of references captured by the hottest `kb` kilobytes.
    pub fn fraction_at_kb(&self, kb: f64) -> f64 {
        let mut last = 0.0;
        for &(x, y) in &self.points {
            if x > kb {
                return last;
            }
            last = y;
        }
        last
    }

    /// The footprint (KB) needed to capture a cumulative fraction `f` of references.
    pub fn kb_at_fraction(&self, f: f64) -> f64 {
        for &(x, y) in &self.points {
            if y >= f {
                return x;
            }
        }
        self.points.last().map(|&(x, _)| x).unwrap_or(0.0)
    }
}

/// Figure 5: reuse-run histogram (1st, 2nd, 3rd-4th, 5th-8th, 9+ accesses).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ReuseHistogram {
    /// Accesses that start a run (first touch by this core since interference).
    pub first: u64,
    /// Second access of a run.
    pub second: u64,
    /// Third or fourth access of a run.
    pub third_fourth: u64,
    /// Fifth through eighth access of a run.
    pub fifth_eighth: u64,
    /// Ninth or later access of a run.
    pub ninth_plus: u64,
}

impl ReuseHistogram {
    fn record(&mut self, run_length: u64) {
        match run_length {
            0 => {}
            1 => self.first += 1,
            2 => self.second += 1,
            3 | 4 => self.third_fourth += 1,
            5..=8 => self.fifth_eighth += 1,
            _ => self.ninth_plus += 1,
        }
    }

    /// Total accesses recorded.
    pub fn total(&self) -> u64 {
        self.first + self.second + self.third_fourth + self.fifth_eighth + self.ninth_plus
    }

    /// Fraction of accesses that are re-uses (anything beyond the first access of a run).
    pub fn reuse_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            (self.total() - self.first) as f64 / self.total() as f64
        }
    }

    /// The five bucket fractions in figure order (1st, 2nd, 3rd-4th, 5th-8th, 9+).
    pub fn fractions(&self) -> [f64; 5] {
        let t = self.total().max(1) as f64;
        [
            self.first as f64 / t,
            self.second as f64 / t,
            self.third_fourth as f64 / t,
            self.fifth_eighth as f64 / t,
            self.ninth_plus as f64 / t,
        ]
    }
}

/// The complete characterization of a trace (Figures 2-5 for one workload).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceCharacterization {
    /// Figure 3 data.
    pub breakdown: ClassBreakdown,
    /// Figure 2 data.
    pub sharers: SharerProfile,
    /// Figure 4, private data.
    pub private_cdf: WorkingSetCdf,
    /// Figure 4, instructions.
    pub instr_cdf: WorkingSetCdf,
    /// Figure 4, shared data.
    pub shared_cdf: WorkingSetCdf,
    /// Figure 5, instruction reuse by the same core between interventions by other cores.
    pub instr_reuse: ReuseHistogram,
    /// Figure 5, shared-data reuse by the same core between writes by other cores.
    pub shared_reuse: ReuseHistogram,
    /// Number of accesses analyzed.
    pub accesses: u64,
}

impl TraceCharacterization {
    /// Analyzes a trace. `block_bytes` is the cache-block size used to group addresses.
    pub fn analyze(trace: &[MemoryAccess], block_bytes: usize) -> Self {
        let mut per_block: HashMap<(AccessClass, u64), BlockRecord> = HashMap::new();
        let mut instr_reuse = ReuseHistogram::default();
        let mut shared_reuse = ReuseHistogram::default();
        // Reuse-run state.
        let mut instr_runs: HashMap<u64, (usize, u64)> = HashMap::new(); // block -> (core, run len)
        let mut shared_runs: HashMap<u64, HashMap<usize, u64>> = HashMap::new(); // block -> core -> count

        for a in trace {
            let block = a.addr.block(block_bytes).block_number();
            let rec = per_block.entry((a.class, block)).or_default();
            rec.accesses += 1;
            rec.sharers.insert(a.core.index());
            if a.kind.is_write() {
                rec.written = true;
            }

            match a.class {
                AccessClass::Instruction => {
                    let entry = instr_runs.entry(block).or_insert((a.core.index(), 0));
                    if entry.0 == a.core.index() {
                        entry.1 += 1;
                    } else {
                        *entry = (a.core.index(), 1);
                    }
                    instr_reuse.record(entry.1);
                }
                AccessClass::SharedData => {
                    let counts = shared_runs.entry(block).or_default();
                    let c = counts.entry(a.core.index()).or_insert(0);
                    *c += 1;
                    shared_reuse.record(*c);
                    if a.kind.is_write() {
                        let writer = a.core.index();
                        counts.retain(|&core, _| core == writer);
                    }
                }
                AccessClass::PrivateData => {}
            }
        }

        let total = trace.len() as f64;
        let mut breakdown = ClassBreakdown::default();
        for ((class, _), rec) in &per_block {
            let frac = rec.accesses as f64 / total.max(1.0);
            match class {
                AccessClass::Instruction => breakdown.instructions += frac,
                AccessClass::PrivateData => breakdown.private_data += frac,
                AccessClass::SharedData => {
                    if rec.written {
                        breakdown.shared_read_write += frac;
                    } else {
                        breakdown.shared_read_only += frac;
                    }
                }
            }
        }

        let sharers = Self::sharer_profile(&per_block, total);
        let private_cdf = Self::cdf_for(&per_block, AccessClass::PrivateData, block_bytes);
        let instr_cdf = Self::cdf_for(&per_block, AccessClass::Instruction, block_bytes);
        let shared_cdf = Self::cdf_for(&per_block, AccessClass::SharedData, block_bytes);

        TraceCharacterization {
            breakdown,
            sharers,
            private_cdf,
            instr_cdf,
            shared_cdf,
            instr_reuse,
            shared_reuse,
            accesses: trace.len() as u64,
        }
    }

    fn sharer_profile(
        per_block: &HashMap<(AccessClass, u64), BlockRecord>,
        total_accesses: f64,
    ) -> SharerProfile {
        // (class, sharer count) -> (accesses, blocks, rw blocks)
        let mut agg: HashMap<(AccessClass, usize), (u64, usize, usize)> = HashMap::new();
        for ((class, _), rec) in per_block {
            let e = agg.entry((*class, rec.sharers.len())).or_insert((0, 0, 0));
            e.0 += rec.accesses;
            e.1 += 1;
            if rec.written {
                e.2 += 1;
            }
        }
        let mut bubbles: Vec<SharerBubble> = agg
            .into_iter()
            .map(
                |((class, sharers), (accesses, blocks, rw_blocks))| SharerBubble {
                    class,
                    sharers,
                    access_fraction: accesses as f64 / total_accesses.max(1.0),
                    read_write_fraction: rw_blocks as f64 / blocks.max(1) as f64,
                    blocks,
                },
            )
            .collect();
        bubbles.sort_by_key(|a| (a.class, a.sharers));
        SharerProfile { bubbles }
    }

    fn cdf_for(
        per_block: &HashMap<(AccessClass, u64), BlockRecord>,
        class: AccessClass,
        block_bytes: usize,
    ) -> WorkingSetCdf {
        let mut counts: Vec<u64> = per_block
            .iter()
            .filter(|((c, _), _)| *c == class)
            .map(|(_, rec)| rec.accesses)
            .collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let class_total: u64 = counts.iter().sum();
        if class_total == 0 {
            return WorkingSetCdf::default();
        }
        let mut points = Vec::with_capacity(counts.len().min(4096) + 1);
        let mut cumulative = 0u64;
        let stride = (counts.len() / 2048).max(1);
        for (i, c) in counts.iter().enumerate() {
            cumulative += c;
            if i % stride == 0 || i + 1 == counts.len() {
                let kb = (i as f64 + 1.0) * block_bytes as f64 / 1024.0;
                points.push((kb, cumulative as f64 / class_total as f64));
            }
        }
        WorkingSetCdf { points }
    }
}

#[derive(Debug, Clone, Default)]
struct BlockRecord {
    accesses: u64,
    sharers: HashSet<usize>,
    written: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnuca_types::access::AccessKind;
    use rnuca_types::addr::PhysAddr;
    use rnuca_types::ids::CoreId;

    fn acc(core: usize, addr: u64, kind: AccessKind, class: AccessClass) -> MemoryAccess {
        MemoryAccess::new(CoreId::new(core), PhysAddr::new(addr), kind, class)
    }

    #[test]
    fn breakdown_splits_shared_by_write_behaviour() {
        let trace = vec![
            acc(0, 0x1000, AccessKind::InstrFetch, AccessClass::Instruction),
            acc(0, 0x2000, AccessKind::Read, AccessClass::PrivateData),
            acc(0, 0x3000, AccessKind::Read, AccessClass::SharedData), // read-only block
            acc(1, 0x4000, AccessKind::Write, AccessClass::SharedData), // read-write block
        ];
        let c = TraceCharacterization::analyze(&trace, 64);
        assert!((c.breakdown.instructions - 0.25).abs() < 1e-9);
        assert!((c.breakdown.private_data - 0.25).abs() < 1e-9);
        assert!((c.breakdown.shared_read_only - 0.25).abs() < 1e-9);
        assert!((c.breakdown.shared_read_write - 0.25).abs() < 1e-9);
        assert!((c.breakdown.total() - 1.0).abs() < 1e-9);
        assert_eq!(c.accesses, 4);
    }

    #[test]
    fn sharer_profile_counts_distinct_cores() {
        // One instruction block touched by 3 cores, one private block by 1 core.
        let trace = vec![
            acc(0, 0x1000, AccessKind::InstrFetch, AccessClass::Instruction),
            acc(1, 0x1000, AccessKind::InstrFetch, AccessClass::Instruction),
            acc(2, 0x1000, AccessKind::InstrFetch, AccessClass::Instruction),
            acc(3, 0x2000, AccessKind::Write, AccessClass::PrivateData),
        ];
        let c = TraceCharacterization::analyze(&trace, 64);
        let b = c
            .sharers
            .bubble(AccessClass::Instruction, 3)
            .expect("3-sharer instruction bubble");
        assert_eq!(b.blocks, 1);
        assert!((b.access_fraction - 0.75).abs() < 1e-9);
        assert_eq!(b.read_write_fraction, 0.0);
        let p = c.sharers.bubble(AccessClass::PrivateData, 1).unwrap();
        assert_eq!(p.read_write_fraction, 1.0);
        assert!((c.sharers.mean_sharers(AccessClass::Instruction) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn instruction_reuse_runs_reset_on_intervention() {
        // Core 0 touches the block twice, core 1 intervenes, core 0 touches again.
        let trace = vec![
            acc(0, 0x1000, AccessKind::InstrFetch, AccessClass::Instruction),
            acc(0, 0x1000, AccessKind::InstrFetch, AccessClass::Instruction),
            acc(1, 0x1000, AccessKind::InstrFetch, AccessClass::Instruction),
            acc(0, 0x1000, AccessKind::InstrFetch, AccessClass::Instruction),
        ];
        let c = TraceCharacterization::analyze(&trace, 64);
        assert_eq!(
            c.instr_reuse.first, 3,
            "two run starts by core 0 plus one by core 1"
        );
        assert_eq!(c.instr_reuse.second, 1);
        assert_eq!(c.instr_reuse.total(), 4);
        assert!((c.instr_reuse.reuse_fraction() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn shared_reuse_resets_on_other_cores_write() {
        let b = 0x5000;
        let trace = vec![
            acc(0, b, AccessKind::Read, AccessClass::SharedData), // core 0: 1st
            acc(0, b, AccessKind::Read, AccessClass::SharedData), // core 0: 2nd
            acc(1, b, AccessKind::Write, AccessClass::SharedData), // core 1: 1st, resets core 0
            acc(0, b, AccessKind::Read, AccessClass::SharedData), // core 0: 1st again
        ];
        let c = TraceCharacterization::analyze(&trace, 64);
        assert_eq!(c.shared_reuse.first, 3);
        assert_eq!(c.shared_reuse.second, 1);
    }

    #[test]
    fn cdf_is_monotonic_and_reaches_one() {
        let mut trace = Vec::new();
        // Block 0 is hot (10 accesses), blocks 1..10 are cold (1 access each).
        for _ in 0..10 {
            trace.push(acc(0, 0x10000, AccessKind::Read, AccessClass::PrivateData));
        }
        for i in 1..=10u64 {
            trace.push(acc(
                0,
                0x10000 + i * 64,
                AccessKind::Read,
                AccessClass::PrivateData,
            ));
        }
        let c = TraceCharacterization::analyze(&trace, 64);
        let cdf = &c.private_cdf;
        assert!(!cdf.points.is_empty());
        for w in cdf.points.windows(2) {
            assert!(
                w[1].0 >= w[0].0 && w[1].1 >= w[0].1,
                "CDF must be monotonic"
            );
        }
        let last = cdf.points.last().unwrap();
        assert!((last.1 - 1.0).abs() < 1e-9, "CDF must reach 1.0");
        // The hottest single block (64 B) captures half the accesses.
        assert!((cdf.fraction_at_kb(0.0625) - 0.5).abs() < 1e-9);
        assert!(cdf.kb_at_fraction(1.0) >= 0.6);
    }

    #[test]
    fn empty_trace_yields_empty_characterization() {
        let c = TraceCharacterization::analyze(&[], 64);
        assert_eq!(c.accesses, 0);
        assert_eq!(c.breakdown.total(), 0.0);
        assert!(c.sharers.bubbles.is_empty());
        assert!(c.private_cdf.points.is_empty());
        assert_eq!(c.instr_reuse.total(), 0);
    }

    #[test]
    fn reuse_histogram_bucket_boundaries() {
        let mut h = ReuseHistogram::default();
        for len in 1..=12u64 {
            h.record(len);
        }
        assert_eq!(h.first, 1);
        assert_eq!(h.second, 1);
        assert_eq!(h.third_fourth, 2);
        assert_eq!(h.fifth_eighth, 4);
        assert_eq!(h.ninth_plus, 4);
        let fr = h.fractions();
        assert!((fr.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
}
