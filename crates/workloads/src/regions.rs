//! Address-space layout: where each access class lives in physical memory.
//!
//! The generator needs disjoint, page-aligned regions per class so that (a)
//! the OS page classifier sees clean pages (Section 5.2 reports that fewer
//! than 0.75% of accesses go to pages holding more than one dominant class)
//! and (b) the ground-truth class of any address can be recovered for
//! characterization and accuracy measurements.
//!
//! The layout places the (chip-wide) instruction region first, the shared
//! region second, and one private region per core after that, each aligned to
//! a large power-of-two boundary so regions never interleave.

use rnuca_types::access::AccessClass;
use rnuca_types::addr::{BlockAddr, PageAddr, PhysAddr};
use rnuca_types::ids::CoreId;
use serde::{Deserialize, Serialize};

/// Alignment (and maximum size) of each class region: 1 GiB.
const REGION_STRIDE: u64 = 1 << 30;

/// The address-space layout of one workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddressLayout {
    block_bytes: usize,
    page_bytes: usize,
    num_cores: usize,
    instr_blocks: u64,
    shared_blocks: u64,
    private_blocks_per_core: u64,
}

impl AddressLayout {
    /// Builds a layout for footprints given in KB.
    ///
    /// # Panics
    ///
    /// Panics if any footprint exceeds the 1 GiB region stride or if the
    /// geometry parameters are zero / not powers of two.
    pub fn new(
        block_bytes: usize,
        page_bytes: usize,
        num_cores: usize,
        instr_footprint_kb: u64,
        shared_footprint_kb: u64,
        private_footprint_kb_per_core: u64,
    ) -> Self {
        assert!(block_bytes.is_power_of_two() && page_bytes.is_power_of_two());
        assert!(num_cores > 0, "need at least one core");
        for kb in [
            instr_footprint_kb,
            shared_footprint_kb,
            private_footprint_kb_per_core,
        ] {
            assert!(
                kb * 1024 < REGION_STRIDE,
                "footprint {kb} KB exceeds the region stride"
            );
        }
        let to_blocks = |kb: u64| (kb * 1024 / block_bytes as u64).max(1);
        AddressLayout {
            block_bytes,
            page_bytes,
            num_cores,
            instr_blocks: to_blocks(instr_footprint_kb),
            shared_blocks: to_blocks(shared_footprint_kb),
            private_blocks_per_core: to_blocks(private_footprint_kb_per_core),
        }
    }

    /// Cache-block size in bytes.
    pub fn block_bytes(&self) -> usize {
        self.block_bytes
    }

    /// OS page size in bytes.
    pub fn page_bytes(&self) -> usize {
        self.page_bytes
    }

    /// Number of cores with private regions.
    pub fn num_cores(&self) -> usize {
        self.num_cores
    }

    /// Number of distinct blocks in the instruction region.
    pub fn instr_blocks(&self) -> u64 {
        self.instr_blocks
    }

    /// Number of distinct blocks in the shared region.
    pub fn shared_blocks(&self) -> u64 {
        self.shared_blocks
    }

    /// Number of distinct blocks in each core's private region.
    pub fn private_blocks_per_core(&self) -> u64 {
        self.private_blocks_per_core
    }

    fn region_base(&self, region_index: u64) -> u64 {
        // Region 0 is left unused so that address 0 never appears in traces.
        (region_index + 1) * REGION_STRIDE
    }

    /// The `index`-th block of the instruction region (wraps modulo the footprint).
    pub fn instr_block(&self, index: u64) -> BlockAddr {
        let idx = index % self.instr_blocks;
        PhysAddr::new(self.region_base(0) + idx * self.block_bytes as u64).block(self.block_bytes)
    }

    /// The `index`-th block of the shared region (wraps modulo the footprint).
    pub fn shared_block(&self, index: u64) -> BlockAddr {
        let idx = index % self.shared_blocks;
        PhysAddr::new(self.region_base(1) + idx * self.block_bytes as u64).block(self.block_bytes)
    }

    /// The `index`-th block of `core`'s private region (wraps modulo the footprint).
    pub fn private_block(&self, core: CoreId, index: u64) -> BlockAddr {
        assert!(
            core.index() < self.num_cores,
            "core {core} has no private region"
        );
        let idx = index % self.private_blocks_per_core;
        let base = self.region_base(2 + core.index() as u64);
        PhysAddr::new(base + idx * self.block_bytes as u64).block(self.block_bytes)
    }

    /// The ground-truth class of an address, or `None` if it falls outside every region.
    pub fn class_of(&self, addr: PhysAddr) -> Option<AccessClass> {
        let region = addr.value() / REGION_STRIDE;
        match region {
            0 => None,
            1 => Some(AccessClass::Instruction),
            2 => Some(AccessClass::SharedData),
            r if (r - 3) < self.num_cores as u64 => Some(AccessClass::PrivateData),
            _ => None,
        }
    }

    /// The owning core of a private address, or `None` if the address is not private.
    pub fn private_owner(&self, addr: PhysAddr) -> Option<CoreId> {
        match self.class_of(addr) {
            Some(AccessClass::PrivateData) => {
                Some(CoreId::new((addr.value() / REGION_STRIDE - 3) as usize))
            }
            _ => None,
        }
    }

    /// The ground-truth class of a page (all blocks of a page share one class by construction).
    pub fn class_of_page(&self, page: PageAddr) -> Option<AccessClass> {
        self.class_of(page.base_addr(self.page_bytes))
    }

    /// Total footprint of a class in blocks (chip-wide; private sums all cores).
    pub fn footprint_blocks(&self, class: AccessClass) -> u64 {
        match class {
            AccessClass::Instruction => self.instr_blocks,
            AccessClass::SharedData => self.shared_blocks,
            AccessClass::PrivateData => self.private_blocks_per_core * self.num_cores as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> AddressLayout {
        AddressLayout::new(64, 8192, 16, 320, 24_576, 384)
    }

    #[test]
    fn footprints_convert_to_block_counts() {
        let l = layout();
        assert_eq!(l.instr_blocks(), 320 * 1024 / 64);
        assert_eq!(l.shared_blocks(), 24_576 * 1024 / 64);
        assert_eq!(l.private_blocks_per_core(), 384 * 1024 / 64);
        assert_eq!(
            l.footprint_blocks(AccessClass::PrivateData),
            16 * l.private_blocks_per_core()
        );
    }

    #[test]
    fn regions_are_disjoint_and_classified_correctly() {
        let l = layout();
        let instr = l.instr_block(5).base_addr(64);
        let shared = l.shared_block(5).base_addr(64);
        let private = l.private_block(CoreId::new(3), 5).base_addr(64);
        assert_eq!(l.class_of(instr), Some(AccessClass::Instruction));
        assert_eq!(l.class_of(shared), Some(AccessClass::SharedData));
        assert_eq!(l.class_of(private), Some(AccessClass::PrivateData));
        assert_eq!(l.private_owner(private), Some(CoreId::new(3)));
        assert_eq!(l.private_owner(shared), None);
        assert_eq!(l.class_of(PhysAddr::new(0x100)), None);
    }

    #[test]
    fn block_indices_wrap_around_the_footprint() {
        let l = layout();
        assert_eq!(l.instr_block(0), l.instr_block(l.instr_blocks()));
        assert_eq!(l.shared_block(7), l.shared_block(7 + l.shared_blocks()));
        let c = CoreId::new(1);
        assert_eq!(
            l.private_block(c, 3),
            l.private_block(c, 3 + l.private_blocks_per_core())
        );
    }

    #[test]
    fn different_cores_have_disjoint_private_regions() {
        let l = layout();
        let a = l.private_block(CoreId::new(0), 0);
        let b = l.private_block(CoreId::new(1), 0);
        assert_ne!(a, b);
        assert_eq!(l.private_owner(a.base_addr(64)), Some(CoreId::new(0)));
        assert_eq!(l.private_owner(b.base_addr(64)), Some(CoreId::new(1)));
    }

    #[test]
    fn pages_have_a_single_class() {
        let l = layout();
        let block = l.shared_block(100);
        let page = block.page(64, 8192);
        assert_eq!(l.class_of_page(page), Some(AccessClass::SharedData));
    }

    #[test]
    fn tiny_footprints_round_up_to_one_block() {
        let l = AddressLayout::new(64, 8192, 2, 0, 0, 0);
        assert_eq!(l.instr_blocks(), 1);
        assert_eq!(l.shared_blocks(), 1);
        assert_eq!(l.private_blocks_per_core(), 1);
    }

    #[test]
    #[should_panic(expected = "exceeds the region stride")]
    fn oversized_footprint_panics() {
        AddressLayout::new(64, 8192, 16, 2 * 1024 * 1024, 0, 0);
    }

    #[test]
    #[should_panic(expected = "no private region")]
    fn out_of_range_core_panics() {
        layout().private_block(CoreId::new(16), 0);
    }
}
