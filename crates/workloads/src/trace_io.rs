//! Compact binary serialization of reference traces.
//!
//! Long simulations are cheaper to repeat from a recorded trace than to
//! regenerate (and recorded traces make experiments bit-reproducible across
//! machines and generator versions). The header is a 4-byte magic number
//! followed by a 64-bit record count (a 32-bit count would silently truncate
//! billion-reference traces); each [`MemoryAccess`] is then encoded in a
//! fixed 11-byte record: 2 bytes of core index, 8 bytes of physical address,
//! and 1 byte packing the access kind and class.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use rnuca_types::access::{AccessClass, AccessKind, MemoryAccess};
use rnuca_types::addr::PhysAddr;
use rnuca_types::ids::CoreId;
use std::error::Error;
use std::fmt;

/// Bytes per encoded record.
pub const RECORD_BYTES: usize = 11;
/// Bytes of header preceding the records (magic number + 64-bit record count).
pub const HEADER_BYTES: usize = 12;
/// Magic number prefixed to every encoded trace.
const MAGIC: u32 = 0x524E_5543; // "RNUC"

/// An error produced while encoding a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEncodeError {
    message: String,
}

impl TraceEncodeError {
    fn new(message: impl Into<String>) -> Self {
        TraceEncodeError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TraceEncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl Error for TraceEncodeError {}

/// An error produced while decoding a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceDecodeError {
    message: String,
}

impl TraceDecodeError {
    fn new(message: impl Into<String>) -> Self {
        TraceDecodeError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TraceDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl Error for TraceDecodeError {}

fn encode_tag(kind: AccessKind, class: AccessClass) -> u8 {
    let k = match kind {
        AccessKind::InstrFetch => 0u8,
        AccessKind::Read => 1,
        AccessKind::Write => 2,
    };
    let c = match class {
        AccessClass::Instruction => 0u8,
        AccessClass::PrivateData => 1,
        AccessClass::SharedData => 2,
    };
    (k << 4) | c
}

fn decode_tag(tag: u8) -> Result<(AccessKind, AccessClass), TraceDecodeError> {
    let kind = match tag >> 4 {
        0 => AccessKind::InstrFetch,
        1 => AccessKind::Read,
        2 => AccessKind::Write,
        other => {
            return Err(TraceDecodeError::new(format!(
                "invalid access kind tag {other}"
            )))
        }
    };
    let class = match tag & 0x0F {
        0 => AccessClass::Instruction,
        1 => AccessClass::PrivateData,
        2 => AccessClass::SharedData,
        other => {
            return Err(TraceDecodeError::new(format!(
                "invalid access class tag {other}"
            )))
        }
    };
    Ok((kind, class))
}

/// Encodes a trace into a self-describing binary buffer.
///
/// # Errors
///
/// Returns an error if a record's core index does not fit the 2-byte on-disk
/// field. (`CoreId` currently guarantees this, but the codec re-checks so a
/// future widening of the ID type cannot silently corrupt traces.)
pub fn encode_trace(trace: &[MemoryAccess]) -> Result<Bytes, TraceEncodeError> {
    let mut buf = BytesMut::with_capacity(HEADER_BYTES + trace.len() * RECORD_BYTES);
    buf.put_u32(MAGIC);
    buf.put_u64(trace.len() as u64);
    for (i, a) in trace.iter().enumerate() {
        let core = u16::try_from(a.core.index()).map_err(|_| {
            TraceEncodeError::new(format!(
                "record {i}: core index {} exceeds the codec's 16-bit field",
                a.core.index()
            ))
        })?;
        buf.put_u16(core);
        buf.put_u64(a.addr.value());
        buf.put_u8(encode_tag(a.kind, a.class));
    }
    Ok(buf.freeze())
}

/// Decodes a trace previously produced by [`encode_trace`].
///
/// # Errors
///
/// Returns an error if the magic number is wrong, the buffer is truncated, or
/// a record carries an invalid tag.
pub fn decode_trace(mut data: Bytes) -> Result<Vec<MemoryAccess>, TraceDecodeError> {
    if data.remaining() < HEADER_BYTES {
        return Err(TraceDecodeError::new("trace header is truncated"));
    }
    let magic = data.get_u32();
    if magic != MAGIC {
        return Err(TraceDecodeError::new(format!(
            "bad magic number {magic:#010x}"
        )));
    }
    let count = data.get_u64();
    let body_bytes = count
        .checked_mul(RECORD_BYTES as u64)
        .filter(|&b| b <= data.remaining() as u64)
        .ok_or_else(|| {
            TraceDecodeError::new(format!(
                "trace body is truncated: expected {count} records, have {} bytes",
                data.remaining()
            ))
        })?;
    let count = (body_bytes as usize) / RECORD_BYTES;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let core = CoreId::new(data.get_u16() as usize);
        let addr = PhysAddr::new(data.get_u64());
        let (kind, class) = decode_tag(data.get_u8())?;
        out.push(MemoryAccess::new(core, addr, kind, class));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::TraceGenerator;
    use crate::spec::WorkloadSpec;

    #[test]
    fn roundtrip_preserves_every_record() {
        let spec = WorkloadSpec::oltp_db2();
        let trace = TraceGenerator::new(&spec, 9).generate(5_000);
        let encoded = encode_trace(&trace).expect("core indices fit the codec");
        assert_eq!(encoded.len(), HEADER_BYTES + trace.len() * RECORD_BYTES);
        let decoded = decode_trace(encoded).expect("roundtrip must succeed");
        assert_eq!(decoded, trace);
    }

    #[test]
    fn empty_trace_roundtrips() {
        let encoded = encode_trace(&[]).unwrap();
        assert_eq!(encoded.len(), HEADER_BYTES);
        assert_eq!(decode_trace(encoded).unwrap(), Vec::new());
    }

    #[test]
    fn header_count_is_64_bits() {
        let spec = WorkloadSpec::mix();
        let trace = TraceGenerator::new(&spec, 2).generate(3);
        let encoded = encode_trace(&trace).unwrap();
        // Bytes 4..12 hold the big-endian record count.
        let count = u64::from_be_bytes(encoded.as_ref()[4..12].try_into().unwrap());
        assert_eq!(count, 3);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32(0xDEADBEEF);
        buf.put_u64(0);
        assert!(decode_trace(buf.freeze()).is_err());
    }

    #[test]
    fn truncated_body_is_rejected() {
        let spec = WorkloadSpec::mix();
        let trace = TraceGenerator::new(&spec, 1).generate(10);
        let encoded = encode_trace(&trace).unwrap();
        let truncated = encoded.slice(0..encoded.len() - 3);
        let err = decode_trace(truncated).unwrap_err();
        assert!(err.to_string().contains("truncated"));
    }

    #[test]
    fn absurd_count_is_rejected_without_allocating() {
        // A header claiming u64::MAX records must fail cleanly (the old u32
        // count could also silently alias `count * RECORD_BYTES` overflow).
        let mut buf = BytesMut::new();
        buf.put_u32(MAGIC);
        buf.put_u64(u64::MAX);
        let err = decode_trace(buf.freeze()).unwrap_err();
        assert!(err.to_string().contains("truncated"));
    }

    #[test]
    fn truncated_header_is_rejected() {
        assert!(decode_trace(Bytes::from_static(&[1, 2, 3])).is_err());
    }

    #[test]
    fn invalid_tag_is_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32(MAGIC);
        buf.put_u64(1);
        buf.put_u16(0);
        buf.put_u64(0x1000);
        buf.put_u8(0xFF);
        assert!(decode_trace(buf.freeze()).is_err());
    }

    #[test]
    fn all_kind_class_combinations_roundtrip() {
        for kind in [AccessKind::InstrFetch, AccessKind::Read, AccessKind::Write] {
            for class in [
                AccessClass::Instruction,
                AccessClass::PrivateData,
                AccessClass::SharedData,
            ] {
                let (k, c) = decode_tag(encode_tag(kind, class)).unwrap();
                assert_eq!((k, c), (kind, class));
            }
        }
    }
}
