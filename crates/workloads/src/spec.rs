//! Workload specifications: the statistical profile of each evaluated workload.
//!
//! The numbers encoded in the presets are read off the paper's
//! characterization (Figures 2-5) and Table 1's workload descriptions. They
//! are deliberately *approximate* — the goal is to reproduce the structure
//! that drives the evaluation (which classes dominate, how large each class's
//! footprint is relative to the L2, who shares what), not to re-derive exact
//! production traces.

use rnuca_types::config::{ConfigPoint, SystemConfig};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which CMP configuration (Table 1 column) a workload runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpPreset {
    /// 16-core CMP with 1 MB L2 slices (server and scientific workloads).
    Server16,
    /// 8-core CMP with 3 MB L2 slices (multi-programmed workloads).
    Desktop8,
}

impl CmpPreset {
    /// The corresponding [`SystemConfig`].
    pub fn system_config(self) -> SystemConfig {
        match self {
            CmpPreset::Server16 => SystemConfig::server_16(),
            CmpPreset::Desktop8 => SystemConfig::desktop_8(),
        }
    }

    /// Number of cores in the preset.
    pub fn num_cores(self) -> usize {
        self.system_config().num_cores
    }
}

impl fmt::Display for CmpPreset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CmpPreset::Server16 => f.write_str("16-core"),
            CmpPreset::Desktop8 => f.write_str("8-core"),
        }
    }
}

/// How shared data is shared among cores (the bubble positions of Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SharingPattern {
    /// Every core is equally likely to touch every shared block (server workloads).
    Universal,
    /// Blocks are shared between small groups of neighbouring cores
    /// (data-parallel scientific codes; the group size is 2-6 in Figure 2b).
    NearestNeighbor {
        /// Number of cores in each sharing group.
        degree: usize,
    },
    /// Blocks move between a producer and a consumer core (two sharers).
    ProducerConsumer,
}

/// The statistical profile of one workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Human-readable name used in reports ("OLTP DB2", "DSS Qry6", ...).
    pub name: String,
    /// Which CMP it runs on.
    pub preset: CmpPreset,
    /// CPI of useful computation, excluding L2 and off-chip stalls (the
    /// "busy" component of Figure 7).
    pub busy_cpi: f64,
    /// L2 references (L1 misses) per 1000 committed instructions, all classes combined.
    pub l2_refs_per_kilo_instr: f64,

    /// Fraction of L2 references that are instruction fetches.
    pub instr_fraction: f64,
    /// Fraction of L2 references to private data.
    pub private_fraction: f64,
    /// Fraction of L2 references to shared data (read-write plus read-only);
    /// the three fractions sum to 1.
    pub shared_fraction: f64,

    /// Instruction working-set size in KB (chip-wide; instructions are common to all cores).
    pub instr_footprint_kb: u64,
    /// Private-data working set in KB **per core**.
    pub private_footprint_kb_per_core: u64,
    /// Shared-data working set in KB (chip-wide).
    pub shared_footprint_kb: u64,

    /// Fraction of shared-data references that are writes (drives Figure 2's
    /// read-write axis and the coherence traffic of the private designs).
    pub shared_write_fraction: f64,
    /// Fraction of private-data references that are writes.
    pub private_write_fraction: f64,
    /// How shared data is shared.
    pub sharing: SharingPattern,

    /// Fraction of each class's references that go to the "hot" subset of its
    /// footprint (two-level locality model driving the Figure 4 CDFs).
    pub hot_access_fraction: f64,
    /// Fraction of each class's footprint that constitutes the hot subset.
    pub hot_footprint_fraction: f64,

    /// System configuration override for scenario sweeps. `None` (the
    /// default) runs the workload on its preset's configuration; `Some`
    /// replaces it, letting one workload profile be evaluated at many core
    /// counts and slice capacities.
    pub config_override: Option<SystemConfig>,
}

impl WorkloadSpec {
    /// TPC-C v3.0 on IBM DB2: instruction- and shared-data-dominated, modest
    /// private footprint, universally shared read-write data.
    pub fn oltp_db2() -> Self {
        WorkloadSpec {
            name: "OLTP DB2".to_string(),
            preset: CmpPreset::Server16,
            busy_cpi: 1.0,
            l2_refs_per_kilo_instr: 42.0,
            instr_fraction: 0.44,
            private_fraction: 0.22,
            shared_fraction: 0.34,
            instr_footprint_kb: 512,
            private_footprint_kb_per_core: 512,
            shared_footprint_kb: 12_288,
            shared_write_fraction: 0.45,
            private_write_fraction: 0.35,
            sharing: SharingPattern::Universal,
            hot_access_fraction: 0.92,
            hot_footprint_fraction: 0.2,
            config_override: None,
        }
    }

    /// TPC-C v3.0 on Oracle 10g: similar to DB2 but with better locality and a
    /// larger fraction of accesses that the private design can keep local,
    /// which is why the paper groups it with the shared-averse workloads.
    pub fn oltp_oracle() -> Self {
        WorkloadSpec {
            name: "OLTP Oracle".to_string(),
            preset: CmpPreset::Server16,
            busy_cpi: 0.95,
            l2_refs_per_kilo_instr: 38.0,
            instr_fraction: 0.52,
            private_fraction: 0.30,
            shared_fraction: 0.18,
            instr_footprint_kb: 280,
            private_footprint_kb_per_core: 320,
            shared_footprint_kb: 8_192,
            shared_write_fraction: 0.50,
            private_write_fraction: 0.40,
            sharing: SharingPattern::Universal,
            hot_access_fraction: 0.94,
            hot_footprint_fraction: 0.15,
            config_override: None,
        }
    }

    /// SPECweb99 on Apache: the largest instruction footprint of the suite and
    /// a sizeable universally-shared read-write working set.
    pub fn apache() -> Self {
        WorkloadSpec {
            name: "Apache".to_string(),
            preset: CmpPreset::Server16,
            busy_cpi: 1.1,
            l2_refs_per_kilo_instr: 48.0,
            instr_fraction: 0.55,
            private_fraction: 0.16,
            shared_fraction: 0.29,
            instr_footprint_kb: 768,
            private_footprint_kb_per_core: 384,
            shared_footprint_kb: 14_336,
            shared_write_fraction: 0.40,
            private_write_fraction: 0.30,
            sharing: SharingPattern::Universal,
            hot_access_fraction: 0.9,
            hot_footprint_fraction: 0.2,
            config_override: None,
        }
    }

    /// TPC-H query 6 on DB2: a scan-dominated DSS query with a multi-gigabyte
    /// private working set that no L2 can contain.
    pub fn dss_qry6() -> Self {
        WorkloadSpec {
            name: "DSS Qry6".to_string(),
            preset: CmpPreset::Server16,
            busy_cpi: 0.8,
            l2_refs_per_kilo_instr: 26.0,
            instr_fraction: 0.16,
            private_fraction: 0.72,
            shared_fraction: 0.12,
            instr_footprint_kb: 96,
            private_footprint_kb_per_core: 131_072,
            shared_footprint_kb: 8_192,
            shared_write_fraction: 0.30,
            private_write_fraction: 0.10,
            sharing: SharingPattern::Universal,
            hot_access_fraction: 0.35,
            hot_footprint_fraction: 0.5,
            config_override: None,
        }
    }

    /// TPC-H query 8 on DB2: join-heavy DSS with more instruction and shared activity than Q6.
    pub fn dss_qry8() -> Self {
        WorkloadSpec {
            name: "DSS Qry8".to_string(),
            preset: CmpPreset::Server16,
            busy_cpi: 0.85,
            l2_refs_per_kilo_instr: 30.0,
            instr_fraction: 0.28,
            private_fraction: 0.58,
            shared_fraction: 0.14,
            instr_footprint_kb: 160,
            private_footprint_kb_per_core: 65_536,
            shared_footprint_kb: 8_192,
            shared_write_fraction: 0.30,
            private_write_fraction: 0.12,
            sharing: SharingPattern::Universal,
            hot_access_fraction: 0.5,
            hot_footprint_fraction: 0.4,
            config_override: None,
        }
    }

    /// TPC-H query 13 on DB2: the most instruction-heavy of the three DSS queries.
    pub fn dss_qry13() -> Self {
        WorkloadSpec {
            name: "DSS Qry13".to_string(),
            preset: CmpPreset::Server16,
            busy_cpi: 0.9,
            l2_refs_per_kilo_instr: 34.0,
            instr_fraction: 0.36,
            private_fraction: 0.50,
            shared_fraction: 0.14,
            instr_footprint_kb: 200,
            private_footprint_kb_per_core: 32_768,
            shared_footprint_kb: 10_240,
            shared_write_fraction: 0.32,
            private_write_fraction: 0.15,
            sharing: SharingPattern::Universal,
            hot_access_fraction: 0.55,
            hot_footprint_fraction: 0.35,
            config_override: None,
        }
    }

    /// em3d (electromagnetic wave propagation): a data-parallel scientific
    /// kernel dominated by private data with nearest-neighbour sharing, whose
    /// instruction footprint fits in the L1-I.
    pub fn em3d() -> Self {
        WorkloadSpec {
            name: "em3d".to_string(),
            preset: CmpPreset::Server16,
            busy_cpi: 0.7,
            l2_refs_per_kilo_instr: 22.0,
            instr_fraction: 0.02,
            private_fraction: 0.84,
            shared_fraction: 0.14,
            instr_footprint_kb: 24,
            private_footprint_kb_per_core: 49_152,
            shared_footprint_kb: 12_288,
            shared_write_fraction: 0.35,
            private_write_fraction: 0.45,
            sharing: SharingPattern::NearestNeighbor { degree: 4 },
            hot_access_fraction: 0.4,
            hot_footprint_fraction: 0.5,
            config_override: None,
        }
    }

    /// The SPEC CPU2000 multi-programmed MIX (2 copies each of gcc, twolf,
    /// mcf, art) on the 8-core CMP: essentially no sharing, large per-core
    /// private working sets that mostly fit the 3 MB local slices, which makes
    /// it the paper's canonical shared-averse workload.
    pub fn mix() -> Self {
        WorkloadSpec {
            name: "MIX".to_string(),
            preset: CmpPreset::Desktop8,
            busy_cpi: 1.2,
            l2_refs_per_kilo_instr: 18.0,
            instr_fraction: 0.03,
            private_fraction: 0.95,
            shared_fraction: 0.02,
            instr_footprint_kb: 48,
            private_footprint_kb_per_core: 2_560,
            shared_footprint_kb: 1_024,
            shared_write_fraction: 0.20,
            private_write_fraction: 0.40,
            sharing: SharingPattern::ProducerConsumer,
            hot_access_fraction: 0.8,
            hot_footprint_fraction: 0.2,
            config_override: None,
        }
    }

    /// The full evaluation suite in the order the paper's figures use:
    /// the private-averse workloads first, then the shared-averse ones.
    pub fn evaluation_suite() -> Vec<WorkloadSpec> {
        vec![
            Self::oltp_db2(),
            Self::apache(),
            Self::dss_qry6(),
            Self::dss_qry8(),
            Self::dss_qry13(),
            Self::em3d(),
            Self::oltp_oracle(),
            Self::mix(),
        ]
    }

    /// The server workloads only.
    pub fn server_suite() -> Vec<WorkloadSpec> {
        vec![
            Self::oltp_db2(),
            Self::oltp_oracle(),
            Self::apache(),
            Self::dss_qry6(),
            Self::dss_qry8(),
            Self::dss_qry13(),
        ]
    }

    /// Number of cores the workload runs on.
    pub fn num_cores(&self) -> usize {
        self.system_config().num_cores
    }

    /// The system configuration the workload runs on: the preset's, unless a
    /// scenario sweep installed an override.
    pub fn system_config(&self) -> SystemConfig {
        self.config_override
            .unwrap_or_else(|| self.preset.system_config())
    }

    /// Returns a copy of this workload pinned to an explicit system
    /// configuration (scenario sweeps use this to evaluate one profile at
    /// many core counts and slice capacities).
    pub fn with_system_config(mut self, cfg: SystemConfig) -> Self {
        self.config_override = Some(cfg);
        self
    }

    /// Returns a copy of this workload re-parameterised by a [`ConfigPoint`]
    /// applied on top of its current system configuration.
    ///
    /// # Errors
    ///
    /// Returns an error if the point produces an invalid configuration.
    pub fn at_config_point(&self, point: &ConfigPoint) -> Result<Self, rnuca_types::ConfigError> {
        let cfg = point.apply(&self.system_config())?;
        Ok(self.clone().with_system_config(cfg))
    }

    /// Committed instructions represented by each L2 reference.
    pub fn instructions_per_l2_ref(&self) -> f64 {
        1000.0 / self.l2_refs_per_kilo_instr
    }

    /// Validates that the fractions are sane probabilities.
    pub fn validate(&self) -> Result<(), rnuca_types::ConfigError> {
        let sum = self.instr_fraction + self.private_fraction + self.shared_fraction;
        if (sum - 1.0).abs() > 1e-6 {
            return Err(rnuca_types::ConfigError::new(format!(
                "class fractions must sum to 1, got {sum}"
            )));
        }
        for (label, v) in [
            ("instr_fraction", self.instr_fraction),
            ("private_fraction", self.private_fraction),
            ("shared_fraction", self.shared_fraction),
            ("shared_write_fraction", self.shared_write_fraction),
            ("private_write_fraction", self.private_write_fraction),
            ("hot_access_fraction", self.hot_access_fraction),
            ("hot_footprint_fraction", self.hot_footprint_fraction),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(rnuca_types::ConfigError::new(format!(
                    "{label} must be in [0, 1], got {v}"
                )));
            }
        }
        if self.busy_cpi <= 0.0 || self.l2_refs_per_kilo_instr <= 0.0 {
            return Err(rnuca_types::ConfigError::new(
                "busy CPI and L2 reference rate must be positive",
            ));
        }
        self.system_config().validate()
    }
}

impl fmt::Display for WorkloadSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name, self.preset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_validate() {
        for spec in WorkloadSpec::evaluation_suite() {
            spec.validate()
                .unwrap_or_else(|e| panic!("{} invalid: {e}", spec.name));
        }
    }

    #[test]
    fn evaluation_suite_has_eight_workloads() {
        let suite = WorkloadSpec::evaluation_suite();
        assert_eq!(suite.len(), 8);
        let names: Vec<_> = suite.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"OLTP DB2"));
        assert!(names.contains(&"MIX"));
    }

    #[test]
    fn server_workloads_are_instruction_and_shared_heavy() {
        for spec in WorkloadSpec::server_suite() {
            if spec.name.starts_with("DSS") {
                continue;
            }
            assert!(
                spec.instr_fraction + spec.shared_fraction > 0.5,
                "{} should be dominated by instructions + shared data",
                spec.name
            );
        }
    }

    #[test]
    fn scientific_and_mix_are_private_heavy() {
        assert!(WorkloadSpec::em3d().private_fraction > 0.7);
        assert!(WorkloadSpec::mix().private_fraction > 0.9);
    }

    #[test]
    fn mix_runs_on_the_8_core_preset() {
        let mix = WorkloadSpec::mix();
        assert_eq!(mix.preset, CmpPreset::Desktop8);
        assert_eq!(mix.num_cores(), 8);
        assert_eq!(
            mix.system_config().l2_slice.geometry.capacity_bytes,
            3 * 1024 * 1024
        );
    }

    #[test]
    fn dss_private_footprints_exceed_aggregate_l2() {
        let q6 = WorkloadSpec::dss_qry6();
        let aggregate_kb = q6.system_config().aggregate_l2_bytes() as u64 / 1024;
        assert!(
            q6.private_footprint_kb_per_core > aggregate_kb,
            "DSS scans must exceed any reasonable L2 capacity (Section 3.3.1)"
        );
    }

    #[test]
    fn instructions_per_ref_is_inverse_of_rate() {
        let spec = WorkloadSpec::oltp_db2();
        let per_ref = spec.instructions_per_l2_ref();
        assert!((per_ref * spec.l2_refs_per_kilo_instr - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn invalid_fractions_are_rejected() {
        let mut spec = WorkloadSpec::oltp_db2();
        spec.instr_fraction = 0.9;
        assert!(spec.validate().is_err());
        let mut spec2 = WorkloadSpec::oltp_db2();
        spec2.busy_cpi = 0.0;
        assert!(spec2.validate().is_err());
    }

    #[test]
    fn preset_display() {
        assert_eq!(CmpPreset::Server16.to_string(), "16-core");
        assert_eq!(format!("{}", WorkloadSpec::apache()), "Apache (16-core)");
    }

    #[test]
    fn system_config_override_takes_effect() {
        let base = WorkloadSpec::oltp_db2();
        assert_eq!(base.num_cores(), 16);
        let scaled = base.system_config().with_core_count(64).unwrap();
        let spec = base.clone().with_system_config(scaled);
        assert_eq!(spec.num_cores(), 64);
        assert_eq!(spec.system_config().torus.width, 8);
        spec.validate().expect("overridden spec must stay valid");
        // The original is untouched.
        assert_eq!(base.num_cores(), 16);
    }

    #[test]
    fn at_config_point_applies_overrides_and_rejects_bad_points() {
        let spec = WorkloadSpec::mix();
        let point = ConfigPoint {
            num_cores: Some(32),
            slice_capacity_kb: Some(1024),
            instr_cluster_size: None,
        };
        let scaled = spec.at_config_point(&point).unwrap();
        assert_eq!(scaled.num_cores(), 32);
        assert_eq!(
            scaled.system_config().l2_slice.geometry.capacity_bytes,
            1024 * 1024
        );
        let bad = ConfigPoint {
            num_cores: Some(7),
            ..ConfigPoint::default()
        };
        assert!(spec.at_config_point(&bad).is_err());
        // The baseline point is the identity.
        let same = spec.at_config_point(&ConfigPoint::baseline()).unwrap();
        assert_eq!(same.system_config(), spec.system_config());
    }
}
