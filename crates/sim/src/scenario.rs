//! Declarative scenario matrices: one struct, every `(workload, design,
//! config-point)` combination.
//!
//! The paper's figures each hand-rolled their own loop (per-workload designs
//! for Figures 7-10/12, cluster sizes for Figure 11). A [`ScenarioMatrix`]
//! replaces those loops: declare the workloads, the designs, and the sweep
//! axes — core counts, L2 slice capacities, R-NUCA instruction-cluster sizes
//! — and the matrix flattens itself into jobs for the
//! [`ExperimentEngine`]. Results come back
//! in a deterministic order (and are identical for every worker-pool size),
//! ready for tables or the JSON emitted by [`ScenarioSweep::to_json`].
//!
//! # Example
//!
//! ```
//! use rnuca_sim::{ExperimentConfig, LlcDesign, ScenarioMatrix};
//! use rnuca_workloads::WorkloadSpec;
//!
//! let mut matrix = ScenarioMatrix::new(ExperimentConfig::smoke());
//! matrix.workloads = vec![WorkloadSpec::mix()];
//! matrix.designs = vec![LlcDesign::Shared, LlcDesign::rnuca_default()];
//! matrix.core_counts = vec![16, 32];
//! matrix.cluster_sizes = vec![2, 4];
//! // 1 workload x 2 core counts x (shared + R-NUCA at 2 cluster sizes).
//! assert_eq!(matrix.jobs().unwrap().len(), 2 * 3);
//! ```

use crate::design::LlcDesign;
use crate::engine::{ExperimentEngine, JobFailure};
use crate::experiment::ExperimentConfig;
use crate::fused::{group_indices, run_group_forked};
use crate::journal::{
    JournalEntry, JournalError, JournalFailure, JournalReplay, SweepJournal, JOURNAL_VERSION,
};
use crate::simulator::MeasuredRun;
use crate::snapshot::{SnapshotArena, SnapshotKey};
use rnuca_types::config::ConfigPoint;
use rnuca_types::retry::RetryPolicy;
use rnuca_types::{ConfigError, Fnv64};
use rnuca_warehouse::{AppendSummary, RowKind, RunRecord, Warehouse};
use rnuca_workloads::{TraceArena, TraceKey, WorkloadSpec};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;
use std::path::Path;

/// Schema version of the sweep rows [`ScenarioMatrix::run_forked_into`]
/// appends to the warehouse (bumped when their column content changes
/// meaning, so old and new rows stay distinguishable by the `schema`
/// column).
pub const SWEEP_SCHEMA_VERSION: u64 = 1;

/// A declarative sweep over workloads, designs, and configuration axes.
///
/// Empty axis vectors mean "use each workload's baseline value", so the
/// default matrix reduces to a plain design comparison. `cluster_sizes`
/// applies only to R-NUCA designs (other designs have no cluster parameter).
/// Sizes exceeding a point's core count are skipped for that point
/// (mirroring [`crate::DesignComparison::run_cluster_sweep`]); sizes that are not
/// powers of two are skipped too, rather than panicking inside a worker the
/// way the rotational map's constructor would.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioMatrix {
    /// Workload profiles to evaluate.
    pub workloads: Vec<WorkloadSpec>,
    /// LLC designs to evaluate per workload and config point.
    pub designs: Vec<LlcDesign>,
    /// Core counts to sweep (empty: each workload's preset count).
    pub core_counts: Vec<usize>,
    /// L2 slice capacities in KB to sweep (empty: each preset's capacity).
    pub slice_capacities_kb: Vec<usize>,
    /// R-NUCA instruction-cluster sizes to sweep (empty: the design's own).
    pub cluster_sizes: Vec<usize>,
    /// Run lengths and seed shared by every job.
    pub cfg: ExperimentConfig,
}

/// One flattened job of a [`ScenarioMatrix`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioJob {
    /// The workload, already pinned to the job's system configuration.
    pub workload: WorkloadSpec,
    /// The design, already parameterised with the job's cluster size.
    pub design: LlcDesign,
    /// The overrides that produced this job (for labelling results).
    pub point: ConfigPoint,
}

/// The outcome of one scenario job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioResult {
    /// Workload name.
    pub workload: String,
    /// Design simulated.
    pub design: LlcDesign,
    /// The overrides that produced this job.
    pub point: ConfigPoint,
    /// Resolved core count the job ran with.
    pub cores: usize,
    /// Resolved per-tile L2 slice capacity in KB.
    pub slice_kb: usize,
    /// Measured CPI detail and rates.
    pub run: MeasuredRun,
}

/// All results of one matrix run, in flattened job order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSweep {
    /// The run lengths and seed the sweep used.
    pub cfg: ExperimentConfig,
    /// One result per job, ordered by job index.
    pub results: Vec<ScenarioResult>,
}

/// Why a journaled sweep could not run.
#[derive(Debug)]
pub enum SweepError {
    /// The matrix itself is invalid (same errors as [`ScenarioMatrix::jobs`]).
    Config(ConfigError),
    /// The journal could not be created, loaded, or matched to the matrix.
    Journal(JournalError),
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::Config(e) => write!(f, "{e}"),
            SweepError::Journal(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SweepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SweepError::Config(e) => Some(e),
            SweepError::Journal(e) => Some(e),
        }
    }
}

impl From<ConfigError> for SweepError {
    fn from(e: ConfigError) -> Self {
        SweepError::Config(e)
    }
}

impl From<JournalError> for SweepError {
    fn from(e: JournalError) -> Self {
        SweepError::Journal(e)
    }
}

/// How much of a journaled sweep was replayed versus re-run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResumeSummary {
    /// Jobs whose results were replayed from the journal.
    pub replayed: usize,
    /// Jobs the sweep (re-)ran.
    pub ran: usize,
}

/// A supervised matrix run: per-job `Result`s instead of an all-or-nothing
/// sweep. See [`ScenarioMatrix::run_supervised_forked`].
#[derive(Debug, Clone, PartialEq)]
pub struct QuarantinedSweep {
    /// The run lengths and seed the sweep used.
    pub cfg: ExperimentConfig,
    /// One outcome per job, ordered by job index: the scenario's result,
    /// or the quarantined failure that poisoned it.
    pub results: Vec<Result<ScenarioResult, JobFailure>>,
}

impl QuarantinedSweep {
    /// The quarantined failures, in job order.
    pub fn failures(&self) -> Vec<&JobFailure> {
        self.results
            .iter()
            .filter_map(|r| r.as_ref().err())
            .collect()
    }

    /// Jobs that completed.
    pub fn completed(&self) -> usize {
        self.results.iter().filter(|r| r.is_ok()).count()
    }

    /// The sweep with every failure discarded (results stay in job order).
    pub fn into_sweep(self) -> ScenarioSweep {
        ScenarioSweep {
            cfg: self.cfg,
            results: self.results.into_iter().filter_map(Result::ok).collect(),
        }
    }
}

impl ScenarioMatrix {
    /// An empty matrix (no workloads, no designs) with the given run config.
    pub fn new(cfg: ExperimentConfig) -> Self {
        ScenarioMatrix {
            workloads: Vec::new(),
            designs: Vec::new(),
            core_counts: Vec::new(),
            slice_capacities_kb: Vec::new(),
            cluster_sizes: Vec::new(),
            cfg,
        }
    }

    /// The paper's evaluation as a matrix: the full workload suite under the
    /// shared and R-NUCA designs at their baseline configurations. Callers
    /// add sweep axes on top.
    pub fn paper_evaluation(cfg: ExperimentConfig) -> Self {
        ScenarioMatrix {
            workloads: WorkloadSpec::evaluation_suite(),
            designs: vec![LlcDesign::Shared, LlcDesign::rnuca_default()],
            ..Self::new(cfg)
        }
    }

    /// Flattens the matrix into its job list.
    ///
    /// Job order is deterministic: workloads, then core counts, then slice
    /// capacities, then designs (R-NUCA designs expanding over cluster
    /// sizes), in declaration order.
    ///
    /// # Errors
    ///
    /// Returns an error if an axis value produces an invalid system
    /// configuration for some workload (e.g. a non-power-of-two core count).
    pub fn jobs(&self) -> Result<Vec<ScenarioJob>, ConfigError> {
        let option_axis = |axis: &[usize]| -> Vec<Option<usize>> {
            if axis.is_empty() {
                vec![None]
            } else {
                axis.iter().copied().map(Some).collect()
            }
        };
        let cores_axis = option_axis(&self.core_counts);
        let caps_axis = option_axis(&self.slice_capacities_kb);
        let clusters_axis = option_axis(&self.cluster_sizes);

        let mut jobs = Vec::new();
        for spec in &self.workloads {
            for &cores in &cores_axis {
                for &cap_kb in &caps_axis {
                    let system_point = ConfigPoint {
                        num_cores: cores,
                        slice_capacity_kb: cap_kb,
                        instr_cluster_size: None,
                    };
                    let workload = spec.at_config_point(&system_point)?;
                    let num_cores = workload.num_cores();
                    for &design in &self.designs {
                        match design {
                            LlcDesign::RNuca { instr_cluster_size } => {
                                for &cluster in &clusters_axis {
                                    let size = cluster.unwrap_or(instr_cluster_size);
                                    if !size.is_power_of_two() || size > num_cores {
                                        continue;
                                    }
                                    jobs.push(ScenarioJob {
                                        workload: workload.clone(),
                                        design: LlcDesign::RNuca {
                                            instr_cluster_size: size,
                                        },
                                        point: ConfigPoint {
                                            instr_cluster_size: Some(size),
                                            ..system_point
                                        },
                                    });
                                }
                            }
                            _ => jobs.push(ScenarioJob {
                                workload: workload.clone(),
                                design,
                                point: system_point,
                            }),
                        }
                    }
                }
            }
        }
        Ok(jobs)
    }

    /// Runs the matrix on a default-sized engine.
    ///
    /// # Errors
    ///
    /// Propagates [`Self::jobs`] errors.
    pub fn run(&self) -> Result<ScenarioSweep, ConfigError> {
        self.run_with(&ExperimentEngine::new())
    }

    /// Runs the matrix on an explicit engine. The result vector is ordered
    /// by job index and identical for every worker count.
    ///
    /// Jobs are grouped by their reference stream: the matrix multiplies
    /// designs and slice capacities on top of far fewer unique
    /// `(workload, core count, seed)` streams, so those are materialized
    /// once each — in parallel, into a [`TraceArena`] — and every job
    /// replays its group's slab.
    ///
    /// # Errors
    ///
    /// Propagates [`Self::jobs`] errors.
    pub fn run_with(&self, engine: &ExperimentEngine) -> Result<ScenarioSweep, ConfigError> {
        self.run_with_arena(engine, &TraceArena::new())
    }

    /// [`Self::run_with`] resolving jobs through an explicit `arena`
    /// (exposed so callers can share streams across matrices and inspect
    /// deduplication).
    ///
    /// # Errors
    ///
    /// Propagates [`Self::jobs`] errors.
    pub fn run_with_arena(
        &self,
        engine: &ExperimentEngine,
        arena: &TraceArena,
    ) -> Result<ScenarioSweep, ConfigError> {
        self.run_forked(engine, arena, &SnapshotArena::new())
    }

    /// [`Self::run_with_arena`] forking every job's warmed state from an
    /// explicit `snapshots` arena (exposed so callers can share checkpoints
    /// across matrices and inspect deduplication).
    ///
    /// Jobs group onto warmed checkpoints the way they group onto streams:
    /// the matrix multiplies designs (and, for R-NUCA, cluster sizes) on
    /// top of fewer unique `(workload, config-point, warm-up class)` keys,
    /// so those checkpoints are warmed once each — in parallel.
    ///
    /// Measurement is fused (see [`crate::fused`]): jobs sharing a
    /// reference stream form one fused group that steps every member per
    /// shared trace batch, so the engine's unit of work is a group and each
    /// unique stream is walked once per sweep, not once per job. Results
    /// scatter back to flattened job order, identical for every worker
    /// count.
    ///
    /// # Errors
    ///
    /// Propagates [`Self::jobs`] errors.
    pub fn run_forked(
        &self,
        engine: &ExperimentEngine,
        arena: &TraceArena,
        snapshots: &SnapshotArena,
    ) -> Result<ScenarioSweep, ConfigError> {
        let jobs = self.jobs()?;
        let completed = vec![None; jobs.len()];
        let runs = self.run_forked_core(engine, arena, snapshots, &jobs, &completed, None);
        Ok(ScenarioSweep {
            cfg: self.cfg,
            results: jobs
                .iter()
                .zip(runs)
                .map(|(job, run)| result_from(job, run))
                .collect(),
        })
    }

    /// A fingerprint over every field of the matrix (and the journal
    /// format version), identifying "the same sweep" for journal resume.
    /// Any change — a workload profile, an axis value, a run length, the
    /// seed — changes the fingerprint, so a stale journal is rejected
    /// rather than silently mixed into a different sweep.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write(format!("{self:?}").as_bytes());
        h.write(&JOURNAL_VERSION.to_le_bytes());
        h.write(&SWEEP_SCHEMA_VERSION.to_le_bytes());
        h.finish()
    }

    /// [`Self::run_forked`], journaling every completed job to `path`.
    ///
    /// With `resume` false, `path` is created (truncating any previous
    /// journal). With `resume` true, `path` is loaded first: its header
    /// must match this matrix (fingerprint and job count), journaled jobs
    /// are replayed instead of re-run, and only the remainder executes.
    /// Because every job's result is a pure function of the matrix and the
    /// seed, the resumed sweep — and any warehouse built from it — is
    /// bit-identical to an uninterrupted run.
    ///
    /// # Errors
    ///
    /// [`SweepError::Config`] for invalid matrices; [`SweepError::Journal`]
    /// when the journal cannot be created or loaded, or does not belong to
    /// this matrix.
    pub fn run_forked_journaled(
        &self,
        engine: &ExperimentEngine,
        arena: &TraceArena,
        snapshots: &SnapshotArena,
        path: &Path,
        resume: bool,
    ) -> Result<(ScenarioSweep, ResumeSummary), SweepError> {
        let jobs = self.jobs()?;
        let fingerprint = self.fingerprint();
        let (journal, completed) = if resume {
            let replay = JournalReplay::load(path)?;
            if replay.fingerprint != fingerprint {
                return Err(JournalError::FingerprintMismatch {
                    found: replay.fingerprint,
                    expected: fingerprint,
                }
                .into());
            }
            if replay.jobs as usize != jobs.len() {
                return Err(JournalError::JobCountMismatch {
                    found: replay.jobs,
                    expected: jobs.len() as u64,
                }
                .into());
            }
            let journal = SweepJournal::resume(path, &replay).map_err(JournalError::Io)?;
            // This is the fail-fast path: a journaled *failure* entry does
            // not satisfy the job (there is no run to replay), so the job
            // re-runs — and, being deterministic, re-raises its panic. Use
            // [`Self::run_supervised_journaled`] to skip quarantined jobs.
            let runs = replay
                .entries
                .into_iter()
                .map(|entry| match entry {
                    Some(JournalEntry::Run(run)) => Some(run),
                    _ => None,
                })
                .collect();
            (journal, runs)
        } else {
            let journal = SweepJournal::create(path, fingerprint, jobs.len() as u64)
                .map_err(JournalError::Io)?;
            (journal, vec![None; jobs.len()])
        };
        let replayed = completed.iter().filter(|c| c.is_some()).count();
        let runs =
            self.run_forked_core(engine, arena, snapshots, &jobs, &completed, Some(&journal));
        let sweep = ScenarioSweep {
            cfg: self.cfg,
            results: jobs
                .iter()
                .zip(runs)
                .map(|(job, run)| result_from(job, run))
                .collect(),
        };
        Ok((
            sweep,
            ResumeSummary {
                replayed,
                ran: jobs.len() - replayed,
            },
        ))
    }

    /// [`Self::run_forked_journaled`], additionally appending one
    /// `kind=sweep` row per result into `store` (the journaled analogue of
    /// [`Self::run_forked_into`], with the same dedup-by-key semantics).
    ///
    /// # Errors
    ///
    /// Same as [`Self::run_forked_journaled`].
    pub fn run_forked_into_journaled(
        &self,
        engine: &ExperimentEngine,
        arena: &TraceArena,
        snapshots: &SnapshotArena,
        path: &Path,
        resume: bool,
        store: &Warehouse,
    ) -> Result<(ScenarioSweep, AppendSummary, ResumeSummary), SweepError> {
        let (sweep, resumed) = self.run_forked_journaled(engine, arena, snapshots, path, resume)?;
        let jobs = self.jobs()?;
        let records: Vec<RunRecord> = jobs
            .iter()
            .zip(&sweep.results)
            .map(|(job, result)| sweep_record(&self.cfg, &job.workload, result))
            .collect();
        let summary = store.append_all(&records);
        Ok((sweep, summary, resumed))
    }

    /// [`Self::run_supervised_forked`] composed with the journal — the
    /// crash-safe *and* panic-safe sweep.
    ///
    /// Before this composition existed, journaled sweeps were fail-fast: a
    /// single poisoned member killed the whole sweep, and `--resume` would
    /// deterministically re-crash on the same job forever. Here every
    /// completed job journals a run entry as before, while a job whose
    /// every attempt fails journals a *typed failure entry* — so resume
    /// replays completed jobs as results, replays quarantined jobs as
    /// failures (skipping them instead of re-crashing), and re-runs only
    /// jobs with no entry at all.
    ///
    /// Fused groups are attempted first; members of failed groups re-run
    /// solo under `policy` — its retry budget and seeded backoff (the pause
    /// schedule derives from the matrix seed, so it is identical for every
    /// worker count). The policy's `deadline` is not enforced on this
    /// borrow-based path; the experiment service's runner enforces
    /// deadlines at the group level via
    /// [`ExperimentEngine::run_supervised_detached`].
    ///
    /// # Errors
    ///
    /// [`SweepError::Config`] for invalid matrices; [`SweepError::Journal`]
    /// when the journal cannot be created, loaded, appended, or does not
    /// belong to this matrix.
    pub fn run_supervised_journaled(
        &self,
        engine: &ExperimentEngine,
        arena: &TraceArena,
        snapshots: &SnapshotArena,
        path: &Path,
        resume: bool,
        policy: &RetryPolicy,
    ) -> Result<(QuarantinedSweep, ResumeSummary), SweepError> {
        let jobs = self.jobs()?;
        let fingerprint = self.fingerprint();
        let (journal, journaled) = if resume {
            let replay = JournalReplay::load(path)?;
            if replay.fingerprint != fingerprint {
                return Err(JournalError::FingerprintMismatch {
                    found: replay.fingerprint,
                    expected: fingerprint,
                }
                .into());
            }
            if replay.jobs as usize != jobs.len() {
                return Err(JournalError::JobCountMismatch {
                    found: replay.jobs,
                    expected: jobs.len() as u64,
                }
                .into());
            }
            let journal = SweepJournal::resume(path, &replay).map_err(JournalError::Io)?;
            (journal, replay.entries)
        } else {
            let journal = SweepJournal::create(path, fingerprint, jobs.len() as u64)
                .map_err(JournalError::Io)?;
            (journal, vec![None; jobs.len()])
        };
        let replayed = journaled.iter().filter(|e| e.is_some()).count();

        let mut results: Vec<Option<Result<ScenarioResult, JobFailure>>> =
            jobs.iter().map(|_| None).collect();
        let mut pending: Vec<usize> = Vec::new();
        for (i, entry) in journaled.into_iter().enumerate() {
            match entry {
                Some(JournalEntry::Run(run)) => {
                    results[i] = Some(Ok(result_from(&jobs[i], run)));
                }
                Some(JournalEntry::Failed(f)) => {
                    results[i] = Some(Err(JobFailure {
                        job: i,
                        attempts: f.attempts,
                        cause: f.cause,
                        message: f.message,
                    }));
                }
                None => pending.push(i),
            }
        }

        self.prepare_arenas(engine, arena, snapshots, &jobs, &pending);
        let groups = group_indices(&pending, |&i| {
            TraceKey::new(&jobs[i].workload, self.cfg.seed)
        });
        let group_outcomes = engine.run_supervised(&groups, 0, |_, (_, indices)| {
            let members: Vec<(&WorkloadSpec, LlcDesign)> = indices
                .iter()
                .map(|&p| (&jobs[pending[p]].workload, jobs[pending[p]].design))
                .collect();
            let runs = run_group_forked(&members, &self.cfg, arena, snapshots);
            for (&p, run) in indices.iter().zip(&runs) {
                journal
                    .append(pending[p], run)
                    .unwrap_or_else(|e| panic!("journal append failed: {e}"));
            }
            runs
        });
        let mut solo_jobs: Vec<usize> = Vec::new();
        for ((_, indices), outcome) in groups.iter().zip(group_outcomes) {
            match outcome {
                Ok(runs) => {
                    for (&p, run) in indices.iter().zip(runs) {
                        results[pending[p]] = Some(Ok(result_from(&jobs[pending[p]], run)));
                    }
                }
                // The panic poisoned the whole fused pass (and nothing was
                // journaled for it); every member re-runs solo below.
                Err(_) => solo_jobs.extend(indices.iter().map(|&p| pending[p])),
            }
        }
        let solo_outcomes =
            engine.run_supervised_policy(&solo_jobs, self.cfg.seed, policy, |_, &i| {
                let members = [(&jobs[i].workload, jobs[i].design)];
                let run = run_group_forked(&members, &self.cfg, arena, snapshots)
                    .pop()
                    .expect("a one-member group yields one run");
                journal
                    .append(i, &run)
                    .unwrap_or_else(|e| panic!("journal append failed: {e}"));
                run
            });
        for (&i, outcome) in solo_jobs.iter().zip(solo_outcomes) {
            results[i] = Some(match outcome {
                Ok(run) => Ok(result_from(&jobs[i], run)),
                Err(failure) => {
                    let failure = JobFailure { job: i, ..failure };
                    journal
                        .append_failure(
                            i,
                            &JournalFailure {
                                attempts: failure.attempts,
                                cause: failure.cause,
                                message: failure.message.clone(),
                            },
                        )
                        .map_err(JournalError::Io)?;
                    Err(failure)
                }
            });
        }
        Ok((
            QuarantinedSweep {
                cfg: self.cfg,
                results: results
                    .into_iter()
                    .map(|r| r.expect("every job is replayed, scattered, or re-run solo"))
                    .collect(),
            },
            ResumeSummary {
                replayed,
                ran: jobs.len() - replayed,
            },
        ))
    }

    /// [`Self::run_supervised_journaled`], additionally appending one row
    /// per job into `store`: a `kind=sweep` row for each completed job and
    /// a `kind=failed` row (failure message in the `failure` column) for
    /// each quarantined one, so `figures query kind=failed` lists exactly
    /// what a sweep lost instead of failures silently vanishing.
    ///
    /// # Errors
    ///
    /// Same as [`Self::run_supervised_journaled`].
    // One parameter per orthogonal concern (engine, two arenas, journal
    // location + resume, policy, store); bundling them into a struct would
    // only move the argument list behind a builder.
    #[allow(clippy::too_many_arguments)]
    pub fn run_supervised_into_journaled(
        &self,
        engine: &ExperimentEngine,
        arena: &TraceArena,
        snapshots: &SnapshotArena,
        path: &Path,
        resume: bool,
        policy: &RetryPolicy,
        store: &Warehouse,
    ) -> Result<(QuarantinedSweep, AppendSummary, ResumeSummary), SweepError> {
        let (sweep, resumed) =
            self.run_supervised_journaled(engine, arena, snapshots, path, resume, policy)?;
        let jobs = self.jobs()?;
        let records: Vec<RunRecord> = jobs
            .iter()
            .zip(&sweep.results)
            .map(|(job, result)| match result {
                Ok(result) => sweep_record(&self.cfg, &job.workload, result),
                Err(failure) => failed_record(&self.cfg, job, failure),
            })
            .collect();
        let summary = store.append_all(&records);
        Ok((sweep, summary, resumed))
    }

    /// [`Self::run_forked`] with per-job panic quarantine: one poisoned
    /// scenario yields a [`JobFailure`] in its slot while every other job
    /// completes.
    ///
    /// Fused groups are attempted first (a panic anywhere in a group kills
    /// the whole group's pass); members of failed groups are then re-run
    /// *solo* — fusion is architecturally invisible, so a solo re-run
    /// produces the member's bit-identical result — with up to `retries`
    /// extra attempts each, and only members that still panic are
    /// quarantined.
    ///
    /// # Errors
    ///
    /// Propagates [`Self::jobs`] errors.
    pub fn run_supervised_forked(
        &self,
        engine: &ExperimentEngine,
        arena: &TraceArena,
        snapshots: &SnapshotArena,
        retries: u32,
    ) -> Result<QuarantinedSweep, ConfigError> {
        let jobs = self.jobs()?;
        self.prepare_arenas(
            engine,
            arena,
            snapshots,
            &jobs,
            &(0..jobs.len()).collect::<Vec<_>>(),
        );
        let groups = group_indices(&jobs, |job| TraceKey::new(&job.workload, self.cfg.seed));
        let group_outcomes = engine.run_supervised(&groups, 0, |_, (_, indices)| {
            let members: Vec<(&WorkloadSpec, LlcDesign)> = indices
                .iter()
                .map(|&i| (&jobs[i].workload, jobs[i].design))
                .collect();
            run_group_forked(&members, &self.cfg, arena, snapshots)
        });
        let mut results: Vec<Option<Result<ScenarioResult, JobFailure>>> =
            jobs.iter().map(|_| None).collect();
        let mut solo_jobs: Vec<usize> = Vec::new();
        for ((_, indices), outcome) in groups.iter().zip(group_outcomes) {
            match outcome {
                Ok(runs) => {
                    for (&i, run) in indices.iter().zip(runs) {
                        results[i] = Some(Ok(result_from(&jobs[i], run)));
                    }
                }
                // The panic poisoned the whole fused pass; every member is
                // re-attempted solo below, so only the truly poisoned
                // scenario ends up quarantined.
                Err(_) => solo_jobs.extend(indices),
            }
        }
        let solo_outcomes = engine.run_supervised(&solo_jobs, retries, |_, &i| {
            let members = [(&jobs[i].workload, jobs[i].design)];
            run_group_forked(&members, &self.cfg, arena, snapshots)
                .pop()
                .expect("a one-member group yields one run")
        });
        for (&i, outcome) in solo_jobs.iter().zip(solo_outcomes) {
            results[i] = Some(match outcome {
                Ok(run) => Ok(result_from(&jobs[i], run)),
                Err(failure) => Err(JobFailure { job: i, ..failure }),
            });
        }
        Ok(QuarantinedSweep {
            cfg: self.cfg,
            results: results
                .into_iter()
                .map(|r| r.expect("every job is scattered or re-run solo"))
                .collect(),
        })
    }

    /// Materializes the streams and warmed checkpoints the jobs in
    /// `pending` need, each unique one exactly once, in parallel.
    ///
    /// Public so external drivers (the experiment service's runner) can
    /// warm the arenas up front and then orchestrate group execution
    /// themselves.
    pub fn prepare_arenas(
        &self,
        engine: &ExperimentEngine,
        arena: &TraceArena,
        snapshots: &SnapshotArena,
        jobs: &[ScenarioJob],
        pending: &[usize],
    ) {
        let mut seen = HashSet::new();
        let unique: Vec<&ScenarioJob> = pending
            .iter()
            .map(|&i| &jobs[i])
            .filter(|job| seen.insert(TraceKey::new(&job.workload, self.cfg.seed)))
            .collect();
        engine.run(&unique, |_, job| {
            arena.populate(&job.workload, self.cfg.seed, self.cfg.total_refs())
        });
        let mut seen_checkpoints = HashSet::new();
        let unique_checkpoints: Vec<&ScenarioJob> = pending
            .iter()
            .map(|&i| &jobs[i])
            .filter(|job| {
                seen_checkpoints.insert(SnapshotKey::new(
                    job.design,
                    &job.workload,
                    self.cfg.seed,
                    self.cfg.warmup_refs,
                ))
            })
            .collect();
        engine.run(&unique_checkpoints, |_, job| {
            snapshots.populate(
                arena,
                job.design,
                &job.workload,
                self.cfg.seed,
                self.cfg.warmup_refs,
                self.cfg.total_refs(),
            )
        });
    }

    /// The shared fused-measurement path: runs every job in `jobs` whose
    /// slot in `completed` is `None`, journaling each finished job when a
    /// journal is given, and returns the full run vector in job order
    /// (replayed results merged with computed ones).
    fn run_forked_core(
        &self,
        engine: &ExperimentEngine,
        arena: &TraceArena,
        snapshots: &SnapshotArena,
        jobs: &[ScenarioJob],
        completed: &[Option<MeasuredRun>],
        journal: Option<&SweepJournal>,
    ) -> Vec<MeasuredRun> {
        let pending: Vec<usize> = (0..jobs.len())
            .filter(|&i| completed[i].is_none())
            .collect();
        self.prepare_arenas(engine, arena, snapshots, jobs, &pending);
        let groups = group_indices(&pending, |&i| {
            TraceKey::new(&jobs[i].workload, self.cfg.seed)
        });
        let group_runs = engine.run(&groups, |_, (_, indices)| {
            let members: Vec<(&WorkloadSpec, LlcDesign)> = indices
                .iter()
                .map(|&p| (&jobs[pending[p]].workload, jobs[pending[p]].design))
                .collect();
            let runs = run_group_forked(&members, &self.cfg, arena, snapshots);
            if let Some(journal) = journal {
                // Journal the whole group as soon as it completes: a crash
                // between groups loses nothing, a crash mid-group loses at
                // most this group (re-run deterministically on resume).
                for (&p, run) in indices.iter().zip(&runs) {
                    journal
                        .append(pending[p], run)
                        .unwrap_or_else(|e| panic!("journal append failed: {e}"));
                }
            }
            runs
        });
        let mut all: Vec<Option<MeasuredRun>> = completed.to_vec();
        for ((_, indices), runs) in groups.iter().zip(group_runs) {
            for (&p, run) in indices.iter().zip(runs) {
                all[pending[p]] = Some(run);
            }
        }
        all.into_iter()
            .map(|r| r.expect("every job is replayed or belongs to exactly one fused group"))
            .collect()
    }

    /// [`Self::run_forked`], additionally appending one `kind=sweep` row
    /// per result into `store`.
    ///
    /// Rows are keyed by the full workload-spec fingerprint plus design,
    /// geometry, seed, and schema, so re-running the same matrix into the
    /// same store adds zero rows — repeated sweeps accumulate
    /// incrementally, and only genuinely new points grow the store.
    ///
    /// # Errors
    ///
    /// Propagates [`Self::jobs`] errors.
    pub fn run_forked_into(
        &self,
        engine: &ExperimentEngine,
        arena: &TraceArena,
        snapshots: &SnapshotArena,
        store: &Warehouse,
    ) -> Result<(ScenarioSweep, AppendSummary), ConfigError> {
        let sweep = self.run_forked(engine, arena, snapshots)?;
        // jobs() is deterministic and cheap next to the simulation, so
        // re-flattening recovers each result's full WorkloadSpec (the
        // sweep itself only keeps the name) for fingerprinting.
        let jobs = self.jobs()?;
        let records: Vec<RunRecord> = jobs
            .iter()
            .zip(&sweep.results)
            .map(|(job, result)| sweep_record(&self.cfg, &job.workload, result))
            .collect();
        let summary = store.append_all(&records);
        Ok((sweep, summary))
    }
}

/// Labels one job's measured run with its resolved configuration.
///
/// Public so external drivers (the experiment service's runner) can turn
/// journal-replayed and freshly-measured runs into the same results a
/// library sweep produces.
pub fn result_from(job: &ScenarioJob, run: MeasuredRun) -> ScenarioResult {
    let system = job.workload.system_config();
    ScenarioResult {
        workload: job.workload.name.clone(),
        design: job.design,
        point: job.point,
        cores: system.num_cores,
        slice_kb: system.l2_slice.geometry.capacity_bytes / 1024,
        run,
    }
}

/// One sweep result as a warehouse row.
///
/// Public so external drivers (the experiment service's runner) can build
/// the exact rows the `run_*_into` methods would, then batch them into a
/// single [`Warehouse::append_all`] call of their own.
pub fn sweep_record(
    cfg: &ExperimentConfig,
    spec: &WorkloadSpec,
    result: &ScenarioResult,
) -> RunRecord {
    let mut r = RunRecord::new(
        RowKind::Sweep,
        cfg.seed as i64,
        SWEEP_SCHEMA_VERSION as i64,
        cfg.label(),
    );
    // Same idiom as the snapshot arena's spec fingerprint: FNV-1a over the
    // full debug rendering, covering every field of the spec.
    let mut h = Fnv64::new();
    h.write(format!("{spec:?}").as_bytes());
    r.fingerprint = h.finish();
    r.workload = Some(result.workload.clone());
    r.design = Some(result.design.letter().to_string());
    r.letter = Some(result.design.letter().to_string());
    r.cores = Some(result.cores as i64);
    r.slice_kb = Some(result.slice_kb as i64);
    r.cluster = match result.design {
        LlcDesign::RNuca { instr_cluster_size } => Some(instr_cluster_size as i64),
        _ => None,
    };
    r.refs = Some(cfg.total_refs() as i64);
    let b = &result.run.cpi.breakdown;
    r.total_cpi = Some(result.run.total_cpi());
    r.cpi_busy = Some(b.busy);
    r.cpi_l1_to_l1 = Some(b.l1_to_l1);
    r.cpi_l2 = Some(b.l2);
    r.cpi_off_chip = Some(b.off_chip);
    r.cpi_other = Some(b.other);
    r.cpi_reclass = Some(b.reclassification);
    r.off_chip_rate = Some(result.run.off_chip_rate);
    r.l1_to_l1_rate = Some(result.run.l1_to_l1_rate);
    r.misclass_rate = Some(result.run.misclassification_rate);
    r.reclassifications = Some(result.run.reclassifications as i64);
    r
}

/// One quarantined job as a `kind=failed` warehouse row.
///
/// Carries the same identity columns a sweep row would (workload, design,
/// geometry, seed, schema, fingerprint) so the failure is attributable to a
/// precise scenario, plus the failure summary in the `failure` column. No
/// metric columns are set — there is no run to report. Rows key on identity
/// *and* the failure text: re-ingesting the same failure deduplicates,
/// while the same scenario failing differently later adds a new row.
pub fn failed_record(cfg: &ExperimentConfig, job: &ScenarioJob, failure: &JobFailure) -> RunRecord {
    let mut r = RunRecord::new(
        RowKind::Failed,
        cfg.seed as i64,
        SWEEP_SCHEMA_VERSION as i64,
        cfg.label(),
    );
    let mut h = Fnv64::new();
    h.write(format!("{:?}", job.workload).as_bytes());
    r.fingerprint = h.finish();
    let system = job.workload.system_config();
    r.workload = Some(job.workload.name.clone());
    r.design = Some(job.design.letter().to_string());
    r.letter = Some(job.design.letter().to_string());
    r.cores = Some(system.num_cores as i64);
    r.slice_kb = Some((system.l2_slice.geometry.capacity_bytes / 1024) as i64);
    r.cluster = match job.design {
        LlcDesign::RNuca { instr_cluster_size } => Some(instr_cluster_size as i64),
        _ => None,
    };
    r.refs = Some(cfg.total_refs() as i64);
    r.failure = Some(format!(
        "{} after {} attempt{}: {}",
        failure.cause,
        failure.attempts,
        if failure.attempts == 1 { "" } else { "s" },
        failure.message
    ));
    r
}

impl ScenarioSweep {
    /// Serialises the sweep as a JSON document.
    ///
    /// Emitted by hand (the workspace vendors no JSON library) with a
    /// deterministic field order and Rust's shortest-roundtrip float
    /// formatting, so equal sweeps produce byte-identical documents — the
    /// property the worker-count determinism test pins down.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.results.len() * 256);
        out.push_str("{\n  \"config\": {");
        out.push_str(&format!(
            "\"warmup_refs\": {}, \"measured_refs\": {}, \"seed\": {}, \"asr_best_of\": {}",
            self.cfg.warmup_refs, self.cfg.measured_refs, self.cfg.seed, self.cfg.asr_best_of
        ));
        out.push_str("},\n  \"results\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            out.push_str("    ");
            out.push_str(&result_json(r));
            out.push_str(if i + 1 < self.results.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// The results for one workload, in job order.
    pub fn workload(&self, name: &str) -> Vec<&ScenarioResult> {
        self.results.iter().filter(|r| r.workload == name).collect()
    }
}

/// One scenario result as a JSON object (shared by both sweep documents).
fn result_json(r: &ScenarioResult) -> String {
    let cluster = match r.design {
        LlcDesign::RNuca { instr_cluster_size } => instr_cluster_size.to_string(),
        _ => "null".to_string(),
    };
    let b = &r.run.cpi.breakdown;
    format!(
        "{{\"workload\": {}, \"design\": {}, \"letter\": \"{}\", \
         \"cores\": {}, \"slice_kb\": {}, \"cluster\": {}, \
         \"total_cpi\": {}, \"cpi\": {{\"busy\": {}, \"l1_to_l1\": {}, \"l2\": {}, \
         \"off_chip\": {}, \"other\": {}, \"reclassification\": {}}}, \
         \"off_chip_rate\": {}, \"l1_to_l1_rate\": {}}}",
        json_string(&r.workload),
        json_string(&r.design.to_string()),
        r.design.letter(),
        r.cores,
        r.slice_kb,
        cluster,
        r.run.total_cpi(),
        b.busy,
        b.l1_to_l1,
        b.l2,
        b.off_chip,
        b.other,
        b.reclassification,
        r.run.off_chip_rate,
        r.run.l1_to_l1_rate,
    )
}

impl QuarantinedSweep {
    /// Serialises the supervised sweep as a JSON document.
    ///
    /// Same deterministic shape as [`ScenarioSweep::to_json`], except each
    /// slot in `results` is either a result object or `null` (the job was
    /// quarantined), and a `failures` array lists every quarantined job
    /// with its index, attempt count, cause, and panic message — failures
    /// appear in the output instead of silently vanishing.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.results.len() * 256);
        out.push_str("{\n  \"config\": {");
        out.push_str(&format!(
            "\"warmup_refs\": {}, \"measured_refs\": {}, \"seed\": {}, \"asr_best_of\": {}",
            self.cfg.warmup_refs, self.cfg.measured_refs, self.cfg.seed, self.cfg.asr_best_of
        ));
        out.push_str("},\n  \"results\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            out.push_str("    ");
            match r {
                Ok(r) => out.push_str(&result_json(r)),
                Err(_) => out.push_str("null"),
            }
            out.push_str(if i + 1 < self.results.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n  \"failures\": [\n");
        let failures = self.failures();
        for (i, f) in failures.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"job\": {}, \"attempts\": {}, \"cause\": \"{}\", \"message\": {}}}",
                f.job,
                f.attempts,
                f.cause,
                json_string(&f.message),
            ));
            out.push_str(if i + 1 < failures.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control characters).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_matrix() -> ScenarioMatrix {
        let mut cfg = ExperimentConfig::smoke();
        cfg.warmup_refs = 1_500;
        cfg.measured_refs = 1_000;
        let mut m = ScenarioMatrix::new(cfg);
        m.workloads = vec![WorkloadSpec::oltp_db2()];
        m.designs = vec![LlcDesign::Shared, LlcDesign::rnuca_default()];
        m
    }

    #[test]
    fn empty_axes_reduce_to_the_baseline_comparison() {
        let m = tiny_matrix();
        let jobs = m.jobs().unwrap();
        assert_eq!(jobs.len(), 2);
        assert!(jobs.iter().all(|j| j.workload.num_cores() == 16));
        assert!(jobs[0].point.is_baseline());
        // The R-NUCA job's point records the design's own cluster size.
        assert_eq!(jobs[1].point.instr_cluster_size, Some(4));
    }

    #[test]
    fn axes_multiply_and_oversized_clusters_are_skipped() {
        let mut m = tiny_matrix();
        m.workloads = vec![WorkloadSpec::mix()]; // 8-core preset
        m.core_counts = vec![8, 16];
        m.slice_capacities_kb = vec![512, 1024];
        m.cluster_sizes = vec![4, 16]; // 16 > 8 cores: skipped at 8 cores
        let jobs = m.jobs().unwrap();
        // Per (cores, cap): shared + R-NUCA clusters. At 8 cores: 1 + 1; at
        // 16 cores: 1 + 2.
        assert_eq!(jobs.len(), 2 * (2 + 3));
        for job in &jobs {
            if let LlcDesign::RNuca { instr_cluster_size } = job.design {
                assert!(instr_cluster_size <= job.workload.num_cores());
            }
        }
    }

    #[test]
    fn invalid_axis_values_error_out() {
        let mut m = tiny_matrix();
        m.core_counts = vec![24];
        assert!(m.jobs().is_err());
        assert!(m.run().is_err());
    }

    #[test]
    fn sweep_json_is_identical_across_worker_counts() {
        // Acceptance criterion: scenario output is byte-identical no matter
        // how many workers execute the matrix.
        let mut m = tiny_matrix();
        m.core_counts = vec![16, 32];
        m.cluster_sizes = vec![2, 4];
        let serial = m.run_with(&ExperimentEngine::with_workers(1)).unwrap();
        let pooled = m.run_with(&ExperimentEngine::with_workers(5)).unwrap();
        assert_eq!(serial, pooled);
        assert_eq!(serial.to_json(), pooled.to_json());
        assert_eq!(serial.results.len(), 2 * 3);
    }

    #[test]
    fn sweep_jobs_group_onto_unique_streams() {
        // 1 workload x 2 core counts x 2 capacities x 2 designs = 8 jobs,
        // but only the core count changes the reference stream: the arena
        // must end up holding exactly 2 slabs, each generated once.
        let mut m = tiny_matrix();
        m.core_counts = vec![16, 32];
        m.slice_capacities_kb = vec![512, 1024];
        let arena = TraceArena::new();
        let sweep = m
            .run_with_arena(&ExperimentEngine::with_workers(4), &arena)
            .unwrap();
        assert_eq!(sweep.results.len(), 2 * 2 * 2);
        assert_eq!(arena.len(), 2, "one stream per core count");
        assert_eq!(arena.generations(), 2);
    }

    #[test]
    fn sweep_jobs_group_onto_unique_checkpoints() {
        // Three ASR variants x two capacities = 6 jobs, but the variants
        // share a warm-up class: the snapshot arena must end up holding one
        // checkpoint per capacity point, each warmed once. Capacities share
        // a stream (capacity is cost-only), so the trace arena holds one.
        use crate::design::AsrPolicy;
        let mut m = tiny_matrix();
        m.designs = vec![
            LlcDesign::Asr {
                policy: AsrPolicy::Static(0.0),
            },
            LlcDesign::Asr {
                policy: AsrPolicy::Static(1.0),
            },
            LlcDesign::Asr {
                policy: AsrPolicy::Adaptive,
            },
        ];
        m.slice_capacities_kb = vec![512, 1024];
        let traces = TraceArena::new();
        let snapshots = SnapshotArena::new();
        let sweep = m
            .run_forked(&ExperimentEngine::with_workers(4), &traces, &snapshots)
            .unwrap();
        assert_eq!(sweep.results.len(), 3 * 2);
        assert_eq!(traces.len(), 1, "capacity never changes the stream");
        assert_eq!(snapshots.len(), 2, "one checkpoint per capacity point");
        assert_eq!(snapshots.generations(), 2, "each warmed exactly once");
    }

    #[test]
    fn results_record_resolved_configuration() {
        let mut m = tiny_matrix();
        m.core_counts = vec![32];
        m.slice_capacities_kb = vec![512];
        let sweep = m.run().unwrap();
        assert!(!sweep.results.is_empty());
        for r in &sweep.results {
            assert_eq!(r.cores, 32);
            assert_eq!(r.slice_kb, 512);
            assert!(r.run.total_cpi() > 0.0);
        }
        assert_eq!(sweep.workload("OLTP DB2").len(), sweep.results.len());
        assert!(sweep.workload("nonexistent").is_empty());
    }

    #[test]
    fn json_has_the_documented_shape() {
        let mut m = tiny_matrix();
        m.designs = vec![LlcDesign::rnuca_default()];
        let sweep = m.run().unwrap();
        let json = sweep.to_json();
        assert!(json.starts_with("{\n  \"config\""));
        assert!(json.contains("\"workload\": \"OLTP DB2\""));
        assert!(json.contains("\"letter\": \"R\""));
        assert!(json.contains("\"cluster\": 4"));
        assert!(json.contains("\"total_cpi\": "));
        assert!(json.trim_end().ends_with('}'));
        // Shared designs carry a null cluster.
        let mut m2 = tiny_matrix();
        m2.designs = vec![LlcDesign::Shared];
        assert!(m2.run().unwrap().to_json().contains("\"cluster\": null"));
    }

    #[test]
    fn rerunning_a_sweep_into_the_store_adds_zero_rows() {
        let mut m = tiny_matrix();
        m.core_counts = vec![16, 32];
        let engine = ExperimentEngine::with_workers(2);
        let store = Warehouse::new();

        let (sweep, first) = m
            .run_forked_into(&engine, &TraceArena::new(), &SnapshotArena::new(), &store)
            .unwrap();
        assert_eq!(first.added, sweep.results.len());
        assert_eq!(first.deduplicated, 0);
        assert_eq!(store.len(), sweep.results.len());

        // The same matrix again: fully deduplicated, store unchanged.
        let bytes = store.to_bytes();
        let (_, second) = m
            .run_forked_into(&engine, &TraceArena::new(), &SnapshotArena::new(), &store)
            .unwrap();
        assert_eq!(second.added, 0);
        assert_eq!(second.deduplicated, sweep.results.len());
        assert_eq!(store.to_bytes(), bytes, "re-ingest must be byte-identical");

        // A new axis point is incremental: only the new rows append.
        m.core_counts = vec![16, 32, 64];
        let (bigger, third) = m
            .run_forked_into(&engine, &TraceArena::new(), &SnapshotArena::new(), &store)
            .unwrap();
        assert_eq!(third.added, bigger.results.len() - sweep.results.len());
        assert_eq!(third.deduplicated, sweep.results.len());
        assert_eq!(store.len(), bigger.results.len());

        // And the rows are queryable with the documented columns.
        let out = store
            .query("kind=sweep & design=R & cores>=32 show workload, cores, total_cpi")
            .expect("clean query");
        assert_eq!(out.rows.len(), 2, "R-NUCA rows at 32 and 64 cores");
    }

    #[test]
    fn sweep_records_mirror_the_json_fields() {
        let m = tiny_matrix();
        let store = Warehouse::new();
        let (sweep, _) = m
            .run_forked_into(
                &ExperimentEngine::with_workers(1),
                &TraceArena::new(),
                &SnapshotArena::new(),
                &store,
            )
            .unwrap();
        let out = store
            .query("kind=sweep sort design show design, cluster, total_cpi, off_chip_rate, config, schema, partial")
            .expect("clean query");
        assert_eq!(out.rows.len(), sweep.results.len());
        for (row, want) in out.rows.iter().zip(
            // sort design: R before S.
            [&sweep.results[1], &sweep.results[0]],
        ) {
            assert_eq!(row[0].to_string(), want.design.letter());
            assert_eq!(row[2].to_string(), want.run.total_cpi().to_string());
            assert_eq!(row[3].to_string(), want.run.off_chip_rate.to_string());
            assert_eq!(row[4].to_string(), "custom", "1500/1000 refs is no preset");
            assert_eq!(row[5].to_string(), SWEEP_SCHEMA_VERSION.to_string());
            assert_eq!(row[6].to_string(), "false");
        }
        // The R-NUCA row records its cluster size; shared rows are null.
        let clusters: Vec<String> = out.rows.iter().map(|r| r[1].to_string()).collect();
        assert_eq!(clusters, ["4", "-"]);
    }

    #[test]
    fn json_string_escapes_specials() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("x\ny"), "\"x\\u000ay\"");
    }
}
