//! The tiled-CMP simulator: one instance models one LLC design running one workload.
//!
//! The simulator is trace-driven and latency-additive. Every L2 reference
//! (the workload generators emit the post-L1-filter stream, the unit the
//! paper characterizes) is routed the way its design would route it — local
//! slice, remote slice, directory indirection, remote L1, or main memory —
//! and charged the Table 1 latencies for every network traversal, slice
//! lookup and DRAM access on its critical path. Stores update cache and
//! coherence state but their latency lands in the *other* CPI component,
//! mirroring the paper's accounting (Section 5.3).

use crate::cpi::{CpiComponent, DetailedCpi};
use crate::design::{AsrPolicy, LlcDesign};
use crate::tile::{BlockMeta, Tile, TileAccess};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rnuca::placement::{PlacementConfig, PlacementEngine};
use rnuca_cache::{CacheArray, ProbeEntry, SetRef};
use rnuca_coherence::{Directory, ReadSource};
use rnuca_mem::MemorySystem;
use rnuca_noc::{Network, Topology};
use rnuca_os::{ClassificationEvent, OsClassifier, PageClass};
use rnuca_types::access::{AccessClass, MemoryAccess};
use rnuca_types::addr::BlockAddr;
use rnuca_types::config::{CacheGeometry, SystemConfig};
use rnuca_types::ids::{CoreId, TileId};
use rnuca_types::index_map::U64Map;
use rnuca_types::{Snap, SnapReader};
use rnuca_workloads::{TraceSource, WorkloadSpec};
use serde::{Deserialize, Serialize};

/// How long (in L2 references) a dirty block is assumed to stay in its writer's L1.
const L1_RESIDENCY_WINDOW: u64 = 64_000;
/// Fixed OS overhead charged for a page re-classification (trap + shoot-down kernel work).
const RECLASSIFICATION_BASE_COST: u64 = 200;
/// Extra cycles charged per block invalidated during a shoot-down.
const RECLASSIFICATION_PER_BLOCK_COST: u64 = 2;
/// Window length (in measured references) for ASR's adaptive controller.
const ASR_WINDOW: u64 = 10_000;
/// Initial step size (and sign) of ASR's hill-climbing controller.
const ASR_INITIAL_STEP: f64 = 0.25;
/// Allocation probability every ASR variant uses while warming up.
///
/// Warm-up state is not part of what the ASR experiments compare — the
/// paper's warmed checkpoints are shared across configurations — so all six
/// ASR versions warm with the same mid-point probability. Because
/// `gen_bool` draws exactly one RNG value regardless of `p`, this makes the
/// warm-up of every variant bit-identical (decisions *and* RNG trajectory),
/// which is what lets one [`SimSnapshot`](crate::snapshot::SimSnapshot)
/// seed the entire best-of-six sweep.
const ASR_WARMUP_PROBABILITY: f64 = 0.5;
/// Simulator seed used by [`CmpSimulator::new`] when the caller does not
/// thread an experiment seed through [`CmpSimulator::with_seed`].
const DEFAULT_SIM_SEED: u64 = 0xC0FFEE;
/// Mixed into the caller's seed before seeding the simulator RNG, so a
/// trace generator and a simulator sharing one experiment seed still draw
/// from decorrelated streams.
const SIM_SEED_SALT: u64 = 0x9E37_79B9_7F4A_7C15;
/// Cycles charged (to the "other" component) per store that reaches the L2.
///
/// The paper accounts store latency under "other" because store-wait-free
/// techniques remove it from the critical path (Section 5.3); charging a flat,
/// design-independent cost mirrors that while still letting stores update
/// cache and coherence state.
const STORE_COST: u64 = 14;
/// References generated per batch by [`CmpSimulator::drive`] (and by the
/// fused driver, which must mirror these batch boundaries exactly — see
/// [`crate::fused`]): large enough to amortise the generator call overhead,
/// small enough to stay cache-hot.
pub(crate) const TRACE_BATCH: usize = 4_096;
/// How many references ahead of the current one the batch drivers issue
/// software prefetches for. The simulator is dominated by random probes
/// into structures far larger than the host's caches (directory entry
/// table, per-tile tag slabs, dirty-block map); consecutive references are
/// independent, so prefetching this far ahead overlaps their miss latencies
/// instead of serializing them. Eight is far enough to cover a memory
/// round-trip at the loop's work-per-reference, close enough that the
/// prefetched lines are still resident when their reference arrives.
const PREFETCH_AHEAD: usize = 8;
/// Whether the batch drivers compute prefetch hints at all. On targets
/// where `prefetch_read` is a no-op (everything but x86-64) the hint
/// computation — hashing upcoming keys, peeking classifications and
/// victims — would be pure overhead in the hot loop, so it is compiled out
/// rather than executed for nothing.
const PREFETCH_ENABLED: bool = cfg!(target_arch = "x86_64");
/// Entries the dirty-block tracker pre-sizes for; past this it grows by
/// doubling (the periodic sweep bounds it to two residency windows).
const L1_DIRTY_INITIAL_CAPACITY: usize = 16_384;

/// The per-run results returned by [`CmpSimulator::run_measured`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeasuredRun {
    /// Per-instruction CPI detail (busy included).
    pub cpi: DetailedCpi,
    /// L2 references measured.
    pub accesses: u64,
    /// Committed instructions represented by those references.
    pub instructions: f64,
    /// Fraction of L2 references that left the chip.
    pub off_chip_rate: f64,
    /// Fraction of L2 references serviced by a remote L1.
    pub l1_to_l1_rate: f64,
    /// Fraction of accesses whose OS page classification disagreed with the
    /// ground-truth class (R-NUCA only; zero elsewhere).
    pub misclassification_rate: f64,
    /// Page re-classifications performed during the measured run (R-NUCA only).
    pub reclassifications: u64,
}

impl MeasuredRun {
    /// Total CPI of the run.
    pub fn total_cpi(&self) -> f64 {
        self.cpi.total()
    }
}

impl Snap for MeasuredRun {
    fn encode(&self, out: &mut Vec<u8>) {
        self.cpi.encode(out);
        self.accesses.encode(out);
        self.instructions.encode(out);
        self.off_chip_rate.encode(out);
        self.l1_to_l1_rate.encode(out);
        self.misclassification_rate.encode(out);
        self.reclassifications.encode(out);
    }

    fn decode(r: &mut SnapReader<'_>) -> Self {
        MeasuredRun {
            cpi: r.get(),
            accesses: r.get(),
            instructions: r.get(),
            off_chip_rate: r.get(),
            l1_to_l1_rate: r.get(),
            misclassification_rate: r.get(),
            reclassifications: r.get(),
        }
    }
}

/// Internal per-block record of "dirty and sitting in some core's L1".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct L1DirtyEntry {
    owner: CoreId,
    stamp: u64,
}

impl Snap for L1DirtyEntry {
    fn encode(&self, out: &mut Vec<u8>) {
        self.owner.encode(out);
        self.stamp.encode(out);
    }

    fn decode(r: &mut SnapReader<'_>) -> Self {
        L1DirtyEntry {
            owner: r.get(),
            stamp: r.get(),
        }
    }
}

/// The simulator for one `(design, workload)` pair.
#[derive(Debug)]
pub struct CmpSimulator {
    design: LlcDesign,
    config: SystemConfig,
    busy_cpi: f64,
    instr_per_ref: f64,
    /// Precomputed one-way latencies, indexed `from * num_tiles + to`.
    /// Every charge path consults these instead of recomputing grid
    /// coordinates and serialization flits per query — for a fixed topology
    /// and block size the answers never change.
    control_lut: Vec<u32>,
    data_lut: Vec<u32>,
    /// Cached [`SystemConfig`] scalars read on every reference.
    slice_latency: u64,
    dram_latency: u64,
    block_bytes: usize,
    page_bytes: usize,
    num_tiles: usize,
    tiles: Vec<Tile>,
    mem: MemorySystem,
    os: OsClassifier,
    placement: PlacementEngine,
    l2_directory: Directory,
    /// Dirty-in-some-L1 tracking, keyed by block number (open-addressed —
    /// this map is probed on every single reference).
    l1_dirty: U64Map<L1DirtyEntry>,
    ideal_cache: Option<CacheArray<BlockMeta>>,
    /// Reusable batch buffer for trace generation (see [`Self::drive`]).
    trace_buf: Vec<MemoryAccess>,
    rng: StdRng,
    // ASR adaptive controller state.
    asr_probability: f64,
    asr_adaptive: bool,
    asr_window_cycles: u64,
    asr_prev_window_cycles: u64,
    asr_window_accesses: u64,
    asr_direction: f64,
    // Accounting.
    clock: u64,
    /// References until the next expired-dirty-entry sweep (counts down from
    /// [`L1_RESIDENCY_WINDOW`]; equivalent to `clock % window == 0` without
    /// a per-reference division).
    sweep_countdown: u64,
    measuring: bool,
    acc: DetailedCpi,
    measured_accesses: u64,
    off_chip_accesses: u64,
    l1_to_l1_transfers: u64,
    misclassified: u64,
    classified: u64,
    reclassifications: u64,
}

impl CmpSimulator {
    /// Builds a simulator for `design` running `spec`'s system configuration,
    /// with a fixed default seed for its internal RNG.
    ///
    /// Experiment runners should prefer [`CmpSimulator::with_seed`] so that
    /// seed-sensitive behaviour (ASR's probabilistic replication) actually
    /// varies with the experiment seed.
    pub fn new(design: LlcDesign, spec: &WorkloadSpec) -> Self {
        Self::with_seed(design, spec, DEFAULT_SIM_SEED)
    }

    /// Builds a simulator for `design` running `spec`'s system configuration,
    /// seeding the simulator's RNG from `seed`.
    pub fn with_seed(design: LlcDesign, spec: &WorkloadSpec, seed: u64) -> Self {
        let config = spec.system_config();
        let placement_config = match design {
            LlcDesign::RNuca { instr_cluster_size } => {
                PlacementConfig::from_system(&config).with_instr_cluster_size(instr_cluster_size)
            }
            _ => PlacementConfig::from_system(&config),
        };
        let (asr_probability, asr_adaptive) = match design {
            LlcDesign::Asr {
                policy: AsrPolicy::Static(p),
            } => (p, false),
            LlcDesign::Asr {
                policy: AsrPolicy::Adaptive,
            } => (0.5, true),
            _ => (1.0, false),
        };
        let ideal_cache = match design {
            LlcDesign::Ideal => {
                let slice = config.l2_slice.geometry;
                let aggregate = CacheGeometry::new(
                    slice.capacity_bytes * config.num_cores,
                    slice.ways,
                    slice.block_bytes,
                )
                .expect("aggregate geometry scales a valid slice geometry");
                Some(CacheArray::new(aggregate))
            }
            _ => None,
        };
        let network = Network::new(Topology::FoldedTorus, config.torus);
        let num_tiles = config.num_tiles();
        let block_bytes = config.l2_slice.geometry.block_bytes;
        let mut control_lut = vec![0u32; num_tiles * num_tiles];
        let mut data_lut = vec![0u32; num_tiles * num_tiles];
        let lut_entry = |cycles: u64| -> u32 {
            cycles
                .try_into()
                .expect("one-way network latency fits the 32-bit LUT entries")
        };
        for from in 0..num_tiles {
            for to in 0..num_tiles {
                let (f, t) = (TileId::new(from), TileId::new(to));
                control_lut[from * num_tiles + to] =
                    lut_entry(network.control_latency(f, t).value());
                data_lut[from * num_tiles + to] =
                    lut_entry(network.data_latency(f, t, block_bytes).value());
            }
        }
        CmpSimulator {
            design,
            busy_cpi: spec.busy_cpi,
            instr_per_ref: spec.instructions_per_l2_ref(),
            control_lut,
            data_lut,
            slice_latency: config.l2_slice.hit_latency.value(),
            dram_latency: config.memory.access_latency.value(),
            block_bytes,
            page_bytes: config.memory.page_bytes,
            num_tiles,
            tiles: (0..config.num_tiles())
                .map(|i| Tile::new(TileId::new(i), &config))
                .collect(),
            mem: MemorySystem::new(&config),
            os: OsClassifier::new(config.num_cores, 512),
            placement: PlacementEngine::new(placement_config),
            l2_directory: Directory::new(config.num_tiles()),
            l1_dirty: U64Map::with_capacity(L1_DIRTY_INITIAL_CAPACITY),
            ideal_cache,
            trace_buf: Vec::new(),
            rng: StdRng::seed_from_u64(seed ^ SIM_SEED_SALT),
            asr_probability,
            asr_adaptive,
            asr_window_cycles: 0,
            asr_prev_window_cycles: u64::MAX,
            asr_window_accesses: 0,
            asr_direction: ASR_INITIAL_STEP,
            clock: 0,
            sweep_countdown: L1_RESIDENCY_WINDOW,
            measuring: false,
            acc: DetailedCpi::default(),
            measured_accesses: 0,
            off_chip_accesses: 0,
            l1_to_l1_transfers: 0,
            misclassified: 0,
            classified: 0,
            reclassifications: 0,
            config,
        }
    }

    /// The design being simulated.
    pub fn design(&self) -> LlcDesign {
        self.design
    }

    /// The system configuration in use.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Read access to the per-tile state (for occupancy inspection in tests and reports).
    pub fn tiles(&self) -> &[Tile] {
        &self.tiles
    }

    /// The OS classifier (for classification statistics).
    pub fn os(&self) -> &OsClassifier {
        &self.os
    }

    /// Runs `n` references from `src` without recording statistics (cache and
    /// page-table warm-up, mirroring the paper's warmed checkpoints).
    ///
    /// `src` is any [`TraceSource`]: a streaming
    /// [`TraceGenerator`](rnuca_workloads::TraceGenerator), or a
    /// [`TraceSlice`](rnuca_workloads::TraceSlice) replaying a stream the
    /// [`TraceArena`](rnuca_workloads::TraceArena) materialized once and
    /// shares across every design evaluating it. Both yield identical
    /// sequences, so the choice affects run time only.
    pub fn run_warmup(&mut self, src: &mut impl TraceSource, n: usize) {
        self.measuring = false;
        self.drive(src, n);
    }

    /// Feeds `n` references from `src` through the design's step path,
    /// filling them in batches into a buffer reused across calls and
    /// windows, so the run loop performs no per-access (or even per-batch)
    /// allocation. The access sequence is identical to taking `n` single
    /// references from `src` — the source does not depend on simulator
    /// state.
    fn drive(&mut self, src: &mut impl TraceSource, n: usize) {
        let mut buf = std::mem::take(&mut self.trace_buf);
        let mut remaining = n;
        while remaining > 0 {
            let batch = remaining.min(TRACE_BATCH);
            src.fill_into(batch, &mut buf);
            self.step_batch(&buf);
            remaining -= batch;
        }
        self.trace_buf = buf;
    }

    /// Steps one decoded batch of references through the design's
    /// monomorphized batch driver — the per-batch stepping interface.
    ///
    /// The `match` on the design happens once per batch, not once per
    /// access: each arm runs a monomorphized batch loop over the design's
    /// step function, so the per-reference path is branch-predictable and
    /// free of the dispatch [`Self::step`] performs.
    ///
    /// `Self::drive` calls this with batches it fills from its own trace
    /// source; the [`FusedDriver`](crate::fused::FusedDriver) calls it with
    /// one shared batch per design instance, so N designs consume a stream
    /// in a single decode pass. The batch buffer is caller-owned and never
    /// part of snapshot state, so which buffer the references arrive in is
    /// architecturally invisible.
    pub fn step_batch(&mut self, buf: &[MemoryAccess]) {
        match self.design {
            LlcDesign::Ideal => {
                self.run_batch::<false>(buf, Self::step_ideal, Self::prefetch_ideal)
            }
            LlcDesign::Shared => self.run_batch::<false>(
                buf,
                |s, a| s.step_single_copy(a, None),
                Self::prefetch_single_copy,
            ),
            LlcDesign::RNuca { .. } => {
                self.run_batch::<false>(buf, Self::step_rnuca, Self::prefetch_rnuca)
            }
            LlcDesign::Private => {
                self.run_batch::<false>(buf, Self::step_private_like, Self::prefetch_private_like)
            }
            LlcDesign::Asr { .. } => {
                if self.asr_adaptive {
                    self.run_batch::<true>(
                        buf,
                        Self::step_private_like,
                        Self::prefetch_private_like,
                    )
                } else {
                    self.run_batch::<false>(
                        buf,
                        Self::step_private_like,
                        Self::prefetch_private_like,
                    )
                }
            }
        }
    }

    /// Runs one design-specialized batch: the shared per-access prologue,
    /// the design's step function, and (for the adaptive ASR driver) the
    /// controller epilogue. `ADAPT` is a compile-time flag so the other
    /// designs pay nothing for the check.
    ///
    /// `prefetch` is the design's cache-warming hint for one upcoming
    /// reference: before stepping reference `i`, the driver prefetches the
    /// structures reference `i + PREFETCH_AHEAD` will probe, so the random
    /// misses of consecutive independent references overlap instead of
    /// serializing. Prefetching is architecturally invisible — results are
    /// bit-identical with it disabled.
    fn run_batch<const ADAPT: bool>(
        &mut self,
        buf: &[MemoryAccess],
        step: impl Fn(&mut Self, &MemoryAccess),
        prefetch: impl Fn(&Self, &MemoryAccess),
    ) {
        for (i, access) in buf.iter().enumerate() {
            if PREFETCH_ENABLED {
                if let Some(upcoming) = buf.get(i + PREFETCH_AHEAD) {
                    prefetch(self, upcoming);
                }
            }
            self.pre_step();
            step(self, access);
            if ADAPT && self.measuring {
                self.asr_adapt();
            }
        }
    }

    /// The bookkeeping shared by every step path: the reference clock, the
    /// periodic dirty-map sweep, and the measured-access counter. The sweep
    /// cadence is a countdown rather than a `clock % window` test so the
    /// per-reference prologue performs no division.
    fn pre_step(&mut self) {
        self.clock += 1;
        self.sweep_countdown -= 1;
        if self.sweep_countdown == 0 {
            self.sweep_countdown = L1_RESIDENCY_WINDOW;
            self.sweep_expired_l1_dirty();
        }
        if self.measuring {
            self.measured_accesses += 1;
        }
    }

    // ----- per-design prefetch hints (see [`Self::run_batch`]) ------------

    /// Private/ASR designs probe the dirty-block map, the requester's own
    /// slice, and (on misses and stores) the coherence directory — both the
    /// requested block's entry and, when a fill would push the victim
    /// buffer's oldest block off the tile, that departing block's entry
    /// (the `handle_eviction` probe). Cores issue round-robin, so at this
    /// lookahead the tile's state is unchanged when its reference arrives
    /// and the peeked victim is the one the eviction will name.
    fn prefetch_private_like(&self, access: &MemoryAccess) {
        let block = access.addr.block(self.block_bytes);
        self.l1_dirty.prefetch(block.block_number());
        let tile = &self.tiles[access.core.tile().index()];
        tile.prefetch(block);
        self.l2_directory.prefetch(block);
        if let Some(departing) = tile.peek_departing() {
            self.l2_directory.prefetch(departing);
        }
    }

    /// The shared design probes the dirty-block map and the block's
    /// address-interleaved home slice.
    fn prefetch_single_copy(&self, access: &MemoryAccess) {
        let block = access.addr.block(self.block_bytes);
        self.l1_dirty.prefetch(block.block_number());
        let home = self.placement.shared_home(block);
        self.tiles[home.index()].prefetch(block);
    }

    /// R-NUCA consults the OS page table before the home is known. The hint
    /// reads the page's *current* classification (a plain lookup — the very
    /// miss it absorbs early) and warms the slice that classification homes
    /// the block to; pages re-classify rarely, so the speculative home is
    /// almost always the one the step will probe. The dirty-block map and
    /// the page-table entry are hinted as well.
    fn prefetch_rnuca(&self, access: &MemoryAccess) {
        let block = access.addr.block(self.block_bytes);
        self.l1_dirty.prefetch(block.block_number());
        let page = access.addr.page(self.page_bytes);
        self.os.prefetch(page);
        if let Some(class) = self.os.peek_class(page, access.core) {
            let home = self.placement.place(class, block, access.core);
            self.tiles[home.index()].prefetch(block);
        }
    }

    /// The ideal design probes only its aggregate cache array.
    fn prefetch_ideal(&self, access: &MemoryAccess) {
        if let Some(cache) = &self.ideal_cache {
            cache.prefetch(access.addr.block(self.block_bytes));
        }
    }

    /// Runs `n` references from `src` with statistics recording and returns the results.
    ///
    /// Cache, directory, and page-table state deliberately carry over from
    /// warm-up (and from any previous window — that is the warmed-checkpoint
    /// methodology), and so does the adaptive ASR controller's *learned*
    /// allocation probability, which is warm state like cache contents. The
    /// controller's window accounting (partial cycle/access counters and
    /// climb direction), however, is measurement bookkeeping and is
    /// restarted here: without the reset, counters left over from a previous
    /// measured window would fire the adaptive controller early in the next
    /// one, coupling back-to-back windows that should be independent.
    pub fn run_measured(&mut self, src: &mut impl TraceSource, n: usize) -> MeasuredRun {
        self.begin_measured();
        self.drive(src, n);
        self.finish_measured()
    }

    /// Switches the simulator into a fresh measured window: statistics
    /// recording on, measurement accumulators zeroed, ASR window accounting
    /// restarted (see [`Self::run_measured`] for why the *learned* controller
    /// state carries over while the window bookkeeping does not).
    ///
    /// Callers driving the simulator through [`Self::step_batch`] directly —
    /// the fused driver — bracket the pass with this and
    /// [`Self::finish_measured`]; [`Self::run_measured`] is exactly that
    /// bracket around `Self::drive`.
    pub fn begin_measured(&mut self) {
        self.measuring = true;
        self.asr_window_cycles = 0;
        self.asr_window_accesses = 0;
        self.asr_prev_window_cycles = u64::MAX;
        self.asr_direction = ASR_INITIAL_STEP;
        self.acc = DetailedCpi::default();
        self.measured_accesses = 0;
        self.off_chip_accesses = 0;
        self.l1_to_l1_transfers = 0;
        self.misclassified = 0;
        self.classified = 0;
        self.reclassifications = 0;
    }

    /// Closes the measured window opened by [`Self::begin_measured`] and
    /// returns the window's [`MeasuredRun`].
    pub fn finish_measured(&self) -> MeasuredRun {
        self.results()
    }

    /// Processes a single L2 reference.
    ///
    /// The internal batch driver behind [`Self::run_warmup`] and
    /// [`Self::run_measured`] does not go through this method — it
    /// dispatches on the design once per batch instead of once per access —
    /// but the per-reference behaviour here is identical.
    pub fn step(&mut self, access: &MemoryAccess) {
        self.pre_step();
        match self.design {
            LlcDesign::Ideal => self.step_ideal(access),
            LlcDesign::Shared => self.step_single_copy(access, None),
            LlcDesign::RNuca { .. } => self.step_rnuca(access),
            LlcDesign::Private | LlcDesign::Asr { .. } => self.step_private_like(access),
        }
        if self.asr_adaptive && self.measuring {
            self.asr_adapt();
        }
    }

    fn results(&self) -> MeasuredRun {
        let instructions = self.measured_accesses as f64 * self.instr_per_ref;
        let mut cpi = self.acc.scaled(instructions.max(1.0));
        cpi.breakdown.busy = self.busy_cpi;
        let accesses = self.measured_accesses.max(1) as f64;
        MeasuredRun {
            cpi,
            accesses: self.measured_accesses,
            instructions,
            off_chip_rate: self.off_chip_accesses as f64 / accesses,
            l1_to_l1_rate: self.l1_to_l1_transfers as f64 / accesses,
            misclassification_rate: if self.classified == 0 {
                0.0
            } else {
                self.misclassified as f64 / self.classified as f64
            },
            reclassifications: self.reclassifications,
        }
    }

    // ----- cost helpers ---------------------------------------------------

    fn block_bytes(&self) -> usize {
        self.block_bytes
    }

    fn slice_latency(&self) -> u64 {
        self.slice_latency
    }

    fn dram_latency(&self) -> u64 {
        self.dram_latency
    }

    #[inline]
    fn control(&self, from: TileId, to: TileId) -> u64 {
        u64::from(self.control_lut[from.index() * self.num_tiles + to.index()])
    }

    #[inline]
    fn data(&self, from: TileId, to: TileId) -> u64 {
        u64::from(self.data_lut[from.index() * self.num_tiles + to.index()])
    }

    fn charge(&mut self, cycles: u64, component: CpiComponent) {
        if !self.measuring {
            return;
        }
        self.asr_window_cycles += cycles;
        self.acc.breakdown.add(component, cycles as f64);
    }

    fn charge_l2(&mut self, cycles: u64, class: AccessClass, coherence: bool) {
        if !self.measuring {
            return;
        }
        self.asr_window_cycles += cycles;
        self.acc.add_l2(class, coherence, cycles as f64);
    }

    fn charge_off_chip(&mut self, cycles: u64, class: AccessClass) {
        if !self.measuring {
            return;
        }
        self.asr_window_cycles += cycles;
        self.off_chip_accesses += 1;
        self.acc.add_off_chip(class, cycles as f64);
    }

    // ----- L1 dirty tracking (L1-to-L1 transfers) -------------------------

    fn l1_dirty_owner(&mut self, block: BlockAddr, requester: CoreId) -> Option<CoreId> {
        let stamp = self.clock;
        // Single probe: the slot handle serves both the freshness check and
        // the expired-entry removal.
        let slot = self.l1_dirty.find_slot(block.block_number())?;
        let e = *self.l1_dirty.slot_value(slot);
        if stamp.saturating_sub(e.stamp) >= L1_RESIDENCY_WINDOW {
            self.l1_dirty.remove_slot(slot);
            None
        } else if e.owner != requester {
            Some(e.owner)
        } else {
            None
        }
    }

    fn note_write(&mut self, block: BlockAddr, writer: CoreId) {
        self.l1_dirty.insert(
            block.block_number(),
            L1DirtyEntry {
                owner: writer,
                stamp: self.clock,
            },
        );
    }

    fn clear_dirty(&mut self, block: BlockAddr) {
        self.l1_dirty.remove(block.block_number());
    }

    /// Drops every dirty-tracking entry whose residency window has expired.
    ///
    /// [`Self::l1_dirty_owner`] already treats expired entries as absent, but
    /// it only removes the entry it happens to probe, so on streaming
    /// workloads (each block written once, never re-probed) the map would
    /// otherwise grow without bound. [`Self::step`] calls this once per
    /// residency window, bounding the map to the blocks written within the
    /// last two windows without changing any simulation outcome.
    fn sweep_expired_l1_dirty(&mut self) {
        let clock = self.clock;
        self.l1_dirty
            .retain(|_, e| clock.saturating_sub(e.stamp) < L1_RESIDENCY_WINDOW);
    }

    /// Drops the dirty-tracking entries of every block in `page` (an R-NUCA
    /// shoot-down). A page holds a fixed, small number of blocks, so this is
    /// a handful of O(1) removals instead of the full-map `retain` scan the
    /// `HashMap`-backed version performed per re-classification.
    fn clear_dirty_page(&mut self, page: rnuca_types::addr::PageAddr) {
        let block_bytes = self.block_bytes;
        let page_bytes = self.page_bytes;
        for block in page.blocks(block_bytes, page_bytes) {
            self.l1_dirty.remove(block.block_number());
        }
    }

    /// Number of blocks currently tracked as dirty in some L1 (diagnostics).
    pub fn l1_dirty_tracked(&self) -> usize {
        self.l1_dirty.len()
    }

    // ----- Ideal design ----------------------------------------------------

    fn step_ideal(&mut self, access: &MemoryAccess) {
        let block = access.addr.block(self.block_bytes());
        let meta = BlockMeta {
            class: access.class,
            dirty: access.kind.is_write(),
        };
        let cache = self
            .ideal_cache
            .as_mut()
            .expect("ideal design has an aggregate cache");
        let hit = match cache.probe_entry(block) {
            ProbeEntry::Hit(_) => true,
            ProbeEntry::Miss(slot) => {
                cache.fill_at(slot, block, meta);
                false
            }
        };
        if access.kind.is_write() {
            self.charge(STORE_COST, CpiComponent::Other);
        } else if hit {
            self.charge_l2(self.slice_latency(), access.class, false);
        } else {
            // Even the ideal design pays the trip to the memory controller and DRAM.
            let tile = access.core.tile();
            let exit = self.mem.read_via(access.addr);
            let cost = self.slice_latency()
                + self.control(tile, exit)
                + self.dram_latency()
                + self.data(exit, tile);
            self.charge_off_chip(cost, access.class);
        }
    }

    // ----- Shared and R-NUCA (single-copy designs) -------------------------

    /// Handles a reference under a single-copy organisation. `home_override`
    /// carries R-NUCA's class-aware home; `None` means pure address
    /// interleaving (the shared design).
    fn step_single_copy(&mut self, access: &MemoryAccess, home_override: Option<TileId>) {
        let core = access.core;
        let tile = core.tile();
        let block = access.addr.block(self.block_bytes());
        let home = home_override.unwrap_or_else(|| self.placement.shared_home(block));

        // Remote-L1 dirty data: one L2/directory lookup at the home slice, then
        // a forward to the owner, then data straight to the requester.
        if let Some(owner) = self.l1_dirty_owner(block, core) {
            let cost = self.control(tile, home)
                + self.slice_latency()
                + self.control(home, owner.tile())
                + self.data(owner.tile(), tile);
            if self.measuring {
                self.l1_to_l1_transfers += 1;
            }
            if access.kind.is_write() {
                self.charge(STORE_COST, CpiComponent::Other);
                self.note_write(block, core);
            } else {
                self.charge(cost, CpiComponent::L1ToL1);
                // The downgrade leaves a clean copy at the home slice.
                self.clear_dirty(block);
                self.fill_home(
                    home,
                    block,
                    BlockMeta {
                        class: access.class,
                        dirty: true,
                    },
                );
            }
            return;
        }

        match self.tiles[home.index()].access(block) {
            TileAccess::Hit(entry) => {
                if access.kind.is_write() {
                    self.tiles[home.index()].meta_mut(entry).dirty = true;
                    self.note_write(block, core);
                    self.charge(STORE_COST, CpiComponent::Other);
                } else {
                    let cost =
                        self.control(tile, home) + self.slice_latency() + self.data(home, tile);
                    self.charge_l2(cost, access.class, false);
                }
            }
            TileAccess::Miss(slot) => {
                // Off-chip: requester -> home -> memory controller -> home -> requester.
                let exit = self.mem.read_via(access.addr);
                let cost = self.control(tile, home)
                    + self.slice_latency()
                    + self.control(home, exit)
                    + self.dram_latency()
                    + self.data(exit, home)
                    + self.data(home, tile);
                self.fill_home_at(
                    home,
                    slot,
                    block,
                    BlockMeta {
                        class: access.class,
                        dirty: access.kind.is_write(),
                    },
                );
                if access.kind.is_write() {
                    self.note_write(block, core);
                    self.charge(STORE_COST, CpiComponent::Other);
                } else {
                    self.charge_off_chip(cost, access.class);
                }
            }
        }
    }

    fn fill_home(&mut self, home: TileId, block: BlockAddr, meta: BlockMeta) {
        if let Some((evicted, evicted_meta)) = self.tiles[home.index()].fill(block, meta) {
            if evicted_meta.dirty {
                self.mem.writeback(evicted.base_addr(self.block_bytes()));
            }
        }
    }

    /// [`Self::fill_home`] for a set already located by a probe miss: fills
    /// through the handle instead of re-searching the slice.
    fn fill_home_at(&mut self, home: TileId, slot: SetRef, block: BlockAddr, meta: BlockMeta) {
        if let Some((evicted, evicted_meta)) = self.tiles[home.index()].fill_at(slot, block, meta) {
            if evicted_meta.dirty {
                self.mem.writeback(evicted.base_addr(self.block_bytes()));
            }
        }
    }

    // ----- R-NUCA -----------------------------------------------------------

    fn step_rnuca(&mut self, access: &MemoryAccess) {
        let core = access.core;
        let block = access.addr.block(self.block_bytes());
        let page = access.addr.page(self.page_bytes);

        let outcome = self.os.access(page, core, access.kind.is_instr_fetch());

        // Classification accuracy against the workload's ground truth.
        if self.measuring {
            self.classified += 1;
            let matches = matches!(
                (outcome.class, access.class),
                (PageClass::Private, AccessClass::PrivateData)
                    | (PageClass::Shared, AccessClass::SharedData)
                    | (PageClass::Instruction, AccessClass::Instruction)
            );
            if !matches {
                self.misclassified += 1;
            }
        }

        // Re-classification / migration: shoot down the previous owner's slice.
        match outcome.event {
            ClassificationEvent::Reclassified { previous_owner }
            | ClassificationEvent::OwnerMigrated { previous_owner } => {
                let page_bytes = self.page_bytes;
                let invalidated =
                    self.tiles[previous_owner.index()].invalidate_page(page, page_bytes) as u64;
                self.clear_dirty_page(page);
                if self.measuring {
                    self.reclassifications += 1;
                }
                let cost = RECLASSIFICATION_BASE_COST
                    + RECLASSIFICATION_PER_BLOCK_COST * invalidated
                    + self.control(core.tile(), previous_owner.tile());
                self.charge(cost, CpiComponent::Reclassification);
            }
            _ => {}
        }

        let home = self.placement.place(outcome.class, block, core);
        self.step_single_copy(access, Some(home));
    }

    // ----- Private and ASR --------------------------------------------------

    fn step_private_like(&mut self, access: &MemoryAccess) {
        let core = access.core;
        let tile = core.tile();
        let block = access.addr.block(self.block_bytes());
        let dir_home = self.placement.shared_home(block);
        let meta = BlockMeta {
            class: access.class,
            dirty: false,
        };

        // Remote-L1 dirty data: local slice probe, directory lookup, forward,
        // remote slice + L1 probe, data response (Section 5.3's description of
        // why these requests are slower under the private designs).
        if let Some(owner) = self.l1_dirty_owner(block, core) {
            let cost = self.slice_latency()
                + self.control(tile, dir_home)
                + self.slice_latency()
                + self.control(dir_home, owner.tile())
                + self.slice_latency()
                + self.data(owner.tile(), tile);
            if self.measuring {
                self.l1_to_l1_transfers += 1;
            }
            if access.kind.is_write() {
                self.charge(STORE_COST, CpiComponent::Other);
                self.note_write(block, core);
                self.write_state_update(block, tile, meta, access);
            } else {
                self.charge(cost, CpiComponent::L1ToL1);
                self.clear_dirty(block);
            }
            return;
        }

        if access.kind.is_write() {
            // Stores: flat latency in "other"; state updates still performed.
            // The single probe here doubles as the locator for the state
            // update's metadata write or fill.
            let outcome = self.tiles[tile.index()].access(block);
            self.charge(STORE_COST, CpiComponent::Other);
            self.write_state_update_at(block, tile, outcome, meta, access);
            self.note_write(block, core);
            return;
        }

        // Loads and instruction fetches.
        let slot = match self.tiles[tile.index()].access(block) {
            TileAccess::Hit(_) => {
                self.charge_l2(self.slice_latency(), access.class, false);
                return;
            }
            TileAccess::Miss(slot) => slot,
        };

        // Local miss: consult the distributed directory.
        let read = self.l2_directory.handle_read(block, tile);
        match read.source {
            ReadSource::Memory => {
                let exit = self.mem.read_via(access.addr);
                let cost = self.slice_latency()
                    + self.control(tile, dir_home)
                    + self.slice_latency()
                    + self.control(dir_home, exit)
                    + self.dram_latency()
                    + self.data(exit, tile);
                self.charge_off_chip(cost, access.class);
                self.fill_private_at(tile, slot, block, meta);
            }
            ReadSource::Cache(owner) => {
                let cost = self.slice_latency()
                    + self.control(tile, dir_home)
                    + self.slice_latency()
                    + self.control(dir_home, owner)
                    + self.slice_latency()
                    + self.data(owner, tile);
                self.charge_l2(cost, access.class, true);
                if self.asr_allows_allocation(access.class) {
                    self.fill_private_at(tile, slot, block, meta);
                } else {
                    // ASR dropped the block instead of allocating it locally;
                    // tell the directory this tile holds no L2 copy.
                    self.l2_directory.handle_eviction(block, tile);
                }
            }
            ReadSource::AlreadyPresent => {
                // Directory believes we already hold the block (e.g. it sits in
                // the victim buffer); treat as a local hit.
                self.charge_l2(self.slice_latency(), access.class, false);
            }
        }
    }

    /// Applies the coherence state changes of a store under the private
    /// designs when no probe of the writer's slice preceded the call.
    fn write_state_update(
        &mut self,
        block: BlockAddr,
        tile: TileId,
        meta: BlockMeta,
        access: &MemoryAccess,
    ) {
        let write = self.l2_directory.handle_write(block, tile);
        for victim_tile in write.invalidations.iter() {
            self.tiles[victim_tile.index()].invalidate(block);
        }
        if write.source == ReadSource::Memory {
            self.mem.read(access.addr);
        }
        let mut dirty_meta = meta;
        dirty_meta.dirty = true;
        self.fill_private(tile, block, dirty_meta, true);
    }

    /// [`Self::write_state_update`] when the store path already probed the
    /// writer's slice: the probe outcome locates the metadata write (hit) or
    /// the fill set (miss), so the slice is searched exactly once per store.
    fn write_state_update_at(
        &mut self,
        block: BlockAddr,
        tile: TileId,
        outcome: TileAccess,
        meta: BlockMeta,
        access: &MemoryAccess,
    ) {
        let write = self.l2_directory.handle_write(block, tile);
        for victim_tile in write.invalidations.iter() {
            self.tiles[victim_tile.index()].invalidate(block);
        }
        if write.source == ReadSource::Memory {
            self.mem.read(access.addr);
        }
        let mut dirty_meta = meta;
        dirty_meta.dirty = true;
        match outcome {
            TileAccess::Hit(entry) => *self.tiles[tile.index()].meta_mut(entry) = dirty_meta,
            TileAccess::Miss(slot) => self.fill_private_at(tile, slot, block, dirty_meta),
        }
    }

    /// Fills a block into a private slice (if the policy allocates it) and
    /// keeps the directory consistent with any eviction this causes.
    fn fill_private(&mut self, tile: TileId, block: BlockAddr, meta: BlockMeta, allocate: bool) {
        if !allocate {
            return;
        }
        if let Some((evicted, evicted_meta)) = self.tiles[tile.index()].fill(block, meta) {
            let writeback = self.l2_directory.handle_eviction(evicted, tile);
            if writeback || evicted_meta.dirty {
                self.mem.writeback(evicted.base_addr(self.block_bytes()));
            }
        }
    }

    /// [`Self::fill_private`] for a set already located by a probe miss.
    fn fill_private_at(&mut self, tile: TileId, slot: SetRef, block: BlockAddr, meta: BlockMeta) {
        if let Some((evicted, evicted_meta)) = self.tiles[tile.index()].fill_at(slot, block, meta) {
            let writeback = self.l2_directory.handle_eviction(evicted, tile);
            if writeback || evicted_meta.dirty {
                self.mem.writeback(evicted.base_addr(self.block_bytes()));
            }
        }
    }

    /// ASR's allocation decision for clean shared blocks fetched from a remote slice.
    ///
    /// During warm-up every variant decides with
    /// [`ASR_WARMUP_PROBABILITY`] instead of its own probability, so the six
    /// ASR versions build identical warmed state from one reference stream
    /// (see the constant's documentation). The variant's own probability —
    /// static or learned — takes over the moment measurement starts.
    fn asr_allows_allocation(&mut self, class: AccessClass) -> bool {
        match self.design {
            LlcDesign::Asr { .. } => match class {
                AccessClass::PrivateData => true,
                AccessClass::Instruction | AccessClass::SharedData => {
                    let p = if self.measuring {
                        self.asr_probability.clamp(0.0, 1.0)
                    } else {
                        ASR_WARMUP_PROBABILITY
                    };
                    self.rng.gen_bool(p)
                }
            },
            _ => true,
        }
    }

    /// Simple hill-climbing controller for the adaptive ASR version: every
    /// window, keep moving the allocation probability in the direction that
    /// reduced stall cycles, reversing when it stops helping.
    fn asr_adapt(&mut self) {
        self.asr_window_accesses += 1;
        if self.asr_window_accesses < ASR_WINDOW {
            return;
        }
        if self.asr_window_cycles > self.asr_prev_window_cycles {
            self.asr_direction = -self.asr_direction;
        }
        self.asr_probability = (self.asr_probability + self.asr_direction).clamp(0.0, 1.0);
        self.asr_prev_window_cycles = self.asr_window_cycles;
        self.asr_window_cycles = 0;
        self.asr_window_accesses = 0;
    }

    // ----- snapshot support -------------------------------------------------

    /// Serializes every piece of state that warm-up mutates — the tile
    /// slices and victim buffers, the memory system, the OS page table and
    /// TLBs, the coherence directory, the dirty-block map, the ideal
    /// design's aggregate cache, the RNG, the ASR controller, and all
    /// accounting counters — into a flat byte buffer.
    ///
    /// Constructor-owned configuration (the design, latency LUTs, placement
    /// engine, cached geometry scalars) is deliberately *not* serialized: a
    /// restore target rebuilds those from its own `(design, spec)` pair via
    /// [`CmpSimulator::with_seed`]. Excluding the design — and with it the
    /// ASR allocation probability — is what lets one warmed checkpoint seed
    /// every ASR variant without clobbering the variant's own policy.
    pub fn save_state(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.tiles.encode(&mut out);
        self.mem.encode(&mut out);
        self.os.encode(&mut out);
        self.l2_directory.encode(&mut out);
        self.l1_dirty.encode(&mut out);
        self.ideal_cache.encode(&mut out);
        self.rng.state().encode(&mut out);
        self.asr_window_cycles.encode(&mut out);
        self.asr_prev_window_cycles.encode(&mut out);
        self.asr_window_accesses.encode(&mut out);
        self.asr_direction.encode(&mut out);
        self.clock.encode(&mut out);
        self.sweep_countdown.encode(&mut out);
        self.measuring.encode(&mut out);
        self.acc.encode(&mut out);
        self.measured_accesses.encode(&mut out);
        self.off_chip_accesses.encode(&mut out);
        self.l1_to_l1_transfers.encode(&mut out);
        self.misclassified.encode(&mut out);
        self.classified.encode(&mut out);
        self.reclassifications.encode(&mut out);
        out
    }

    /// Restores the state captured by [`CmpSimulator::save_state`],
    /// field-for-field, leaving the receiver bit-identical (in simulation
    /// behaviour) to the simulator the buffer was saved from.
    ///
    /// The receiver must have been built for a [`WorkloadSpec`] with the
    /// same system configuration the snapshot was taken under — the buffer
    /// carries the warmed *state*, not the geometry it was shaped by — and
    /// the whole buffer must be consumed exactly.
    pub fn load_state(&mut self, bytes: &[u8]) {
        let mut r = SnapReader::new(bytes);
        self.tiles = r.get();
        self.mem = r.get();
        self.os = r.get();
        self.l2_directory = r.get();
        self.l1_dirty = r.get();
        self.ideal_cache = r.get();
        self.rng = StdRng::seed_from_u64(r.get());
        self.asr_window_cycles = r.get();
        self.asr_prev_window_cycles = r.get();
        self.asr_window_accesses = r.get();
        self.asr_direction = r.get();
        self.clock = r.get();
        self.sweep_countdown = r.get();
        self.measuring = r.get();
        self.acc = r.get();
        self.measured_accesses = r.get();
        self.off_chip_accesses = r.get();
        self.l1_to_l1_transfers = r.get();
        self.misclassified = r.get();
        self.classified = r.get();
        self.reclassifications = r.get();
        assert_eq!(
            r.remaining(),
            0,
            "snapshot buffer has trailing bytes after restore"
        );
    }
}

impl PartialEq for CmpSimulator {
    /// Snapshot-state equality: compares exactly the fields
    /// [`CmpSimulator::save_state`] serializes (including the RNG state), so
    /// `restore(save(sim)) == sim` is the codec's round-trip property.
    /// Constructor-owned configuration is excluded on both sides of the
    /// equation for the same reason it is excluded from the codec.
    fn eq(&self, other: &Self) -> bool {
        self.tiles == other.tiles
            && self.mem == other.mem
            && self.os == other.os
            && self.l2_directory == other.l2_directory
            && self.l1_dirty == other.l1_dirty
            && self.ideal_cache == other.ideal_cache
            && self.rng == other.rng
            && self.asr_window_cycles == other.asr_window_cycles
            && self.asr_prev_window_cycles == other.asr_prev_window_cycles
            && self.asr_window_accesses == other.asr_window_accesses
            && self.asr_direction == other.asr_direction
            && self.clock == other.clock
            && self.sweep_countdown == other.sweep_countdown
            && self.measuring == other.measuring
            && self.acc == other.acc
            && self.measured_accesses == other.measured_accesses
            && self.off_chip_accesses == other.off_chip_accesses
            && self.l1_to_l1_transfers == other.l1_to_l1_transfers
            && self.misclassified == other.misclassified
            && self.classified == other.classified
            && self.reclassifications == other.reclassifications
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnuca_workloads::{TraceArena, TraceGenerator};

    fn quick_run(design: LlcDesign, spec: &WorkloadSpec, n: usize) -> MeasuredRun {
        let mut gen = TraceGenerator::new(spec, 7);
        let mut sim = CmpSimulator::new(design, spec);
        sim.run_warmup(&mut gen, n);
        sim.run_measured(&mut gen, n)
    }

    #[test]
    fn every_design_produces_a_positive_cpi() {
        let spec = WorkloadSpec::oltp_db2();
        for design in LlcDesign::speedup_set() {
            let run = quick_run(design, &spec, 10_000);
            assert!(
                run.total_cpi() > spec.busy_cpi,
                "{design} must add memory CPI"
            );
            assert_eq!(run.accesses, 10_000);
            assert!(run.instructions > 0.0);
        }
    }

    #[test]
    fn ideal_design_has_lowest_cpi() {
        let spec = WorkloadSpec::oltp_db2();
        let ideal = quick_run(LlcDesign::Ideal, &spec, 20_000).total_cpi();
        for design in LlcDesign::evaluation_set() {
            let cpi = quick_run(design, &spec, 20_000).total_cpi();
            assert!(
                ideal <= cpi + 1e-9,
                "ideal ({ideal:.3}) must not be slower than {design} ({cpi:.3})"
            );
        }
    }

    #[test]
    fn private_data_stays_local_under_rnuca_and_private() {
        // For a purely private workload, R-NUCA and Private should both service
        // L2 hits at local-slice latency (no network component on hits).
        let spec = WorkloadSpec::mix();
        let rnuca = quick_run(LlcDesign::rnuca_default(), &spec, 20_000);
        let shared = quick_run(LlcDesign::Shared, &spec, 20_000);
        // The shared design spreads MIX's private data across the chip and must
        // show a higher L2 CPI for private data.
        assert!(
            shared.cpi.l2_private_data > rnuca.cpi.l2_private_data,
            "shared {:.4} should exceed R-NUCA {:.4} for private-data L2 CPI",
            shared.cpi.l2_private_data,
            rnuca.cpi.l2_private_data
        );
    }

    #[test]
    fn shared_design_never_uses_l2_coherence_transfers() {
        let spec = WorkloadSpec::oltp_db2();
        let run = quick_run(LlcDesign::Shared, &spec, 20_000);
        assert_eq!(run.cpi.l2_shared_coherence, 0.0);
        let rnuca = quick_run(LlcDesign::rnuca_default(), &spec, 20_000);
        assert_eq!(rnuca.cpi.l2_shared_coherence, 0.0);
    }

    #[test]
    fn private_design_pays_coherence_on_shared_data() {
        let spec = WorkloadSpec::oltp_db2();
        let run = quick_run(LlcDesign::Private, &spec, 30_000);
        assert!(
            run.cpi.l2_shared_coherence > 0.0,
            "private design must show remote coherence transfers for shared data"
        );
    }

    #[test]
    fn rnuca_misclassification_is_small() {
        let spec = WorkloadSpec::oltp_db2();
        let run = quick_run(LlcDesign::rnuca_default(), &spec, 50_000);
        assert!(
            run.misclassification_rate < 0.02,
            "misclassification should be well below 2%, got {}",
            run.misclassification_rate
        );
        assert!(
            run.reclassifications > 0,
            "shared pages must trigger re-classifications"
        );
    }

    #[test]
    fn non_rnuca_designs_report_no_classification_activity() {
        let spec = WorkloadSpec::apache();
        let run = quick_run(LlcDesign::Shared, &spec, 5_000);
        assert_eq!(run.misclassification_rate, 0.0);
        assert_eq!(run.reclassifications, 0);
        assert_eq!(run.cpi.breakdown.reclassification, 0.0);
    }

    #[test]
    fn l1_to_l1_transfers_appear_for_read_write_sharing() {
        let spec = WorkloadSpec::oltp_db2();
        for design in [
            LlcDesign::Shared,
            LlcDesign::Private,
            LlcDesign::rnuca_default(),
        ] {
            let run = quick_run(design, &spec, 30_000);
            assert!(
                run.l1_to_l1_rate > 0.0,
                "{design} should see L1-to-L1 transfers on read-write shared data"
            );
        }
    }

    #[test]
    fn asr_static_zero_and_one_bracket_the_adaptive_version() {
        let spec = WorkloadSpec::oltp_db2();
        let p0 = quick_run(
            LlcDesign::Asr {
                policy: AsrPolicy::Static(0.0),
            },
            &spec,
            20_000,
        );
        let p1 = quick_run(
            LlcDesign::Asr {
                policy: AsrPolicy::Static(1.0),
            },
            &spec,
            20_000,
        );
        let adaptive = quick_run(
            LlcDesign::Asr {
                policy: AsrPolicy::Adaptive,
            },
            &spec,
            20_000,
        );
        for run in [&p0, &p1, &adaptive] {
            assert!(run.total_cpi() > 0.0);
        }
        // p=1.0 replicates like the private design; p=0.0 never allocates
        // shared blocks locally. Their CPIs must differ for a sharing workload.
        assert!((p0.total_cpi() - p1.total_cpi()).abs() > 1e-6);
    }

    #[test]
    fn off_chip_rate_reflects_capacity_pressure() {
        // DSS Qry6 streams a multi-gigabyte private working set: every design
        // must show substantial off-chip activity.
        let spec = WorkloadSpec::dss_qry6();
        let run = quick_run(LlcDesign::Shared, &spec, 20_000);
        assert!(
            run.off_chip_rate > 0.2,
            "streaming workload must miss on chip often"
        );
    }

    #[test]
    fn arena_replay_matches_streaming_generation_for_every_design() {
        // The perf-critical property of the trace arena: a simulator driven
        // by a replay cursor produces the bit-identical MeasuredRun that the
        // streaming generator path produces, for every design's step path.
        let spec = WorkloadSpec::oltp_db2();
        let arena = TraceArena::new();
        for design in LlcDesign::speedup_set() {
            let mut gen = TraceGenerator::new(&spec, 13);
            let mut streamed_sim = CmpSimulator::with_seed(design, &spec, 13);
            streamed_sim.run_warmup(&mut gen, 12_000);
            let streamed = streamed_sim.run_measured(&mut gen, 8_000);

            let mut slice = arena.slice(&spec, 13, 20_000);
            let mut replay_sim = CmpSimulator::with_seed(design, &spec, 13);
            replay_sim.run_warmup(&mut slice, 12_000);
            let replayed = replay_sim.run_measured(&mut slice, 8_000);

            assert_eq!(streamed, replayed, "{design} must be replay-invariant");
        }
        // All five designs resolved through one memoized stream.
        assert_eq!(arena.len(), 1);
        assert_eq!(arena.generations(), 1);
    }

    #[test]
    fn measured_run_is_deterministic_for_a_fixed_seed() {
        let spec = WorkloadSpec::em3d();
        let a = quick_run(LlcDesign::rnuca_default(), &spec, 10_000);
        let b = quick_run(LlcDesign::rnuca_default(), &spec, 10_000);
        assert_eq!(a, b);
    }

    #[test]
    fn simulator_seed_changes_asr_replication_decisions() {
        // The experiment seed must reach the simulator RNG: two ASR runs over
        // the *same* reference stream but different simulator seeds make
        // different probabilistic allocation decisions.
        let spec = WorkloadSpec::oltp_db2();
        let design = LlcDesign::Asr {
            policy: AsrPolicy::Static(0.5),
        };
        let run_with = |seed: u64| {
            let mut gen = TraceGenerator::new(&spec, 7);
            let mut sim = CmpSimulator::with_seed(design, &spec, seed);
            sim.run_warmup(&mut gen, 10_000);
            sim.run_measured(&mut gen, 10_000)
        };
        assert_ne!(
            run_with(1),
            run_with(2),
            "different seeds must alter ASR behaviour"
        );
        assert_eq!(run_with(3), run_with(3), "equal seeds stay deterministic");
    }

    #[test]
    fn reused_simulator_second_window_matches_fresh_simulator() {
        // Regression test for ASR-controller state carryover: a second
        // measured window on a reused simulator must equal the same window
        // measured on a fresh simulator that replayed the earlier references
        // as warm-up. Before the fix, the leftover window counters from the
        // first measured window fired the adaptive controller early in the
        // second one. Both windows stay below ASR_WINDOW (10 000) so the
        // learned allocation probability — warm state that legitimately
        // carries over, like cache contents — is unchanged; what must not
        // leak is exactly the window accounting this test pins down.
        let spec = WorkloadSpec::oltp_db2();
        let design = LlcDesign::Asr {
            policy: AsrPolicy::Adaptive,
        };

        let mut gen = TraceGenerator::new(&spec, 11);
        let mut reused = CmpSimulator::with_seed(design, &spec, 5);
        reused.run_warmup(&mut gen, 8_000);
        let _first = reused.run_measured(&mut gen, 6_000);
        let second = reused.run_measured(&mut gen, 8_000);

        let mut gen_fresh = TraceGenerator::new(&spec, 11);
        let mut fresh = CmpSimulator::with_seed(design, &spec, 5);
        fresh.run_warmup(&mut gen_fresh, 8_000 + 6_000);
        let second_fresh = fresh.run_measured(&mut gen_fresh, 8_000);

        assert_eq!(second, second_fresh, "measured windows must be independent");
    }

    #[test]
    fn l1_dirty_tracking_stays_bounded_on_streaming_writes() {
        // A pure write stream to distinct blocks never re-probes old entries,
        // so before the periodic sweep the map grew by one entry per write
        // forever. With the sweep it is bounded by two residency windows.
        use rnuca_types::addr::PhysAddr;
        use rnuca_types::ids::CoreId;

        let spec = WorkloadSpec::oltp_db2();
        let mut sim = CmpSimulator::new(LlcDesign::Private, &spec);
        let steps = 160_000u64; // 2.5 residency windows of 64 000 references
        for i in 0..steps {
            let access = MemoryAccess::new(
                CoreId::new((i % 16) as usize),
                PhysAddr::new(i * 64),
                rnuca_types::access::AccessKind::Write,
                AccessClass::PrivateData,
            );
            sim.step(&access);
        }
        let bound = 2 * 64_000;
        assert!(
            sim.l1_dirty_tracked() <= bound,
            "dirty map must stay within two residency windows, got {}",
            sim.l1_dirty_tracked()
        );
        // Sanity: the map is actually in use.
        assert!(sim.l1_dirty_tracked() > 0);
    }
}
